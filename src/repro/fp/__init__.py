"""Floating-point substrate: bit views, formats (Table 1), rounding, errors."""

from .bits import (
    bits_to_float,
    compose,
    decompose,
    float_to_bits,
    format_bits,
    hex_bits,
    is_negative_zero,
    mantissa_bits_agreement,
    next_after_zero,
    ulp,
)
from .analysis import ErrorDecomposition, decompose_emulation_error
from .error import ErrorReport, compare_to_reference, error_ratio, max_error, mean_error
from .formats import EXTENDED, HALF, MARKIDIS, SINGLE, TABLE1, FloatFormat, table1_rows
from .rounding import (
    round_to_mantissa,
    split_scale,
    to_half,
    to_single,
    truncate_to_mantissa,
)

__all__ = [
    "bits_to_float",
    "compose",
    "decompose",
    "float_to_bits",
    "format_bits",
    "hex_bits",
    "is_negative_zero",
    "mantissa_bits_agreement",
    "next_after_zero",
    "ulp",
    "ErrorDecomposition",
    "decompose_emulation_error",
    "ErrorReport",
    "compare_to_reference",
    "error_ratio",
    "max_error",
    "mean_error",
    "EXTENDED",
    "HALF",
    "MARKIDIS",
    "SINGLE",
    "TABLE1",
    "FloatFormat",
    "table1_rows",
    "round_to_mantissa",
    "split_scale",
    "to_half",
    "to_single",
    "truncate_to_mantissa",
]
