"""Error decomposition for emulated GEMM results.

The end-to-end Eq. 10 error of an emulated GEMM mixes three sources with
different owners:

* **split residual** — what the data split discarded (the Figure 4
  difference between round- and truncate-split lives here),
* **accumulation rounding** — the fp32 roundings of the Tensor Core
  accumulator across k-chunks and emulation terms,
* **reference error** — the single-precision reference's *own* deviation
  from the exact product (common-mode: present in every comparison
  against ``V_single``).

:func:`decompose_emulation_error` measures each component separately —
the tool behind EXPERIMENTS.md's explanation of why the paper's 2.33x
round-vs-truncate gap appears at the split level but dilutes end-to-end
in this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..emulation.gemm import EmulatedGemm, reference_exact, reference_single
from ..emulation.schemes import EGEMM, EmulationScheme
from .error import max_error

__all__ = ["ErrorDecomposition", "decompose_emulation_error"]


@dataclass(frozen=True)
class ErrorDecomposition:
    """Max-error components of one emulated GEMM (all vs float64 exact)."""

    scheme: str
    #: |split-reconstructed exact product - exact product|
    split_residual: float
    #: |emulated result - split-reconstructed exact product|
    accumulation: float
    #: |fp32 reference - exact product| (common-mode in Eq. 10)
    reference: float
    #: |emulated result - exact product|
    total_vs_exact: float
    #: |emulated result - fp32 reference| (the paper's Eq. 10 number)
    total_vs_single: float

    @property
    def dominant_source(self) -> str:
        """Which component bounds the Eq. 10 measurement."""
        sources = {
            "split": self.split_residual,
            "accumulation": self.accumulation,
            "reference": self.reference,
        }
        return max(sources, key=lambda k: sources[k])

    def summary(self) -> str:
        return (
            f"{self.scheme}: split={self.split_residual:.2e} "
            f"accum={self.accumulation:.2e} reference={self.reference:.2e} "
            f"-> vs_single={self.total_vs_single:.2e} (dominant: {self.dominant_source})"
        )


def decompose_emulation_error(
    a: np.ndarray,
    b: np.ndarray,
    scheme: EmulationScheme = EGEMM,
    tk: int = 16,
) -> ErrorDecomposition:
    """Measure each error component of one emulated GEMM.

    The split-residual component multiplies the *reconstructed* split
    values exactly (float64), so only the discarded bits differ; the
    accumulation component is the emulated result against that exact
    product of reconstructed inputs.
    """
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    exact = reference_exact(a32, b32)
    single = reference_single(a32, b32)
    emulated = EmulatedGemm(scheme=scheme, tk=tk)(a32, b32)

    pa, pb = scheme.split_operands(a32, b32)
    reconstructed = pa.reconstruct() @ pb.reconstruct()

    return ErrorDecomposition(
        scheme=scheme.name,
        split_residual=max_error(reconstructed, exact),
        accumulation=max_error(emulated, reconstructed),
        reference=max_error(single, exact),
        total_vs_exact=max_error(emulated, exact),
        total_vs_single=max_error(emulated, single),
    )
