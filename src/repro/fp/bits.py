"""Bit-level views of IEEE-754 floating-point values.

This module is the lowest layer of the reproduction: everything above it —
the split algorithms of :mod:`repro.splits`, the simulated tensor-core
primitive of :mod:`repro.tensorcore`, the bit-wise profiling workflow of
:mod:`repro.profiling` — reasons about floats through the decompositions
defined here.

All functions are vectorized over NumPy arrays; scalars are accepted and
returned as 0-d results.  The integer views never copy when the input is a
contiguous float array of the matching width (``ndarray.view``), matching
the "views, not copies" guidance for numerical hot paths.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FP16_SIGN_MASK",
    "FP16_EXP_MASK",
    "FP16_MAN_MASK",
    "FP32_SIGN_MASK",
    "FP32_EXP_MASK",
    "FP32_MAN_MASK",
    "float_to_bits",
    "bits_to_float",
    "decompose",
    "compose",
    "hex_bits",
    "format_bits",
    "mantissa_bits_agreement",
    "ulp",
    "next_after_zero",
    "is_negative_zero",
]

# fp16 field masks (1 sign, 5 exponent, 10 mantissa bits).
FP16_SIGN_MASK = np.uint16(0x8000)
FP16_EXP_MASK = np.uint16(0x7C00)
FP16_MAN_MASK = np.uint16(0x03FF)

# fp32 field masks (1 sign, 8 exponent, 23 mantissa bits).
FP32_SIGN_MASK = np.uint32(0x8000_0000)
FP32_EXP_MASK = np.uint32(0x7F80_0000)
FP32_MAN_MASK = np.uint32(0x007F_FFFF)

_UINT_FOR_FLOAT = {
    np.dtype(np.float16): np.dtype(np.uint16),
    np.dtype(np.float32): np.dtype(np.uint32),
    np.dtype(np.float64): np.dtype(np.uint64),
}

_FIELDS = {
    # dtype -> (exponent bits, mantissa bits)
    np.dtype(np.float16): (5, 10),
    np.dtype(np.float32): (8, 23),
    np.dtype(np.float64): (11, 52),
}


def float_to_bits(x: np.ndarray | float) -> np.ndarray:
    """Return the raw IEEE-754 bit pattern of ``x`` as an unsigned integer.

    The result dtype matches the width of the input float dtype
    (``float16 -> uint16`` etc.).  A zero-copy view is used whenever the
    input is already a NumPy float array.
    """
    arr = np.asarray(x)
    if arr.dtype not in _UINT_FOR_FLOAT:
        raise TypeError(f"unsupported float dtype: {arr.dtype}")
    return arr.view(_UINT_FOR_FLOAT[arr.dtype])


def bits_to_float(bits: np.ndarray | int, dtype=np.float32) -> np.ndarray:
    """Reinterpret unsigned-integer bit patterns as floats of ``dtype``."""
    dtype = np.dtype(dtype)
    if dtype not in _UINT_FOR_FLOAT:
        raise TypeError(f"unsupported float dtype: {dtype}")
    arr = np.asarray(bits, dtype=_UINT_FOR_FLOAT[dtype])
    return arr.view(dtype)


def decompose(x: np.ndarray | float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split floats into ``(sign, biased_exponent, mantissa)`` integer fields.

    ``sign`` is 0 or 1, ``biased_exponent`` is the raw stored exponent and
    ``mantissa`` is the stored fraction field (without the implicit bit).
    """
    arr = np.asarray(x)
    exp_bits, man_bits = _FIELDS[arr.dtype]
    bits = float_to_bits(arr).astype(np.uint64)
    man = bits & np.uint64((1 << man_bits) - 1)
    exp = (bits >> np.uint64(man_bits)) & np.uint64((1 << exp_bits) - 1)
    sign = bits >> np.uint64(man_bits + exp_bits)
    return sign, exp, man


def compose(sign, exp, man, dtype=np.float32) -> np.ndarray:
    """Inverse of :func:`decompose`: assemble fields into a float array."""
    dtype = np.dtype(dtype)
    exp_bits, man_bits = _FIELDS[dtype]
    sign = np.asarray(sign, dtype=np.uint64)
    exp = np.asarray(exp, dtype=np.uint64)
    man = np.asarray(man, dtype=np.uint64)
    if np.any(exp >> exp_bits):
        raise ValueError("exponent field overflow")
    if np.any(man >> man_bits):
        raise ValueError("mantissa field overflow")
    bits = (sign << np.uint64(man_bits + exp_bits)) | (exp << np.uint64(man_bits)) | man
    return bits_to_float(bits.astype(_UINT_FOR_FLOAT[dtype]), dtype)


def hex_bits(x: float, dtype=np.float32) -> str:
    """Hexadecimal bit pattern of a scalar, e.g. ``0x029a6944``.

    This is the representation the paper's Appendix prints next to the
    half/single/Tensor-Core results of the profiling program.
    """
    dtype = np.dtype(dtype)
    bits = int(float_to_bits(np.asarray(x, dtype=dtype)))
    width = dtype.itemsize * 2
    return f"0x{bits:0{width}x}"


def _ordered_int32(x: np.ndarray) -> np.ndarray:
    """Map fp32 bit patterns to integers monotonic in the float ordering.

    The classic sign-magnitude trick: non-negative floats keep their bit
    pattern, negative floats are mirrored below zero.  The integer
    difference of two mapped values is their distance in ulps, valid
    across exponent boundaries and the signed-zero pair.
    """
    bits = float_to_bits(np.asarray(x, dtype=np.float32)).astype(np.int64)
    return np.where(bits & 0x8000_0000, -(bits & 0x7FFF_FFFF), bits)


def ulp_distance(a: np.ndarray | float, b: np.ndarray | float) -> np.ndarray:
    """Elementwise distance between fp32 values in units in the last place."""
    return np.abs(_ordered_int32(a) - _ordered_int32(b))


def mantissa_bits_agreement(a: np.ndarray | float, b: np.ndarray | float) -> np.ndarray:
    """Number of leading fp32 mantissa bits on which ``a`` and ``b`` agree.

    Both inputs are interpreted as fp32.  Agreement is measured through
    the ulp distance ``d`` (which, unlike a raw XOR of mantissa fields,
    does not over-penalize values adjacent across a carry or exponent
    boundary):

    * ``d == 0``  -> 24 (all 23 stored bits plus the implicit bit),
    * otherwise   -> ``max(0, 23 - floor(log2(d)))`` — a 1-ulp difference
      leaves 23 agreeing bits, a difference in the 2^j-ulp range leaves
      ``23 - j``.

    This metric implements the paper's "identical ... bit-wisely up to 21
    mantissa bits" profiling comparison (§3.2, Appendix A.3): agreement of
    21 bits means the values differ by at most a few units in the 21st
    mantissa bit.
    """
    d = ulp_distance(a, b)
    nonzero = d != 0
    safe = np.where(nonzero, d, 1)
    high = np.floor(np.log2(safe.astype(np.float64))).astype(np.int64)
    agree = np.where(nonzero, np.maximum(23 - high, 0), 24)
    return agree


def ulp(x: np.ndarray | float, dtype=np.float32) -> np.ndarray:
    """Unit in the last place of ``x`` in the given format."""
    dtype = np.dtype(dtype)
    arr = np.asarray(x, dtype=dtype)
    return np.abs(np.nextafter(arr, np.array(np.inf, dtype=dtype)) - arr)


def next_after_zero(dtype=np.float16) -> float:
    """Smallest positive subnormal of the format."""
    return float(np.nextafter(np.array(0, dtype=dtype), np.array(1, dtype=dtype)))


def format_bits(x: float, dtype=np.float32) -> str:
    """Render a float's bit fields as ``s|exponent|mantissa``.

    Example: ``format_bits(1.0)`` -> ``0|01111111|00000000000000000000000``.
    Used by the precision-study example and the documentation to make the
    Figure 4 split anatomy visible bit by bit.
    """
    dtype = np.dtype(dtype)
    exp_bits, man_bits = _FIELDS[dtype]
    sign, exp, man = decompose(np.asarray(x, dtype=dtype))
    return f"{int(sign):01b}|{int(exp):0{exp_bits}b}|{int(man):0{man_bits}b}"


def is_negative_zero(x: np.ndarray | float) -> np.ndarray:
    """Elementwise test for ``-0.0`` (sign bit set, value zero)."""
    arr = np.asarray(x)
    sign, _, _ = decompose(arr)
    return (arr == 0) & (sign == 1)
