"""Rounding primitives used by the split algorithms and probing cores.

The emulation algorithms of the paper hinge on *where* rounding happens:

* truncate-split (Markidis) chops the fp32 mantissa after 10 bits;
* round-split (EGEMM-TC) rounds-to-nearest on the 10th bit, recovering one
  extra effective mantissa bit via the sign of the residual (Figure 4);
* the probing compute primitives of the profiling workflow differ only in
  the precision each intermediate result is rounded to.

All routines are vectorized and operate in float64 carriers, which hold
fp16/fp32 values exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "round_to_mantissa",
    "truncate_to_mantissa",
    "to_half",
    "to_single",
    "split_scale",
]


def _frexp_scale(x: np.ndarray) -> np.ndarray:
    """Per-element power of two such that ``x / 2**e`` lies in [1, 2).

    Zeros map to scale 1 so downstream code never divides by zero.
    """
    x = np.asarray(x, dtype=np.float64)
    mant, exp = np.frexp(x)  # x = mant * 2**exp with |mant| in [0.5, 1)
    exp = np.where(x == 0, 1, exp)
    return np.ldexp(1.0, exp - 1)


def round_to_mantissa(x: np.ndarray | float, bits: int) -> np.ndarray:
    """Round ``x`` to ``bits`` stored mantissa bits, ties-to-even.

    Mimics IEEE round-to-nearest-even at an arbitrary mantissa width without
    altering the exponent range.  Used to model the emulated "extended" and
    "markidis" value sets and the wide internal accumulator of the probing
    primitives.
    """
    if bits < 0:
        raise ValueError("mantissa width must be non-negative")
    x = np.asarray(x, dtype=np.float64)
    scale = _frexp_scale(x)
    # x = m * scale with |m| in [1,2); quantum of the target format is
    # scale * 2**-bits.  np.round implements ties-to-even on the scaled
    # integer, matching IEEE RN behaviour for in-range values.  Values so
    # small that the quantum underflows to zero (deep f64 subnormals)
    # pass through unchanged: they are already below any emulated grid.
    quantum = scale * 2.0 ** (-bits)
    safe_quantum = np.where(quantum == 0, 1.0, quantum)
    out = np.round(x / safe_quantum) * safe_quantum
    out = np.where(quantum == 0, x, out)
    return np.where(np.isfinite(x), out, x)


def truncate_to_mantissa(x: np.ndarray | float, bits: int) -> np.ndarray:
    """Chop ``x`` to ``bits`` stored mantissa bits (round toward zero).

    This is the split primitive of Markidis et al.: ``xhi = trunc16(x)``
    keeps the top 10 mantissa bits, discarding the rest regardless of their
    value, which loses one expected bit of accuracy versus rounding.

    For normal finite values the chop is pure bit manipulation — zeroing
    the low ``52 - bits`` bits of the float64 significand truncates the
    magnitude toward zero on exactly the grid the scale/trunc formula
    defines — so the common case is a handful of integer passes instead
    of a dozen float ops including a division.  Zeros, non-finite values,
    and float64 subnormals take the original scale-based path, keeping
    the function's semantics identical everywhere.
    """
    if bits < 0:
        raise ValueError("mantissa width must be non-negative")
    x = np.asarray(x, dtype=np.float64)
    if 0 <= bits <= 52 and x.ndim:
        raw = np.ascontiguousarray(x).view(np.int64)
        expfield = raw & 0x7FF0000000000000
        # Zeros chop to themselves under the mask, so only non-finite
        # values and float64 subnormals disqualify the bitwise path.
        unsafe = (expfield == 0x7FF0000000000000) | (
            (expfield == 0) & ((raw & 0x000FFFFFFFFFFFFF) != 0)
        )
        if not bool(unsafe.any()):
            mask = np.int64(-1) << np.int64(52 - bits)
            return (raw & mask).view(np.float64)
    scale = _frexp_scale(x)
    quantum = scale * 2.0 ** (-bits)
    safe_quantum = np.where(quantum == 0, 1.0, quantum)
    out = np.trunc(x / safe_quantum) * safe_quantum
    out = np.where(quantum == 0, x, out)
    return np.where(np.isfinite(x), out, x)


def to_half(x: np.ndarray | float) -> np.ndarray:
    """Round to IEEE binary16 (including range effects), carried as f64.

    Values beyond the fp16 range overflow to infinity, as the hardware
    conversion does; the NumPy overflow warning is intentional behaviour
    here and suppressed.
    """
    with np.errstate(over="ignore"):
        return np.asarray(x, dtype=np.float64).astype(np.float16).astype(np.float64)


def to_single(x: np.ndarray | float) -> np.ndarray:
    """Round to IEEE binary32 (including range effects), carried as f64."""
    return np.asarray(x, dtype=np.float64).astype(np.float32).astype(np.float64)


def split_scale(x: np.ndarray | float) -> np.ndarray:
    """Power-of-two ulp scale of the fp16 *high* part of ``x``.

    For a value ``x`` whose fp16 rounding is ``xhi = m * 2**e`` (normal),
    the low part of a two-term split carries bits at and below
    ``2**(e-10)``; this helper returns that quantum.  Used by tests to
    check that round-split residuals are bounded by half a quantum.
    """
    xhi = to_half(x)
    scale = _frexp_scale(xhi)
    return scale * 2.0**-10
