"""Floating-point format descriptors (the paper's Table 1).

The paper compares four precision types by their bit budgets:

==================== ==== ======== ========
Data type            Sign Exponent Mantissa
==================== ==== ======== ========
Half-precision       1    5        10
Single-precision     1    8        23
Markidis-precision   1    5        20
Extended-precision   1    5        21
==================== ==== ======== ========

"Markidis-precision" is what the truncate-split emulation of Markidis [20]
delivers: two half-precision mantissas back to back, 20 effective bits.
"Extended-precision" is what the paper's round-split emulation delivers:
the same two 10-bit mantissas *plus* one extra bit recovered by re-using
the sign bit of the low part (Figure 4), for 21 effective bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FloatFormat", "HALF", "SINGLE", "MARKIDIS", "EXTENDED", "TABLE1", "table1_rows"]


@dataclass(frozen=True)
class FloatFormat:
    """A (possibly emulated) binary floating-point format.

    Parameters mirror Table 1 of the paper.  ``storage`` names the NumPy
    dtype(s) used to *carry* values of this format in the reproduction;
    emulated formats are carried as pairs of ``float16`` values.
    """

    name: str
    sign_bits: int
    exponent_bits: int
    mantissa_bits: int
    emulated: bool = False
    description: str = ""

    @property
    def significand_bits(self) -> int:
        """Mantissa bits including the implicit leading 1."""
        return self.mantissa_bits + 1

    @property
    def epsilon(self) -> float:
        """Machine epsilon (spacing of 1.0) implied by the mantissa width."""
        return 2.0 ** (-self.mantissa_bits)

    @property
    def total_bits(self) -> int:
        return self.sign_bits + self.exponent_bits + self.mantissa_bits

    def max_exponent(self) -> int:
        """Largest unbiased exponent of a normal number."""
        return (1 << (self.exponent_bits - 1)) - 1

    def min_exponent(self) -> int:
        """Smallest unbiased exponent of a normal number."""
        return 2 - (1 << (self.exponent_bits - 1))

    def representable_max(self) -> float:
        """Largest finite value representable in the format."""
        frac = 2.0 - 2.0 ** (-self.mantissa_bits)
        return frac * 2.0 ** self.max_exponent()

    def quantize(self, x: np.ndarray | float) -> np.ndarray:
        """Round ``x`` to this format's mantissa width (nearest-even).

        Exponent-range effects (overflow to inf, subnormal flushing) are
        applied for the two hardware formats; emulated formats share the
        half-precision exponent range on each component but represent the
        *value* to their wider mantissa, so only mantissa rounding applies.
        """
        from .rounding import round_to_mantissa

        if self.name == "half":
            return np.asarray(x, dtype=np.float64).astype(np.float16).astype(np.float64)
        if self.name == "single":
            return np.asarray(x, dtype=np.float64).astype(np.float32).astype(np.float64)
        return round_to_mantissa(np.asarray(x, dtype=np.float64), self.mantissa_bits)


HALF = FloatFormat(
    "half", 1, 5, 10, description="IEEE-754 binary16 — Tensor Core input type"
)
SINGLE = FloatFormat(
    "single", 1, 8, 23, description="IEEE-754 binary32 — Tensor Core accumulator type"
)
MARKIDIS = FloatFormat(
    "markidis",
    1,
    5,
    20,
    emulated=True,
    description="truncate-split pair of binary16 values (Markidis et al.)",
)
EXTENDED = FloatFormat(
    "extended",
    1,
    5,
    21,
    emulated=True,
    description="round-split pair of binary16 values (EGEMM-TC)",
)

TABLE1 = (HALF, SINGLE, MARKIDIS, EXTENDED)


def table1_rows() -> list[dict[str, object]]:
    """Rows of the paper's Table 1, for the experiment harness."""
    return [
        {
            "data_type": f.name,
            "sign": f.sign_bits,
            "exponent": f.exponent_bits,
            "mantissa": f.mantissa_bits,
        }
        for f in TABLE1
    ]
