"""Error metrics for emulated-precision GEMM results.

The paper's precision evaluation (Figure 7, Eq. 10) reports

    MaxError(p) = | V_p - V_single |

the largest absolute elementwise deviation of the precision-``p`` result
from the single-precision result.  The Appendix's ``precision_test``
additionally reports the *ratio* of the emulation error to the
half-precision cuBLAS error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "max_error",
    "mean_error",
    "error_ratio",
    "gemm_relative_error_bound",
    "split_subnormal_floor",
    "CONDITIONING_TARGET_EXP",
    "block_scaled_relative_error_bound",
    "operand_spread",
    "observed_relative_error",
    "ErrorReport",
    "compare_to_reference",
]

#: power-of-two conditioning target: scaling an operand so its largest
#: magnitude sits near 2^11 keeps split lo-parts out of fp16's subnormal
#: range for any element within 2^14 of the maximum (matches the
#: resilient runner's ``_SCALE_TARGET_EXP``)
CONDITIONING_TARGET_EXP = 11


def max_error(value: np.ndarray, reference: np.ndarray) -> float:
    """Eq. 10: largest absolute elementwise deviation from ``reference``."""
    v = np.asarray(value, dtype=np.float64)
    r = np.asarray(reference, dtype=np.float64)
    if v.shape != r.shape:
        raise ValueError(f"shape mismatch: {v.shape} vs {r.shape}")
    return float(np.max(np.abs(v - r))) if v.size else 0.0


def mean_error(value: np.ndarray, reference: np.ndarray) -> float:
    """Mean absolute elementwise deviation from ``reference``."""
    v = np.asarray(value, dtype=np.float64)
    r = np.asarray(reference, dtype=np.float64)
    if v.shape != r.shape:
        raise ValueError(f"shape mismatch: {v.shape} vs {r.shape}")
    return float(np.mean(np.abs(v - r))) if v.size else 0.0


def gemm_relative_error_bound(
    k: int,
    mantissa_bits: int,
    accumulator_bits: int = 23,
    floor_a: float = 0.0,
    floor_b: float = 0.0,
) -> float:
    """Worst-case relative forward error of a length-``k`` dot product.

    The classic componentwise bound (Higham, *Accuracy and Stability*,
    §3.5) for a GEMM whose inputs are represented to ``mantissa_bits``
    stored mantissa bits and whose partial sums round in an accumulator
    with ``accumulator_bits`` stored bits:

        |computed_ij - exact_ij|  <=  bound * (|A| |B|)_ij

    with ``bound = 2*u_in + u_in^2 + gamma_{k+4}(u_acc) * (1 + u_in)^2``,
    where ``u = 2^-(bits+1)`` is the unit roundoff and ``gamma_j = j*u /
    (1 - j*u)`` collects ``j`` accumulator roundings.  The first terms
    charge the input representation (both operands), the gamma term the
    accumulation cadence.

    The gamma index is ``k + 4``, not the classic ``k``: a plain fused
    dot product rounds at most ``k`` times per element, but the
    emulated multi-term schemes round the accumulator once per (product
    term, k-chunk) pair — ``4 * ceil(k / tk)`` roundings for the
    4-term splits at the default ``tk = 16`` cadence, which *exceeds*
    ``k`` for small ``k`` (at ``k = 1``: four roundings against the one
    the classic bound charges — an observable violation).  Since
    ``4 * ceil(k / tk) <= k + 4`` for every ``k >= 1`` and ``tk >= 4``,
    charging ``gamma_{k+4}`` soundly covers both accumulation
    cadences at the cost of four extra roundoffs' slack at large ``k``.

    ``floor_a``/``floor_b`` are the operands' *subnormal floor charges*
    (:func:`split_subnormal_floor`).  The relative representation model
    ``|fl(x) - x| <= u_in * |x|`` silently assumes the fp16-encoded
    parts of every element stay in fp16's normal range; an element small
    enough that its split lo-part (or its bare half cast) lands on the
    subnormal grid is only represented to an *absolute* spacing, and
    its relative representation error grows to ``eta / |x|``.  With
    ``rho = floor`` the per-element model becomes ``u_in*|x| + eta*S(x)``
    and the componentwise bound

        2u + u^2 + (1+u)*(rho_a + rho_b) + rho_a*rho_b
        + gamma_{k+4}(u_acc) * (1+u)^2 * (1+rho_a) * (1+rho_b)

    which reduces to the classic form at ``rho = 0`` (all magnitudes
    comfortably normal after splitting).  This is the hole the accuracy
    verifier's property test exposed: wide-exponent operands at small
    ``k`` measurably exceed the unfloored certificate by >10x.

    This is the *analytic* accuracy contract the serving router trades
    against the timing model: a kernel is eligible for a request iff its
    bound is at or below the request's ``max_rel_error`` SLO.  The bound
    is deliberately worst-case — measured Eq. 10 errors sit well below
    it — so routing decisions are safe, not merely typical.

    ``k <= 0`` (degenerate GEMM) returns 0.0: an empty reduction is
    exact.  A ``k`` large enough that ``k * u_acc >= 1`` returns ``inf``
    (the bound no longer certifies anything), as do non-finite floors.
    """
    if k <= 0:
        return 0.0
    for floor in (floor_a, floor_b):
        if math.isnan(floor) or floor < 0.0:
            raise ValueError(f"subnormal floor charge must be >= 0, got {floor}")
    if math.isinf(floor_a) or math.isinf(floor_b):
        return float("inf")
    u_in = 2.0 ** -(mantissa_bits + 1)
    u_acc = 2.0 ** -(accumulator_bits + 1)
    ku = (k + 4) * u_acc
    if ku >= 1.0:
        return float("inf")
    gamma = ku / (1.0 - ku)
    rep = (
        2.0 * u_in
        + u_in * u_in
        + (1.0 + u_in) * (floor_a + floor_b)
        + floor_a * floor_b
    )
    return rep + gamma * (1.0 + u_in) ** 2 * (1.0 + floor_a) * (1.0 + floor_b)


def split_subnormal_floor(
    min_nonzero: float,
    max_abs: float,
    mantissa_bits: int,
    eta: float,
    conditioned: bool = False,
) -> float:
    """Operand floor charge ``rho``: subnormal excess over the ``u_in`` model.

    The fp16 grid below ``2^-14`` has *absolute* spacing ``2^-24``, so an
    element whose encoded low part lands there is represented to within
    ``eta`` (half the spacing for round-to-nearest splits, the full
    spacing for truncating ones) rather than ``u_in * |x|``.  The
    per-element envelope — verified against exhaustive sampling of both
    split algorithms across 33 binades — is

        |x - (hi + lo)|  <=  u_in * |x| + eta * S(x),
        S(x) = 1  iff  0 < |x| < eta / u_in

    and the worst relative excess over a whole operand is ``eta / mu``
    with ``mu`` its smallest nonzero magnitude (zero elements split
    exactly).  ``mu`` at or above the threshold ``eta / u_in`` charges
    nothing: there the absolute spacing is already inside the relative
    model.

    ``conditioned=True`` prices the power-of-two conditioned launch the
    resilient runner's ``"scaled"`` escalation performs: the operand is
    exactly rescaled so its largest magnitude sits near
    ``2^CONDITIONING_TARGET_EXP``, which multiplies every magnitude —
    ``mu`` included — by the same exact power of two before the split.
    Conditioning therefore eliminates the charge whenever the operand's
    total magnitude spread is below ``~2^14`` and shrinks it by
    ``max_abs``'s headroom below ``2^11`` otherwise.

    All-zero operands (``min_nonzero <= 0``) charge nothing; non-finite
    statistics return ``inf`` (no certificate).
    """
    if min_nonzero <= 0.0:
        return 0.0
    if not (math.isfinite(min_nonzero) and math.isfinite(max_abs)):
        return float("inf")
    u_in = 2.0 ** -(mantissa_bits + 1)
    threshold = eta / u_in
    mu = min_nonzero
    if conditioned and max_abs > 0.0:
        exp = math.floor(math.log2(max_abs)) - CONDITIONING_TARGET_EXP
        mu = math.ldexp(mu, -exp)
    if mu >= threshold:
        return 0.0
    return eta / mu


def block_scaled_relative_error_bound(
    k: int,
    slices: int,
    spread_a: float = 1.0,
    spread_b: float = 1.0,
    digit_bits: int = 7,
    lead_bits: int = 6,
    out_bits: int = 23,
) -> float:
    """Componentwise error bound of a blockwise-scaled (Ozaki) GEMM.

    Digit slicing under a *shared per-row exponent* drops at most
    ``eps * row_max`` per element after ``slices`` planes, with ``eps =
    2^-(digit_bits*(slices-1) + lead_bits)``: the unretained residual is
    at most half an ulp of the last plane, and the shared scale is within
    a factor of two of the row maximum.  Relative to the element itself
    that is ``eps * spread``, where ``spread`` is the row's
    max/min-nonzero magnitude ratio (:func:`operand_spread`; zero
    elements slice exactly and are excluded).  The certificate is
    therefore **operand-dependent**:

        |computed_ij - exact_ij| <= bound * (|A| |B|)_ij
        bound = eps*(ra + rb) + eps^2*ra*rb
                + gamma_{k + slices^2 + 4}(2^-53) * (1 + eps*ra)(1 + eps*rb)
                + u_out * (1 + base)

    with ``ra``/``rb`` the operands' spreads, the gamma term charging the
    fp64 recombination (slices^2 plane additions plus the exact int32
    partials' conversion, plus slack for the c-add), and ``u_out =
    2^-(out_bits+1)`` the final rounding into the output format.  At
    ``spread = 1`` (constant-magnitude rows) this floors near
    ``2^-(digit_bits*(slices-1) + lead_bits - 1)`` — for 3 slices, ~1.97e-6,
    *below* fp32's own bound past k=32 thanks to the fp64 accumulation.
    For heterogeneous rows the bound degrades linearly in the spread,
    which is exactly the blockwise-scaling weakness the post-EGEMM-TC
    literature documents; a static (mantissa, accumulator) model cannot
    express it, and pretending ``7*slices - 1`` mantissa bits is unsound
    (measured errors exceed that certificate by >2x on standard-normal
    operands).

    ``k <= 0`` returns 0.0 (empty reduction, exact).  Non-finite or
    sub-unity spreads raise; ``inf`` spread returns ``inf`` (a row mixing
    finite and non-finite magnitudes certifies nothing).
    """
    if k <= 0:
        return 0.0
    if slices < 1:
        raise ValueError("need at least one slice")
    for spread in (spread_a, spread_b):
        if math.isnan(spread) or spread < 1.0:
            raise ValueError(f"operand spread must be >= 1, got {spread}")
    if math.isinf(spread_a) or math.isinf(spread_b):
        return float("inf")
    eps = 2.0 ** -(digit_bits * (slices - 1) + lead_bits)
    base = eps * spread_a + eps * spread_b + eps * eps * spread_a * spread_b
    n_roundings = k + slices * slices + 4
    ku = n_roundings * 2.0**-53
    if ku >= 1.0:
        return float("inf")
    gamma = ku / (1.0 - ku)
    u_out = 2.0 ** -(out_bits + 1)
    return (
        base
        + gamma * (1.0 + eps * spread_a) * (1.0 + eps * spread_b)
        + u_out * (1.0 + base)
    )


def operand_spread(x: np.ndarray, axis: int = 1) -> float:
    """Worst per-row (``axis=1``) or per-column (``axis=0``) magnitude spread.

    The ratio ``max|row| / min-nonzero|row|``, maximized over rows — the
    operand statistic that scales :func:`block_scaled_relative_error_bound`.
    Zero elements are excluded (digit slicing represents them exactly);
    all-zero rows and empty operands spread 1.0.  Any non-finite element
    returns ``inf``: no blockwise certificate is possible.
    """
    x64 = np.abs(np.asarray(x, dtype=np.float64))
    if x64.ndim != 2:
        raise ValueError("operand_spread expects a matrix")
    if axis == 0:
        x64 = x64.T
    elif axis != 1:
        raise ValueError("axis must be 0 or 1")
    if not np.all(np.isfinite(x64)):
        return float("inf")
    row_max = np.max(x64, axis=1, initial=0.0)
    nonzero_min = np.min(np.where(x64 > 0, x64, np.inf), axis=1, initial=np.inf)
    with np.errstate(invalid="ignore"):
        spread = np.where(
            row_max > 0, row_max / np.where(np.isfinite(nonzero_min), nonzero_min, row_max), 1.0
        )
    return float(np.max(spread, initial=1.0))


def observed_relative_error(
    value: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
) -> float:
    """Measured componentwise relative error against float64 ground truth.

    The observational dual of the analytic certificates: recomputes
    ``A @ B (+ C)`` in float64 and returns the largest entry of
    ``|value - exact| / scale`` with ``scale = (|A| |B|)_ij (+ |C|_ij)``
    — the same denominator the Higham-style bounds are stated against,
    so ``observed <= certified`` is directly checkable.  Entries whose
    scale is exactly zero (an empty or fully cancelling-free reduction)
    must be exact: any deviation there returns ``inf``.
    """
    a64 = np.asarray(a, dtype=np.float64)
    b64 = np.asarray(b, dtype=np.float64)
    v64 = np.asarray(value, dtype=np.float64)
    exact = a64 @ b64
    scale = np.abs(a64) @ np.abs(b64)
    if c is not None:
        c64 = np.asarray(c, dtype=np.float64)
        exact = exact + c64
        scale = scale + np.abs(c64)
    if v64.shape != exact.shape:
        raise ValueError(f"shape mismatch: {v64.shape} vs {exact.shape}")
    if not v64.size:
        return 0.0
    deviation = np.abs(v64 - exact)
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.where(
            scale > 0,
            deviation / np.where(scale > 0, scale, 1.0),
            np.where(deviation > 0, np.inf, 0.0),
        )
    return float(np.max(rel, initial=0.0))


def error_ratio(value_error: float, baseline_error: float) -> float:
    """Ratio of two max errors (Appendix ``precision_test`` output).

    Returns ``nan`` when the baseline error is exactly zero, which only
    happens for degenerate inputs.
    """
    if baseline_error == 0.0:
        return float("nan")
    return value_error / baseline_error


@dataclass(frozen=True)
class ErrorReport:
    """Max/mean error of a result against a reference computation."""

    label: str
    max_error: float
    mean_error: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.label}: max={self.max_error:.8g} mean={self.mean_error:.8g}"


def compare_to_reference(label: str, value: np.ndarray, reference: np.ndarray) -> ErrorReport:
    """Bundle :func:`max_error` and :func:`mean_error` into a report."""
    return ErrorReport(label, max_error(value, reference), mean_error(value, reference))
