"""Error metrics for emulated-precision GEMM results.

The paper's precision evaluation (Figure 7, Eq. 10) reports

    MaxError(p) = | V_p - V_single |

the largest absolute elementwise deviation of the precision-``p`` result
from the single-precision result.  The Appendix's ``precision_test``
additionally reports the *ratio* of the emulation error to the
half-precision cuBLAS error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["max_error", "mean_error", "error_ratio", "ErrorReport", "compare_to_reference"]


def max_error(value: np.ndarray, reference: np.ndarray) -> float:
    """Eq. 10: largest absolute elementwise deviation from ``reference``."""
    v = np.asarray(value, dtype=np.float64)
    r = np.asarray(reference, dtype=np.float64)
    if v.shape != r.shape:
        raise ValueError(f"shape mismatch: {v.shape} vs {r.shape}")
    return float(np.max(np.abs(v - r))) if v.size else 0.0


def mean_error(value: np.ndarray, reference: np.ndarray) -> float:
    """Mean absolute elementwise deviation from ``reference``."""
    v = np.asarray(value, dtype=np.float64)
    r = np.asarray(reference, dtype=np.float64)
    if v.shape != r.shape:
        raise ValueError(f"shape mismatch: {v.shape} vs {r.shape}")
    return float(np.mean(np.abs(v - r))) if v.size else 0.0


def error_ratio(value_error: float, baseline_error: float) -> float:
    """Ratio of two max errors (Appendix ``precision_test`` output).

    Returns ``nan`` when the baseline error is exactly zero, which only
    happens for degenerate inputs.
    """
    if baseline_error == 0.0:
        return float("nan")
    return value_error / baseline_error


@dataclass(frozen=True)
class ErrorReport:
    """Max/mean error of a result against a reference computation."""

    label: str
    max_error: float
    mean_error: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.label}: max={self.max_error:.8g} mean={self.mean_error:.8g}"


def compare_to_reference(label: str, value: np.ndarray, reference: np.ndarray) -> ErrorReport:
    """Bundle :func:`max_error` and :func:`mean_error` into a report."""
    return ErrorReport(label, max_error(value, reference), mean_error(value, reference))
