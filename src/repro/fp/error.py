"""Error metrics for emulated-precision GEMM results.

The paper's precision evaluation (Figure 7, Eq. 10) reports

    MaxError(p) = | V_p - V_single |

the largest absolute elementwise deviation of the precision-``p`` result
from the single-precision result.  The Appendix's ``precision_test``
additionally reports the *ratio* of the emulation error to the
half-precision cuBLAS error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "max_error",
    "mean_error",
    "error_ratio",
    "gemm_relative_error_bound",
    "ErrorReport",
    "compare_to_reference",
]


def max_error(value: np.ndarray, reference: np.ndarray) -> float:
    """Eq. 10: largest absolute elementwise deviation from ``reference``."""
    v = np.asarray(value, dtype=np.float64)
    r = np.asarray(reference, dtype=np.float64)
    if v.shape != r.shape:
        raise ValueError(f"shape mismatch: {v.shape} vs {r.shape}")
    return float(np.max(np.abs(v - r))) if v.size else 0.0


def mean_error(value: np.ndarray, reference: np.ndarray) -> float:
    """Mean absolute elementwise deviation from ``reference``."""
    v = np.asarray(value, dtype=np.float64)
    r = np.asarray(reference, dtype=np.float64)
    if v.shape != r.shape:
        raise ValueError(f"shape mismatch: {v.shape} vs {r.shape}")
    return float(np.mean(np.abs(v - r))) if v.size else 0.0


def gemm_relative_error_bound(
    k: int, mantissa_bits: int, accumulator_bits: int = 23
) -> float:
    """Worst-case relative forward error of a length-``k`` dot product.

    The classic componentwise bound (Higham, *Accuracy and Stability*,
    §3.5) for a GEMM whose inputs are represented to ``mantissa_bits``
    stored mantissa bits and whose partial sums round in an accumulator
    with ``accumulator_bits`` stored bits:

        |computed_ij - exact_ij|  <=  bound * (|A| |B|)_ij

    with ``bound = 2*u_in + u_in^2 + gamma_k(u_acc) * (1 + u_in)^2``,
    where ``u = 2^-(bits+1)`` is the unit roundoff and ``gamma_k = k*u /
    (1 - k*u)`` collects the ``k`` accumulator roundings.  The first
    terms charge the input representation (both operands), the gamma
    term the accumulation cadence.

    This is the *analytic* accuracy contract the serving router trades
    against the timing model: a kernel is eligible for a request iff its
    bound is at or below the request's ``max_rel_error`` SLO.  The bound
    is deliberately worst-case — measured Eq. 10 errors sit well below
    it — so routing decisions are safe, not merely typical.

    ``k <= 0`` (degenerate GEMM) returns 0.0: an empty reduction is
    exact.  A ``k`` large enough that ``k * u_acc >= 1`` returns ``inf``
    (the bound no longer certifies anything).
    """
    if k <= 0:
        return 0.0
    u_in = 2.0 ** -(mantissa_bits + 1)
    u_acc = 2.0 ** -(accumulator_bits + 1)
    ku = k * u_acc
    if ku >= 1.0:
        return float("inf")
    gamma = ku / (1.0 - ku)
    return 2.0 * u_in + u_in * u_in + gamma * (1.0 + u_in) ** 2


def error_ratio(value_error: float, baseline_error: float) -> float:
    """Ratio of two max errors (Appendix ``precision_test`` output).

    Returns ``nan`` when the baseline error is exactly zero, which only
    happens for degenerate inputs.
    """
    if baseline_error == 0.0:
        return float("nan")
    return value_error / baseline_error


@dataclass(frozen=True)
class ErrorReport:
    """Max/mean error of a result against a reference computation."""

    label: str
    max_error: float
    mean_error: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.label}: max={self.max_error:.8g} mean={self.mean_error:.8g}"


def compare_to_reference(label: str, value: np.ndarray, reference: np.ndarray) -> ErrorReport:
    """Bundle :func:`max_error` and :func:`mean_error` into a report."""
    return ErrorReport(label, max_error(value, reference), mean_error(value, reference))
