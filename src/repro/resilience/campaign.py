"""Fault-injection campaigns: measure what ABFT actually catches.

A campaign drives thousands of seeded single-bit flips through the
simulator's fault sites (:mod:`repro.resilience.faults`) while the GEMM
runs under ABFT protection (:mod:`repro.resilience.abft`), and accounts
for every outcome:

* **detected** — the checksum invariant fired; the protected result was
  repaired (single-element correction or recompute fallback);
* **masked** — the flip's perturbation is below the ABFT significance
  threshold *and* the delivered result is numerically clean (benign
  faults in the fault-injection literature — low-mantissa noise);
* **SDC** — silent data corruption: undetected *and* the delivered
  result is wrong.  The acceptance bar for the protected pipeline is
  **zero**.

The campaign also runs clean (fault-free) Figure 7/8-style sweeps to
measure the false-positive rate (must also be zero: a checksum scheme
that cries wolf on ordinary rounding is unusable), times the
protected-vs-unprotected overhead, and reports the register fault-
exposure surface of the two §5.2 allocation policies.

CLI::

    python -m repro faults [--quick] [--faults N] [--seed S] [--out F]

Exits non-zero when the campaign misses the acceptance bar (SDC > 0,
false positives > 0, detection < 99%).
"""

from __future__ import annotations

import argparse
import json
import time
from math import ceil
from pathlib import Path

import numpy as np

from ..emulation.gemm import EmulatedGemm
from ..emulation.schemes import get_scheme
from ..gpu.registers import egemm_stage_usage, fault_exposure
from ..gpu.spec import TESLA_T4
from ..kernels.registry import get_kernel
from ..obs.metrics import get_registry
from ..obs.tracing import get_tracer
from ..tensorize.kernel import run_functional
from .abft import AbftGemm, abft_run, checksum_tolerances
from .faults import FaultInjector, FaultSite
from .runner import ResilientRunner

__all__ = ["run_campaign", "main"]

#: (m, n, k) pools for accumulator-site trials
_SIZES_FULL = ((48, 48, 96), (64, 64, 64), (32, 48, 80))
_SIZES_QUICK = ((32, 32, 64), (48, 32, 48))

#: functional-path trial shape: augmented operands land exactly on the
#: default 32x32x16 block tiling (31+1 = 32)
_FUNCTIONAL_SHAPE = (31, 31, 32)

DETECTION_TARGET = 0.99


def _operands(rng: np.random.Generator, m: int, n: int, k: int):
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    return a, b


def _accumulator_campaign(faults: int, seed: int) -> dict:
    """Inject single-bit flips into the HMMA/chunk accumulators."""
    sizes = _SIZES_QUICK if faults <= 200 else _SIZES_FULL
    rng = np.random.default_rng(seed)
    gemm = EmulatedGemm()
    protected = AbftGemm(gemm=gemm)
    cases = []
    for m, n, k in sizes:
        a, b = _operands(rng, m, n, k)
        d0, _ = gemm.run(a, b)
        tol_row, _ = checksum_tolerances(a, b, tk=gemm.tk, terms=4)
        # One accumulator-hook call per stacked chunk-term of the
        # augmented (m+1, k) x (k, n+1) run.
        calls = ceil(k / gemm.tk) * gemm.scheme.compute_overhead
        cases.append((a, b, d0, float(tol_row.max()), calls))

    injector = FaultInjector(seed=seed, site=FaultSite.ACCUMULATOR, faults=1)
    counts = {"injected": 0, "detected": 0, "corrected": 0, "recomputed": 0,
              "masked": 0, "sdc": 0, "miscorrected": 0, "unrecovered": 0}
    with injector.installed():
        for t in range(faults):
            a, b, d0, thresh, calls = cases[t % len(cases)]
            injector.arm(skip=int(np.random.default_rng((seed, t)).integers(0, calls)))
            # Exponent-bit flips legitimately push values to Inf/NaN;
            # the resulting cast/arithmetic warnings are the fault model
            # working as intended, not numerical bugs.
            with np.errstate(invalid="ignore", over="ignore"):
                d, _, report = protected.run(a, b)
            injector.disarm()
            if injector.injected == 0:
                continue
            counts["injected"] += 1
            diff = float(np.abs(d.astype(np.float64) - d0.astype(np.float64)).max())
            clean = diff <= thresh
            if report.unrecovered:
                counts["unrecovered"] += 1
            elif report.detected:
                counts["detected"] += 1
                counts["recomputed"] += report.recomputes
                if clean:
                    counts["corrected"] += 1
                else:
                    counts["miscorrected"] += 1
            elif clean:
                counts["masked"] += 1
            else:
                counts["sdc"] += 1
    # Coverage over *significant* faults: a flip whose effect is below the
    # checksum tolerance is architecturally masked — no output-level
    # detector can (or needs to) see it.  Masked counts stay in the
    # report; they just don't dilute the coverage of faults that matter.
    significant = counts["injected"] - counts["masked"]
    counts["significant"] = significant
    counts["detection_rate"] = counts["detected"] / significant if significant else 1.0
    counts["events"] = len(injector.events)
    # First few events verbatim (with their span_id attribution) so the
    # JSON report supports post-mortems without re-running the campaign.
    counts["event_log"] = [e.as_dict() for e in injector.events[:20]]
    return counts


def _functional_campaign(trials: int, seed: int, site: FaultSite) -> dict:
    """Inject FRAG / shared-memory flips into the functional tiled path.

    An operand-register or shared-tile flip corrupts a whole tile
    row/column of the product — a multi-element signature ABFT cannot
    correct in place, exercising the recompute fallback.
    """
    m, n, k = _FUNCTIONAL_SHAPE
    site_id = list(FaultSite).index(site)
    rng = np.random.default_rng((seed, 100 + site_id))
    a, b = _operands(rng, m, n, k)
    d0 = run_functional(a, b).d
    tol_row, _ = checksum_tolerances(a, b, tk=8, terms=4)
    thresh = 2.0 * float(tol_row.max())
    # Eligible hook calls per protected run: every mma sees two operand
    # fragments ("frag"); every k-iteration stages four tiles ("shared").
    calls = 256 if site is FaultSite.FRAG else 8

    def gemm_fn(aa, bb, cc):
        return run_functional(aa, bb, cc).d

    injector = FaultInjector(seed=seed + 1, site=site, faults=1)
    counts = {"injected": 0, "detected": 0, "recovered": 0, "masked": 0,
              "sdc": 0, "unrecovered": 0}
    with injector.installed():
        for t in range(trials):
            injector.arm(skip=int(np.random.default_rng((seed, site_id, t)).integers(0, calls)))
            with np.errstate(invalid="ignore", over="ignore"):
                d, report = abft_run(gemm_fn, a, b, tk=8, terms=4)
            injector.disarm()
            if injector.injected == 0:
                continue
            counts["injected"] += 1
            diff = float(np.abs(d.astype(np.float64) - d0.astype(np.float64)).max())
            clean = diff <= thresh
            if report.unrecovered:
                counts["unrecovered"] += 1
            elif report.detected:
                counts["detected"] += 1
                if clean:
                    counts["recovered"] += 1
            elif clean:
                counts["masked"] += 1
            else:
                counts["sdc"] += 1
    significant = counts["injected"] - counts["masked"]
    counts["significant"] = significant
    counts["detection_rate"] = counts["detected"] / significant if significant else 1.0
    return counts


def _false_positive_sweeps(quick: bool, seed: int) -> dict:
    """Fault-free protected runs over Figure 7/8-style configurations.

    Every detection here is a false positive; the count must be zero.
    """
    rng = np.random.default_rng(seed)
    runs = 0
    false_positives = 0
    worst_ratio = 0.0

    # Figure 7 style: precision sweep of the emulated schemes.
    sizes7 = (96, 128) if quick else (128, 256, 384)
    for scheme_name in ("egemm-tc", "markidis"):
        protected = AbftGemm(gemm=EmulatedGemm(scheme=get_scheme(scheme_name)))
        for size in sizes7:
            a, b = _operands(rng, size, size, size)
            _, _, report = protected.run(a, b)
            runs += 1
            worst_ratio = max(worst_ratio, report.max_residual_ratio)
            false_positives += int(report.detected)

    # Figure 8 style: the timing-sweep kernels under AbftKernel.
    sizes8 = (64,) if quick else (64, 128)
    for name in ("cublas-cuda-fp32", "cublas-tc-emulation", "egemm-tc"):
        kernel = get_kernel(name, abft=True)
        for size in sizes8:
            a, b = _operands(rng, size, size, size)
            kernel.compute(a, b)
            runs += 1
            worst_ratio = max(worst_ratio, kernel.last_report.max_residual_ratio)
            false_positives += int(kernel.last_report.detected)

    return {"runs": runs, "false_positives": false_positives,
            "worst_residual_ratio": worst_ratio}


def _overhead(quick: bool, seed: int) -> dict:
    """Protected-vs-unprotected cost, measured and modelled."""
    size = 128 if quick else 256
    rng = np.random.default_rng(seed)
    a, b = _operands(rng, size, size, size)
    gemm = EmulatedGemm()
    protected = AbftGemm(gemm=gemm)

    def best_of(fn, reps=3):
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    plain_s = best_of(lambda: gemm.run(a, b))
    abft_s = best_of(lambda: protected.run(a, b))

    # Modelled overhead on the timing engine: the augmented launch.
    kernel = get_kernel("egemm-tc")
    modelled = get_kernel("egemm-tc", abft=True).time(size, size, size).seconds / kernel.time(
        size, size, size
    ).seconds
    return {
        "size": size,
        "unprotected_s": plain_s,
        "protected_s": abft_s,
        "measured_overhead": abft_s / plain_s if plain_s else float("nan"),
        "modelled_overhead": modelled,
    }


def _register_exposure() -> dict:
    """Bit-level soft-error surface of the two §5.2 allocation policies."""
    usage = egemm_stage_usage(64, 32, 8, 128, 128, 32)
    out = {}
    for policy in ("stage-reuse", "naive"):
        exp = fault_exposure(usage, TESLA_T4, policy)
        out[policy] = {
            "live_register_bits": exp.live_register_bits,
            "spilled_bits": exp.spilled_bits,
            "total_bits": exp.total_bits,
            "spill_fraction": exp.spill_fraction,
        }
    return out


def _runner_drill(seed: int) -> dict:
    """Exercise the resilient runner's escalation on hostile operands."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((48, 64)).astype(np.float32) * 1.0e6  # >> FP16_MAX
    b = rng.standard_normal((64, 48)).astype(np.float32)
    runner = ResilientRunner(abft=True)
    result = runner.run(a, b)
    ref = a.astype(np.float64) @ b.astype(np.float64)
    rel = float(np.abs(result.d - ref).max() / max(np.abs(ref).max(), 1e-30))
    return {
        "kernel": result.kernel,
        "escalation": result.escalation,
        "attempts": result.total_attempts,
        "finite": bool(np.isfinite(result.d).all()),
        "max_rel_error": rel,
    }


def run_campaign(
    faults: int = 1000, seed: int = 0, quick: bool = False, out: str | Path | None = None
) -> dict:
    """Run the full fault-injection campaign; returns (and saves) the report.

    Each campaign section runs inside a ``resilience.campaign.<site>``
    span and its wall-clock time is recorded in the report's ``timing``
    map — the per-site attribution that says where a slow campaign spent
    its minutes.  Fault events inside a section carry the active span id
    (see :class:`~repro.resilience.faults.FaultEvent`).
    """
    if quick:
        faults = min(faults, 120)
    functional_trials = 6 if quick else 25

    tracer = get_tracer()
    timing: dict[str, float] = {}

    def section(name: str, fn, *args) -> dict:
        with tracer.span(f"resilience.campaign.{name}", category="resilience") as span:
            t0 = time.perf_counter()
            result = fn(*args)
            elapsed = time.perf_counter() - t0
            span.set(seconds=elapsed)
        timing[name] = elapsed
        get_registry().observe("resilience.campaign.section_seconds", elapsed)
        return result

    report = {
        "seed": seed,
        "quick": quick,
        "accumulator": section("accumulator", _accumulator_campaign, faults, seed),
        "frag": section("frag", _functional_campaign, functional_trials, seed, FaultSite.FRAG),
        "shared": section(
            "shared", _functional_campaign, functional_trials, seed, FaultSite.SHARED
        ),
        "clean_sweeps": section("clean_sweeps", _false_positive_sweeps, quick, seed + 7),
        "overhead": section("overhead", _overhead, quick, seed + 11),
        "register_exposure": section("register_exposure", _register_exposure),
        "runner": section("runner", _runner_drill, seed + 13),
    }
    report["timing"] = timing
    sdc = sum(report[s]["sdc"] for s in ("accumulator", "frag", "shared"))
    unrecovered = sum(report[s]["unrecovered"] for s in ("accumulator", "frag", "shared"))
    report["summary"] = {
        "total_injected": sum(
            report[s]["injected"] for s in ("accumulator", "frag", "shared")
        ),
        "detection_rate": report["accumulator"]["detection_rate"],
        "sdc": sdc,
        "unrecovered": unrecovered,
        "false_positives": report["clean_sweeps"]["false_positives"],
        "pass": (
            sdc == 0
            and unrecovered == 0
            and report["accumulator"]["miscorrected"] == 0
            and report["clean_sweeps"]["false_positives"] == 0
            and report["accumulator"]["detection_rate"] >= DETECTION_TARGET
        ),
    }
    if out is not None:
        Path(out).write_text(json.dumps(report, indent=2, default=float))
    return report


def _print_summary(report: dict) -> None:
    acc, s = report["accumulator"], report["summary"]
    print("fault-injection campaign")
    print(f"  accumulator: {acc['injected']} faults "
          f"({acc['significant']} significant, {acc['masked']} masked), "
          f"{100 * acc['detection_rate']:.1f}% of significant detected, "
          f"{acc['sdc']} SDC, {acc['miscorrected']} miscorrected")
    for site in ("frag", "shared"):
        r = report[site]
        print(f"  {site:11s}: {r['injected']} faults "
              f"({r['significant']} significant, {r['masked']} masked), "
              f"{100 * r['detection_rate']:.1f}% of significant detected, "
              f"{r['sdc']} SDC")
    cs = report["clean_sweeps"]
    print(f"  clean sweeps: {cs['runs']} runs, {cs['false_positives']} false positives "
          f"(worst residual at {100 * cs['worst_residual_ratio']:.3g}% of threshold)")
    ov = report["overhead"]
    print(f"  overhead @ n={ov['size']}: {ov['measured_overhead']:.2f}x measured, "
          f"{ov['modelled_overhead']:.3f}x modelled")
    rn = report["runner"]
    print(f"  runner drill: kernel={rn['kernel']} escalation={rn['escalation']} "
          f"rel-err={rn['max_rel_error']:.2e}")
    t = report.get("timing", {})
    if t:
        total = sum(t.values())
        slowest = max(t, key=t.get)
        print(f"  timing: {total:.1f}s total, slowest section "
              f"{slowest} ({t[slowest]:.1f}s)")
    print(f"  verdict: {'PASS' if s['pass'] else 'FAIL'} "
          f"(SDC={s['sdc']}, unrecovered={s['unrecovered']}, "
          f"false positives={s['false_positives']})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro faults",
        description="seeded fault-injection campaign over the ABFT-protected pipeline",
    )
    parser.add_argument("--quick", action="store_true", help="small CI-sized campaign")
    parser.add_argument("--faults", type=int, default=1000, help="accumulator-site fault count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="FAULTS_campaign.json", help="JSON report path")
    parser.add_argument("--history", default="BENCH_history.jsonl", metavar="PATH",
                        help="benchmark-history JSONL to append this campaign to")
    parser.add_argument("--no-history", action="store_true",
                        help="skip appending to the benchmark history")
    args = parser.parse_args(argv)

    report = run_campaign(faults=args.faults, seed=args.seed, quick=args.quick, out=args.out)
    _print_summary(report)
    print(f"report written to {args.out}")
    if not args.no_history:
        from ..obs.benchtrack import append_record, make_record
        from ..obs.export import run_manifest

        summary = report["summary"]
        record = make_record(
            "faults",
            {
                "detection_rate": summary["detection_rate"],
                "sdc": summary["sdc"],
                "unrecovered": summary["unrecovered"],
                "false_positives": summary["false_positives"],
                "total_injected": summary["total_injected"],
                "measured_overhead": report["overhead"]["measured_overhead"],
                "modelled_overhead": report["overhead"]["modelled_overhead"],
                "pass": summary["pass"],
            },
            quick=bool(args.quick),
            manifest=run_manifest(seed=args.seed),
        )
        append_record(args.history, record)
        print(f"history: faults record appended to {args.history}")
    return 0 if report["summary"]["pass"] else 1
