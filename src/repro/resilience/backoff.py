"""One backoff implementation for every retry layer.

Both retry layers of the codebase — the per-kernel attempt loop of
:class:`~repro.resilience.runner.ResilientRunner` and the serve-level
batch retry of :mod:`repro.serve.recovery` — previously needed the same
capped exponential backoff, and the runner hard-coded its constants.
:class:`BackoffPolicy` is the shared, frozen description of that
schedule:

* attempt ``i`` (1-based retry index) waits
  ``min(base_s * multiplier**(i-1), cap_s)``;
* optional **deterministic jitter**: the delay is scaled by a factor
  drawn uniformly from ``[1 - jitter, 1 + jitter]`` using a generator
  seeded by ``(seed, key, attempt)`` — identical inputs always produce
  identical delays, so a seeded chaos campaign (or a replayed serving
  run) sees byte-identical retry timing while distinct requests still
  decorrelate (no thundering herd of synchronized retries).

Keys may be ints (request/batch ids) or strings (kernel names); strings
hash through CRC-32, not Python's salted ``hash()``, so jitter survives
interpreter restarts.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = ["BackoffPolicy"]


def _key_bits(key: object) -> int:
    """Stable 32-bit digest of a jitter key (int passthrough, CRC for str)."""
    if isinstance(key, (int, np.integer)) and not isinstance(key, bool):
        return int(key) & 0xFFFFFFFF
    return zlib.crc32(str(key).encode("utf-8"))


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with seeded, deterministic jitter."""

    #: delay of the first retry
    base_s: float = 0.05
    #: ceiling no delay exceeds (before jitter)
    cap_s: float = 1.0
    #: exponential growth factor between consecutive retries
    multiplier: float = 2.0
    #: retry budget consumers of the policy enforce (the policy itself
    #: only computes delays; :meth:`delay` works for any attempt index)
    max_retries: int = 2
    #: jitter half-width as a fraction of the delay (0 = deterministic
    #: schedule with no spread; must stay < 1 so delays remain positive)
    jitter: float = 0.0
    #: seeds the jitter draw together with ``key`` and the attempt index
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_s < 0.0 or self.cap_s < 0.0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, key: object = 0) -> float:
        """Delay before retry ``attempt`` (1-based); 0 for attempt < 1.

        ``key`` decorrelates jitter between independent retry streams
        (one request's schedule never depends on another's).
        """
        if attempt < 1:
            return 0.0
        raw = min(self.base_s * self.multiplier ** (attempt - 1), self.cap_s)
        if self.jitter > 0.0 and raw > 0.0:
            rng = np.random.default_rng((self.seed, _key_bits(key), attempt))
            raw *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return raw

    def schedule(self, key: object = 0) -> tuple[float, ...]:
        """The full delay schedule over the policy's retry budget."""
        return tuple(self.delay(i, key=key) for i in range(1, self.max_retries + 1))
