"""Resilient kernel execution: sanitize, escalate, retry, fall back.

The emulated kernels inherit fp16's narrow dynamic range: a round-split
of an operand whose magnitude exceeds ``FP16_MAX`` (65504) produces Inf
in the hi half, and magnitudes below fp16's subnormal floor vanish
entirely.  The experiment drivers sidestep this by sampling well-scaled
inputs; a *robust* front door cannot.  :class:`ResilientRunner` is that
front door:

1. **sanitize** — reject NaN/Inf operands up-front with a precise error
   instead of letting them surface as inscrutable checksum mismatches
   three layers down;
2. **escalate** — when finite operands exceed the fp16-safe range,
   switch the emulation strategy: exact power-of-two operand scaling
   (``np.ldexp``; bit-exact to within one final rounding) or the
   Ozaki-style per-row-exponent slicing of :mod:`repro.splits.ozaki`;
3. **retry / fall back** — drive a kernel chain (default
   ``egemm-tc -> markidis -> cublas-cuda-fp32``) with bounded
   exponential backoff between attempts and a per-stage wall-clock
   timeout, optionally wrapping each attempt in ABFT protection
   (:mod:`repro.resilience.abft`).

Every attempt is recorded; :class:`RunnerResult` carries the full
provenance of how a result was obtained.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..kernels.registry import get_kernel
from ..obs.metrics import get_registry
from ..obs.tracing import get_tracer
from ..splits.ozaki import ozaki_gemm
from .backoff import BackoffPolicy

__all__ = [
    "ResilienceError",
    "InputValidationError",
    "StageTimeoutError",
    "ExhaustedFallbacksError",
    "FP16_MAX",
    "FP16_TINY",
    "SPLIT_SUBNORMAL_THRESHOLD",
    "OperandHealth",
    "assess_operand",
    "call_with_timeout",
    "Attempt",
    "RunnerResult",
    "ResilientRunner",
]

#: largest finite fp16 magnitude — operands beyond this overflow the split
FP16_MAX = 65504.0
#: smallest fp16 subnormal — magnitudes below this vanish in the split
FP16_TINY = 2.0**-24
#: escalation target: bring max |x| near 2^11 so hi*hi products sit
#: comfortably inside fp16 range (matches the scaled-split design point)
_SCALE_TARGET_EXP = 11
#: elements below this magnitude put the split's lo part on fp16's
#: subnormal grid, turning its representation error from relative
#: (u_in * |x|) into an *absolute* floor (eta = eta/u_in * u_in; see
#: repro.fp.error.split_subnormal_floor) — the hazard behind the
#: wide-exponent bound violations the accuracy verifier surfaced
SPLIT_SUBNORMAL_THRESHOLD = 2.0**-3


class ResilienceError(RuntimeError):
    """Base class for resilient-runner failures."""


class InputValidationError(ResilienceError, ValueError):
    """Operands failed sanitization (non-finite values)."""


class StageTimeoutError(ResilienceError):
    """A pipeline stage exceeded its wall-clock budget."""


class ExhaustedFallbacksError(ResilienceError):
    """Every kernel in the fallback chain failed."""


@dataclass(frozen=True)
class OperandHealth:
    """Range/finiteness diagnosis of one operand matrix."""

    finite: bool
    nonfinite_count: int
    max_abs: float
    min_nonzero: float  # 0.0 when the operand is all zeros
    overflow: bool  # exceeds fp16 range
    underflow: bool  # nonzero magnitudes below the fp16 subnormal floor

    @property
    def needs_escalation(self) -> bool:
        return self.overflow or self.underflow

    @property
    def subnormal_risk(self) -> bool:
        """Some lo parts would land on fp16's subnormal grid, *and* the
        pow2 conditioning of ``_scaled_compute`` can lift them off it
        (``max_abs`` has headroom below the 2^11 scale target — scaling
        such an operand up multiplies ``min_nonzero`` by the same exact
        power of two, shrinking or eliminating the absolute error floor).
        """
        return (
            0.0 < self.min_nonzero < SPLIT_SUBNORMAL_THRESHOLD
            and self.max_abs < 2.0**_SCALE_TARGET_EXP
        )


def assess_operand(x: np.ndarray) -> OperandHealth:
    """Diagnose an operand's fp16-representability without mutating it."""
    x64 = np.abs(np.asarray(x, dtype=np.float64))
    finite_mask = np.isfinite(x64)
    nonfinite = int(x64.size - np.count_nonzero(finite_mask))
    finite_vals = x64[finite_mask] if nonfinite else x64
    max_abs = float(finite_vals.max(initial=0.0))
    nonzero = finite_vals[finite_vals > 0.0]
    min_nonzero = float(nonzero.min(initial=np.inf)) if nonzero.size else 0.0
    if not np.isfinite(min_nonzero):
        min_nonzero = 0.0
    return OperandHealth(
        finite=nonfinite == 0,
        nonfinite_count=nonfinite,
        max_abs=max_abs,
        min_nonzero=min_nonzero,
        overflow=max_abs > FP16_MAX,
        underflow=0.0 < min_nonzero < FP16_TINY,
    )


def call_with_timeout(fn: Callable, timeout_s: float | None, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` with a wall-clock bound.

    Uses a single-worker thread; a stage that overruns raises
    :class:`StageTimeoutError` (the worker thread is abandoned — pure
    NumPy stages cannot be interrupted, but the caller regains control,
    which is what the sweep scheduler needs).
    """
    if timeout_s is None:
        return fn(*args, **kwargs)
    with ThreadPoolExecutor(max_workers=1) as pool:
        future = pool.submit(fn, *args, **kwargs)
        try:
            return future.result(timeout=timeout_s)
        except FutureTimeoutError:
            future.cancel()
            raise StageTimeoutError(
                f"stage exceeded its {timeout_s:g}s wall-clock budget"
            ) from None


@dataclass
class Attempt:
    """Record of one kernel attempt in the fallback chain."""

    kernel: str
    attempt: int
    escalation: str  # "none" | "scaled" | "ozaki"
    ok: bool
    error: str | None = None
    abft_kind: str | None = None
    abft_recomputes: int = 0
    backoff_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "attempt": self.attempt,
            "escalation": self.escalation,
            "ok": self.ok,
            "error": self.error,
            "abft_kind": self.abft_kind,
            "abft_recomputes": self.abft_recomputes,
            "backoff_s": self.backoff_s,
        }


@dataclass
class RunnerResult:
    """A computed product plus the provenance of how it was obtained."""

    d: np.ndarray
    kernel: str
    escalation: str
    attempts: list[Attempt] = field(default_factory=list)

    @property
    def total_attempts(self) -> int:
        return len(self.attempts)

    @property
    def fell_back(self) -> bool:
        return any(att.kernel != self.kernel for att in self.attempts)


def _scaled_compute(
    compute: Callable, a: np.ndarray, b: np.ndarray, c: np.ndarray | None
) -> np.ndarray:
    """Run ``compute`` on power-of-two-rescaled operands (escalation='scaled').

    Scaling by 2^-e is exact in binary floating point (``np.ldexp``), so
    the only extra rounding is the final product rescale.  ``c`` is added
    afterwards in fp32 — folding it into the scaled launch would require
    scaling it by the *product* of both exponents and can itself overflow.
    """

    def exponent(x: np.ndarray) -> int:
        m = float(np.abs(x[np.isfinite(x)]).max(initial=0.0))
        if m == 0.0:
            return 0
        return int(np.floor(np.log2(m))) - _SCALE_TARGET_EXP

    ea, eb = exponent(a), exponent(b)
    a_s = np.ldexp(np.asarray(a, dtype=np.float32), -ea)
    b_s = np.ldexp(np.asarray(b, dtype=np.float32), -eb)
    d = np.asarray(compute(a_s, b_s, None), dtype=np.float32)
    d = np.ldexp(d, ea + eb)
    if c is not None:
        d = (d.astype(np.float64) + np.asarray(c, dtype=np.float64)).astype(np.float32)
    return d


@dataclass
class ResilientRunner:
    """Sanitizing, escalating, retrying front door over the kernel registry.

    Parameters
    ----------
    chain:
        Kernel names tried in order; later entries are progressively more
        conservative (the chain's tail should be the fp32 CUDA-core
        kernel, which has no fp16 range hazard at all).
    escalation:
        Strategy for finite-but-out-of-fp16-range operands: ``"scaled"``
        (exact power-of-two rescaling), ``"ozaki"`` (per-row-exponent
        slicing — also repairs *underflow*), or ``"none"``.
    abft:
        Wrap every attempt in checksum protection; a detected
        uncorrectable fault counts as a failed attempt and advances the
        retry/fallback machinery.
    attempts_per_kernel / backoff:
        Attempt ``i`` of a kernel sleeps ``backoff.delay(i - 1)`` first
        (see :class:`~repro.resilience.backoff.BackoffPolicy`).  When
        ``backoff`` is None a policy is built from the legacy
        ``backoff_s``/``backoff_cap_s`` fields, reproducing the original
        ``min(backoff_s * 2**(i-2), backoff_cap_s)`` schedule exactly.
    stage_timeout_s:
        Per-attempt wall-clock budget (None = unbounded).
    sleep:
        Injectable sleep for tests.
    """

    chain: Sequence[str] = ("egemm-tc", "markidis", "cublas-cuda-fp32")
    escalation: str = "scaled"
    abft: bool = False
    attempts_per_kernel: int = 2
    backoff_s: float = 0.05
    backoff_cap_s: float = 1.0
    backoff: BackoffPolicy | None = None
    stage_timeout_s: float | None = None
    validate_output: bool = True
    sleep: Callable[[float], None] = time.sleep
    #: per-runner kernel instance cache — ``get_kernel`` constructs a
    #: fresh kernel object per call, which a reused runner amortizes away
    _kernels: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.escalation not in ("scaled", "ozaki", "none"):
            raise ValueError(f"unknown escalation strategy {self.escalation!r}")
        if not self.chain:
            raise ValueError("fallback chain must name at least one kernel")
        if self.backoff is None:
            self.backoff = BackoffPolicy(
                base_s=self.backoff_s,
                cap_s=self.backoff_cap_s,
                max_retries=max(self.attempts_per_kernel - 1, 0),
            )

    # -- sanitization ---------------------------------------------------
    def sanitize(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None
    ) -> tuple[OperandHealth, OperandHealth]:
        ha, hb = assess_operand(a), assess_operand(b)
        bad = [
            f"{name} has {h.nonfinite_count} non-finite element(s)"
            for name, h in (("A", ha), ("B", hb))
            if not h.finite
        ]
        if c is not None and not assess_operand(c).finite:
            bad.append("C has non-finite element(s)")
        if bad:
            raise InputValidationError(
                "; ".join(bad) + " — refusing to launch (NaN/Inf would "
                "propagate through the split and poison the product)"
            )
        return ha, hb

    # -- escalation -----------------------------------------------------
    def _pick_escalation(self, kernel, ha: OperandHealth, hb: OperandHealth) -> str:
        if self.escalation == "none":
            return "none"
        if kernel.info.precision == "single":
            return "none"  # fp32 CUDA-core path has no fp16 range hazard
        if ha.needs_escalation or hb.needs_escalation:
            return self.escalation
        # Escalating on subnormal *risk* (vs. hard under/overflow) is a
        # soundness measure, not a range repair: conditioning is exact,
        # so triggering it for operands that would merely pay the
        # fp16-subnormal error floor tightens the certificate for free.
        if ha.subnormal_risk or hb.subnormal_risk:
            return self.escalation
        return "none"

    def _attempt_compute(
        self,
        kernel,
        escalation: str,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None,
    ) -> tuple[np.ndarray, str | None, int]:
        """One protected attempt; returns (d, abft_kind, abft_recomputes)."""

        if escalation == "ozaki":
            base = lambda aa, bb, cc: ozaki_gemm(aa, bb, cc)  # noqa: E731
        elif escalation == "scaled":
            base = lambda aa, bb, cc: _scaled_compute(kernel.compute, aa, bb, cc)  # noqa: E731
        else:
            base = kernel.compute

        if not self.abft:
            return np.asarray(base(a, b, c), dtype=np.float32), None, 0

        # ABFT checksum rows are ~k-fold larger than the data; under the
        # 'scaled'/'ozaki' strategies the escalated arithmetic absorbs
        # that, and the augmented operands flow through the same `base`.
        from .abft import AbftError, abft_run

        gemm = getattr(kernel, "_gemm", None)
        scheme = getattr(kernel, "scheme", None)
        if scheme is None and gemm is not None:
            scheme = gemm.scheme
        if escalation == "ozaki" or scheme is None:
            tk, terms, unit = 1, 1, 2.0**-24
        elif scheme.split is not None:
            tk = gemm.tk if gemm is not None else 16
            terms, unit = scheme.compute_overhead, 2.0 ** -(scheme.effective_mantissa_bits + 1)
        else:
            tk = gemm.tk if gemm is not None else 16
            terms, unit = 1, 2.0 ** -(scheme.effective_mantissa_bits + 1)
        d, report = abft_run(
            base,
            a,
            b,
            c,
            tk=tk,
            terms=terms,
            unit_roundoff=unit,
            raise_on_unrecovered=True,
        )
        return d, report.kind, report.recomputes

    # -- driver ---------------------------------------------------------
    def run(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None
    ) -> RunnerResult:
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        ha, hb = self.sanitize(a, b, c)

        tracer = get_tracer()
        registry = get_registry()
        attempts: list[Attempt] = []
        last_error: BaseException | None = None
        for name in self.chain:
            kernel = self._kernels.get(name)
            if kernel is None:
                kernel = get_kernel(name)
                self._kernels[name] = kernel
            escalation = self._pick_escalation(kernel, ha, hb)
            for i in range(1, self.attempts_per_kernel + 1):
                backoff = 0.0
                if i > 1:
                    backoff = self.backoff.delay(i - 1, key=name)
                    self.sleep(backoff)
                record = Attempt(
                    kernel=name, attempt=i, escalation=escalation, ok=False, backoff_s=backoff
                )
                attempts.append(record)
                with tracer.span(
                    "resilience.attempt", category="resilience",
                    kernel=name, attempt=i, escalation=escalation,
                ) as span:
                    registry.inc("resilience.runner.attempts")
                    try:
                        d, kind, recomputes = call_with_timeout(
                            self._attempt_compute, self.stage_timeout_s, kernel, escalation, a, b, c
                        )
                        record.abft_kind = kind
                        record.abft_recomputes = recomputes
                        if self.validate_output and not np.isfinite(d).all():
                            raise ResilienceError(
                                f"kernel {name!r} produced non-finite output "
                                f"(escalation={escalation!r})"
                            )
                    except InputValidationError:
                        raise
                    except Exception as exc:  # noqa: BLE001 - each failure advances the chain
                        record.error = f"{type(exc).__name__}: {exc}"
                        last_error = exc
                        span.set(ok=False, error=record.error)
                        registry.inc("resilience.runner.failed_attempts")
                        continue
                    record.ok = True
                    span.set(ok=True)
                registry.inc("resilience.runner.successes")
                return RunnerResult(d=d, kernel=name, escalation=escalation, attempts=attempts)
        raise ExhaustedFallbacksError(
            f"all kernels failed ({' -> '.join(self.chain)}); "
            f"last error: {last_error}"
        ) from last_error
