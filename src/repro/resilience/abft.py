"""Algorithm-based fault tolerance for the emulated GEMM (Huang & Abraham).

The classic ABFT construction composes exactly with Algorithm 1's k-chunk
accumulation: augment ``A`` with a checksum **row** (column sums) and
``B`` with a checksum **column** (row sums), run the *same* emulated GEMM
over the augmented operands, and the product arrives carrying its own
checksums::

    [ A ]           [ A@B      A@B@e ]
    [e'A] @ [B Be] = [e'A@B   e'A@B@e]     (e = ones vector)

Row ``i`` of the data block must sum to the checksum column entry ``i``
and column ``j`` to the checksum row entry ``j`` — up to the emulation's
*numerical* error, for which this module derives a per-row/per-column
tolerance from operand magnitudes (|A| and |B| row/column sums — two
mat-vec products, O(N²) against the GEMM's O(N³)).

A violated invariant localizes the fault: one bad row *and* one bad
column intersect at a single corrupted element, which is **corrected**
from the row checksum (the correction is cross-validated against the
column checksum before being accepted); a bad row or column alone means
the corruption sits in a checksum entry and the data block is intact;
anything else (multi-element corruption, e.g. a flipped FRAG operand
bit that poisons a whole tile row) triggers the **recompute fallback**.

This is the same guarantee mechanism the Ozaki-scheme literature uses to
certify DGEMM on reduced-precision tensor cores (Schwarz et al.,
PAPERS.md); here it certifies the simulated pipeline against the fault
campaigns of :mod:`repro.resilience.faults`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Callable

import numpy as np

from ..emulation.gemm import EmulatedGemm, GemmStats
from ..gpu.engine import KernelTiming
from ..gpu.spec import TESLA_T4, GpuSpec
from ..kernels.base import GemmKernel, KernelInfo

__all__ = [
    "AbftError",
    "AbftReport",
    "augment_operands",
    "checksum_tolerances",
    "abft_run",
    "AbftGemm",
    "AbftKernel",
]

#: default safety factor over the analytic error bound — wide enough that
#: clean Figure 7/8-class sweeps never false-positive (validated in
#: tests/test_resilience.py), tight enough to catch upper-mantissa flips
DEFAULT_TOL_FACTOR = 16.0


class AbftError(RuntimeError):
    """Raised when a detected fault survives correction and recompute."""


@dataclass
class AbftReport:
    """Outcome of one ABFT-protected GEMM execution."""

    detected: bool = False
    #: "clean" | "data" | "row-checksum" | "col-checksum" | "corner" | "multi"
    kind: str = "clean"
    #: (row, col) of a located single-element data fault
    location: tuple[int, int] | None = None
    corrected: bool = False
    recomputes: int = 0
    unrecovered: bool = False
    #: max |row/col discrepancy| / tolerance observed before any repair
    #: (< 1.0 on a clean run; diagnosing threshold margins)
    max_residual_ratio: float = 0.0

    def as_dict(self) -> dict:
        return {
            "detected": self.detected,
            "kind": self.kind,
            "location": list(self.location) if self.location else None,
            "corrected": self.corrected,
            "recomputes": self.recomputes,
            "unrecovered": self.unrecovered,
            "max_residual_ratio": self.max_residual_ratio,
        }


def augment_operands(
    a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Append the checksum row to A, column to B (and both to C).

    Checksums are accumulated in float64 and stored in float32 — the
    rounding of the stored checksum is part of the verified error budget.
    """
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    a_aug = np.vstack([a32, a32.sum(axis=0, dtype=np.float64).astype(np.float32)[None, :]])
    b_aug = np.hstack([b32, b32.sum(axis=1, dtype=np.float64).astype(np.float32)[:, None]])
    c_aug = None
    if c is not None:
        c32 = np.asarray(c, dtype=np.float32)
        col = c32.sum(axis=1, dtype=np.float64)
        row = c32.sum(axis=0, dtype=np.float64)
        c_aug = np.zeros((c32.shape[0] + 1, c32.shape[1] + 1), dtype=np.float32)
        c_aug[:-1, :-1] = c32
        c_aug[:-1, -1] = col.astype(np.float32)
        c_aug[-1, :-1] = row.astype(np.float32)
        c_aug[-1, -1] = np.float32(c32.sum(dtype=np.float64))
    return a_aug, b_aug, c_aug


def checksum_tolerances(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    tk: int = 16,
    terms: int = 4,
    unit_roundoff: float = 2.0**-22,
    tol_factor: float = DEFAULT_TOL_FACTOR,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row / per-column absolute detection thresholds.

    The emulated product's per-element error is bounded by
    ``u_e * sum_k |a_ik||b_kj|`` with ``u_e`` covering the split residual
    (``unit_roundoff``, from the scheme's effective mantissa) plus one
    fp32 rounding per chunk-term (``terms * ceil(k/tk) * 2^-24``).
    Summing the bound along a row gives ``u_e * S_row`` with
    ``S_row = |A| @ rowsum(|B|)`` — an O(mk) mat-vec, not a matmul.  The
    checksum entry obeys the same bound, so the row discrepancy of a
    clean run is below ``2 * u_e * S_row``; ``tol_factor`` adds the
    safety margin.
    """
    a64 = np.abs(np.asarray(a, dtype=np.float64))
    b64 = np.abs(np.asarray(b, dtype=np.float64))
    k = a64.shape[1]
    chunks = max(ceil(k / max(tk, 1)), 1)
    u_e = unit_roundoff + terms * chunks * 2.0**-24 + 2.0**-23
    s_row = a64 @ b64.sum(axis=1)
    s_col = a64.sum(axis=0) @ b64
    if c is not None:
        c64 = np.abs(np.asarray(c, dtype=np.float64))
        s_row = s_row + c64.sum(axis=1)
        s_col = s_col + c64.sum(axis=0)
    tiny = np.finfo(np.float32).tiny
    tol_row = tol_factor * 2.0 * u_e * s_row + tiny
    tol_col = tol_factor * 2.0 * u_e * s_col + tiny
    return tol_row, tol_col


@dataclass
class _Check:
    """Invariant evaluation of one augmented product."""

    bad_rows: np.ndarray
    bad_cols: np.ndarray
    rdiff: np.ndarray
    cdiff: np.ndarray
    corner_bad: bool
    max_ratio: float


def _verify(d_aug: np.ndarray, tol_row: np.ndarray, tol_col: np.ndarray) -> _Check:
    m, n = d_aug.shape[0] - 1, d_aug.shape[1] - 1
    with np.errstate(invalid="ignore", over="ignore"):
        d = d_aug[:m, :n].astype(np.float64)
        rdiff = d.sum(axis=1) - d_aug[:m, n].astype(np.float64)
        cdiff = d.sum(axis=0) - d_aug[m, :n].astype(np.float64)
        bad_rows = np.flatnonzero(~np.isfinite(rdiff) | (np.abs(rdiff) > tol_row))
        bad_cols = np.flatnonzero(~np.isfinite(cdiff) | (np.abs(cdiff) > tol_col))
        corner = d_aug[m, :n].astype(np.float64).sum() - float(d_aug[m, n])
        corner_bad = bool(~np.isfinite(corner) or abs(corner) > tol_row.sum() + tol_col.sum())
        finite_r = np.abs(rdiff[np.isfinite(rdiff)])
        ratios = finite_r / tol_row[np.isfinite(rdiff)] if finite_r.size else np.zeros(1)
        max_ratio = float(ratios.max()) if ratios.size else 0.0
        if bad_rows.size and not np.all(np.isfinite(rdiff)):
            max_ratio = float("inf")
    return _Check(bad_rows, bad_cols, rdiff, cdiff, corner_bad, max_ratio)


def _correct_single(
    d_aug: np.ndarray, i: int, j: int, check: _Check, tol_row: np.ndarray, tol_col: np.ndarray
) -> bool:
    """Correct data element (i, j) from the row checksum, cross-validated.

    Returns True when the corrected value also satisfies the column
    invariant (a mislocated or multi-element fault fails this and falls
    through to recompute).
    """
    m, n = d_aug.shape[0] - 1, d_aug.shape[1] - 1
    with np.errstate(invalid="ignore", over="ignore"):
        row = d_aug[i, :n].astype(np.float64).copy()
        row[j] = 0.0
        corrected = float(d_aug[i, n]) - row.sum()
        col = d_aug[:m, j].astype(np.float64).copy()
        col[i] = 0.0
        col_residual = col.sum() + corrected - float(d_aug[m, j])
    if not np.isfinite(corrected) or abs(col_residual) > tol_col[j]:
        return False
    d_aug[i, j] = np.float32(corrected)
    return True


def abft_run(
    gemm_fn: Callable[[np.ndarray, np.ndarray, np.ndarray | None], np.ndarray],
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    tk: int = 16,
    terms: int = 4,
    unit_roundoff: float = 2.0**-22,
    tol_factor: float = DEFAULT_TOL_FACTOR,
    max_recomputes: int = 1,
    raise_on_unrecovered: bool = False,
) -> tuple[np.ndarray, AbftReport]:
    """Run ``gemm_fn`` under ABFT protection; return (data block, report).

    ``gemm_fn(a_aug, b_aug, c_aug) -> d_aug`` is any GEMM backend —
    the emulated driver, a kernel's ``compute``, or the functional tiled
    executor.  The returned data block is bit-identical to the
    unprotected result on a fault-free run (the augmented row/column do
    not perturb the data block's arithmetic).
    """
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    a_aug, b_aug, c_aug = augment_operands(a32, b32, c)
    tol_row, tol_col = checksum_tolerances(
        a32, b32, c, tk=tk, terms=terms, unit_roundoff=unit_roundoff, tol_factor=tol_factor
    )
    # The checksum row/column have their own invariant contributions:
    # extend the row tolerances with the checksum row's bound and vice
    # versa (their magnitudes are the operand sums already in S).
    report = AbftReport()
    d_aug = np.asarray(gemm_fn(a_aug, b_aug, c_aug), dtype=np.float32)

    for _ in range(max_recomputes + 1):
        check = _verify(d_aug, tol_row, tol_col)
        report.max_residual_ratio = max(report.max_residual_ratio, check.max_ratio)
        nr, nc = check.bad_rows.size, check.bad_cols.size
        if nr == 0 and nc == 0 and not check.corner_bad:
            break
        report.detected = True
        if nr == 1 and nc == 1:
            i, j = int(check.bad_rows[0]), int(check.bad_cols[0])
            report.kind = "data"
            report.location = (i, j)
            if _correct_single(d_aug, i, j, check, tol_row, tol_col):
                report.corrected = True
                break
        elif nr == 1 and nc == 0:
            # Row checksum entry corrupted; the data block is intact.
            i = int(check.bad_rows[0])
            report.kind = "row-checksum"
            report.location = (i, d_aug.shape[1] - 1)
            d_aug[i, -1] = np.float32(d_aug[i, :-1].astype(np.float64).sum())
            report.corrected = True
            break
        elif nr == 0 and nc == 1:
            j = int(check.bad_cols[0])
            report.kind = "col-checksum"
            report.location = (d_aug.shape[0] - 1, j)
            d_aug[-1, j] = np.float32(d_aug[:-1, j].astype(np.float64).sum())
            report.corrected = True
            break
        elif nr == 0 and nc == 0:
            report.kind = "corner"
            report.location = (d_aug.shape[0] - 1, d_aug.shape[1] - 1)
            d_aug[-1, -1] = np.float32(d_aug[-1, :-1].astype(np.float64).sum())
            report.corrected = True
            break
        else:
            report.kind = "multi"
        # Located-but-uncorrectable or multi-element: recompute fallback.
        if report.recomputes >= max_recomputes:
            report.unrecovered = True
            break
        report.recomputes += 1
        d_aug = np.asarray(gemm_fn(a_aug, b_aug, c_aug), dtype=np.float32)
        if report.recomputes > 0 and report.kind == "multi":
            report.corrected = True  # provisional; re-verified by the loop

    if report.unrecovered and raise_on_unrecovered:
        raise AbftError(
            f"checksum invariant still violated after {report.recomputes} recompute(s): "
            f"{report.kind} fault"
        )
    if report.unrecovered:
        report.corrected = False
    return d_aug[:-1, :-1].copy(), report


@dataclass
class AbftGemm:
    """ABFT-protected :class:`~repro.emulation.gemm.EmulatedGemm` wrapper.

    Opt-in: construct with any configured ``EmulatedGemm`` and call
    :meth:`run` in its place.  Tolerances adapt to the wrapped scheme's
    effective mantissa and chunk length.
    """

    gemm: EmulatedGemm = field(default_factory=EmulatedGemm)
    tol_factor: float = DEFAULT_TOL_FACTOR
    max_recomputes: int = 1
    raise_on_unrecovered: bool = False

    def run(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None
    ) -> tuple[np.ndarray, GemmStats, AbftReport]:
        stats_box: list[GemmStats] = []

        def fn(aa: np.ndarray, bb: np.ndarray, cc: np.ndarray | None) -> np.ndarray:
            d, stats = self.gemm.run(aa, bb, cc)
            stats_box.append(stats)
            return d

        scheme = self.gemm.scheme
        d, report = abft_run(
            fn,
            a,
            b,
            c,
            tk=self.gemm.tk,
            terms=scheme.compute_overhead if scheme.split is not None else 1,
            unit_roundoff=2.0 ** -(scheme.effective_mantissa_bits + 1),
            tol_factor=self.tol_factor,
            max_recomputes=self.max_recomputes,
            raise_on_unrecovered=self.raise_on_unrecovered,
        )
        return d, stats_box[-1], report

    def __call__(self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
        d, _, _ = self.run(a, b, c)
        return d


class AbftKernel(GemmKernel):
    """ABFT protection over any :class:`~repro.kernels.base.GemmKernel`.

    ``compute`` runs the wrapped kernel on checksum-augmented operands
    and verifies/repairs the invariant (:attr:`last_report` holds the
    outcome); ``time`` reports the augmented (m+1, n+1, k) launch, making
    the protection overhead visible to the timing experiments.
    """

    def __init__(
        self,
        kernel: GemmKernel,
        tol_factor: float = DEFAULT_TOL_FACTOR,
        max_recomputes: int = 1,
        raise_on_unrecovered: bool = False,
    ) -> None:
        self.kernel = kernel
        self.tol_factor = tol_factor
        self.max_recomputes = max_recomputes
        self.raise_on_unrecovered = raise_on_unrecovered
        self.last_report: AbftReport | None = None
        inner = kernel.info
        self.info = KernelInfo(
            name=f"ABFT-{inner.name}",
            source=inner.source,
            precision=inner.precision,
            description=f"{inner.description} + checksum-row/column fault tolerance",
        )

    def _numerics(self) -> tuple[int, int, float]:
        """(tk, terms, unit_roundoff) of the wrapped kernel's arithmetic."""
        gemm = getattr(self.kernel, "_gemm", None)
        scheme = getattr(self.kernel, "scheme", None)
        if scheme is None and gemm is not None:
            scheme = gemm.scheme
        tk = gemm.tk if gemm is not None else 1
        if scheme is not None and scheme.split is not None:
            return tk, scheme.compute_overhead, 2.0 ** -(scheme.effective_mantissa_bits + 1)
        if scheme is not None:  # half-precision scheme (no split)
            return tk, 1, 2.0 ** -(scheme.effective_mantissa_bits + 1)
        # fp32 CUDA-core kernels: one fp32 rounding per k step.
        return 1, 1, 2.0**-24

    def compute(self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
        tk, terms, unit = self._numerics()
        d, report = abft_run(
            self.kernel.compute,
            a,
            b,
            c,
            tk=tk,
            terms=terms,
            unit_roundoff=unit,
            tol_factor=self.tol_factor,
            max_recomputes=self.max_recomputes,
            raise_on_unrecovered=self.raise_on_unrecovered,
        )
        self.last_report = report
        return d

    def time(self, m: int, n: int, k: int, spec: GpuSpec = TESLA_T4) -> KernelTiming:
        timing = self.kernel.time(m + 1, n + 1, k, spec)
        timing.name = self.info.name
        return timing
