"""Seeded fault injection into the simulated execution pipeline.

The simulator exposes three hookable fault sites, matching the places a
real Tensor Core pipeline holds transient state:

* ``accumulator`` — the fp32 HMMA accumulator, after each primitive's
  single rounding (:mod:`repro.tensorcore.mma` results and the k-chunk
  accumulator of :class:`repro.emulation.gemm.EmulatedGemm`);
* ``frag`` — fp16 operand fragments, the register-resident tiles a warp
  stages before an HMMA call (:class:`repro.tensorcore.fragment.Fragment`
  loads and the operands of :func:`repro.tensorcore.mma.mma`);
* ``shared`` — shared-memory tiles staged by
  :class:`repro.gpu.memory.SharedMemory`.

Each hooked module carries a ``FAULT_HOOK`` module global that is
``None`` in normal operation (a single ``is None`` check on the hot
path).  :meth:`FaultInjector.installed` installs the injector into every
site for the duration of a ``with`` block and restores the previous
hooks on exit, so campaigns cannot leak corruption into later runs.

Faults are *single bit flips*: one randomly selected element of the
array flowing through the site has one randomly selected bit inverted.
Everything is driven by one seeded :class:`numpy.random.Generator`, so a
campaign is reproducible from its seed, and every injection is logged as
a :class:`FaultEvent` (site, call index, flat element index, bit,
before/after values) for post-mortem analysis.

Default bit ranges target the *significant* upper bits (high mantissa,
exponent, sign).  Flips in the low mantissa produce perturbations below
the ABFT significance threshold — they are numerically benign ("masked"
in the fault-injection literature) and campaigns report them separately
rather than letting them dilute detection statistics.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import get_registry
from ..obs.tracing import current_span_id

__all__ = [
    "FaultSite",
    "FaultEvent",
    "FaultInjector",
    "flip_bit",
    "FleetSite",
    "FLEET_FAULT_KINDS",
    "FleetFaultEvent",
]

#: default bit windows (lo inclusive, hi exclusive) per storage width —
#: upper mantissa + exponent + sign, the architecturally significant bits
DEFAULT_BIT_RANGE_32 = (16, 32)
DEFAULT_BIT_RANGE_16 = (8, 16)

_UINT_FOR = {2: np.uint16, 4: np.uint32, 8: np.uint64}


class FaultSite(enum.Enum):
    """A hookable state-holding location in the simulated pipeline."""

    ACCUMULATOR = "accumulator"
    FRAG = "frag"
    SHARED = "shared"


class FleetSite(enum.Enum):
    """A fault site in the simulated serving *fleet* (vs. one kernel).

    The bit-flip sites above corrupt data inside a single GEMM launch;
    fleet sites model infrastructure failures of the serving layer:

    * ``device`` — a whole simulated accelerator crashes (its queue is
      drained back onto the fleet) or restarts;
    * ``worker`` — a device stalls (straggler): in-flight and queued
      work is delayed by the stall duration but not lost;
    * ``queue`` — a queue-capacity storm: every device's bounded queue
      collapses to a reduced capacity for a window, forcing
      backpressure;
    * ``launch`` — a batch launch fails at dispatch time with some
      probability inside a window (the seeded analogue of a transient
      launch error).
    """

    DEVICE = "device"
    WORKER = "worker"
    QUEUE = "queue"
    LAUNCH = "launch"


#: every fleet fault kind the service's chaos handler understands,
#: mapped to the :class:`FleetSite` it exercises
FLEET_FAULT_KINDS = {
    "device_crash": FleetSite.DEVICE,
    "queued_crash": FleetSite.DEVICE,
    "device_restart": FleetSite.DEVICE,
    "device_stall": FleetSite.WORKER,
    "exec_stall": FleetSite.WORKER,
    "queue_storm": FleetSite.QUEUE,
    "queue_storm_end": FleetSite.QUEUE,
    "launch_faults": FleetSite.LAUNCH,
    "launch_fault": FleetSite.LAUNCH,
}


@dataclass(frozen=True)
class FleetFaultEvent:
    """One scheduled (or observed) fleet-level fault, fully loggable.

    ``at`` is virtual seconds on the service clock.  ``duration_s`` and
    ``param`` are kind-specific: a stall's length, a storm's reduced
    queue capacity, a launch window's fault probability.
    """

    kind: str
    at: float
    site: str = ""
    device: str | None = None
    duration_s: float = 0.0
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FLEET_FAULT_KINDS:
            raise ValueError(f"unknown fleet fault kind {self.kind!r}")
        if not self.site:
            object.__setattr__(self, "site", FLEET_FAULT_KINDS[self.kind].value)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "at": self.at,
            "site": self.site,
            "device": self.device,
            "duration_s": self.duration_s,
            "param": self.param,
        }


@dataclass(frozen=True)
class FaultEvent:
    """One injected bit flip, fully reproducible from the log."""

    site: str
    #: which eligible hook invocation (per site) carried the fault
    call_index: int
    #: flat element index within the array flowing through the site
    flat_index: int
    #: flipped bit position (0 = LSB of the element's storage word)
    bit: int
    before: float
    after: float
    #: innermost active tracing span when the fault was injected (0 when
    #: tracing is disabled) — lets campaign post-mortems attribute an
    #: injection to the exact GEMM run / kernel timing that absorbed it
    span_id: int = 0

    def as_dict(self) -> dict:
        return {
            "site": self.site,
            "call_index": self.call_index,
            "flat_index": self.flat_index,
            "bit": self.bit,
            "before": self.before,
            "after": self.after,
            "span_id": self.span_id,
        }


def flip_bit(x: np.ndarray, flat_index: int, bit: int) -> np.ndarray:
    """Flip one bit of one element, in place; returns ``x``.

    ``x`` must be contiguous (the injector always operates on copies it
    owns).  Works for any float dtype with a same-width unsigned view.
    """
    if not x.flags.c_contiguous:
        raise ValueError("flip_bit requires a C-contiguous array")
    width = x.dtype.itemsize
    bits = x.reshape(-1).view(_UINT_FOR[width])
    if not 0 <= bit < 8 * width:
        raise ValueError(f"bit {bit} out of range for {x.dtype}")
    bits[flat_index] ^= np.asarray(1 << bit, dtype=_UINT_FOR[width])
    return x


@dataclass
class FaultInjector:
    """Seeded single-bit fault injector for the simulator's fault sites.

    Parameters
    ----------
    seed:
        Seeds the generator that picks the injection call, element, and
        bit — identical seeds reproduce identical campaigns.
    site:
        Which :class:`FaultSite` this injector targets.
    faults:
        Maximum injections per :meth:`arm` (1 = the classic
        single-event-upset model).
    bit_range_fp32 / bit_range_fp16:
        ``(lo, hi)`` windows the flipped bit is drawn from, by element
        width.  Defaults cover high mantissa + exponent + sign.
    """

    seed: int = 0
    site: FaultSite = FaultSite.ACCUMULATOR
    faults: int = 1
    bit_range_fp32: tuple[int, int] = DEFAULT_BIT_RANGE_32
    bit_range_fp16: tuple[int, int] = DEFAULT_BIT_RANGE_16
    events: list[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._armed = False
        self._skip = 0
        self._seen = 0
        self._injected = 0

    # --- campaign control -------------------------------------------------
    def arm(self, skip: int | None = None, skip_max: int = 16) -> None:
        """Arm the injector for the next run.

        ``skip`` is the number of eligible hook calls to let pass before
        injecting (None draws uniformly from ``[0, skip_max)``), placing
        the fault at a random point of the execution.
        """
        self._armed = True
        self._seen = 0
        self._injected = 0
        self._skip = int(self._rng.integers(0, max(skip_max, 1))) if skip is None else int(skip)

    def disarm(self) -> None:
        self._armed = False

    @property
    def injected(self) -> int:
        """Injections performed since the last :meth:`arm`."""
        return self._injected

    # --- the hook ---------------------------------------------------------
    def __call__(self, site_name: str, arr: np.ndarray) -> np.ndarray:
        """Hook entry point: maybe corrupt ``arr`` (returns the array to use).

        Never mutates the caller's array — on injection, a copy is
        corrupted and returned; otherwise ``arr`` passes through
        untouched (zero-copy).
        """
        if not self._armed or site_name != self.site.value or arr.size == 0:
            return arr
        if self._injected >= self.faults:
            return arr
        call_index = self._seen
        self._seen += 1
        if call_index < self._skip:
            return arr
        corrupted = np.ascontiguousarray(arr).copy()
        flat_index = int(self._rng.integers(0, corrupted.size))
        lo, hi = self.bit_range_fp16 if corrupted.dtype.itemsize == 2 else self.bit_range_fp32
        bit = int(self._rng.integers(lo, hi))
        before = float(corrupted.reshape(-1)[flat_index])
        flip_bit(corrupted, flat_index, bit)
        after = float(corrupted.reshape(-1)[flat_index])
        self._injected += 1
        self.events.append(
            FaultEvent(
                site=site_name,
                call_index=call_index,
                flat_index=flat_index,
                bit=bit,
                before=before,
                after=after,
                span_id=current_span_id(),
            )
        )
        registry = get_registry()
        if registry.enabled:
            registry.inc("resilience.faults.injected")
            registry.inc(f"resilience.faults.{site_name}")
        return corrupted

    # --- installation -----------------------------------------------------
    @contextmanager
    def installed(self, scope: str = "global"):
        """Install this injector into every hookable fault site.

        The previous hooks are restored on exit — even on error — so an
        injector can never outlive its ``with`` block.

        ``scope`` selects the installation tier:

        * ``"global"`` (default) — the module-global ``FAULT_HOOK`` slots,
          visible to every thread in the process (campaign semantics;
          required when the protected work runs on helper threads, e.g.
          under a :func:`~repro.resilience.runner.call_with_timeout`
          stage budget);
        * ``"context"`` — the context-local override of
          :mod:`repro.obs.hooks`, visible only to the installing context.
          Concurrent serving requests each install their own injector
          without clobbering one another (a fresh thread starts with an
          empty context, so workers are isolated by construction).
        """
        if scope == "context":
            from ..obs.hooks import local_fault_hook

            with local_fault_hook(self):
                yield self
            return
        if scope != "global":
            raise ValueError(f"unknown hook scope {scope!r}; use 'global' or 'context'")
        # importlib, not ``from .. import gemm``: sibling packages re-export
        # functions under the same names as their modules.
        import importlib

        modules = tuple(
            importlib.import_module(f"repro.{name}")
            for name in ("emulation.gemm", "tensorcore.mma", "tensorcore.fragment", "gpu.memory")
        )
        previous = [mod.FAULT_HOOK for mod in modules]
        for mod in modules:
            mod.FAULT_HOOK = self
        try:
            yield self
        finally:
            for mod, prior in zip(modules, previous):
                mod.FAULT_HOOK = prior
