"""Fault-tolerant execution layer (beyond the paper; ROADMAP robustness pillar).

The paper's value proposition is *trustworthy* numerics on
reduced-precision hardware — this subpackage makes the reproduction
trustworthy under *faults* as well:

* :mod:`repro.resilience.faults` — a seeded fault-injection framework
  hooked into the simulator's HMMA accumulator, FRAG registers, and
  shared-memory tiles, with per-site fault logs;
* :mod:`repro.resilience.abft` — algorithm-based fault tolerance
  (checksum rows/columns, Huang & Abraham) composed with the emulated
  GEMM: detect, locate, and correct single-element faults, recompute on
  multi-element corruption;
* :mod:`repro.resilience.runner` — a resilient execution path for every
  kernel: input sanitization, automatic scheme escalation when operands
  leave fp16's range, a retry-with-fallback kernel chain with bounded
  backoff, and per-stage timeouts;
* :mod:`repro.resilience.campaign` — the ``python -m repro faults``
  injection-campaign CLI (detection / correction / false-positive rates
  and the protected-vs-unprotected overhead).

See docs/robustness.md for the fault model and the ABFT math.
"""

from __future__ import annotations

from .abft import AbftError, AbftGemm, AbftKernel, AbftReport, abft_run, augment_operands
from .backoff import BackoffPolicy
from .campaign import run_campaign
from .faults import (
    FLEET_FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultSite,
    FleetFaultEvent,
    FleetSite,
    flip_bit,
)
from .runner import (
    ExhaustedFallbacksError,
    InputValidationError,
    ResilienceError,
    ResilientRunner,
    RunnerResult,
    StageTimeoutError,
    assess_operand,
    call_with_timeout,
)

__all__ = [
    "AbftError",
    "AbftGemm",
    "AbftKernel",
    "AbftReport",
    "abft_run",
    "augment_operands",
    "run_campaign",
    "BackoffPolicy",
    "FaultEvent",
    "FaultInjector",
    "FaultSite",
    "FleetFaultEvent",
    "FleetSite",
    "FLEET_FAULT_KINDS",
    "flip_bit",
    "ExhaustedFallbacksError",
    "InputValidationError",
    "ResilienceError",
    "ResilientRunner",
    "RunnerResult",
    "StageTimeoutError",
    "assess_operand",
    "call_with_timeout",
]
