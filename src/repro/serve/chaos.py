"""Fleet-level chaos campaigns for the serving layer.

``python -m repro chaos`` drives :class:`~repro.serve.service
.GemmService` through a matrix of **seeded fleet-fault scenarios** —
device crashes and restarts, straggler stalls, queue-capacity storms,
batch-launch fault windows, and overload brownouts — with the recovery
machinery of :mod:`repro.serve.recovery` switched on, and holds every
run to the invariants that make chaos engineering more than noise:

* **exact accounting** — ``submitted == completed + rejected + expired
  + failed`` under every scenario (no request is ever silently
  dropped, no matter which device died under it);
* **zero silent drops** — every submitted request has a terminal
  :class:`~repro.serve.api.GemmResponse`;
* **bit-identity of survivors** — every COMPLETED response's product is
  bit-for-bit what a fault-free run of its routed kernel produces on
  the same operands: retries, requeues, and hedged duplicates must
  never change the numbers;
* **degraded contract** — every ``degraded=True`` completion belongs to
  a ``degradable`` request and carries a certified analytic bound at or
  below its declared fallback SLO.

Faults are :class:`~repro.resilience.faults.FleetFaultEvent` records
scheduled at fractions of the run's virtual horizon, so the same
scenario scales from a CI smoke (``--quick``) to a long campaign
without editing the schedule.  Everything — operands, arrival gaps,
fault draws — is seeded; a campaign is byte-reproducible.

CLI::

    python -m repro chaos [--quick] [--seeds 0,1,2] [--requests N]
                          [--out CHAOS_campaign.json]

Exits non-zero when any scenario violates any invariant.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..obs.metrics import get_registry
from ..obs.tracing import get_tracer
from ..resilience.backoff import BackoffPolicy
from ..resilience.faults import FleetFaultEvent
from .loadgen import make_request
from .recovery import BrownoutConfig, RecoveryConfig
from .service import GemmService, ServeConfig

__all__ = [
    "CHAOS_SCHEMA",
    "SCENARIOS",
    "ChaosSchedule",
    "build_schedule",
    "chaos_arrivals",
    "run_scenario",
    "run_campaign",
    "validate_chaos_report",
    "main",
]

#: campaign report schema identifier, bumped on breaking field changes
CHAOS_SCHEMA = "repro.serve.chaos/1"


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded fleet-fault schedule consumed by :class:`GemmService`."""

    faults: tuple[FleetFaultEvent, ...]
    #: seed for the service's launch-fault draws (and the audit trail)
    seed: int = 0
    name: str = ""


#: scenario catalogue: fault builders over ``(horizon H, device names)``.
#: Times are fractions of the horizon so the same scenario scales from a
#: --quick smoke to a long campaign.  ``rate_mult`` overdrives the
#: arrival rate (the overload scenarios need queueing pressure to latch
#: the burn-rate monitors).
SCENARIOS: dict[str, dict] = {
    # fault-free control: recovery armed but never exercised
    "baseline": {"faults": lambda H, dev: ()},
    # one device dies mid-run and stays dead: ``queued_crash`` waits for
    # a device with work queued behind its in-flight batch, so the
    # requeue-and-drain path runs on every seed
    "device-crash": {
        "rate_mult": 4.0,
        "faults": lambda H, dev: (
            FleetFaultEvent("queued_crash", 0.25 * H),
        ),
    },
    # crash followed by a restart: requeue, retry, and refeed
    "crash-restart": {
        "rate_mult": 2.0,
        "faults": lambda H, dev: (
            FleetFaultEvent("device_crash", 0.20 * H, device=dev[0]),
            FleetFaultEvent("device_restart", 0.60 * H, device=dev[0]),
        ),
    },
    # mid-execution straggler stalls: ``exec_stall`` waits until a batch
    # is actually in flight, then freezes its device, so the stuck copy
    # hedges onto the first idle device (first copy to finish wins)
    "stall-hedge": {
        "rate_mult": 2.0,
        "faults": lambda H, dev: (
            FleetFaultEvent("exec_stall", 0.15 * H, duration_s=0.60 * H),
            FleetFaultEvent("exec_stall", 0.35 * H, duration_s=0.50 * H),
        ),
    },
    # every queue collapses to rendezvous for a third of the run
    "queue-storm": {
        "rate_mult": 2.0,
        "faults": lambda H, dev: (
            FleetFaultEvent("queue_storm", 0.20 * H, param=0.0),
            FleetFaultEvent("queue_storm_end", 0.55 * H),
        ),
    },
    # batch launches fail with probability ``param`` inside the window
    "launch-faults": {
        "faults": lambda H, dev: (
            FleetFaultEvent("launch_faults", 0.10 * H, duration_s=0.60 * H,
                            param=0.35),
        ),
    },
    # overload + two crashed devices: burn-rate alerts latch and
    # degradable requests brown out to their fallback SLO
    "overload-brownout": {
        "rate_mult": 2.5,
        "faults": lambda H, dev: (
            FleetFaultEvent("device_crash", 0.10 * H, device=dev[0]),
            FleetFaultEvent("device_crash", 0.10 * H, device=dev[1]),
        ),
    },
    # permanent whole-fleet outage: dispatches after the crash exhaust
    # the retry budget and resolve as explicit FAILED responses
    "fleet-outage": {
        "faults": lambda H, dev: tuple(
            FleetFaultEvent("device_crash", 0.45 * H, device=d) for d in dev
        ),
    },
    # total fleet blackout with one late revival: exercises
    # FleetExhaustedError, retry-until-restart, and terminal failures
    "blackout-recovery": {
        "faults": lambda H, dev: tuple(
            FleetFaultEvent("device_crash", 0.30 * H, device=d) for d in dev
        ) + (FleetFaultEvent("device_restart", 0.50 * H, device=dev[0]),),
    },
    # everything at once
    "combined": {
        "rate_mult": 2.0,
        "faults": lambda H, dev: (
            FleetFaultEvent("device_crash", 0.15 * H, device=dev[0]),
            FleetFaultEvent("exec_stall", 0.25 * H, duration_s=0.30 * H),
            FleetFaultEvent("launch_faults", 0.30 * H, duration_s=0.30 * H,
                            param=0.25),
            FleetFaultEvent("queue_storm", 0.40 * H, param=0.0),
            FleetFaultEvent("device_restart", 0.50 * H, device=dev[0]),
            FleetFaultEvent("queue_storm_end", 0.60 * H),
        ),
    },
}


def build_schedule(
    name: str,
    horizon_s: float,
    device_names: tuple[str, ...],
    seed: int = 0,
) -> ChaosSchedule:
    """Instantiate one catalogue scenario over a concrete run horizon."""
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown chaos scenario {name!r} (catalogue: {sorted(SCENARIOS)})"
        )
    faults = tuple(
        sorted(SCENARIOS[name]["faults"](horizon_s, device_names),
               key=lambda f: (f.at, f.kind, f.device or ""))
    )
    return ChaosSchedule(faults=faults, seed=seed, name=name)


def chaos_arrivals(seed: int, count: int, rate_rps: float):
    """Seeded poisson arrivals with a degradable sub-population.

    Rides :func:`~repro.serve.loadgen.make_request` for the operand /
    SLO / deadline mix, then stamps the chaos-specific fields from the
    *same* stream (after the base draws, so the base request is
    byte-identical to what the plain load generator would build):
    half the requests consent to degradation, and a third of those
    declare their own fallback SLO.
    """
    rng = np.random.default_rng((int(seed), 7))
    t = 0.0
    for _ in range(count):
        t += float(rng.exponential(1.0 / rate_rps))
        request = make_request(rng)
        request.reliable = False
        if rng.random() < 0.5:
            request.degradable = True
            if rng.random() < 0.3:
                request.fallback_max_rel_error = 1e-2
        yield t, request


def _recovery_config(seed: int) -> RecoveryConfig:
    """The campaign's recovery policy (shared by every scenario)."""
    return RecoveryConfig(
        retry=BackoffPolicy(base_s=40e-6, cap_s=320e-6, multiplier=2.0,
                            max_retries=3, jitter=0.25, seed=seed),
        hedge_after_s=200e-6,
        brownout=BrownoutConfig(fallback_max_rel_error=5e-2, hold_s=5e-4),
    )


def run_scenario(
    name: str,
    seed: int = 0,
    requests: int = 400,
    rate_rps: float = 150_000.0,
) -> tuple[dict, "object"]:
    """Run one scenario at one seed; returns ``(result, observer)``.

    The result dict carries the counts, recovery stats, and the
    invariant verdicts; the observer is returned so the CLI can dump a
    scenario's flight log for the postmortem toolchain.
    """
    from ..obs.serving import ServeObserver

    config = ServeConfig(recovery=_recovery_config(seed))
    rate = rate_rps * SCENARIOS[name].get("rate_mult", 1.0)
    horizon_s = requests / rate
    device_names = tuple(
        f"{gpu}-{i}" for i, gpu in enumerate(config.devices)
    )
    schedule = build_schedule(name, horizon_s, device_names, seed)
    observer = ServeObserver(infeasible_deadline_s=config.max_wait_s)
    service = GemmService(config, observer=observer, chaos=schedule)
    arrivals = list(chaos_arrivals(seed, requests, rate))
    by_id_request = {}
    responses = service.run(arrivals)
    for _, request in arrivals:
        by_id_request[request.request_id] = request

    stats = service.stats()
    counts = {key: stats[key] for key in
              ("submitted", "completed", "rejected", "expired", "failed")}
    accounting_exact = (
        counts["submitted"]
        == counts["completed"] + counts["rejected"] + counts["expired"]
        + counts["failed"]
    )
    silent_drops = counts["submitted"] - len(responses)

    # bit-identity of survivors: every completed product must equal a
    # fault-free run of its routed kernel on the same operands
    bit_mismatches = 0
    degraded_completions = 0
    degraded_violations = 0
    fallback_default = config.recovery.brownout.fallback_max_rel_error
    for rid, response in responses.items():
        if not response.ok:
            continue
        request = by_id_request[rid]
        kernel = service.router.kernels[response.kernel]
        reference = np.asarray(kernel.compute(request.a, request.b, request.c))
        delivered = np.asarray(response.d)
        if (delivered.shape != reference.shape
                or delivered.dtype != reference.dtype
                or delivered.tobytes() != reference.tobytes()):
            bit_mismatches += 1
        if response.degraded:
            degraded_completions += 1
            declared = request.fallback_max_rel_error
            if declared is None:
                declared = fallback_default
            declared = max(declared, request.max_rel_error)
            if (not request.degradable
                    or response.error_bound is None
                    or response.error_bound > declared):
                degraded_violations += 1

    faults_fired = len(service.fleet_log) >= len(schedule.faults)
    # span-chain coverage under fault injection: the admission chain
    # gate CI applies to the smoke run, extended to chaos runs, plus
    # linkage of every recovery span (retry/hedge/requeue) to a batch
    # the observer saw form — what keeps latency breakdowns exact here
    chain = observer.chain_report()
    recovery_chain = observer.recovery_chain_report()
    invariants = {
        "accounting_exact": accounting_exact,
        "silent_drops": silent_drops,
        "bit_mismatches": bit_mismatches,
        "degraded_completions": degraded_completions,
        "degraded_violations": degraded_violations,
        "faults_fired": faults_fired,
        "chain_coverage": chain["coverage"],
        "recovery_chain_coverage": recovery_chain["coverage"],
    }
    result = {
        "scenario": name,
        "seed": seed,
        "requests": requests,
        "rate_rps": rate,
        "scheduled_faults": len(schedule.faults),
        "fleet_faults": stats["fleet_faults"],
        "counts": counts,
        "fail_reasons": stats["fail_reasons"],
        "recovery": stats["recovery"],
        "brownout": stats.get("brownout", {}),
        "virtual_s": stats["virtual_s"],
        "trace_chain": chain,
        "recovery_chain": recovery_chain,
        "invariants": invariants,
        "pass": (
            accounting_exact
            and silent_drops == 0
            and bit_mismatches == 0
            and degraded_violations == 0
            and faults_fired
            and chain["coverage"] >= 0.99
            and recovery_chain["coverage"] >= 0.99
        ),
    }
    return result, observer


def run_campaign(
    seeds: tuple[int, ...] = (0,),
    requests: int = 400,
    rate_rps: float = 150_000.0,
    quick: bool = False,
    scenarios: tuple[str, ...] | None = None,
    out: str | Path | None = None,
) -> tuple[dict, dict]:
    """Run the scenario × seed matrix; returns ``(report, observers)``.

    ``observers`` maps ``"scenario#s<seed>"`` to each run's
    :class:`~repro.obs.serving.ServeObserver` (flight-log export).
    """
    names = tuple(scenarios) if scenarios is not None else tuple(SCENARIOS)
    tracer = get_tracer()
    timing: dict[str, float] = {}
    results: dict[str, dict] = {}
    observers: dict[str, object] = {}
    for name in names:
        for seed in seeds:
            key = f"{name}#s{seed}"
            with tracer.span(f"serve.chaos.{name}", category="serve",
                             seed=seed) as span:
                t0 = time.perf_counter()
                result, observer = run_scenario(
                    name, seed=seed, requests=requests, rate_rps=rate_rps
                )
                elapsed = time.perf_counter() - t0
                span.set(seconds=elapsed)
            timing[key] = elapsed
            get_registry().observe("serve.chaos.scenario_seconds", elapsed)
            results[key] = result
            observers[key] = observer
    totals = {k: sum(r["counts"][k] for r in results.values())
              for k in ("submitted", "completed", "rejected", "expired", "failed")}
    report = {
        "schema": CHAOS_SCHEMA,
        "quick": quick,
        "seeds": list(seeds),
        "requests": requests,
        "rate_rps": rate_rps,
        "scenarios": results,
        "timing": timing,
        "summary": {
            "scenarios": len(results),
            **totals,
            "degraded": sum(r["recovery"]["degraded"] for r in results.values()),
            "retries": sum(r["recovery"]["retries"] for r in results.values()),
            "hedges": sum(r["recovery"]["hedges"] for r in results.values()),
            "fleet_faults": sum(r["fleet_faults"] for r in results.values()),
            "pass": all(r["pass"] for r in results.values()),
        },
    }
    if out is not None:
        Path(out).write_text(json.dumps(report, indent=2, sort_keys=True,
                                        default=float))
    return report, observers


def validate_chaos_report(report: dict) -> list[str]:
    """Schema + invariant check of a campaign report; returns problems.

    CI fails the chaos smoke step on any returned string: schema
    identity, per-scenario count types, the exact accounting identity,
    the zero-silent-drop and bit-identity verdicts, and summary
    consistency.
    """
    problems: list[str] = []
    if report.get("schema") != CHAOS_SCHEMA:
        problems.append(
            f"schema is {report.get('schema')!r}, expected {CHAOS_SCHEMA!r}"
        )
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        return problems + ["scenarios missing or empty"]
    for key, result in scenarios.items():
        counts = result.get("counts")
        if not isinstance(counts, dict):
            problems.append(f"{key}: counts missing")
            continue
        for field in ("submitted", "completed", "rejected", "expired", "failed"):
            if not isinstance(counts.get(field), int) or counts[field] < 0:
                problems.append(f"{key}: counts.{field} missing or negative")
        if not any(p.startswith(f"{key}:") for p in problems):
            resolved = (counts["completed"] + counts["rejected"]
                        + counts["expired"] + counts["failed"])
            if resolved != counts["submitted"]:
                problems.append(
                    f"{key}: accounting broken — submitted={counts['submitted']}"
                    f" but {resolved} resolved"
                )
        invariants = result.get("invariants")
        if not isinstance(invariants, dict):
            problems.append(f"{key}: invariants missing")
            continue
        for field in ("accounting_exact", "silent_drops", "bit_mismatches",
                      "degraded_violations", "faults_fired"):
            if field not in invariants:
                problems.append(f"{key}: invariants.{field} missing")
        if invariants.get("silent_drops", 0) != 0:
            problems.append(f"{key}: {invariants['silent_drops']} silent drops")
        if invariants.get("bit_mismatches", 0) != 0:
            problems.append(
                f"{key}: {invariants['bit_mismatches']} survivors not "
                f"bit-identical to fault-free replay"
            )
        if invariants.get("degraded_violations", 0) != 0:
            problems.append(
                f"{key}: {invariants['degraded_violations']} degraded "
                f"completions violate the fallback contract"
            )
        # chain coverage is optional (absent from pre-attribution
        # reports) but gates when present: breakdowns are only exact
        # under fault injection if the span chains stay linked
        for field in ("chain_coverage", "recovery_chain_coverage"):
            if field in invariants and invariants[field] < 0.99:
                problems.append(
                    f"{key}: invariants.{field} {invariants[field]:.3f} < 0.99"
                )
        if "pass" not in result:
            problems.append(f"{key}: pass verdict missing")
    summary = report.get("summary")
    if not isinstance(summary, dict) or not isinstance(summary.get("pass"), bool):
        problems.append("summary.pass missing")
    elif summary["pass"] != all(r.get("pass", False) for r in scenarios.values()):
        problems.append("summary.pass inconsistent with scenario verdicts")
    return problems


def _print_summary(report: dict) -> None:
    print("fleet chaos campaign")
    for key, r in report["scenarios"].items():
        c, rec, inv = r["counts"], r["recovery"], r["invariants"]
        print(
            f"  {key:28s} {c['submitted']:4d} -> "
            f"{c['completed']:4d} ok / {c['rejected']:3d} rej / "
            f"{c['expired']:3d} exp / {c['failed']:3d} fail | "
            f"retries {rec['retries']:3d}, hedges {rec['hedges']:2d} "
            f"(wins {rec['hedge_wins']}), requeued {rec['requeued']:3d}, "
            f"degraded {rec['degraded']:3d} | "
            f"{'PASS' if r['pass'] else 'FAIL'}"
        )
        if not r["pass"]:
            print(f"    invariants: {inv}")
    s = report["summary"]
    t = report.get("timing", {})
    total = sum(t.values())
    print(
        f"  summary: {s['scenarios']} scenario runs, {s['submitted']} requests, "
        f"{s['fleet_faults']} fleet faults, {s['retries']} retries, "
        f"{s['hedges']} hedges, {s['degraded']} degraded ({total:.1f}s)"
    )
    print(f"  verdict: {'PASS' if s['pass'] else 'FAIL'}")


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro chaos [--quick] [--seeds 0,1]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="seeded fleet-fault chaos campaign over the serving layer "
                    "(see docs/robustness.md)",
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: seed 0 only, 150 requests per scenario")
    parser.add_argument("--seeds", default=None,
                        help="comma-separated seeds (default 0,1 full / 0 quick)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per scenario run (default 400 / 150 quick)")
    parser.add_argument("--rate", type=float, default=150_000.0,
                        help="base arrival rate, requests/s (virtual time)")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME", dest="scenario",
                        help="run only this scenario (repeatable)")
    parser.add_argument("--out", default="CHAOS_campaign.json",
                        help="JSON report path")
    parser.add_argument("--flight-log", default=None, metavar="PATH",
                        help="dump the combined scenario's flight-recorder "
                             "JSONL here (postmortem input)")
    parser.add_argument("--history", default="BENCH_history.jsonl", metavar="PATH",
                        help="benchmark-history JSONL to append this campaign to")
    parser.add_argument("--no-history", action="store_true",
                        help="skip appending to the benchmark history")
    args = parser.parse_args(argv)

    if args.seeds is not None:
        seeds = tuple(int(s) for s in args.seeds.split(","))
    else:
        seeds = (0,) if args.quick else (0, 1)
    requests = args.requests
    if requests is None:
        requests = 150 if args.quick else 400
    scenarios = tuple(args.scenario) if args.scenario else None

    # Warm the analytic kernel model outside the timed sections (same
    # policy as python -m repro serve).
    from ..gpu import get_gpu
    from ..model.solver import solve

    for name in set(ServeConfig().devices):
        solve(get_gpu(name))

    report, observers = run_campaign(
        seeds=seeds, requests=requests, rate_rps=args.rate,
        quick=bool(args.quick), scenarios=scenarios, out=args.out,
    )
    _print_summary(report)
    problems = validate_chaos_report(report)
    for problem in problems:
        print(f"SCHEMA PROBLEM: {problem}")

    if args.flight_log:
        from ..obs.export import run_manifest

        key = f"combined#s{seeds[0]}"
        observer = observers.get(key) or next(iter(observers.values()))
        observer.recorder.dump_jsonl(args.flight_log,
                                     manifest=run_manifest(seed=seeds[0]))
        print(f"flight log: {len(observer.recorder.events())} events -> "
              f"{args.flight_log}")
    if not args.no_history:
        from ..obs.benchtrack import append_record, make_record
        from ..obs.export import run_manifest

        s = report["summary"]
        record = make_record(
            "chaos",
            {
                "scenarios": s["scenarios"],
                "submitted": s["submitted"],
                "completed": s["completed"],
                "failed": s["failed"],
                "retries": s["retries"],
                "hedges": s["hedges"],
                "degraded": s["degraded"],
                "fleet_faults": s["fleet_faults"],
                "pass": s["pass"],
            },
            quick=bool(args.quick),
            manifest=run_manifest(seed=seeds[0]),
        )
        append_record(args.history, record)
        print(f"history: chaos record appended to {args.history}")
    print(f"report written to {args.out} (schema {CHAOS_SCHEMA})")
    return 0 if report["summary"]["pass"] and not problems else 1
