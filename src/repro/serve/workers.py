"""Simulated multi-device worker fleet: queues, stealing, backpressure.

The serving layer schedules batches onto a fleet of simulated GPUs
(:class:`~repro.gpu.spec.GpuSpec` — a T4/RTX6000 mix by default).  Each
:class:`DeviceWorker` owns a **bounded** batch queue; the pool-level
policies are:

* **placement** — a new batch goes to the accepting device with the
  earliest estimated start (current busy tail + queued work), so a
  faster RTX6000 naturally absorbs more of the stream than a T4;
* **backpressure** — a device only accepts while idle or while its
  queue has room; when *no* device accepts, the pool reports the fact
  and the service turns it into explicit admission-control rejections
  (never an unbounded queue, never a silent drop);
* **work stealing** — a device that goes idle with an empty queue pulls
  the most urgent queued batch from the most backlogged peer, keeping
  the fleet busy under skewed placement.

Device time is *virtual*: the discrete-event service advances
``busy_until`` from the routing decision's modelled service time, which
keeps the whole simulation deterministic for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.spec import GpuSpec
from ..obs.metrics import get_registry
from .api import FleetExhaustedError
from .batcher import Batch

__all__ = ["DeviceWorker", "WorkerPool"]


@dataclass
class DeviceWorker:
    """One simulated GPU: a bounded queue feeding a serial executor."""

    name: str
    spec: GpuSpec
    #: queued batches beyond the one executing; 0 = rendezvous only
    queue_capacity: int = 4
    busy_until: float = 0.0
    queue: list[Batch] = field(default_factory=list)
    batches_executed: int = 0
    requests_executed: int = 0
    busy_s: float = 0.0
    stolen_from: int = 0
    stolen_into: int = 0
    #: False after a chaos crash; an unhealthy device accepts no work
    healthy: bool = True
    #: bumped on crash/restart/stall so stale ``device_free`` events
    #: scheduled against the previous incarnation are ignored
    epoch: int = 0

    def idle(self, now: float) -> bool:
        return self.busy_until <= now and not self.queue

    def can_accept(self, now: float) -> bool:
        if self.busy_until <= now and not self.queue:
            return True
        return len(self.queue) < self.queue_capacity

    def estimated_start(self, now: float) -> float:
        """When a batch enqueued now would begin executing."""
        start = max(self.busy_until, now)
        for batch in self.queue:
            start += batch.service_s
        return start

    def enqueue(self, batch: Batch) -> None:
        self.queue.append(batch)

    def pop_next(self) -> Batch | None:
        """Most urgent queued batch: priority, then earliest deadline/age.

        Batches already resolved elsewhere (a hedged duplicate won, or
        every member expired) are discarded instead of returned, so a
        queue never hands back work that has no members left to serve.
        """
        while self.queue:
            best = min(
                range(len(self.queue)),
                key=lambda i: (
                    -self.queue[i].priority,
                    self.queue[i].deadline_at,
                    self.queue[i].created_at,
                ),
            )
            batch = self.queue.pop(best)
            if not batch.resolved:
                return batch
        return None


class WorkerPool:
    """Placement, stealing, and backpressure over a device fleet."""

    def __init__(self, devices: list[DeviceWorker]):
        if not devices:
            raise ValueError("worker pool needs at least one device")
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate device names: {names}")
        self.devices = devices
        self.rejected_batches = 0

    def select(self, now: float) -> DeviceWorker | None:
        """Accepting healthy device with the earliest estimated start.

        ``None`` is the backpressure signal: every *healthy* queue is
        full and every healthy executor busy — the caller must reject
        (or retry), not wait.  Zero healthy devices is a different,
        typed condition: :class:`~repro.serve.api.FleetExhaustedError`.
        """
        healthy = [d for d in self.devices if d.healthy]
        if not healthy:
            raise FleetExhaustedError(
                f"no healthy devices remain in the fleet "
                f"({len(self.devices)} configured, all crashed)"
            )
        accepting = [d for d in healthy if d.can_accept(now)]
        if not accepting:
            self.rejected_batches += 1
            get_registry().inc("serve.pool.backpressure")
            return None
        return min(
            accepting, key=lambda d: (d.estimated_start(now), len(d.queue), d.name)
        )

    def steal_for(self, idle_device: DeviceWorker) -> Batch | None:
        """Pull the most urgent batch from the most backlogged peer.

        Dead (unhealthy) devices are skipped on both sides: a crashed
        device never steals, and its queue is drained by the service's
        requeue path rather than picked at here.
        """
        if not idle_device.healthy:
            return None
        victim = max(
            (
                d
                for d in self.devices
                if d is not idle_device and d.healthy and d.queue
            ),
            key=lambda d: len(d.queue),
            default=None,
        )
        if victim is None:
            return None
        batch = victim.pop_next()
        if batch is not None:
            victim.stolen_from += 1
            idle_device.stolen_into += 1
            get_registry().inc("serve.pool.steals")
        return batch

    def shared_executor(self):
        """The opt-in multiprocess shared-memory executor, or ``None``.

        Honours ``REPRO_SERVE_PROCS=N`` (see :mod:`repro.serve
        .procpool`); the default — and every failure mode — is ``None``,
        meaning "compute in process".  Exposed on the pool so the
        service reaches real-parallel execution through the same object
        that owns the simulated fleet.
        """
        from .procpool import get_shared_pool

        return get_shared_pool()

    def queue_depth(self) -> int:
        return sum(len(d.queue) for d in self.devices)

    def record_depth_gauges(self) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        registry.set_gauge("serve.pool.queue_depth", self.queue_depth())
        for device in self.devices:
            registry.set_gauge(f"serve.pool.{device.name}.queue_depth", len(device.queue))

    def stats(self) -> dict:
        return {
            "devices": {
                d.name: {
                    "gpu": d.spec.name,
                    "batches": d.batches_executed,
                    "requests": d.requests_executed,
                    "busy_s": d.busy_s,
                    "stolen_from": d.stolen_from,
                    "stolen_into": d.stolen_into,
                    "healthy": d.healthy,
                }
                for d in self.devices
            },
            "backpressure_rejections": self.rejected_batches,
            "queue_depth": self.queue_depth(),
        }
