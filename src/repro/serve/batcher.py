"""Dynamic batching: coalesce compatible requests, bounded wait.

Requests are bucketed by a **compatibility key** — the ``(m, k, n)``
shape (via :func:`repro.perf.bucketing.gemm_shape_key`, the same
definition the bench's mixed-stream coalescer uses), the routed kernel,
the reliability mode, and whether a ``C`` accumuland is present — so
every batch can execute as one stacked
:meth:`~repro.emulation.gemm.EmulatedGemm.run_batched` call whose
results are bit-identical to per-request runs.

Two knobs bound the latency cost of waiting for company:

* ``max_batch_size`` — a bucket that fills dispatches immediately;
* ``max_wait_s`` — a bucket whose *oldest* member has waited this long
  dispatches regardless of size (the classic dynamic-batching window).

The batcher is clock-agnostic: callers pass ``now`` (the service's
virtual clock) and poll :meth:`next_due` to schedule the timeout event.

Bookkeeping is struct-of-array (:class:`~repro.serve.soa.RequestTable`):
buckets hold preallocated slot arrays and maintain their urgency
aggregates (max priority, earliest deadline) incrementally, so a formed
:class:`Batch` carries O(1) scalars where the object design re-derived
them by walking request lists.  The ``requests`` object list is
materialized once per batch, at formation — the API boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from ..obs.metrics import get_registry
from ..perf.bucketing import bucket_by_shape, gemm_shape_key
from .api import GemmRequest
from .router import RoutingDecision
from .soa import RequestState, RequestTable

__all__ = ["Batch", "DynamicBatcher", "compatibility_key"]


def compatibility_key(request: GemmRequest, decision: RoutingDecision) -> Hashable:
    """The bucket key under which two requests may coalesce."""
    return (
        gemm_shape_key(request.a, request.b),
        decision.kernel,
        decision.reliable,
        request.c is not None,
    )


@dataclass
class Batch:
    """A dispatchable group of shape/kernel-compatible requests.

    ``slots`` indexes the owning :class:`RequestTable` (the hot-path
    identity of the members); ``requests`` is the object list
    materialized at formation for executors and observers.  ``priority``
    and ``deadline_at`` are precomputed aggregates — O(1) reads for the
    device queues' urgency ordering, where the object design walked the
    member list on every comparison.
    """

    key: Hashable
    decision: RoutingDecision
    requests: list[GemmRequest]
    #: virtual arrival time of the oldest member (window anchor)
    created_at: float
    #: virtual time the batch left the batcher for a device queue
    dispatched_at: float = 0.0
    #: formation-order id assigned by the batcher (flight-recorder /
    #: trace join key linking member requests to their batch)
    batch_id: int = -1
    #: RequestTable rows of the members, aligned with ``requests``
    slots: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: owning table (None for hand-built batches in tests)
    table: RequestTable | None = None
    #: max member priority — a batch is as urgent as its most urgent member
    priority: int = 0
    #: earliest member deadline — the batch's own urgency horizon
    deadline_at: float = float("inf")
    # -- recovery bookkeeping (repro.serve.recovery) --------------------
    #: serve-level retries this batch has consumed (backpressure,
    #: launch faults, device crashes)
    attempts: int = 0
    #: True once a hedged duplicate launch covered this batch
    hedged: bool = False
    #: devices currently executing a copy of this batch (a hedge can
    #: make this 2; a crash decrements it)
    exec_count: int = 0
    #: True once every member reached a terminal status — queued hedge
    #: losers and requeued copies see this and cancel (first wins)
    resolved: bool = False

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def service_s(self) -> float:
        """Modelled fused execution time of the whole batch."""
        return self.decision.batch_seconds(self.size)

    def trim(self, keep: np.ndarray) -> None:
        """Drop members not in ``keep`` (boolean mask), refreshing the
        urgency aggregates from the surviving rows."""
        indices = np.flatnonzero(keep)
        self.slots = self.slots[indices]
        self.requests = [self.requests[int(i)] for i in indices]
        if self.table is not None and len(self.slots):
            self.priority = int(self.table.priority[self.slots].max())
            self.deadline_at = float(self.table.deadline_at[self.slots].min())


class _Bucket:
    """One compatibility bucket: a preallocated slot array + aggregates."""

    __slots__ = ("decision", "slots", "count", "oldest_at", "max_priority",
                 "min_deadline")

    def __init__(self, capacity: int):
        self.slots = np.empty(capacity, dtype=np.int64)
        self.reset(None, 0.0)

    def reset(self, decision: RoutingDecision | None, now: float) -> None:
        self.decision = decision
        self.count = 0
        self.oldest_at = now
        self.max_priority = 0
        self.min_deadline = float("inf")


class DynamicBatcher:
    """Shape-bucketed request coalescing with a bounded wait window."""

    def __init__(
        self,
        max_batch_size: int = 8,
        max_wait_s: float = 200e-6,
        table: RequestTable | None = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_wait_s < 0.0:
            raise ValueError("max_wait_s must be non-negative")
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.table = table if table is not None else RequestTable()
        self._buckets: dict[Hashable, _Bucket] = {}
        #: recycled bucket objects — the slot arrays are preallocated
        #: once and reused across formations instead of reallocated
        self._bucket_pool: list[_Bucket] = []
        self.batches_formed = 0
        self.requests_batched = 0
        self._pending = 0

    # -- intake ---------------------------------------------------------
    def add(
        self, request: GemmRequest, decision: RoutingDecision, now: float
    ) -> Batch | None:
        """Bucket one request; returns a full batch the moment one fills.

        The request is parked in the table (slot acquired here, released
        by the caller at terminal resolution) and all bucket bookkeeping
        is on the table's columns.
        """
        key = compatibility_key(request, decision)
        bucket = self._buckets.get(key)
        if bucket is None:
            if self._bucket_pool:
                bucket = self._bucket_pool.pop()
                bucket.reset(decision, now)
            else:
                bucket = _Bucket(self.max_batch_size)
                bucket.reset(decision, now)
            self._buckets[key] = bucket
        slot = self.table.acquire(request)
        bucket.slots[bucket.count] = slot
        bucket.count += 1
        self._pending += 1
        if request.priority > bucket.max_priority:
            bucket.max_priority = request.priority
        deadline = request.deadline_at
        if deadline < bucket.min_deadline:
            bucket.min_deadline = deadline
        registry = get_registry()
        if registry.enabled:
            registry.set_gauge("serve.batcher.pending", self._pending)
        if bucket.count >= self.max_batch_size:
            return self._form(key, now)
        return None

    def add_many(
        self,
        pairs: list[tuple[GemmRequest, RoutingDecision]],
        now: float,
    ) -> list[Batch]:
        """Bucket a same-instant burst of requests (shared grouping helper).

        Groups the burst with :func:`~repro.perf.bucketing.bucket_by_shape`
        before touching the buckets, so a burst that alone fills a batch
        forms it without ``len(pairs)`` dict probes.
        """
        ready: list[Batch] = []
        groups = bucket_by_shape(pairs, key=lambda p: compatibility_key(p[0], p[1]))
        for indices in groups.values():
            for i in indices:
                request, decision = pairs[i]
                batch = self.add(request, decision, now)
                if batch is not None:
                    ready.append(batch)
        return ready

    # -- windows --------------------------------------------------------
    def due(self, now: float) -> list[Batch]:
        """Batches whose oldest member has exhausted the wait window."""
        expired = [
            key
            for key, bucket in self._buckets.items()
            if now >= bucket.oldest_at + self.max_wait_s
        ]
        return [self._form(key, now) for key in expired]

    def next_due(self) -> float | None:
        """Earliest window expiry across pending buckets (None if empty)."""
        if not self._buckets:
            return None
        return min(b.oldest_at for b in self._buckets.values()) + self.max_wait_s

    def flush(self, now: float) -> list[Batch]:
        """Dispatch everything pending (shutdown / drain)."""
        return [self._form(key, now) for key in list(self._buckets)]

    @property
    def pending(self) -> int:
        return self._pending

    # -- internals ------------------------------------------------------
    def _form(self, key: Hashable, now: float) -> Batch:
        bucket = self._buckets.pop(key)
        slots = bucket.slots[: bucket.count].copy()
        self.table.state[slots] = RequestState.BATCHED
        self.table.batched_at[slots] = now
        batch = Batch(
            key=key,
            decision=bucket.decision,
            requests=self.table.requests_for(slots),
            created_at=bucket.oldest_at,
            dispatched_at=now,
            batch_id=self.batches_formed,
            slots=slots,
            table=self.table,
            priority=bucket.max_priority,
            deadline_at=bucket.min_deadline,
        )
        self.batches_formed += 1
        self.requests_batched += batch.size
        self._pending -= batch.size
        self._bucket_pool.append(bucket)
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.batcher.batches")
            registry.observe("serve.batcher.batch_size", batch.size)
            registry.set_gauge("serve.batcher.pending", self._pending)
        return batch

    def stats(self) -> dict:
        return {
            "batches_formed": self.batches_formed,
            "requests_batched": self.requests_batched,
            "pending": self.pending,
            "mean_batch_size": (
                self.requests_batched / self.batches_formed
                if self.batches_formed
                else 0.0
            ),
        }
