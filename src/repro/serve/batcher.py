"""Dynamic batching: coalesce compatible requests, bounded wait.

Requests are bucketed by a **compatibility key** — the ``(m, k, n)``
shape (via :func:`repro.perf.bucketing.gemm_shape_key`, the same
definition the bench's mixed-stream coalescer uses), the routed kernel,
the reliability mode, and whether a ``C`` accumuland is present — so
every batch can execute as one stacked
:meth:`~repro.emulation.gemm.EmulatedGemm.run_batched` call whose
results are bit-identical to per-request runs.

Two knobs bound the latency cost of waiting for company:

* ``max_batch_size`` — a bucket that fills dispatches immediately;
* ``max_wait_s`` — a bucket whose *oldest* member has waited this long
  dispatches regardless of size (the classic dynamic-batching window).

The batcher is clock-agnostic: callers pass ``now`` (the service's
virtual clock) and poll :meth:`next_due` to schedule the timeout event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..obs.metrics import get_registry
from ..perf.bucketing import bucket_by_shape, gemm_shape_key
from .api import GemmRequest
from .router import RoutingDecision

__all__ = ["Batch", "DynamicBatcher", "compatibility_key"]


def compatibility_key(request: GemmRequest, decision: RoutingDecision) -> Hashable:
    """The bucket key under which two requests may coalesce."""
    return (
        gemm_shape_key(request.a, request.b),
        decision.kernel,
        decision.reliable,
        request.c is not None,
    )


@dataclass
class Batch:
    """A dispatchable group of shape/kernel-compatible requests."""

    key: Hashable
    decision: RoutingDecision
    requests: list[GemmRequest]
    #: virtual arrival time of the oldest member (window anchor)
    created_at: float
    #: virtual time the batch left the batcher for a device queue
    dispatched_at: float = 0.0
    #: formation-order id assigned by the batcher (flight-recorder /
    #: trace join key linking member requests to their batch)
    batch_id: int = -1

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def priority(self) -> int:
        """A batch is as urgent as its most urgent member."""
        return max((r.priority for r in self.requests), default=0)

    @property
    def deadline_at(self) -> float:
        """Earliest member deadline — the batch's own urgency horizon."""
        return min((r.deadline_at for r in self.requests), default=float("inf"))

    @property
    def service_s(self) -> float:
        """Modelled fused execution time of the whole batch."""
        return self.decision.batch_seconds(self.size)


@dataclass
class _Bucket:
    decision: RoutingDecision
    requests: list[GemmRequest] = field(default_factory=list)
    oldest_at: float = 0.0


class DynamicBatcher:
    """Shape-bucketed request coalescing with a bounded wait window."""

    def __init__(self, max_batch_size: int = 8, max_wait_s: float = 200e-6):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_wait_s < 0.0:
            raise ValueError("max_wait_s must be non-negative")
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self._buckets: dict[Hashable, _Bucket] = {}
        self.batches_formed = 0
        self.requests_batched = 0

    # -- intake ---------------------------------------------------------
    def add(
        self, request: GemmRequest, decision: RoutingDecision, now: float
    ) -> Batch | None:
        """Bucket one request; returns a full batch the moment one fills."""
        key = compatibility_key(request, decision)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket(decision=decision, oldest_at=now)
        bucket.requests.append(request)
        get_registry().set_gauge("serve.batcher.pending", self.pending)
        if len(bucket.requests) >= self.max_batch_size:
            return self._form(key, now)
        return None

    def add_many(
        self,
        pairs: list[tuple[GemmRequest, RoutingDecision]],
        now: float,
    ) -> list[Batch]:
        """Bucket a same-instant burst of requests (shared grouping helper).

        Groups the burst with :func:`~repro.perf.bucketing.bucket_by_shape`
        before touching the buckets, so a burst that alone fills a batch
        forms it without ``len(pairs)`` dict probes.
        """
        ready: list[Batch] = []
        groups = bucket_by_shape(pairs, key=lambda p: compatibility_key(p[0], p[1]))
        for indices in groups.values():
            for i in indices:
                request, decision = pairs[i]
                batch = self.add(request, decision, now)
                if batch is not None:
                    ready.append(batch)
        return ready

    # -- windows --------------------------------------------------------
    def due(self, now: float) -> list[Batch]:
        """Batches whose oldest member has exhausted the wait window."""
        expired = [
            key
            for key, bucket in self._buckets.items()
            if now >= bucket.oldest_at + self.max_wait_s
        ]
        return [self._form(key, now) for key in expired]

    def next_due(self) -> float | None:
        """Earliest window expiry across pending buckets (None if empty)."""
        if not self._buckets:
            return None
        return min(b.oldest_at for b in self._buckets.values()) + self.max_wait_s

    def flush(self, now: float) -> list[Batch]:
        """Dispatch everything pending (shutdown / drain)."""
        return [self._form(key, now) for key in list(self._buckets)]

    @property
    def pending(self) -> int:
        return sum(len(b.requests) for b in self._buckets.values())

    # -- internals ------------------------------------------------------
    def _form(self, key: Hashable, now: float) -> Batch:
        bucket = self._buckets.pop(key)
        batch = Batch(
            key=key,
            decision=bucket.decision,
            requests=bucket.requests,
            created_at=bucket.oldest_at,
            dispatched_at=now,
            batch_id=self.batches_formed,
        )
        self.batches_formed += 1
        self.requests_batched += batch.size
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.batcher.batches")
            registry.observe("serve.batcher.batch_size", batch.size)
            registry.set_gauge("serve.batcher.pending", self.pending)
        return batch

    def stats(self) -> dict:
        return {
            "batches_formed": self.batches_formed,
            "requests_batched": self.requests_batched,
            "pending": self.pending,
            "mean_batch_size": (
                self.requests_batched / self.batches_formed
                if self.batches_formed
                else 0.0
            ),
        }
