"""Struct-of-array request bookkeeping for the serving hot path.

The event loop's per-request costs are dominated by Python object
traffic: every batch-urgency comparison walked a list of
:class:`~repro.serve.api.GemmRequest` objects, every expiry check ran an
attribute-access loop, every bucket kept a growing Python list.
:class:`RequestTable` replaces that bookkeeping with preallocated NumPy
columns — deadlines, priorities, shape keys, state — indexed by a
**slot** handle from a ring of free rows, so the hot paths become O(1)
scalar reads and vectorized column operations.

``GemmRequest`` objects still exist, but only at the API boundary: one
reference is parked in the table's object column when a request enters
the batcher and is read back when a response is materialized.  Batches
and device queues carry slot arrays, not object lists.

Slots are acquired when a request enters the batcher and released at
terminal resolution; the table doubles its capacity when the ring runs
dry, so a bounded in-flight population (admission control enforces one)
never reallocates in steady state.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["RequestState", "RequestTable"]


class RequestState(enum.IntEnum):
    """Lifecycle of one slot (the table's ``state`` column)."""

    FREE = 0
    QUEUED = 1      #: in a batcher bucket
    BATCHED = 2     #: in a formed batch (dispatched or device-queued)
    EXECUTING = 3   #: member of the batch a device is running


class RequestTable:
    """Preallocated struct-of-array storage for in-flight requests."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        #: absolute virtual-time deadline (inf = none)
        self.deadline_at = np.full(capacity, np.inf, dtype=np.float64)
        #: scheduling priority (larger = more urgent)
        self.priority = np.zeros(capacity, dtype=np.int64)
        #: virtual submission timestamp
        self.submitted_at = np.zeros(capacity, dtype=np.float64)
        #: virtual time the slot's request entered a formed batch
        #: (NaN while still queued) — the boundary the latency
        #: attribution layer (:mod:`repro.obs.latency`) splits a live
        #: request's wait at: before it is batching window, after it is
        #: queue/execution time
        self.batched_at = np.full(capacity, np.nan, dtype=np.float64)
        #: (m, k, n) shape key of the GEMM problem
        self.shape_mkn = np.zeros((capacity, 3), dtype=np.int64)
        #: RequestState per slot
        self.state = np.zeros(capacity, dtype=np.int8)
        #: serve-level retry attempts the slot's batch has consumed
        self.attempts = np.zeros(capacity, dtype=np.int16)
        #: 1 when a hedged duplicate launch covered the slot
        self.hedged = np.zeros(capacity, dtype=np.int8)
        #: API-boundary object column — the only per-request Python object
        self._requests: list = [None] * capacity
        # free-slot ring: _free[_head : _head+_free_count] (mod capacity)
        # holds every unoccupied row
        self._free = np.arange(capacity, dtype=np.int64)
        self._head = 0
        self._free_count = capacity

    # -- lifecycle -------------------------------------------------------
    def acquire(self, request) -> int:
        """Park one request; returns its slot handle."""
        if self._free_count == 0:
            self._grow()
        slot = int(self._free[self._head])
        self._head = (self._head + 1) % self.capacity
        self._free_count -= 1
        self.deadline_at[slot] = request.deadline_at
        self.priority[slot] = request.priority
        self.submitted_at[slot] = request.submitted_at
        self.shape_mkn[slot] = request.shape
        self.state[slot] = RequestState.QUEUED
        self.attempts[slot] = 0
        self.hedged[slot] = 0
        self.batched_at[slot] = np.nan
        self._requests[slot] = request
        return slot

    def release(self, slot: int) -> None:
        """Free one slot at terminal resolution."""
        self._requests[slot] = None
        self.state[slot] = RequestState.FREE
        self.deadline_at[slot] = np.inf
        self.attempts[slot] = 0
        self.hedged[slot] = 0
        self.batched_at[slot] = np.nan
        tail = (self._head + self._free_count) % self.capacity
        self._free[tail] = slot
        self._free_count += 1

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        for name in ("priority", "submitted_at", "state", "attempts", "hedged"):
            column = getattr(self, name)
            grown = np.zeros(new, dtype=column.dtype)
            grown[:old] = column
            setattr(self, name, grown)
        batched = np.full(new, np.nan, dtype=np.float64)
        batched[:old] = self.batched_at
        self.batched_at = batched
        deadline = np.full(new, np.inf, dtype=np.float64)
        deadline[:old] = self.deadline_at
        self.deadline_at = deadline
        shapes = np.zeros((new, 3), dtype=np.int64)
        shapes[:old] = self.shape_mkn
        self.shape_mkn = shapes
        self._requests.extend([None] * old)
        # every new row is free; the old ring was empty when we grew
        self._free = np.arange(old, new, dtype=np.int64)
        self._head = 0
        self._free_count = old
        # re-pad the ring array to the new capacity
        grown_free = np.zeros(new, dtype=np.int64)
        grown_free[:old] = self._free
        self._free = grown_free
        self.capacity = new

    # -- reads -----------------------------------------------------------
    def request(self, slot: int):
        """The API-boundary object parked in ``slot``."""
        return self._requests[slot]

    def requests_for(self, slots: np.ndarray) -> list:
        """Materialize the object list of a slot array (boundary only)."""
        column = self._requests
        return [column[int(s)] for s in slots]

    def shape(self, slot: int) -> tuple[int, int, int]:
        m, k, n = self.shape_mkn[slot]
        return (int(m), int(k), int(n))

    @property
    def in_use(self) -> int:
        return self.capacity - self._free_count
