"""Request/response contract of the precision-aware GEMM serving layer.

A :class:`GemmRequest` is one ``D = A @ B + C`` problem plus its service
contract:

* ``max_rel_error`` — the **accuracy SLO**: an upper bound on the
  relative forward error (against ``(|A| |B|)`` scaling) the caller will
  tolerate.  The router only considers kernels whose *analytic* bound
  (:func:`repro.fp.error.gemm_relative_error_bound`) certifies this —
  the accuracy counterpart of a latency SLO;
* ``deadline_s`` — relative latency deadline; a request that cannot
  start executing before its deadline is **expired**, never silently
  dropped;
* ``priority`` — larger runs sooner when queued work competes;
* ``reliable`` — route through ABFT checksum protection and the
  resilient fallback chain (:class:`repro.resilience.runner
  .ResilientRunner`) instead of the bare kernel.

Every submitted request is resolved to exactly one terminal
:class:`RequestStatus` — ``COMPLETED``, ``REJECTED`` (admission control
or no kernel can certify the SLO), ``EXPIRED``, or ``FAILED`` (the
fleet lost it to an infrastructure fault after exhausting recovery) —
so the accounting identity
``submitted == completed + rejected + expired + failed`` holds by
construction; the load-test report, the chaos campaign, and CI assert
it.

Requests may additionally consent to **graceful degradation**
(``degradable=True``): under a brownout (latched burn-rate alerts) the
service may route such a request to a cheaper kernel whose certified
bound satisfies only the *fallback* SLO
(``fallback_max_rel_error``, or the brownout controller's default).
This is never silent — the response carries ``degraded=True`` and the
actually-certified ``error_bound``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "RequestStatus",
    "GemmRequest",
    "GemmResponse",
    "ServeError",
    "SloUnsatisfiableError",
    "AdmissionError",
    "FleetExhaustedError",
]


class ServeError(RuntimeError):
    """Base class for serving-layer failures."""


class SloUnsatisfiableError(ServeError, ValueError):
    """No kernel on the menu can certify the request's accuracy SLO.

    Raised by the router (and surfaced as a ``REJECTED`` response with
    reason ``"slo-unsatisfiable"`` by the service) — an impossible SLO
    is a typed, immediate error, never a hang or a silently degraded
    result.
    """


class AdmissionError(ServeError):
    """The service is at capacity and refused the request (backpressure)."""


class FleetExhaustedError(ServeError):
    """Zero healthy devices remain in the fleet.

    Raised by :meth:`repro.serve.workers.WorkerPool.select` when every
    device has crashed (distinct from ``None`` = transient backpressure
    among healthy devices).  The service turns it into ``FAILED``
    responses — or a retry, if a restart is pending — never a hang.
    """


class RequestStatus(enum.Enum):
    """Terminal disposition of a submitted request."""

    COMPLETED = "completed"
    REJECTED = "rejected"
    EXPIRED = "expired"
    #: lost to an infrastructure fault after recovery was exhausted
    FAILED = "failed"


@dataclass(slots=True)
class GemmRequest:
    """One GEMM problem plus its accuracy/latency service contract."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray | None = None
    #: accuracy SLO: max tolerated relative forward error (analytic bound)
    max_rel_error: float = 1e-4
    #: relative deadline in (virtual) seconds; None = no deadline
    deadline_s: float | None = None
    #: larger = more urgent when queued work competes
    priority: int = 0
    #: route through ABFT + the resilient fallback chain
    reliable: bool = False
    #: consent to brownout degradation: under latched overload the
    #: service may serve this request at the (looser) fallback SLO
    degradable: bool = False
    #: per-request fallback accuracy SLO honored during a brownout;
    #: None defers to the brownout controller's configured default
    fallback_max_rel_error: float | None = None
    #: assigned by the service at submission
    request_id: int = -1
    #: virtual submission timestamp, assigned by the service
    submitted_at: float = 0.0
    #: stamped by the service when brownout routing relaxed the SLO
    degraded: bool = False

    def __post_init__(self) -> None:
        self.a = np.asarray(self.a, dtype=np.float32)
        self.b = np.asarray(self.b, dtype=np.float32)
        if self.a.ndim != 2 or self.b.ndim != 2:
            raise ValueError("GemmRequest operands must be 2-D matrices")
        if self.a.shape[1] != self.b.shape[0]:
            raise ValueError(
                f"k-dimension mismatch: {self.a.shape} x {self.b.shape}"
            )
        if self.c is not None:
            self.c = np.asarray(self.c, dtype=np.float32)
            if self.c.shape != self.shape_mn:
                raise ValueError(
                    f"C shape {self.c.shape} != output shape {self.shape_mn}"
                )
        if not self.max_rel_error > 0.0:
            raise ValueError("max_rel_error must be positive")
        if self.fallback_max_rel_error is not None and not self.fallback_max_rel_error > 0.0:
            raise ValueError("fallback_max_rel_error must be positive (or None)")
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ValueError("deadline_s must be positive (or None)")

    @property
    def shape(self) -> tuple[int, int, int]:
        """The ``(m, k, n)`` problem shape — the batching coalescing key."""
        return (self.a.shape[0], self.a.shape[1], self.b.shape[1])

    @property
    def shape_mn(self) -> tuple[int, int]:
        return (self.a.shape[0], self.b.shape[1])

    @property
    def deadline_at(self) -> float:
        """Absolute virtual-time deadline (inf when none was set)."""
        if self.deadline_s is None:
            return float("inf")
        return self.submitted_at + self.deadline_s


@dataclass(slots=True)
class GemmResponse:
    """Terminal outcome of one request, with full provenance."""

    request_id: int
    status: RequestStatus
    #: the product, present iff status is COMPLETED
    d: np.ndarray | None = None
    #: kernel that produced the result (routing decision)
    kernel: str | None = None
    #: analytic relative-error bound the routed kernel certifies
    error_bound: float | None = None
    #: device that executed the batch
    device: str | None = None
    #: size of the coalesced batch this request rode in
    batch_size: int = 0
    #: why the request was rejected/expired (None when completed)
    reason: str | None = None
    #: virtual seconds spent queued (batcher + device queue)
    queued_s: float = 0.0
    #: virtual seconds of execution (the batch's service time)
    service_s: float = 0.0
    #: end-to-end virtual latency (completion - submission)
    latency_s: float = 0.0
    #: resilient-runner provenance for reliable=True requests
    attempts: list = field(default_factory=list)
    #: True when the brownout controller served the fallback SLO; the
    #: certified ``error_bound`` then exceeds the request's original
    #: ``max_rel_error`` but is at most the declared fallback SLO
    degraded: bool = False
    #: serve-level batch retries this request's batch consumed
    retries: int = 0
    #: True when a hedged duplicate launch covered this request
    hedged: bool = False

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.COMPLETED
