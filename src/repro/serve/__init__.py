"""``repro.serve``: a precision-aware GEMM serving layer.

The paper's kernels form an accuracy-throughput frontier; this package
turns that frontier into a *service*: callers submit GEMMs with an
accuracy SLO (``max_rel_error``), an optional deadline, a priority, and
a reliability flag, and the layer routes, batches, and executes them on
a simulated multi-GPU fleet.

The pieces (see ``docs/serving.md`` for the full tour):

* :mod:`~repro.serve.api`     — :class:`GemmRequest` / :class:`GemmResponse`
  and the typed error taxonomy;
* :mod:`~repro.serve.router`  — cheapest kernel whose *analytic* error
  bound (:func:`repro.fp.error.gemm_relative_error_bound`) certifies
  the SLO;
* :mod:`~repro.serve.batcher` — dynamic batching by shape/kernel
  compatibility, bit-identical coalescing through ``run_batched``;
* :mod:`~repro.serve.workers` — bounded per-device queues, placement,
  work stealing, backpressure;
* :mod:`~repro.serve.service` — the deterministic discrete-event engine
  tying it together in virtual time;
* :mod:`~repro.serve.loadgen` — seeded open/closed-loop load tests and
  the ``SERVE_slo.json`` report (``python -m repro serve``);
* :mod:`~repro.serve.recovery` — retry/hedge/brownout policy keeping the
  accounting identity exact under fleet faults;
* :mod:`~repro.serve.chaos`   — the seeded fleet-fault scenario catalogue
  and the ``CHAOS_campaign.json`` campaign (``python -m repro chaos``,
  see ``docs/robustness.md``).
"""

from __future__ import annotations

from .api import (
    AdmissionError,
    FleetExhaustedError,
    GemmRequest,
    GemmResponse,
    RequestStatus,
    ServeError,
    SloUnsatisfiableError,
)
from .batcher import Batch, DynamicBatcher, compatibility_key
from .loadgen import SCHEMA, UNITS, build_report, run_load_test, validate_slo_report
from .recovery import BackoffPolicy, BrownoutConfig, BrownoutController, RecoveryConfig
from .router import (
    DEFAULT_MENU,
    PrecisionRouter,
    RoutingDecision,
    kernel_blockwise_slices,
    kernel_error_model,
)
from .service import GemmService, ServeConfig, serve_stats
from .workers import DeviceWorker, WorkerPool

# .chaos imports .loadgen and .service, so it comes last
from .chaos import (  # noqa: E402  (import cycle guard, not style)
    CHAOS_SCHEMA,
    SCENARIOS,
    ChaosSchedule,
    build_schedule,
    run_campaign,
    validate_chaos_report,
)

__all__ = [
    "AdmissionError",
    "BackoffPolicy",
    "Batch",
    "BrownoutConfig",
    "BrownoutController",
    "CHAOS_SCHEMA",
    "ChaosSchedule",
    "DEFAULT_MENU",
    "DeviceWorker",
    "DynamicBatcher",
    "FleetExhaustedError",
    "GemmRequest",
    "GemmResponse",
    "GemmService",
    "PrecisionRouter",
    "RecoveryConfig",
    "RequestStatus",
    "RoutingDecision",
    "SCENARIOS",
    "SCHEMA",
    "UNITS",
    "ServeConfig",
    "ServeError",
    "SloUnsatisfiableError",
    "WorkerPool",
    "build_report",
    "build_schedule",
    "compatibility_key",
    "kernel_blockwise_slices",
    "kernel_error_model",
    "run_campaign",
    "run_load_test",
    "serve_stats",
    "validate_chaos_report",
    "validate_slo_report",
]
