"""``repro.serve``: a precision-aware GEMM serving layer.

The paper's kernels form an accuracy-throughput frontier; this package
turns that frontier into a *service*: callers submit GEMMs with an
accuracy SLO (``max_rel_error``), an optional deadline, a priority, and
a reliability flag, and the layer routes, batches, and executes them on
a simulated multi-GPU fleet.

The pieces (see ``docs/serving.md`` for the full tour):

* :mod:`~repro.serve.api`     — :class:`GemmRequest` / :class:`GemmResponse`
  and the typed error taxonomy;
* :mod:`~repro.serve.router`  — cheapest kernel whose *analytic* error
  bound (:func:`repro.fp.error.gemm_relative_error_bound`) certifies
  the SLO;
* :mod:`~repro.serve.batcher` — dynamic batching by shape/kernel
  compatibility, bit-identical coalescing through ``run_batched``;
* :mod:`~repro.serve.workers` — bounded per-device queues, placement,
  work stealing, backpressure;
* :mod:`~repro.serve.service` — the deterministic discrete-event engine
  tying it together in virtual time;
* :mod:`~repro.serve.loadgen` — seeded open/closed-loop load tests and
  the ``SERVE_slo.json`` report (``python -m repro serve``).
"""

from __future__ import annotations

from .api import (
    AdmissionError,
    GemmRequest,
    GemmResponse,
    RequestStatus,
    ServeError,
    SloUnsatisfiableError,
)
from .batcher import Batch, DynamicBatcher, compatibility_key
from .loadgen import SCHEMA, UNITS, build_report, run_load_test, validate_slo_report
from .router import DEFAULT_MENU, PrecisionRouter, RoutingDecision, kernel_error_model
from .service import GemmService, ServeConfig, serve_stats
from .workers import DeviceWorker, WorkerPool

__all__ = [
    "AdmissionError",
    "Batch",
    "DEFAULT_MENU",
    "DeviceWorker",
    "DynamicBatcher",
    "GemmRequest",
    "GemmResponse",
    "GemmService",
    "PrecisionRouter",
    "RequestStatus",
    "RoutingDecision",
    "SCHEMA",
    "UNITS",
    "ServeConfig",
    "ServeError",
    "SloUnsatisfiableError",
    "WorkerPool",
    "build_report",
    "compatibility_key",
    "kernel_error_model",
    "run_load_test",
    "serve_stats",
    "validate_slo_report",
]
