"""Seeded load generation and SLO reporting for the serving layer.

``python -m repro serve`` drives :class:`~repro.serve.service
.GemmService` with a reproducible synthetic workload and writes
``SERVE_slo.json`` — the serving counterpart of ``BENCH_perf.json``:

* **open loop** (``--arrival poisson`` / ``uniform``) — arrivals follow
  a seeded renewal process at ``--rate`` requests/s, independent of
  completions (the load-test regime that exposes queueing and
  backpressure);
* **closed loop** (``--arrival closed``) — ``--concurrency`` requests
  are kept in flight; each resolution immediately submits the next (the
  throughput-probing regime).

The request mix spans the router's whole decision space: several
``(m, k, n)`` shapes, accuracy-SLO tiers from "any kernel qualifies"
down to "fp32 only" plus a sliver of deliberately impossible SLOs
(typed rejections), optional deadlines tight enough that some requests
expire, a reliable (ABFT-routed) fraction, and mixed priorities.

Everything — operands, SLO draws, arrival gaps — comes from one
``numpy`` generator seeded by ``--seed``, and the service runs in
virtual time, so two runs with the same flags produce byte-identical
reports.  :func:`validate_slo_report` is the schema contract CI holds
the artifact to.
"""

from __future__ import annotations

import json

import numpy as np

from ..obs.metrics import Histogram, get_registry
from .api import GemmRequest, GemmResponse
from .service import GemmService, ServeConfig

__all__ = [
    "SCHEMA",
    "UNITS",
    "make_request",
    "open_loop_arrivals",
    "run_load_test",
    "build_report",
    "validate_slo_report",
    "main",
]

#: report schema identifier, bumped on breaking field changes
#: (v2: every time/latency field is explicitly *virtual* seconds, the
#: ``units`` block documents them, devices gain ``utilization``, and the
#: optional ``slo_monitor``/``trace_chain`` blocks carry the burn-rate
#: and span-chain telemetry)
SCHEMA = "repro.serve.slo/2"

#: the unit contract of every time-valued field in the report.  All of
#: them are **virtual** (discrete-event clock) seconds — a device's
#: ``busy_s`` of 0.0028 s over a 0.0065 s run means 44% utilization,
#: not a wall-clock measurement
UNITS = {
    "virtual_s": "virtual seconds (total discrete-event span of the run)",
    "latency_s": "virtual seconds (submission to terminal resolution)",
    "throughput_rps": "completed requests per virtual second",
    "devices.busy_s": "virtual seconds of modelled batch execution",
    "devices.utilization": "busy_s / virtual_s (fraction of the run)",
    "batcher.max_wait_s": "virtual seconds",
}

#: problem shapes (m, k, n) — small enough that the functional kernels
#: stay cheap, varied enough to span the launch-overhead regime (where
#: the fp32 CUDA-core kernel is cheapest) and the Tensor-Core-win regime
#: (where the emulated kernels are)
SHAPES = ((32, 32, 32), (64, 32, 64), (16, 64, 16), (128, 32, 128), (192, 32, 192))

#: accuracy-SLO tier classes with draw weights.  The strict tiers are
#: *k-aware*: drawn between adjacent kernels' analytic bounds at the
#: request's own k, so every class of the accuracy-throughput frontier
#: is exercised deterministically — "precise" admits the 21-bit
#: round-split kernels but excludes the 20-bit truncate class, "strict"
#: drops below the round-split class (leaving fp32 — and, for low-spread
#: operands only, the int8 Ozaki path, whose operand-dependent blockwise
#: certificate floors below fp32's bound at k >= 32 but degrades with
#: the operands' magnitude spread), and "impossible" sits below every bound on the menu
#: (the floor is ``2 * 2^-24`` — fp32's input rounding), forcing the
#: typed rejection path.
SLO_TIERS = (
    ("loose", 0.30),
    ("extended", 0.30),
    ("precise", 0.20),
    ("strict", 0.17),
    ("impossible", 0.03),
)


_TIER_NAMES = tuple(name for name, _ in SLO_TIERS)
# The tier draw replicates ``rng.choice(len(tiers), p=w / w.sum())``
# bit-for-bit without the per-call validation and cumsum: numpy's
# ``Generator.choice`` normalizes p, takes its cumulative sum, rescales
# by the last entry, draws ONE uniform double, and searchsorts it
# (side="right").  Precomputing the same CDF once and consuming the same
# single ``rng.random()`` keeps the request stream byte-identical.
_TIER_WEIGHTS = np.array([weight for _, weight in SLO_TIERS])
_TIER_CDF = (_TIER_WEIGHTS / _TIER_WEIGHTS.sum()).cumsum()
_TIER_CDF /= _TIER_CDF[-1]

_TIER_SLO_MEMO: dict[tuple[str, int], float] = {}


def _tier_slo(tier: str, k: int) -> float:
    """Map a tier class to a concrete max_rel_error at reduction depth k."""
    key = (tier, k)
    slo = _TIER_SLO_MEMO.get(key)
    if slo is not None:
        return slo
    from ..fp.error import gemm_relative_error_bound

    round_split = gemm_relative_error_bound(k, 21)  # egemm / tc-emulation
    truncate = gemm_relative_error_bound(k, 20)  # markidis
    fp32 = gemm_relative_error_bound(k, 23)
    if tier == "loose":
        slo = 1e-2
    elif tier == "extended":
        slo = 1e-4
    elif tier == "precise":
        slo = (round_split + truncate) / 2.0
    elif tier == "strict":
        slo = (fp32 + round_split) / 2.0
    else:
        slo = 1e-9  # impossible: below every menu bound for any k >= 1
    _TIER_SLO_MEMO[key] = slo
    return slo


def make_request(rng: np.random.Generator, mean_service_s: float = 1e-5) -> GemmRequest:
    """Draw one request from the seeded workload mix."""
    m, k, n = SHAPES[int(rng.integers(len(SHAPES)))]
    tier = _TIER_NAMES[int(_TIER_CDF.searchsorted(rng.random(), side="right"))]
    slo = _tier_slo(tier, k)
    if rng.random() < 0.15:
        # block-scaled share: per-row (A) / per-column (B) constant
        # magnitudes with varying sign — operand spread exactly 1, the
        # regime where the blockwise int8 kernel's operand-dependent
        # certificate reaches its floor.  This exercises the router's
        # second (operand-aware) stage in *both* directions: these
        # requests confirm the blockwise nominee, while the
        # heterogeneous standard-normal majority falls back.
        sign_a = np.where(rng.random((m, k)) < 0.5, -1.0, 1.0)
        sign_b = np.where(rng.random((k, n)) < 0.5, -1.0, 1.0)
        a = (sign_a * np.exp2(rng.uniform(-4.0, 4.0, (m, 1)))).astype(np.float32)
        b = (sign_b * np.exp2(rng.uniform(-4.0, 4.0, (1, n)))).astype(np.float32)
    else:
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
    c = None
    if rng.random() < 0.1:
        c = rng.standard_normal((m, n)).astype(np.float32)
    deadline = None
    if rng.random() < 0.25:
        # headroom for one full batching window plus an exponential
        # service allowance: most deadline-carrying requests complete,
        # the short draws expire while queued or batched
        deadline = 150e-6 + float(rng.exponential(10.0 * mean_service_s))
    return GemmRequest(
        a=a,
        b=b,
        c=c,
        max_rel_error=slo,
        deadline_s=deadline,
        priority=int(rng.integers(0, 4)),
        reliable=bool(rng.random() < 0.05),
    )


def open_loop_arrivals(
    rng: np.random.Generator, count: int, rate_rps: float, arrival: str
):
    """Seeded renewal arrival schedule: ``(time, request)`` pairs."""
    t = 0.0
    for _ in range(count):
        if arrival == "poisson":
            t += float(rng.exponential(1.0 / rate_rps))
        else:  # uniform: deterministic spacing
            t += 1.0 / rate_rps
        yield t, make_request(rng)


def run_load_test(
    requests: int,
    seed: int = 0,
    arrival: str = "poisson",
    rate_rps: float = 150_000.0,
    concurrency: int = 16,
    config: ServeConfig | None = None,
    observer=None,
    accuracy_sampler=None,
) -> tuple[GemmService, dict[int, GemmResponse]]:
    """Drive one seeded load test; returns the service and its responses.

    ``observer`` (a :class:`repro.obs.serving.ServeObserver`) rides the
    service's lifecycle callbacks: it sees every admission, routing
    decision, batch formation, dispatch, execution, and terminal
    resolution in virtual time, and feeds the flight recorder, burn-rate
    monitors, and per-request Chrome trace.  ``accuracy_sampler`` (a
    :class:`repro.obs.accuracy.AccuracySampler`) shadow-samples completed
    responses for post-drain float64 verification; it never perturbs the
    workload stream or the served results.
    """
    if arrival not in ("poisson", "uniform", "closed"):
        raise ValueError(f"unknown arrival process {arrival!r}")
    rng = np.random.default_rng(seed)
    service = GemmService(config, observer=observer, accuracy_sampler=accuracy_sampler)
    if arrival == "closed":
        remaining = [requests - min(concurrency, requests)]

        def on_complete(_response: GemmResponse, _now: float) -> list[GemmRequest]:
            if remaining[0] <= 0:
                return []
            remaining[0] -= 1
            return [make_request(rng)]

        seeds = [(0.0, make_request(rng)) for _ in range(min(concurrency, requests))]
        responses = service.run(seeds, on_complete=on_complete)
    else:
        responses = service.run(open_loop_arrivals(rng, requests, rate_rps, arrival))
    return service, responses


def _latency_summary(latencies: list[float]) -> dict:
    """Exact-quantile latency block via :class:`~repro.obs.metrics.Histogram`.

    Feeds the completed-request latencies through a histogram sized to
    retain every sample, so p50/p95/p99 come from
    :meth:`Histogram.quantile`'s linear interpolation over the *raw*
    samples (``numpy.percentile``-compatible), not bucket midpoints.
    """
    hist = Histogram(sample_limit=max(len(latencies), 1))
    for value in latencies:
        hist.observe(value)
    return {
        "mean": float(np.mean(latencies)) if latencies else 0.0,
        "p50": hist.quantile(0.50) or 0.0,
        "p95": hist.quantile(0.95) or 0.0,
        "p99": hist.quantile(0.99) or 0.0,
        "max": max(latencies) if latencies else 0.0,
    }


def build_report(service: GemmService, workload: dict, observer=None) -> dict:
    """Assemble the ``SERVE_slo.json`` payload from a finished service.

    All time fields are **virtual** seconds (see :data:`UNITS`).  With an
    ``observer`` the report additionally carries the burn-rate monitor
    summary (``slo_monitor``) and the span-chain coverage audit
    (``trace_chain``).
    """
    stats = service.stats()
    virtual_s = stats["virtual_s"]
    devices = {}
    for name, dev in stats["pool"]["devices"].items():
        dev = dict(dev)
        dev["utilization"] = (
            dev.get("busy_s", 0.0) / virtual_s if virtual_s > 0 else 0.0
        )
        devices[name] = dev
    report = {
        "schema": SCHEMA,
        "units": dict(UNITS),
        "workload": workload,
        "counts": {
            "submitted": stats["submitted"],
            "completed": stats["completed"],
            "rejected": stats["rejected"],
            "expired": stats["expired"],
            "failed": stats["failed"],
        },
        "throughput_rps": (
            stats["completed"] / virtual_s if virtual_s > 0 else 0.0
        ),
        "latency_s": _latency_summary(service.latencies),
        "batch_size_histogram": stats["batch_size_counts"],
        "routing_mix": stats["routing_mix"],
        "reject_reasons": stats["reject_reasons"],
        "devices": devices,
        "batcher": stats["batcher"],
        "router": stats["router"],
        "virtual_s": virtual_s,
    }
    if observer is not None:
        report["slo_monitor"] = observer.slo_summary()
        report["trace_chain"] = observer.chain_report()
    return report


def validate_slo_report(report: dict) -> list[str]:
    """Schema + invariant check of a load-test report; returns problems.

    CI fails the smoke step on any returned string.  Checks both the
    shape of the document and the accounting identity (zero silent
    drops): ``submitted == completed + rejected + expired + failed``
    (``failed`` is zero on every fault-free run and absent from
    pre-chaos reports).
    """
    problems: list[str] = []
    if report.get("schema") != SCHEMA:
        problems.append(f"schema is {report.get('schema')!r}, expected {SCHEMA!r}")
    units = report.get("units")
    if not isinstance(units, dict):
        problems.append("units missing or not an object")
    else:
        for key in UNITS:
            if key not in units:
                problems.append(f"units.{key} undocumented")
    counts = report.get("counts")
    if not isinstance(counts, dict):
        return problems + ["counts missing"]
    for key in ("submitted", "completed", "rejected", "expired"):
        if not isinstance(counts.get(key), int) or counts.get(key, -1) < 0:
            problems.append(f"counts.{key} missing or negative")
    # ``failed`` (fleet faults past the retry budget) is optional for
    # backward compatibility with pre-chaos reports, but when present it
    # joins the accounting identity.
    if "failed" in counts and (
        not isinstance(counts["failed"], int) or counts["failed"] < 0
    ):
        problems.append("counts.failed present but not a non-negative int")
    if not problems:
        resolved = (counts["completed"] + counts["rejected"] + counts["expired"]
                    + counts.get("failed", 0))
        if resolved != counts["submitted"]:
            problems.append(
                f"silent drops: submitted={counts['submitted']} but only "
                f"{resolved} resolved"
            )
    for key in ("latency_s", "batch_size_histogram", "routing_mix",
                "reject_reasons", "devices", "batcher", "router", "workload"):
        if not isinstance(report.get(key), dict):
            problems.append(f"{key} missing or not an object")
    lat = report.get("latency_s", {})
    for q in ("mean", "p50", "p95", "p99", "max"):
        if not isinstance(lat.get(q), (int, float)):
            problems.append(f"latency_s.{q} missing")
    hist = report.get("batch_size_histogram", {})
    if isinstance(hist, dict):
        coalesced = sum(int(size) * count for size, count in hist.items())
        if isinstance(counts.get("completed"), int) and coalesced < counts["completed"]:
            problems.append(
                f"batch histogram covers {coalesced} requests but "
                f"{counts['completed']} completed"
            )
    if not isinstance(report.get("throughput_rps"), (int, float)):
        problems.append("throughput_rps missing")
    devices = report.get("devices")
    if isinstance(devices, dict):
        for name, dev in devices.items():
            if not isinstance(dev, dict) or not isinstance(
                dev.get("utilization"), (int, float)
            ):
                problems.append(f"devices.{name}.utilization missing")
    for key in ("slo_monitor", "trace_chain"):
        if key in report and not isinstance(report[key], dict):
            problems.append(f"{key} present but not an object")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro serve [--requests N] [--arrival poisson]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="precision-aware GEMM serving load test (see docs/serving.md)",
    )
    parser.add_argument("--requests", type=int, default=1000, help="requests to submit")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--arrival", choices=("poisson", "uniform", "closed"), default="poisson",
        help="arrival process (open-loop poisson/uniform, or closed-loop)",
    )
    parser.add_argument("--rate", type=float, default=150_000.0,
                        help="open-loop arrival rate, requests/s (virtual time)")
    parser.add_argument("--concurrency", type=int, default=16,
                        help="closed-loop in-flight requests")
    parser.add_argument("--devices", default="t4,t4,rtx6000",
                        help="comma-separated GPU fleet")
    parser.add_argument("--max-batch", type=int, default=8, help="max coalesced batch size")
    parser.add_argument("--max-wait-us", type=float, default=200.0,
                        help="dynamic batching window, microseconds")
    parser.add_argument("--queue-capacity", type=int, default=4,
                        help="queued batches per device (0 = rendezvous)")
    parser.add_argument("--max-in-flight", type=int, default=256,
                        help="admission-control bound on unresolved requests")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 200 requests unless --requests given")
    parser.add_argument("--out", default="SERVE_slo.json", help="report path (JSON)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a per-request Chrome trace (virtual-time) here")
    parser.add_argument("--flight-log", default=None, metavar="PATH",
                        help="dump the flight-recorder JSONL here "
                             "(postmortem input; see docs/observability.md)")
    parser.add_argument("--history", default="BENCH_history.jsonl", metavar="PATH",
                        help="benchmark-history JSONL to append this run to")
    parser.add_argument("--no-history", action="store_true",
                        help="skip appending to the benchmark history")
    parser.add_argument("--min-wall-rps", type=float, default=None, metavar="RPS",
                        help="wall-throughput floor: exit 1 if completed requests "
                             "per real second fall below this (CI regression gate)")
    parser.add_argument("--tuning-db", default=None, metavar="PATH",
                        help="TUNE_db.json from `python -m repro tune`; routers "
                             "price tuned configurations from it (docs/tuning.md)")
    args = parser.parse_args(argv)

    requests = args.requests
    if args.quick and "--requests" not in (argv or []):
        requests = 200
    config = ServeConfig(
        devices=tuple(args.devices.split(",")),
        max_batch_size=args.max_batch,
        max_wait_s=args.max_wait_us * 1e-6,
        queue_capacity=args.queue_capacity,
        max_in_flight=args.max_in_flight,
        tuning_db=args.tuning_db,
    )
    from ..obs.serving import ServeObserver

    # A deadline shorter than the batching window is structurally
    # infeasible — the batcher is *designed* to hold a request up to
    # max_wait_s — so such expiries are client errors, not server burn.
    observer = ServeObserver(infeasible_deadline_s=config.max_wait_s)
    import time as _time

    # Warm the analytic kernel model before the timed region: the
    # tiling solver's design-space scan is a one-time per-process cost
    # (memoized by GPU spec), not serving work — the bench pillar
    # excludes it the same way via its best-of-N policy.
    from ..gpu import get_gpu
    from ..model.solver import solve

    for name in set(config.devices):
        solve(get_gpu(name))

    wall_t0 = _time.perf_counter()
    service, _responses = run_load_test(
        requests,
        seed=args.seed,
        arrival=args.arrival,
        rate_rps=args.rate,
        concurrency=args.concurrency,
        config=config,
        observer=observer,
    )
    wall_seconds = _time.perf_counter() - wall_t0
    wall_rps = service.completed / wall_seconds if wall_seconds > 0 else 0.0
    workload = {
        "requests": requests,
        "seed": args.seed,
        "arrival": args.arrival,
        "rate_rps": args.rate,
        "concurrency": args.concurrency,
        "devices": list(config.devices),
        "max_batch_size": config.max_batch_size,
        "max_wait_s": config.max_wait_s,
        "queue_capacity": config.queue_capacity,
        "max_in_flight": config.max_in_flight,
        "quick": bool(args.quick),
    }
    if config.tuning_db is not None:
        # Recorded only when tuning is on: the default report's bytes
        # must not move when no database is attached.
        workload["tuning_db"] = config.tuning_db
    report = build_report(service, workload, observer=observer)
    problems = validate_slo_report(report)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    if args.trace:
        from ..obs.export import run_manifest, write_chrome_trace

        events = observer.chrome_trace_events()
        try:
            # write_chrome_trace validates before writing (raises on a
            # structurally broken document)
            write_chrome_trace(args.trace, events, manifest=run_manifest())
        except ValueError as exc:
            problems.append(f"trace: {exc}")
        else:
            print(f"chrome trace: {len(events)} events -> {args.trace}")
    if args.flight_log:
        from ..obs.export import run_manifest

        observer.recorder.dump_jsonl(args.flight_log, manifest=run_manifest())
        print(f"flight log: {len(observer.recorder.events())} events -> "
              f"{args.flight_log} (postmortem: python -m repro postmortem "
              f"<request-id> --log {args.flight_log})")
    if not args.no_history:
        from ..obs.benchtrack import append_record, make_record
        from ..obs.export import run_manifest

        chain = report.get("trace_chain", {})
        slo_block = report.get("slo_monitor", {})
        record = make_record(
            "serve",
            {
                "throughput_rps": report["throughput_rps"],
                "latency_p50_s": report["latency_s"]["p50"],
                "latency_p95_s": report["latency_s"]["p95"],
                "latency_p99_s": report["latency_s"]["p99"],
                "completed": report["counts"]["completed"],
                "rejected": report["counts"]["rejected"],
                "expired": report["counts"]["expired"],
                "virtual_s": report["virtual_s"],
                "chain_coverage": chain.get("coverage", 0.0),
                # the *good fraction* under feasibility-aware
                # classification (1.0 = fully compliant), not a boolean
                # coerced to 0.0/1.0 — the pre-fix reading of 0.0 was a
                # False flag produced by infeasible deadlines (shorter
                # than the batching window) burning the server's budget
                "latency_slo_compliant": 1.0
                - slo_block.get("latency", {}).get("bad_fraction", 0.0),
                "latency_slo_met": bool(
                    slo_block.get("latency", {}).get("compliant", False)
                ),
                "latency_infeasible_excluded": slo_block.get("latency", {}).get(
                    "infeasible_excluded", 0
                ),
                # real wall clock of the whole load test (generation +
                # event loop + math) — informational, machine-dependent
                "wall_seconds": wall_seconds,
                "requests_per_wall_second": wall_rps,
            },
            quick=bool(args.quick),
            manifest=run_manifest(),
        )
        append_record(args.history, record)
        print(f"history: serve record appended to {args.history}")

    counts = report["counts"]
    lat = report["latency_s"]
    print(
        f"serve: {counts['submitted']} submitted -> "
        f"{counts['completed']} completed, {counts['rejected']} rejected, "
        f"{counts['expired']} expired ({report['virtual_s'] * 1e3:.3f} virtual ms)"
    )
    print(
        f"latency: p50 {lat['p50'] * 1e6:.1f} us, p95 {lat['p95'] * 1e6:.1f} us, "
        f"p99 {lat['p99'] * 1e6:.1f} us; throughput "
        f"{report['throughput_rps'] / 1e3:.1f} k req/s (virtual)"
    )
    mix = ", ".join(f"{k}: {v}" for k, v in report["routing_mix"].items())
    print(f"routing mix: {mix or 'none'}")
    mean_bs = report["batcher"].get("mean_batch_size", 0.0)
    print(f"batching: {report['batcher']['batches_formed']} batches, "
          f"mean size {mean_bs:.2f}")
    chain = report.get("trace_chain", {})
    slo_block = report.get("slo_monitor", {})
    lat_mon = slo_block.get("latency", {})
    print(
        f"span chains: {chain.get('complete_chains', 0)}/{chain.get('completed', 0)} "
        f"complete ({chain.get('coverage', 0.0):.1%}); latency SLO "
        f"{'compliant' if lat_mon.get('compliant') else 'VIOLATED'} "
        f"(bad fraction {lat_mon.get('bad_fraction', 0.0):.4f}, "
        f"{lat_mon.get('alerts', 0)} burn-rate alerts)"
    )
    provider = get_registry().snapshot()["providers"].get("serve.service", {})
    print(f"lifetime (registry): {provider.get('submitted', 0)} submitted across "
          f"{provider.get('services', 0)} live + "
          f"{provider.get('retired_services', 0)} retired services")
    print(f"wall clock: {wall_seconds * 1e3:.1f} ms for {service.completed} "
          f"completed -> {wall_rps:.0f} req/s (real time)")
    if problems:
        for problem in problems:
            print(f"SCHEMA PROBLEM: {problem}")
        return 1
    if args.min_wall_rps is not None and wall_rps < args.min_wall_rps:
        print(f"WALL-THROUGHPUT FLOOR VIOLATED: {wall_rps:.0f} req/s < "
              f"--min-wall-rps {args.min_wall_rps:.0f}")
        return 1
    print(f"report written to {args.out} (schema {SCHEMA}, accounting exact)")
    return 0
