"""Recovery policy for the serving fleet: retry, hedge, brownout.

Three mechanisms keep the accounting identity
``submitted == completed + rejected + expired + failed`` true — and the
failure count small — under the fleet faults of
:mod:`repro.serve.chaos`:

* **retry** — a batch that hits backpressure, a launch fault, or a
  device crash is re-dispatched after a capped exponential backoff with
  deterministic jitter (:class:`~repro.resilience.backoff
  .BackoffPolicy`, the same implementation the kernel-level
  :class:`~repro.resilience.runner.ResilientRunner` uses).  Members
  whose deadline passes while the batch waits out its backoff are
  expired, never silently dropped;
* **hedging** — a batch still sitting in a device queue after
  ``hedge_after_s`` (a straggler behind a stalled device) gets a
  duplicate launch on an idle device.  The first copy to finish
  resolves the members; the loser is cancelled without executing
  (first-wins).  Both copies run the same kernel on the same operands,
  so the winner's bits are identical regardless of which copy wins;
* **brownout** — when the observer's latency burn-rate monitor
  (:class:`repro.obs.slo.BurnRateMonitor`) has a latched alert, the
  :class:`BrownoutController` enters the brownout state and newly
  submitted ``degradable=True`` requests are routed against their
  *fallback* SLO instead of their primary one — the cheapest kernel
  whose Higham bound certifies the fallback, stamped
  ``degraded=True`` on the response.  The controller exits brownout
  only after alerts clear and a hold period elapses (hysteresis).

Everything here is policy/configuration; the mechanics live in
:class:`repro.serve.service.GemmService`'s event loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..resilience.backoff import BackoffPolicy

__all__ = [
    "BackoffPolicy",
    "BrownoutConfig",
    "RecoveryConfig",
    "BrownoutController",
]


@dataclass(frozen=True)
class BrownoutConfig:
    """Graceful-degradation policy under latched overload alerts."""

    #: fallback accuracy SLO applied to ``degradable`` requests that do
    #: not declare their own ``fallback_max_rel_error``
    fallback_max_rel_error: float = 5e-2
    #: virtual seconds the controller stays in brownout after the last
    #: latched alert clears (hysteresis against flapping)
    hold_s: float = 5e-4

    def __post_init__(self) -> None:
        if not self.fallback_max_rel_error > 0.0:
            raise ValueError("fallback_max_rel_error must be positive")
        if self.hold_s < 0.0:
            raise ValueError("hold_s must be non-negative")


@dataclass(frozen=True)
class RecoveryConfig:
    """Which recovery mechanisms a :class:`GemmService` runs, and how.

    All three default to off — a config of ``RecoveryConfig()`` (or a
    service with no recovery config at all) behaves byte-identically to
    the pre-recovery service.
    """

    #: serve-level batch retry policy; None disables retries (faults
    #: and backpressure resolve terminally on first occurrence)
    retry: BackoffPolicy | None = None
    #: queued batches older than this get a hedged duplicate launch on
    #: an idle device; None disables hedging
    hedge_after_s: float | None = None
    #: brownout/graceful-degradation policy; None disables degradation
    brownout: BrownoutConfig | None = None

    def __post_init__(self) -> None:
        if self.hedge_after_s is not None and self.hedge_after_s <= 0.0:
            raise ValueError("hedge_after_s must be positive (or None)")


class BrownoutController:
    """Two-state (normal/brownout) controller over a burn-rate monitor.

    ``update(now)`` is called by the service at each submission:

    * **normal → brownout** on the rising edge of any latched alert in
      the monitored :class:`~repro.obs.slo.BurnRateMonitor`;
    * **brownout → normal** once no alert is latched *and* ``hold_s``
      virtual seconds have passed since the last instant an alert was
      observed latched (hysteresis: a flapping monitor cannot toggle
      degradation per-request).
    """

    def __init__(self, config: BrownoutConfig, monitor) -> None:
        self.config = config
        self.monitor = monitor
        self.active = False
        self.activations = 0
        self.degraded = 0
        self.entered_at = 0.0
        self.brownout_s = 0.0
        #: timestamped state-change log ``(virtual_t, active)`` — the
        #: event record the latency-attribution layer joins degradation
        #: windows against (brownout routing changes which kernel a
        #: request's execution time was priced on)
        self.transitions: list[tuple[float, bool]] = []
        self._last_latched = float("-inf")

    def update(self, now: float) -> bool:
        """Advance the state machine; returns the (possibly new) state."""
        latched = bool(self.monitor.alerting)
        if latched:
            self._last_latched = now
            if not self.active:
                self.active = True
                self.activations += 1
                self.entered_at = now
                self.transitions.append((now, True))
        elif self.active and now >= self._last_latched + self.config.hold_s:
            self.active = False
            self.brownout_s += now - self.entered_at
            self.transitions.append((now, False))
        return self.active

    def fallback_slo(self, request) -> float:
        """The effective (relaxed) SLO for one degradable request.

        Never tighter than the request's own ``max_rel_error`` — a
        brownout can only loosen the contract the client consented to.
        """
        fallback = request.fallback_max_rel_error
        if fallback is None:
            fallback = self.config.fallback_max_rel_error
        return max(request.max_rel_error, fallback)

    def summary(self) -> dict:
        """The report block for ``CHAOS_campaign.json`` / stats()."""
        return {
            "active": self.active,
            "activations": self.activations,
            "degraded": self.degraded,
            "brownout_s": self.brownout_s,
            "transitions": len(self.transitions),
            "fallback_max_rel_error": self.config.fallback_max_rel_error,
            "hold_s": self.config.hold_s,
        }
