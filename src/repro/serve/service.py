"""The serving engine: a deterministic discrete-event GEMM service.

:class:`GemmService` wires the router, the dynamic batcher, and the
device pool into one event loop over **virtual time**.  Real threads
would make every latency figure (and therefore ``SERVE_slo.json``)
nondeterministic; a discrete-event simulation driven by modelled kernel
times keeps a seeded load test bit-reproducible while exercising exactly
the policies under study — batching windows, queue bounds, deadline
expiry, work stealing.  The *results* are not simulated: every completed
response carries the routed kernel's bit-accurate product, computed
through the same stacked ``run_batched`` path a fused batch would use.

Event kinds:

* ``arrive``      — a request enters: admission control, routing,
  batching (a filled bucket dispatches immediately);
* ``batch_window``— a bucket's ``max_wait_s`` elapsed: dispatch it;
* ``device_free`` — a device finished a batch: resolve its responses,
  then pull the next batch from its queue or steal from a peer.

Terminal accounting is exhaustive: every submitted request resolves to
exactly one of completed / rejected / expired, checked by
:meth:`GemmService.check_accounting` and asserted in CI.
"""

from __future__ import annotations

import heapq
import itertools
import weakref
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..gpu.spec import get_gpu
from ..obs.metrics import get_registry
from ..obs.tracing import get_tracer
from .api import GemmRequest, GemmResponse, RequestStatus, SloUnsatisfiableError
from .batcher import Batch, DynamicBatcher
from .router import DEFAULT_MENU, PrecisionRouter
from .soa import RequestState, RequestTable
from .workers import DeviceWorker, WorkerPool

__all__ = ["ServeConfig", "GemmService", "serve_stats"]


@dataclass(frozen=True)
class ServeConfig:
    """Every policy knob of the serving layer, in one place."""

    #: kernel menu the router chooses from
    menu: tuple[str, ...] = DEFAULT_MENU
    #: device fleet, by GPU name (one worker per entry)
    devices: tuple[str, ...] = ("t4", "t4", "rtx6000")
    #: a filled bucket dispatches at this size
    max_batch_size: int = 8
    #: a bucket dispatches once its oldest member waited this long
    max_wait_s: float = 200e-6
    #: queued batches per device beyond the one executing (0 = rendezvous)
    queue_capacity: int = 4
    #: admission control: max unresolved requests in the system
    max_in_flight: int = 256

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity must be non-negative")


# -- process-wide stats provider (the split-cache idiom) -----------------
_LIVE_SERVICES: "weakref.WeakValueDictionary[int, GemmService]" = (
    weakref.WeakValueDictionary()
)
_RETIRED = {"services": 0, "submitted": 0, "completed": 0, "rejected": 0,
            "expired": 0, "batches": 0}


def _retire(totals: dict) -> None:
    _RETIRED["services"] += 1
    for key in ("submitted", "completed", "rejected", "expired", "batches"):
        _RETIRED[key] += totals.get(key, 0)


def serve_stats() -> dict:
    """Aggregated serving counters across live and retired services.

    Registered as the ``serve.service`` provider so ``python -m repro
    bench`` and any ``MetricsRegistry.snapshot()`` consumer sees the
    serving layer's lifetime totals without importing it explicitly.
    """
    totals = {
        "services": 0,
        "submitted": _RETIRED["submitted"],
        "completed": _RETIRED["completed"],
        "rejected": _RETIRED["rejected"],
        "expired": _RETIRED["expired"],
        "batches": _RETIRED["batches"],
        "retired_services": _RETIRED["services"],
    }
    for service in list(_LIVE_SERVICES.values()):
        totals["services"] += 1
        for key in ("submitted", "completed", "rejected", "expired", "batches"):
            totals[key] += service._totals[key]
    return totals


get_registry().register_provider("serve.service", serve_stats)


@dataclass(slots=True)
class _Event:
    kind: str
    request: GemmRequest | None = None
    device: str | None = None
    batch: Batch | None = None


#: sentinel deferred-execution engine for plain fp32 matmul kernels —
#: a stacked ``np.matmul`` over f32 slices is bitwise identical to the
#: per-request ``reference_single`` (BLAS sgemm runs once per slice)
_FP32_STACKED = "fp32-stacked"


def _is_plain_fp32(kernel) -> bool:
    from ..kernels.cublas import CublasCudaFp32

    return type(kernel) is CublasCudaFp32


class GemmService:
    """Precision-aware GEMM serving over a simulated device fleet.

    ``observer`` (a :class:`repro.obs.serving.ServeObserver`, or any
    object with the same callback surface) receives every lifecycle
    transition — admission, routing, batch formation, dispatch, device
    execution, terminal resolution — keyed by the virtual clock.  The
    default ``None`` keeps the hot path free of telemetry calls.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        observer=None,
        defer_math: bool | None = None,
    ):
        self.config = config or ServeConfig()
        self.observer = observer
        #: tri-state: True/False force deferred math on/off; None (the
        #: default) defers automatically whenever tracing and fault
        #: injection are inactive (see :meth:`_deferral_safe`)
        self.defer_math = defer_math
        specs = [get_gpu(name) for name in self.config.devices]
        self.pool = WorkerPool(
            [
                DeviceWorker(
                    name=f"{name}-{i}",
                    spec=spec,
                    queue_capacity=self.config.queue_capacity,
                )
                for i, (name, spec) in enumerate(zip(self.config.devices, specs))
            ]
        )
        # One router per distinct GPU class: the kernel choice is
        # accuracy-driven (device-independent, so the first router
        # decides), but a batch is re-priced on its executing device.
        self._routers: dict[str, PrecisionRouter] = {}
        for spec in specs:
            if spec.name not in self._routers:
                self._routers[spec.name] = PrecisionRouter(self.config.menu, spec)
        self.router = self._routers[specs[0].name]

        #: struct-of-array bookkeeping for every in-flight request;
        #: sized past admission control so steady state never grows
        self.table = RequestTable(capacity=self.config.max_in_flight + 64)
        self.batcher = DynamicBatcher(
            max_batch_size=self.config.max_batch_size,
            max_wait_s=self.config.max_wait_s,
            table=self.table,
        )
        self.now = 0.0
        self.responses: dict[int, GemmResponse] = {}
        self.routing_mix: dict[str, int] = {}
        self.batch_size_counts: dict[int, int] = {}
        self.reject_reasons: dict[str, int] = {}
        self.latencies: list[float] = []
        self._totals = {"submitted": 0, "completed": 0, "rejected": 0,
                        "expired": 0, "batches": 0}
        self._events: list[tuple[float, int, _Event]] = []
        self._seq = itertools.count()
        self._next_id = itertools.count()
        self._executing: dict[str, Batch] = {}
        #: deferred-math jobs: (gemm, requests, placeholder responses)
        self._deferred: list[tuple] = []
        self._defer_active = False
        #: reliable-path runners, one per primary kernel — reused across
        #: requests so kernel construction amortizes over the stream
        self._reliable_runners: dict[str, object] = {}
        self._on_complete: Callable[[GemmResponse, float], list[GemmRequest]] | None = None
        _LIVE_SERVICES[id(self)] = self
        weakref.finalize(self, _retire, self._totals)

    # -- counters -------------------------------------------------------
    @property
    def submitted(self) -> int:
        return self._totals["submitted"]

    @property
    def completed(self) -> int:
        return self._totals["completed"]

    @property
    def rejected(self) -> int:
        return self._totals["rejected"]

    @property
    def expired(self) -> int:
        return self._totals["expired"]

    @property
    def in_flight(self) -> int:
        return self.submitted - self.completed - self.rejected - self.expired

    def check_accounting(self) -> None:
        """Zero silent drops: every request reached a terminal status."""
        resolved = self.completed + self.rejected + self.expired
        if resolved != self.submitted or len(self.responses) != self.submitted:
            raise AssertionError(
                f"accounting violated: submitted={self.submitted} "
                f"completed={self.completed} rejected={self.rejected} "
                f"expired={self.expired} responses={len(self.responses)}"
            )

    # -- event plumbing -------------------------------------------------
    def _push(self, at: float, event: _Event) -> None:
        heapq.heappush(self._events, (at, next(self._seq), event))

    # -- submission -----------------------------------------------------
    def submit(self, request: GemmRequest) -> int:
        """Admit, route, and bucket one request at the current time."""
        request.request_id = next(self._next_id)
        request.submitted_at = self.now
        self._totals["submitted"] += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.requests.submitted")
        if self.observer is not None:
            self.observer.on_admit(self.now, request)

        if self.in_flight > self.config.max_in_flight:
            self._resolve_reject(request, "admission-capacity")
            return request.request_id
        try:
            decision = self.router.route(request)
        except SloUnsatisfiableError as exc:
            self._resolve_reject(request, "slo-unsatisfiable", detail=str(exc))
            return request.request_id
        if self.observer is not None:
            self.observer.on_route(self.now, request, decision)
        self.routing_mix[decision.kernel] = self.routing_mix.get(decision.kernel, 0) + 1
        batch = self.batcher.add(request, decision, self.now)
        if batch is not None:
            self._dispatch(batch)
        else:
            due = self.batcher.next_due()
            if due is not None:
                self._push(due, _Event("batch_window"))
        return request.request_id

    # -- dispatch / execution ------------------------------------------
    def _dispatch(self, batch: Batch) -> None:
        """Place a formed batch on the fleet (or reject under backpressure)."""
        batch.dispatched_at = self.now
        if self.observer is not None:
            self.observer.on_batch(self.now, batch)
        device = self.pool.select(self.now)
        if device is None:
            if self.observer is not None:
                self.observer.on_backpressure(self.now, batch)
            for i, request in enumerate(batch.requests):
                self._resolve_reject(request, "backpressure", slot=int(batch.slots[i]))
            return
        if self.observer is not None:
            self.observer.on_dispatch(self.now, batch, device.name)
        self._totals["batches"] += 1
        self.batch_size_counts[batch.size] = self.batch_size_counts.get(batch.size, 0) + 1
        if device.idle(self.now):
            self._start(device, batch)
        else:
            device.enqueue(batch)
        self.pool.record_depth_gauges()

    def _start(self, device: DeviceWorker, batch: Batch) -> None:
        """Begin executing a batch; expire members that missed the start.

        The fast path is one scalar compare: ``batch.deadline_at`` is
        the precomputed earliest member deadline, so a batch with no
        expired member (the common case) skips the per-member scan
        entirely; otherwise the scan is one vectorized column read.
        """
        if batch.deadline_at < self.now:
            alive = self.table.deadline_at[batch.slots] >= self.now
            if not alive.all():
                for i in np.flatnonzero(~alive):
                    self._resolve_expire(
                        batch.requests[int(i)], slot=int(batch.slots[i])
                    )
                batch.trim(alive)
                if not batch.size:
                    self._advance(device)
                    return
        self.table.state[batch.slots] = RequestState.EXECUTING
        service_s = self._price(device, batch)
        start = max(self.now, device.busy_until)
        device.busy_until = start + service_s
        device.busy_s += service_s
        device.batches_executed += 1
        device.requests_executed += batch.size
        self._executing[device.name] = batch
        if self.observer is not None:
            self.observer.on_exec(
                self.now, batch, device.name, start, device.busy_until, service_s
            )
        self._push(device.busy_until, _Event("device_free", device=device.name))

    def _price(self, device: DeviceWorker, batch: Batch) -> float:
        """Service time of the batch on its *executing* device."""
        router = self._routers[device.spec.name]
        seconds = router.seconds_for(batch.decision.kernel, batch.requests[0].shape)
        decision = batch.decision
        if seconds != decision.seconds:
            from dataclasses import replace

            decision = replace(decision, seconds=seconds)
        return decision.batch_seconds(batch.size)

    def _advance(self, device: DeviceWorker) -> None:
        """Pull the device's next batch: own queue first, then steal."""
        batch = device.pop_next()
        if batch is None:
            batch = self.pool.steal_for(device)
        if batch is not None:
            self._start(device, batch)
        self.pool.record_depth_gauges()

    def _finish(self, device: DeviceWorker) -> None:
        batch = self._executing.pop(device.name, None)
        if batch is not None:
            self._execute_batch(batch, device, self._price(device, batch))
        self._advance(device)

    # -- the actual math ------------------------------------------------
    def _execute_batch(self, batch: Batch, device: DeviceWorker, service_s: float) -> None:
        """Compute bit-accurate results and resolve COMPLETED responses.

        The whole batch runs inside a ``serve.execute`` tracer span
        carrying the batch id — when ``REPRO_TRACE=1``, fault events
        (:class:`~repro.resilience.faults.FaultEvent`) and ``gpu.engine``
        execution captures raised during the math carry this span's id,
        which is the join key back to the batch in a postmortem.
        """
        kernel = self.router.kernels[batch.decision.kernel]
        if self._defer_active and not batch.decision.reliable:
            gemm = getattr(kernel, "_gemm", None)
            if gemm is None and _is_plain_fp32(kernel):
                gemm = _FP32_STACKED
            if gemm is not None:
                responses = [
                    self._resolve_complete(
                        request, batch, device, None, service_s, [],
                        slot=int(batch.slots[i]),
                    )
                    for i, request in enumerate(batch.requests)
                ]
                self._deferred.append(
                    (gemm, batch.decision.kernel, batch.requests, responses)
                )
                return
        results: list[np.ndarray]
        attempts: list[list] = [[] for _ in batch.requests]
        with get_tracer().span(
            "serve.execute", category="serve",
            batch_id=batch.batch_id, device=device.name,
            kernel=batch.decision.kernel, size=batch.size,
        ):
            if batch.decision.reliable:
                results = []
                for i, request in enumerate(batch.requests):
                    result = self._run_reliable(batch.decision.kernel, request)
                    results.append(result.d)
                    attempts[i] = [a.as_dict() for a in result.attempts]
            else:
                results = self._run_batch_exact(kernel, batch)
        for i, request in enumerate(batch.requests):
            self._resolve_complete(
                request, batch, device, results[i], service_s, attempts[i],
                slot=int(batch.slots[i]),
            )

    def _run_batch_exact(self, kernel, batch: Batch) -> list[np.ndarray]:
        """One fused launch when the kernel supports stacked batching.

        Emulation-backed kernels expose their ``EmulatedGemm`` as
        ``_gemm``; its ``run_batched`` is bit-identical to per-request
        ``run`` by construction.  Other kernels (fp32 roofline models,
        the int8 Ozaki path) compute per request — trivially identical
        to the unbatched replay.
        """
        requests = batch.requests
        gemm = getattr(kernel, "_gemm", None)
        if gemm is not None and len(requests) > 1:
            c = None
            if requests[0].c is not None:  # compatibility key: all-or-none
                c = [r.c for r in requests]
            d, _ = gemm.run_batched_elements(
                [r.a for r in requests], [r.b for r in requests], c
            )
            return [d[i] for i in range(len(requests))]
        return [kernel.compute(r.a, r.b, r.c) for r in requests]

    def _run_reliable(self, kernel_name: str, request: GemmRequest):
        """ABFT-protected, fallback-chained execution for reliable=True.

        The fallback tail is the fp32 CUDA-core kernel, whose analytic
        bound is at or below every emulated kernel's at any k — a
        fallback can therefore never violate an SLO the primary met.
        """
        runner = self._reliable_runners.get(kernel_name)
        if runner is None:
            from ..resilience.runner import ResilientRunner

            chain = [kernel_name]
            if kernel_name != "cublas-cuda-fp32":
                chain.append("cublas-cuda-fp32")
            runner = ResilientRunner(
                chain=tuple(chain), abft=True, backoff_s=0.0,
                sleep=lambda _s: None,
            )
            self._reliable_runners[kernel_name] = runner
        return runner.run(request.a, request.b, request.c)

    # -- deferred fused execution ---------------------------------------
    def _deferral_safe(self) -> bool:
        """Whether batch math may be deferred past virtual resolution.

        Virtual time, routing, batching, and every observer callback are
        independent of *when* the bit-accurate products are computed —
        nothing reads ``response.d`` before :meth:`run` returns.  The
        two consumers that do care about math running inside the event
        (the tracer's ``serve.execute`` span join and an armed fault
        injector, whose strike position depends on execution order)
        force the eager path.
        """
        if self.defer_math is not None:
            return self.defer_math
        if get_tracer().enabled:
            return False
        from ..emulation import gemm as emulation_gemm
        from ..obs.hooks import fault_hook_override

        return fault_hook_override(emulation_gemm.FAULT_HOOK) is None

    def _flush_deferred(self) -> None:
        """Run all deferred batch math as shape-grouped stacked launches.

        Jobs are coalesced across *batches* by (kernel, shape, has-C) —
        one :meth:`~repro.emulation.gemm.EmulatedGemm
        .run_batched_elements` launch per group — which is bit-identical
        per element to the eager per-batch execution (and to per-request
        ``run``) while amortizing splits, matmul dispatch, and the
        rounding-cadence passes over every coalesced request of the run.
        """
        jobs, self._deferred = self._deferred, []
        if not jobs:
            return
        groups: dict[tuple, tuple] = {}
        for gemm, kernel_name, requests, responses in jobs:
            key = (id(gemm), requests[0].shape, requests[0].c is not None)
            entry = groups.get(key)
            if entry is None:
                groups[key] = entry = (gemm, kernel_name, [], [])
            entry[2].extend(requests)
            entry[3].extend(responses)
        group_list = list(groups.values())
        stacked = [None] * len(group_list)
        executor = self.pool.shared_executor()
        if executor is not None:
            from .procpool import FP32_KERNEL

            try:
                stacked = executor.run_groups(
                    [
                        (
                            FP32_KERNEL if gemm is _FP32_STACKED else kernel_name,
                            [r.a for r in requests],
                            [r.b for r in requests],
                            [r.c for r in requests]
                            if requests[0].c is not None
                            else None,
                        )
                        for gemm, kernel_name, requests, responses in group_list
                    ]
                )
            except Exception:
                stacked = [None] * len(group_list)
        for (gemm, kernel_name, requests, responses), d in zip(group_list, stacked):
            if d is None:
                if gemm is _FP32_STACKED:
                    d = np.matmul(
                        np.stack([r.a for r in requests]),
                        np.stack([r.b for r in requests]),
                    )
                    if requests[0].c is not None:
                        d = d + np.stack([r.c for r in requests])
                else:
                    c = None
                    if requests[0].c is not None:
                        c = [r.c for r in requests]
                    d, _ = gemm.run_batched_elements(
                        [r.a for r in requests], [r.b for r in requests], c
                    )
            for i, response in enumerate(responses):
                response.d = d[i]

    # -- resolution -----------------------------------------------------
    def _emit_span(self, response: GemmResponse, request: GemmRequest) -> None:
        tracer = get_tracer()
        if not tracer.enabled:
            return
        m, k, n = request.shape
        with tracer.span(
            "serve.request", category="serve",
            request_id=request.request_id, m=m, k=k, n=n,
            slo=request.max_rel_error, reliable=request.reliable,
        ) as span:
            span.set(
                status=response.status.value,
                kernel=response.kernel,
                device=response.device,
                batch_size=response.batch_size,
                latency_s=response.latency_s,
                reason=response.reason,
            )

    def _resolve(self, response: GemmResponse, request: GemmRequest) -> None:
        self.responses[request.request_id] = response
        if self.observer is not None:
            self.observer.on_resolve(self.now, request, response)
        self._emit_span(response, request)
        if self._on_complete is not None:
            for follow_up in self._on_complete(response, self.now):
                self.submit(follow_up)

    def _resolve_reject(
        self,
        request: GemmRequest,
        reason: str,
        detail: str | None = None,
        slot: int | None = None,
    ) -> None:
        if slot is not None:
            self.table.release(slot)
        self._totals["rejected"] += 1
        self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.requests.rejected")
            registry.inc(f"serve.requests.rejected.{reason}")
        self._resolve(
            GemmResponse(
                request_id=request.request_id,
                status=RequestStatus.REJECTED,
                # keep the canonical reason key as a prefix so consumers
                # (e.g. the observer's client-error classification) can
                # match it without parsing the human-readable detail
                reason=f"{reason}: {detail}" if detail else reason,
                latency_s=self.now - request.submitted_at,
            ),
            request,
        )

    def _resolve_expire(self, request: GemmRequest, slot: int | None = None) -> None:
        if slot is not None:
            self.table.release(slot)
        self._totals["expired"] += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.requests.expired")
        self._resolve(
            GemmResponse(
                request_id=request.request_id,
                status=RequestStatus.EXPIRED,
                reason="deadline-expired",
                latency_s=self.now - request.submitted_at,
            ),
            request,
        )

    def _resolve_complete(
        self,
        request: GemmRequest,
        batch: Batch,
        device: DeviceWorker,
        d: np.ndarray,
        service_s: float,
        attempts: list,
        slot: int | None = None,
    ) -> GemmResponse:
        if slot is not None:
            self.table.release(slot)
        self._totals["completed"] += 1
        latency = self.now - request.submitted_at
        self.latencies.append(latency)
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.requests.completed")
            registry.observe("serve.latency_s", latency)
            registry.observe("serve.queue_wait_s", max(latency - service_s, 0.0))
        response = GemmResponse(
            request_id=request.request_id,
            status=RequestStatus.COMPLETED,
            d=d,
            kernel=batch.decision.kernel,
            error_bound=batch.decision.error_bound,
            device=device.name,
            batch_size=batch.size,
            queued_s=max(latency - service_s, 0.0),
            service_s=service_s,
            latency_s=latency,
            attempts=attempts,
        )
        self._resolve(response, request)
        return response

    # -- the event loop -------------------------------------------------
    def run(
        self,
        arrivals: Iterable[tuple[float, GemmRequest]] = (),
        on_complete: Callable[[GemmResponse, float], list[GemmRequest]] | None = None,
        drain: bool = True,
    ) -> dict[int, GemmResponse]:
        """Run the event loop over a timed arrival schedule.

        ``arrivals`` yields ``(virtual_time, request)`` pairs (open-loop
        workloads precompute these from a seeded process).
        ``on_complete`` is called at every terminal resolution and may
        return follow-up requests to submit *now* — the closed-loop
        hook.  With ``drain`` (default) the loop flushes the batcher and
        runs the fleet dry before returning.
        """
        self._on_complete = on_complete
        self._defer_active = self._deferral_safe()
        try:
            for at, request in arrivals:
                self._push(at, _Event("arrive", request=request))
            while self._events:
                at, _seq, event = heapq.heappop(self._events)
                self.now = max(self.now, at)
                if event.kind == "arrive":
                    self.submit(event.request)
                elif event.kind == "batch_window":
                    for batch in self.batcher.due(self.now):
                        self._dispatch(batch)
                elif event.kind == "device_free":
                    self._finish(self._device(event.device))
                if not self._events and drain and self.batcher.pending:
                    # Nothing left will fire a window event sooner than
                    # the residual wait; flush the tail explicitly.
                    due = self.batcher.next_due()
                    self.now = max(self.now, due if due is not None else self.now)
                    for batch in self.batcher.flush(self.now):
                        self._dispatch(batch)
        finally:
            self._on_complete = None
            self._flush_deferred()
        if drain:
            self.check_accounting()
        return self.responses

    def _device(self, name: str) -> DeviceWorker:
        for device in self.pool.devices:
            if device.name == name:
                return device
        raise KeyError(name)

    # -- reporting ------------------------------------------------------
    def stats(self) -> dict:
        return {
            **self._totals,
            "in_flight": self.in_flight,
            "routing_mix": dict(sorted(self.routing_mix.items())),
            "batch_size_counts": {
                str(k): v for k, v in sorted(self.batch_size_counts.items())
            },
            "reject_reasons": dict(sorted(self.reject_reasons.items())),
            "batcher": self.batcher.stats(),
            "router": self.router.stats(),
            "pool": self.pool.stats(),
            "virtual_s": self.now,
        }
