"""The serving engine: a deterministic discrete-event GEMM service.

:class:`GemmService` wires the router, the dynamic batcher, and the
device pool into one event loop over **virtual time**.  Real threads
would make every latency figure (and therefore ``SERVE_slo.json``)
nondeterministic; a discrete-event simulation driven by modelled kernel
times keeps a seeded load test bit-reproducible while exercising exactly
the policies under study — batching windows, queue bounds, deadline
expiry, work stealing.  The *results* are not simulated: every completed
response carries the routed kernel's bit-accurate product, computed
through the same stacked ``run_batched`` path a fused batch would use.

Event kinds:

* ``arrive``      — a request enters: admission control, routing,
  batching (a filled bucket dispatches immediately);
* ``batch_window``— a bucket's ``max_wait_s`` elapsed: dispatch it;
* ``device_free`` — a device finished a batch: resolve its responses,
  then pull the next batch from its queue or steal from a peer (events
  carry the device's *epoch* so a crash/stall invalidates stale ones);
* ``chaos``       — a scheduled fleet fault fires (device crash or
  restart, worker stall, queue-capacity storm, launch-fault window —
  see :mod:`repro.serve.chaos`);
* ``retry``       — a batch's recovery backoff elapsed: expire members
  whose deadline passed while requeued, then re-dispatch the rest;
* ``hedge_check`` — a queued batch aged past ``hedge_after_s``: launch
  a duplicate on an idle device (first copy to finish wins).

Terminal accounting is exhaustive: every submitted request resolves to
exactly one of completed / rejected / expired / failed, checked by
:meth:`GemmService.check_accounting` and asserted in CI — under every
chaos scenario as well as fault-free.
"""

from __future__ import annotations

import heapq
import itertools
import os
import weakref
from dataclasses import dataclass, replace
from typing import Callable, Iterable

import numpy as np

from ..gpu.spec import get_gpu
from ..obs.metrics import get_registry
from ..obs.tracing import get_tracer
from ..resilience.faults import FleetFaultEvent, FleetSite
from .api import (
    FleetExhaustedError,
    GemmRequest,
    GemmResponse,
    RequestStatus,
    SloUnsatisfiableError,
)
from .batcher import Batch, DynamicBatcher
from .recovery import BrownoutController, RecoveryConfig
from .router import DEFAULT_MENU, PrecisionRouter
from .soa import RequestState, RequestTable
from .workers import DeviceWorker, WorkerPool

__all__ = ["ServeConfig", "GemmService", "serve_stats"]


@dataclass(frozen=True)
class ServeConfig:
    """Every policy knob of the serving layer, in one place."""

    #: kernel menu the router chooses from
    menu: tuple[str, ...] = DEFAULT_MENU
    #: device fleet, by GPU name (one worker per entry)
    devices: tuple[str, ...] = ("t4", "t4", "rtx6000")
    #: a filled bucket dispatches at this size
    max_batch_size: int = 8
    #: a bucket dispatches once its oldest member waited this long
    max_wait_s: float = 200e-6
    #: queued batches per device beyond the one executing (0 = rendezvous)
    queue_capacity: int = 4
    #: admission control: max unresolved requests in the system
    max_in_flight: int = 256
    #: recovery policy (retry/hedge/brownout); None = all mechanisms
    #: off, byte-identical to the pre-recovery service
    recovery: RecoveryConfig | None = None
    #: path to a ``TUNE_db.json`` written by ``python -m repro tune``;
    #: routers price tuned configurations from it (timing model only —
    #: execution stays on the static menu kernels).  None = static
    #: pricing, byte-identical to the pre-tuning service
    tuning_db: str | None = None
    #: virtual execution-time multiplier (``python -m repro whatif``'s
    #: "execution X% faster/slower" knob).  The default 1.0 skips the
    #: multiply entirely, so a config without the knob prices — and
    #: reports — byte-identically to the pre-whatif service
    exec_time_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity must be non-negative")
        if not self.exec_time_scale > 0.0:
            raise ValueError("exec_time_scale must be positive")


# -- process-wide stats provider (the split-cache idiom) -----------------
_LIVE_SERVICES: "weakref.WeakValueDictionary[int, GemmService]" = (
    weakref.WeakValueDictionary()
)
_RETIRED = {"services": 0, "submitted": 0, "completed": 0, "rejected": 0,
            "expired": 0, "failed": 0, "batches": 0}


def _retire(totals: dict) -> None:
    _RETIRED["services"] += 1
    for key in ("submitted", "completed", "rejected", "expired", "failed", "batches"):
        _RETIRED[key] += totals.get(key, 0)


def serve_stats() -> dict:
    """Aggregated serving counters across live and retired services.

    Registered as the ``serve.service`` provider so ``python -m repro
    bench`` and any ``MetricsRegistry.snapshot()`` consumer sees the
    serving layer's lifetime totals without importing it explicitly.
    """
    totals = {
        "services": 0,
        "submitted": _RETIRED["submitted"],
        "completed": _RETIRED["completed"],
        "rejected": _RETIRED["rejected"],
        "expired": _RETIRED["expired"],
        "failed": _RETIRED["failed"],
        "batches": _RETIRED["batches"],
        "retired_services": _RETIRED["services"],
    }
    for service in list(_LIVE_SERVICES.values()):
        totals["services"] += 1
        for key in ("submitted", "completed", "rejected", "expired", "failed", "batches"):
            totals[key] += service._totals[key]
    return totals


get_registry().register_provider("serve.service", serve_stats)


@dataclass(slots=True)
class _Event:
    kind: str
    request: GemmRequest | None = None
    device: str | None = None
    batch: Batch | None = None
    #: device epoch a ``device_free`` was scheduled against; a crash,
    #: restart, or stall bumps the device's epoch so stale completions
    #: scheduled for the previous incarnation are ignored
    epoch: int = 0
    #: the scheduled fleet fault of a ``chaos`` event
    fault: FleetFaultEvent | None = None


#: sentinel deferred-execution engine for plain fp32 matmul kernels —
#: a stacked ``np.matmul`` over f32 slices is bitwise identical to the
#: per-request ``reference_single`` (BLAS sgemm runs once per slice)
_FP32_STACKED = "fp32-stacked"


def _is_plain_fp32(kernel) -> bool:
    from ..kernels.cublas import CublasCudaFp32

    return type(kernel) is CublasCudaFp32


class GemmService:
    """Precision-aware GEMM serving over a simulated device fleet.

    ``observer`` (a :class:`repro.obs.serving.ServeObserver`, or any
    object with the same callback surface) receives every lifecycle
    transition — admission, routing, batch formation, dispatch, device
    execution, terminal resolution — keyed by the virtual clock.  The
    default ``None`` keeps the hot path free of telemetry calls.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        observer=None,
        defer_math: bool | None = None,
        chaos=None,
        accuracy_sampler=None,
        skip_math: bool = False,
    ):
        self.config = config or ServeConfig()
        self.observer = observer
        #: Coz-style what-if replay flag (``python -m repro whatif``):
        #: skip the bit-accurate products entirely and resolve completed
        #: responses with placeholder results.  Virtual timing, routing,
        #: batching, and every observer callback are independent of the
        #: math by construction (the deferred-math path relies on the
        #: same property), so a skip-math replay's counts, latencies,
        #: and flight log are identical to a full run's.
        self.skip_math = skip_math
        #: a :class:`repro.obs.accuracy.AccuracySampler` (or None).  The
        #: ``REPRO_ACCURACY_SAMPLE`` environment variable (a rate in
        #: (0, 1]) enables shadow sampling without code changes.  The
        #: sampler only *captures references* while the event loop is
        #: live — float64 verification happens after :meth:`run` drains,
        #: so served results and ``SERVE_slo.json`` stay byte-identical
        #: with sampling on or off.
        if accuracy_sampler is None:
            env_rate = os.environ.get("REPRO_ACCURACY_SAMPLE", "")
            if env_rate:
                rate = float(env_rate)
                if rate > 0.0:
                    from ..obs.accuracy import AccuracySampler

                    accuracy_sampler = AccuracySampler(
                        rate=rate,
                        recorder=getattr(observer, "recorder", None),
                    )
        self.accuracy_sampler = accuracy_sampler
        #: a :class:`repro.serve.chaos.ChaosSchedule` (any object with
        #: ``faults`` — FleetFaultEvents — and ``seed``); None = no
        #: fleet faults, the fault-free fast path
        self.chaos = chaos
        #: tri-state: True/False force deferred math on/off; None (the
        #: default) defers automatically whenever tracing and fault
        #: injection are inactive (see :meth:`_deferral_safe`)
        self.defer_math = defer_math
        specs = [get_gpu(name) for name in self.config.devices]
        self.pool = WorkerPool(
            [
                DeviceWorker(
                    name=f"{name}-{i}",
                    spec=spec,
                    queue_capacity=self.config.queue_capacity,
                )
                for i, (name, spec) in enumerate(zip(self.config.devices, specs))
            ]
        )
        # One router per distinct GPU class: the kernel choice is
        # accuracy-driven (device-independent, so the first router
        # decides), but a batch is re-priced on its executing device.
        tuning_db = None
        if self.config.tuning_db is not None:
            from ..tune import TuningDatabase

            tuning_db = TuningDatabase.load(self.config.tuning_db)
        self._routers: dict[str, PrecisionRouter] = {}
        for spec in specs:
            if spec.name not in self._routers:
                self._routers[spec.name] = PrecisionRouter(
                    self.config.menu, spec, tuning_db=tuning_db
                )
        self.router = self._routers[specs[0].name]

        #: struct-of-array bookkeeping for every in-flight request;
        #: sized past admission control so steady state never grows
        self.table = RequestTable(capacity=self.config.max_in_flight + 64)
        self.batcher = DynamicBatcher(
            max_batch_size=self.config.max_batch_size,
            max_wait_s=self.config.max_wait_s,
            table=self.table,
        )
        self.now = 0.0
        self.responses: dict[int, GemmResponse] = {}
        self.routing_mix: dict[str, int] = {}
        self.batch_size_counts: dict[int, int] = {}
        self.reject_reasons: dict[str, int] = {}
        self.fail_reasons: dict[str, int] = {}
        self.latencies: list[float] = []
        self._totals = {"submitted": 0, "completed": 0, "rejected": 0,
                        "expired": 0, "failed": 0, "batches": 0}
        self._events: list[tuple[float, int, _Event]] = []
        self._seq = itertools.count()
        self._next_id = itertools.count()
        self._executing: dict[str, Batch] = {}
        #: deferred-math jobs: (gemm, requests, placeholder responses)
        self._deferred: list[tuple] = []
        self._defer_active = False
        #: reliable-path runners, one per primary kernel — reused across
        #: requests so kernel construction amortizes over the stream
        self._reliable_runners: dict[str, object] = {}
        self._on_complete: Callable[[GemmResponse, float], list[GemmRequest]] | None = None

        # -- recovery machinery (all dormant when config.recovery is None)
        recovery: RecoveryConfig | None = self.config.recovery
        self._retry_policy = recovery.retry if recovery is not None else None
        self._hedge_after_s = recovery.hedge_after_s if recovery is not None else None
        self._brownout: BrownoutController | None = None
        if recovery is not None and recovery.brownout is not None:
            monitor = getattr(observer, "latency_monitor", None)
            if monitor is None:
                raise ValueError(
                    "brownout recovery needs an observer with a "
                    "latency_monitor (repro.obs.serving.ServeObserver)"
                )
            self._brownout = BrownoutController(recovery.brownout, monitor)
        #: every fleet fault applied (scheduled chaos + drawn launch faults)
        self.fleet_log: list[FleetFaultEvent] = []
        self.recovery_stats = {
            "retries": 0, "hedges": 0, "hedge_wins": 0, "hedge_cancelled": 0,
            "requeued": 0, "degraded": 0, "launch_faults": 0, "crashes": 0,
            "restarts": 0, "stalls": 0, "queue_storms": 0,
        }
        self._chaos_armed = False
        self._launch_rng = None
        self._launch_window_until = 0.0
        self._launch_fault_p = 0.0
        self._pending_restarts = 0
        self._saved_queue_caps: dict[str, int] = {}
        if chaos is not None:
            self._launch_rng = np.random.default_rng((int(chaos.seed), 101))
            self._pending_restarts = sum(
                1 for f in chaos.faults if f.kind == "device_restart"
            )

        _LIVE_SERVICES[id(self)] = self
        weakref.finalize(self, _retire, self._totals)

    # -- counters -------------------------------------------------------
    @property
    def submitted(self) -> int:
        return self._totals["submitted"]

    @property
    def completed(self) -> int:
        return self._totals["completed"]

    @property
    def rejected(self) -> int:
        return self._totals["rejected"]

    @property
    def expired(self) -> int:
        return self._totals["expired"]

    @property
    def failed(self) -> int:
        return self._totals["failed"]

    @property
    def in_flight(self) -> int:
        return (
            self.submitted
            - self.completed
            - self.rejected
            - self.expired
            - self.failed
        )

    def check_accounting(self) -> None:
        """Zero silent drops: every request reached a terminal status."""
        resolved = self.completed + self.rejected + self.expired + self.failed
        if resolved != self.submitted or len(self.responses) != self.submitted:
            raise AssertionError(
                f"accounting violated: submitted={self.submitted} "
                f"completed={self.completed} rejected={self.rejected} "
                f"expired={self.expired} failed={self.failed} "
                f"responses={len(self.responses)}"
            )

    # -- event plumbing -------------------------------------------------
    def _push(self, at: float, event: _Event) -> None:
        heapq.heappush(self._events, (at, next(self._seq), event))

    # -- submission -----------------------------------------------------
    def submit(self, request: GemmRequest) -> int:
        """Admit, route, and bucket one request at the current time."""
        request.request_id = next(self._next_id)
        request.submitted_at = self.now
        self._totals["submitted"] += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.requests.submitted")
        if self.observer is not None:
            self.observer.on_admit(self.now, request)

        if self.in_flight > self.config.max_in_flight:
            self._resolve_reject(request, "admission-capacity")
            return request.request_id
        decision = None
        if self._brownout is not None:
            self._brownout.update(self.now)
            if self._brownout.active and request.degradable:
                decision = self._route_degraded(request)
        if decision is None:
            try:
                decision = self.router.route(request)
            except SloUnsatisfiableError as exc:
                self._resolve_reject(request, "slo-unsatisfiable", detail=str(exc))
                return request.request_id
        if self.observer is not None:
            self.observer.on_route(self.now, request, decision)
        self.routing_mix[decision.kernel] = self.routing_mix.get(decision.kernel, 0) + 1
        batch = self.batcher.add(request, decision, self.now)
        if batch is not None:
            self._dispatch(batch)
        else:
            due = self.batcher.next_due()
            if due is not None:
                self._push(due, _Event("batch_window"))
        return request.request_id

    def _route_degraded(self, request: GemmRequest):
        """Brownout routing: try the fallback SLO, never tighter.

        Returns a decision iff the relaxed route actually degrades the
        contract (a looser bound than the request's own SLO certifies);
        otherwise None, and the caller routes normally.
        """
        relaxed = self._brownout.fallback_slo(request)
        if relaxed <= request.max_rel_error:
            return None
        try:
            decision = self.router.route(request, max_rel_error=relaxed)
        except SloUnsatisfiableError:
            return None
        if decision.error_bound <= request.max_rel_error:
            # the cheapest fallback-certifying kernel certifies the
            # primary SLO too — nothing is actually degraded
            return None
        request.degraded = True
        self._brownout.degraded += 1
        self.recovery_stats["degraded"] += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.recovery.degraded")
        if self.observer is not None:
            self.observer.on_degrade(self.now, request, decision, relaxed)
        return decision

    # -- dispatch / execution ------------------------------------------
    def _observe_fleet_state(self) -> None:
        """Refresh fleet gauges and sample the observer's counter tracks.

        Called wherever fleet occupancy changes (dispatch, hedge,
        advance, crash): updates the registry depth gauges and feeds the
        observer's ``on_fleet_state`` hook — the queue-depth /
        healthy-device / in-flight-batch counter series rendered as
        Chrome-trace counter tracks.
        """
        self.pool.record_depth_gauges()
        observer = self.observer
        if observer is None:
            return
        hook = getattr(observer, "on_fleet_state", None)
        if hook is None:
            return
        hook(
            self.now,
            queue_depth=self.pool.queue_depth(),
            healthy_devices=sum(1 for d in self.pool.devices if d.healthy),
            executing_batches=len(self._executing),
        )

    def _dispatch(self, batch: Batch, redispatch: bool = False) -> None:
        """Place a formed batch on the fleet.

        Backpressure and fleet exhaustion either retry (when a recovery
        policy allows) or resolve the members terminally — never wait.
        ``redispatch`` marks recovery re-dispatches (after a retry
        backoff or a dead device's queue drain): the batch was already
        counted and observed at first dispatch.
        """
        if not redispatch:
            batch.dispatched_at = self.now
            if self.observer is not None:
                self.observer.on_batch(self.now, batch)
        try:
            device = self.pool.select(self.now)
        except FleetExhaustedError:
            self._fleet_exhausted(batch)
            return
        if device is None:
            self._backpressure(batch)
            return
        if self.observer is not None:
            self.observer.on_dispatch(self.now, batch, device.name)
        if not redispatch:
            self._totals["batches"] += 1
            self.batch_size_counts[batch.size] = self.batch_size_counts.get(batch.size, 0) + 1
        if device.idle(self.now):
            self._start(device, batch)
        else:
            device.enqueue(batch)
            if self._hedge_after_s is not None and not batch.hedged:
                self._push(
                    self.now + self._hedge_after_s, _Event("hedge_check", batch=batch)
                )
        self._observe_fleet_state()

    def _backpressure(self, batch: Batch) -> None:
        """Every healthy queue full: retry if allowed, else reject."""
        if self._can_retry(batch):
            self._schedule_retry(batch, "backpressure")
            return
        if self.observer is not None:
            self.observer.on_backpressure(self.now, batch)
        for i, request in enumerate(batch.requests):
            self._resolve_reject(request, "backpressure", slot=int(batch.slots[i]))

    def _fleet_exhausted(self, batch: Batch) -> None:
        """Zero healthy devices: wait for a pending restart, else fail."""
        if self._pending_restarts > 0 and self._can_retry(batch):
            self._schedule_retry(batch, "fleet-exhausted")
            return
        self._fail_batch(batch, "fleet-exhausted: no healthy devices")

    # -- retry / hedge recovery ----------------------------------------
    def _can_retry(self, batch: Batch) -> bool:
        policy = self._retry_policy
        return policy is not None and batch.attempts < policy.max_retries

    def _schedule_retry(self, batch: Batch, reason: str) -> None:
        """Back the batch off and re-dispatch after a deterministic delay."""
        batch.attempts += 1
        if batch.table is not None:
            batch.table.attempts[batch.slots] = batch.attempts
        delay = self._retry_policy.delay(batch.attempts, key=batch.batch_id)
        self.recovery_stats["retries"] += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.recovery.retries")
        if self.observer is not None:
            self.observer.on_retry(self.now, batch, batch.attempts, delay, reason)
        self._push(self.now + delay, _Event("retry", batch=batch))

    def _retry_batch(self, batch: Batch) -> None:
        """A retry backoff elapsed: expire stale members, re-dispatch.

        Members whose deadline passed *while the batch waited out its
        backoff* resolve as expired here — the expire-while-requeued
        path — so a retried batch can never silently strand them.
        """
        if batch.resolved or batch.exec_count > 0:
            return
        if batch.deadline_at < self.now:
            alive = self.table.deadline_at[batch.slots] >= self.now
            if not alive.all():
                for i in np.flatnonzero(~alive):
                    self._resolve_expire(
                        batch.requests[int(i)], slot=int(batch.slots[i])
                    )
                batch.trim(alive)
                if not batch.size:
                    batch.resolved = True
                    return
        self._dispatch(batch, redispatch=True)

    def _maybe_hedge(self, batch: Batch, straggler: str | None = None) -> None:
        """Duplicate a straggler batch onto an idle device (first wins).

        Two trigger paths share this check: a *queued* hedge (armed at
        enqueue; fires only while the original copy has not started
        anywhere) and a *straggler* hedge (armed by a device stall for
        the batch executing on it; fires only while that batch is still
        stuck on the stalled device).  Either way the first copy to
        finish resolves the members and the loser is cancelled at its
        own start/finish via ``batch.resolved`` — and bit-identity is
        trivial: both copies run the same kernel on the same operands.
        """
        if batch.resolved or batch.hedged:
            return
        if straggler is None:
            if batch.exec_count > 0:
                return
        elif self._executing.get(straggler) is not batch:
            return
        idle = [d for d in self.pool.devices if d.healthy and d.idle(self.now)]
        if not idle:
            # no spare capacity right now; a straggler hedge keeps
            # looking until the stuck copy resolves (the queued-hedge
            # path does not — once started, the batch no longer needs it)
            if straggler is not None:
                self._push(
                    self.now + self._hedge_after_s,
                    _Event("hedge_check", batch=batch, device=straggler),
                )
            return
        device = min(idle, key=lambda d: d.name)
        batch.hedged = True
        if batch.table is not None:
            batch.table.hedged[batch.slots] = 1
        self.recovery_stats["hedges"] += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.recovery.hedges")
        if self.observer is not None:
            self.observer.on_hedge(self.now, batch, device.name)
        self._start(device, batch)
        self._observe_fleet_state()

    def _start(self, device: DeviceWorker, batch: Batch) -> None:
        """Begin executing a batch; expire members that missed the start.

        The fast path is one scalar compare: ``batch.deadline_at`` is
        the precomputed earliest member deadline, so a batch with no
        expired member (the common case) skips the per-member scan
        entirely; otherwise the scan is one vectorized column read.
        """
        if batch.resolved:
            # hedge loser (or fully-expired retry) pulled from a queue:
            # nothing left to run, keep the device fed
            self._advance(device)
            return
        if batch.deadline_at < self.now:
            alive = self.table.deadline_at[batch.slots] >= self.now
            if not alive.all():
                for i in np.flatnonzero(~alive):
                    self._resolve_expire(
                        batch.requests[int(i)], slot=int(batch.slots[i])
                    )
                batch.trim(alive)
                if not batch.size:
                    batch.resolved = True
                    self._advance(device)
                    return
        if self._launch_fault(device, batch):
            # a hedged duplicate that faults on the pad just dies — the
            # original copy is still live, so neither retry nor failure
            # is warranted
            if batch.exec_count == 0:
                if self._can_retry(batch):
                    self._schedule_retry(batch, "launch-fault")
                else:
                    self._fail_batch(batch, f"launch-fault: {device.name}")
            self._advance(device)
            return
        self.table.state[batch.slots] = RequestState.EXECUTING
        service_s = self._price(device, batch)
        start = max(self.now, device.busy_until)
        device.busy_until = start + service_s
        device.busy_s += service_s
        device.batches_executed += 1
        device.requests_executed += batch.size
        batch.exec_count += 1
        self._executing[device.name] = batch
        if self.observer is not None:
            self.observer.on_exec(
                self.now, batch, device.name, start, device.busy_until, service_s
            )
        self._push(
            device.busy_until,
            _Event("device_free", device=device.name, epoch=device.epoch),
        )

    def _price(self, device: DeviceWorker, batch: Batch) -> float:
        """Service time of the batch on its *executing* device."""
        router = self._routers[device.spec.name]
        seconds = router.seconds_for(batch.decision.kernel, batch.requests[0].shape)
        decision = batch.decision
        if seconds != decision.seconds:
            decision = replace(decision, seconds=seconds)
        service_s = decision.batch_seconds(batch.size)
        scale = self.config.exec_time_scale
        if scale != 1.0:
            service_s *= scale
        return service_s

    def _advance(self, device: DeviceWorker) -> None:
        """Pull the device's next batch: own queue first, then steal."""
        if not device.healthy:
            return
        batch = device.pop_next()
        if batch is None:
            batch = self.pool.steal_for(device)
        if batch is not None:
            self._start(device, batch)
        self._observe_fleet_state()

    def _finish(self, device: DeviceWorker) -> None:
        batch = self._executing.pop(device.name, None)
        if batch is not None:
            batch.exec_count -= 1
            if batch.resolved:
                # a hedged duplicate finished first; this copy's work is
                # discarded without executing (first-wins cancellation)
                self.recovery_stats["hedge_cancelled"] += 1
            else:
                self._execute_batch(batch, device, self._price(device, batch))
                batch.resolved = True
                if batch.hedged:
                    self.recovery_stats["hedge_wins"] += 1
        self._advance(device)

    # -- fleet fault handling (repro.serve.chaos) -----------------------
    def _apply_chaos(self, fault: FleetFaultEvent) -> None:
        """Apply one scheduled fleet fault at its virtual fire time."""
        if fault.kind in ("exec_stall", "queued_crash"):
            target = self._deferred_fault_target(fault.kind)
            if target is None:
                # no eligible target yet: re-arm quietly (only the firing
                # that lands is logged) while non-chaos work remains
                if any(ev.kind != "chaos" for _, _, ev in self._events):
                    self._push(self.now + 1e-6, _Event("chaos", fault=fault))
                return
            fault = replace(fault, device=target)
        self.fleet_log.append(fault)
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.chaos.faults")
            registry.inc(f"serve.chaos.{fault.kind}")
        if self.observer is not None:
            self.observer.on_chaos(self.now, fault)
        kind = fault.kind
        if kind == "device_crash":
            self._crash_device(fault.device)
        elif kind == "queued_crash":
            self._crash_device(fault.device)
        elif kind == "device_restart":
            self._restart_device(fault.device)
        elif kind == "device_stall":
            self._stall_device(fault.device, fault.duration_s)
        elif kind == "exec_stall":
            self._stall_device(fault.device, fault.duration_s)
        elif kind == "queue_storm":
            self._queue_storm(int(fault.param))
        elif kind == "queue_storm_end":
            self._queue_storm_end()
        elif kind == "launch_faults":
            self._launch_window_until = self.now + fault.duration_s
            self._launch_fault_p = fault.param

    def _crash_device(self, name: str) -> None:
        """Kill a device: fail/retry its in-flight batch, drain its queue."""
        device = self._device(name)
        if not device.healthy:
            return
        device.healthy = False
        device.epoch += 1
        device.busy_until = self.now
        self.recovery_stats["crashes"] += 1
        executing = self._executing.pop(name, None)
        if executing is not None and not executing.resolved:
            executing.exec_count -= 1
            # a hedged copy may still be running (or queued) elsewhere;
            # only when this was the last live copy does the batch need
            # recovery of its own
            still_queued = any(
                b is executing for d in self.pool.devices for b in d.queue
            )
            if executing.exec_count <= 0 and not still_queued:
                self.table.state[executing.slots] = RequestState.BATCHED
                if self._can_retry(executing):
                    self._schedule_retry(executing, "device-crash")
                else:
                    self._fail_batch(executing, f"device-crash: {name}")
        # requeue-and-drain: the dead device's queued batches go back
        # onto the fleet (or into retry/fail if nothing accepts them)
        queued, device.queue = list(device.queue), []
        for batch in queued:
            if batch.resolved:
                continue
            self.recovery_stats["requeued"] += 1
            if self.observer is not None:
                self.observer.on_requeue(self.now, batch, name)
            self._dispatch(batch, redispatch=True)
        self._observe_fleet_state()

    def _restart_device(self, name: str) -> None:
        """Bring a crashed device back (fresh epoch) and feed it."""
        device = self._device(name)
        self._pending_restarts = max(self._pending_restarts - 1, 0)
        if device.healthy:
            return
        device.healthy = True
        device.epoch += 1
        device.busy_until = self.now
        self.recovery_stats["restarts"] += 1
        self._advance(device)

    def _stall_device(self, name: str, duration_s: float) -> None:
        """Straggler fault: push the device's free time out by the stall.

        The epoch bump invalidates the pending ``device_free`` and a
        fresh one is scheduled at the extended time, preserving the
        invariant that a non-idle device always has exactly one live
        completion event in the heap.
        """
        device = self._device(name)
        if not device.healthy:
            return
        self.recovery_stats["stalls"] += 1
        device.epoch += 1
        device.busy_until = max(device.busy_until, self.now) + duration_s
        self._push(
            device.busy_until,
            _Event("device_free", device=name, epoch=device.epoch),
        )
        # A batch executing on the straggler is the one case work
        # stealing cannot rescue (steals only take *queued* batches) —
        # arm a straggler hedge check for it.
        executing = self._executing.get(name)
        if (
            self._hedge_after_s is not None
            and executing is not None
            and not executing.resolved
            and not executing.hedged
        ):
            self._push(
                self.now + self._hedge_after_s,
                _Event("hedge_check", batch=executing, device=name),
            )

    def _deferred_fault_target(self, kind: str) -> str | None:
        """The device a state-conditioned fault should hit right now.

        Fixed-time stalls and crashes almost always land on an idle,
        empty device at realistic utilisations (execution and queueing
        windows are a few microseconds wide), which makes the
        straggler-hedge and requeue-and-drain paths unreachable from a
        static schedule.  ``exec_stall`` and ``queued_crash`` instead
        wait for the fleet: the first (by name) healthy device with an
        unresolved batch in flight (resp. a non-empty queue), re-armed
        a microsecond at a time until one exists.  Deterministic for a
        fixed seed — the re-arm cadence depends only on virtual time.
        """
        if kind == "exec_stall":
            candidates = sorted(
                name
                for name, batch in self._executing.items()
                if self._device(name).healthy and not batch.resolved
            )
        else:  # queued_crash
            candidates = sorted(
                d.name
                for d in self.pool.devices
                if d.healthy and any(not b.resolved for b in d.queue)
            )
        return candidates[0] if candidates else None

    def _queue_storm(self, capacity: int) -> None:
        """Collapse every device queue to ``capacity`` (0 = rendezvous)."""
        self.recovery_stats["queue_storms"] += 1
        for device in self.pool.devices:
            self._saved_queue_caps.setdefault(device.name, device.queue_capacity)
            device.queue_capacity = max(capacity, 0)

    def _queue_storm_end(self) -> None:
        for device in self.pool.devices:
            saved = self._saved_queue_caps.pop(device.name, None)
            if saved is not None:
                device.queue_capacity = saved

    def _launch_fault(self, device: DeviceWorker, batch: Batch) -> bool:
        """Draw a batch-launch fault inside an active launch window.

        The draw consumes one variate per launch attempt in event order,
        so a fixed chaos seed reproduces the identical fault pattern.
        """
        if self._launch_rng is None or self.now >= self._launch_window_until:
            return False
        if float(self._launch_rng.random()) >= self._launch_fault_p:
            return False
        fault = FleetFaultEvent(
            kind="launch_fault",
            at=self.now,
            site=FleetSite.LAUNCH.value,
            device=device.name,
            param=float(batch.batch_id),
        )
        self.fleet_log.append(fault)
        self.recovery_stats["launch_faults"] += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.chaos.launch_fault")
        if self.observer is not None:
            self.observer.on_chaos(self.now, fault)
        return True

    def _fail_batch(self, batch: Batch, reason: str) -> None:
        """Terminal infrastructure failure of every member (never silent)."""
        if batch.resolved:
            return
        batch.resolved = True
        for i, request in enumerate(batch.requests):
            self._resolve_fail(
                request, reason, retries=batch.attempts, slot=int(batch.slots[i])
            )

    # -- the actual math ------------------------------------------------
    def _execute_batch(self, batch: Batch, device: DeviceWorker, service_s: float) -> None:
        """Compute bit-accurate results and resolve COMPLETED responses.

        The whole batch runs inside a ``serve.execute`` tracer span
        carrying the batch id — when ``REPRO_TRACE=1``, fault events
        (:class:`~repro.resilience.faults.FaultEvent`) and ``gpu.engine``
        execution captures raised during the math carry this span's id,
        which is the join key back to the batch in a postmortem.
        """
        if self.skip_math:
            # what-if replay: resolve with placeholder results at the
            # same virtual instants a full run would — nothing below
            # this point affects timing, only response payloads
            for i, request in enumerate(batch.requests):
                self._resolve_complete(
                    request, batch, device, None, service_s, [],
                    slot=int(batch.slots[i]),
                )
            return
        kernel = self.router.kernels[batch.decision.kernel]
        if self._defer_active and not batch.decision.reliable:
            gemm = getattr(kernel, "_gemm", None)
            if gemm is None and _is_plain_fp32(kernel):
                gemm = _FP32_STACKED
            if gemm is not None:
                responses = [
                    self._resolve_complete(
                        request, batch, device, None, service_s, [],
                        slot=int(batch.slots[i]),
                    )
                    for i, request in enumerate(batch.requests)
                ]
                self._deferred.append(
                    (gemm, batch.decision.kernel, batch.requests, responses)
                )
                return
        results: list[np.ndarray]
        attempts: list[list] = [[] for _ in batch.requests]
        with get_tracer().span(
            "serve.execute", category="serve",
            batch_id=batch.batch_id, device=device.name,
            kernel=batch.decision.kernel, size=batch.size,
        ):
            if batch.decision.reliable:
                results = []
                for i, request in enumerate(batch.requests):
                    result = self._run_reliable(batch.decision.kernel, request)
                    results.append(result.d)
                    attempts[i] = [a.as_dict() for a in result.attempts]
            else:
                results = self._run_batch_exact(kernel, batch)
        for i, request in enumerate(batch.requests):
            self._resolve_complete(
                request, batch, device, results[i], service_s, attempts[i],
                slot=int(batch.slots[i]),
            )

    def _run_batch_exact(self, kernel, batch: Batch) -> list[np.ndarray]:
        """One fused launch when the kernel supports stacked batching.

        Emulation-backed kernels expose their ``EmulatedGemm`` as
        ``_gemm``; its ``run_batched`` is bit-identical to per-request
        ``run`` by construction.  Other kernels (fp32 roofline models,
        the int8 Ozaki path) compute per request — trivially identical
        to the unbatched replay.
        """
        requests = batch.requests
        gemm = getattr(kernel, "_gemm", None)
        if gemm is not None and len(requests) > 1:
            c = None
            if requests[0].c is not None:  # compatibility key: all-or-none
                c = [r.c for r in requests]
            d, _ = gemm.run_batched_elements(
                [r.a for r in requests], [r.b for r in requests], c
            )
            return [d[i] for i in range(len(requests))]
        return [kernel.compute(r.a, r.b, r.c) for r in requests]

    def _run_reliable(self, kernel_name: str, request: GemmRequest):
        """ABFT-protected, fallback-chained execution for reliable=True.

        The fallback tail is the fp32 CUDA-core kernel, whose analytic
        bound is at or below every emulated kernel's at any k — a
        fallback can therefore never violate an SLO the primary met.
        """
        runner = self._reliable_runners.get(kernel_name)
        if runner is None:
            from ..resilience.runner import ResilientRunner

            chain = [kernel_name]
            if kernel_name != "cublas-cuda-fp32":
                chain.append("cublas-cuda-fp32")
            runner = ResilientRunner(
                chain=tuple(chain), abft=True, backoff_s=0.0,
                sleep=lambda _s: None,
            )
            self._reliable_runners[kernel_name] = runner
        return runner.run(request.a, request.b, request.c)

    # -- deferred fused execution ---------------------------------------
    def _deferral_safe(self) -> bool:
        """Whether batch math may be deferred past virtual resolution.

        Virtual time, routing, batching, and every observer callback are
        independent of *when* the bit-accurate products are computed —
        nothing reads ``response.d`` before :meth:`run` returns.  The
        two consumers that do care about math running inside the event
        (the tracer's ``serve.execute`` span join and an armed fault
        injector, whose strike position depends on execution order)
        force the eager path.
        """
        if self.defer_math is not None:
            return self.defer_math
        if get_tracer().enabled:
            return False
        from ..emulation import gemm as emulation_gemm
        from ..obs.hooks import fault_hook_override

        return fault_hook_override(emulation_gemm.FAULT_HOOK) is None

    def _flush_deferred(self) -> None:
        """Run all deferred batch math as shape-grouped stacked launches.

        Jobs are coalesced across *batches* by (kernel, shape, has-C) —
        one :meth:`~repro.emulation.gemm.EmulatedGemm
        .run_batched_elements` launch per group — which is bit-identical
        per element to the eager per-batch execution (and to per-request
        ``run``) while amortizing splits, matmul dispatch, and the
        rounding-cadence passes over every coalesced request of the run.
        """
        jobs, self._deferred = self._deferred, []
        if not jobs:
            return
        groups: dict[tuple, tuple] = {}
        for gemm, kernel_name, requests, responses in jobs:
            key = (id(gemm), requests[0].shape, requests[0].c is not None)
            entry = groups.get(key)
            if entry is None:
                groups[key] = entry = (gemm, kernel_name, [], [])
            entry[2].extend(requests)
            entry[3].extend(responses)
        group_list = list(groups.values())
        stacked = [None] * len(group_list)
        executor = self.pool.shared_executor()
        if executor is not None:
            from .procpool import FP32_KERNEL

            try:
                stacked = executor.run_groups(
                    [
                        (
                            FP32_KERNEL if gemm is _FP32_STACKED else kernel_name,
                            [r.a for r in requests],
                            [r.b for r in requests],
                            [r.c for r in requests]
                            if requests[0].c is not None
                            else None,
                        )
                        for gemm, kernel_name, requests, responses in group_list
                    ]
                )
            except Exception:
                stacked = [None] * len(group_list)
        for (gemm, kernel_name, requests, responses), d in zip(group_list, stacked):
            if d is None:
                if gemm is _FP32_STACKED:
                    d = np.matmul(
                        np.stack([r.a for r in requests]),
                        np.stack([r.b for r in requests]),
                    )
                    if requests[0].c is not None:
                        d = d + np.stack([r.c for r in requests])
                else:
                    c = None
                    if requests[0].c is not None:
                        c = [r.c for r in requests]
                    d, _ = gemm.run_batched_elements(
                        [r.a for r in requests], [r.b for r in requests], c
                    )
            for i, response in enumerate(responses):
                response.d = d[i]

    # -- resolution -----------------------------------------------------
    def _emit_span(self, response: GemmResponse, request: GemmRequest) -> None:
        tracer = get_tracer()
        if not tracer.enabled:
            return
        m, k, n = request.shape
        with tracer.span(
            "serve.request", category="serve",
            request_id=request.request_id, m=m, k=k, n=n,
            slo=request.max_rel_error, reliable=request.reliable,
        ) as span:
            span.set(
                status=response.status.value,
                kernel=response.kernel,
                device=response.device,
                batch_size=response.batch_size,
                latency_s=response.latency_s,
                reason=response.reason,
            )

    def _resolve(self, response: GemmResponse, request: GemmRequest) -> None:
        self.responses[request.request_id] = response
        if self.observer is not None:
            self.observer.on_resolve(self.now, request, response)
        if (
            self.accuracy_sampler is not None
            and response.status is RequestStatus.COMPLETED
        ):
            # reference capture only — ground-truth verification runs
            # after the event loop drains (and deferred math, which may
            # still hold this response's ``d``, has materialized)
            self.accuracy_sampler.capture(self.now, request, response)
        self._emit_span(response, request)
        if self._on_complete is not None:
            for follow_up in self._on_complete(response, self.now):
                self.submit(follow_up)

    def _resolve_reject(
        self,
        request: GemmRequest,
        reason: str,
        detail: str | None = None,
        slot: int | None = None,
    ) -> None:
        if slot is not None:
            self.table.release(slot)
        self._totals["rejected"] += 1
        self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.requests.rejected")
            registry.inc(f"serve.requests.rejected.{reason}")
        self._resolve(
            GemmResponse(
                request_id=request.request_id,
                status=RequestStatus.REJECTED,
                # keep the canonical reason key as a prefix so consumers
                # (e.g. the observer's client-error classification) can
                # match it without parsing the human-readable detail
                reason=f"{reason}: {detail}" if detail else reason,
                latency_s=self.now - request.submitted_at,
            ),
            request,
        )

    def _resolve_expire(self, request: GemmRequest, slot: int | None = None) -> None:
        if slot is not None:
            self.table.release(slot)
        self._totals["expired"] += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.requests.expired")
        self._resolve(
            GemmResponse(
                request_id=request.request_id,
                status=RequestStatus.EXPIRED,
                reason="deadline-expired",
                latency_s=self.now - request.submitted_at,
            ),
            request,
        )

    def _resolve_fail(
        self,
        request: GemmRequest,
        reason: str,
        retries: int = 0,
        slot: int | None = None,
    ) -> None:
        if slot is not None:
            self.table.release(slot)
        self._totals["failed"] += 1
        key = reason.split(":", 1)[0]
        self.fail_reasons[key] = self.fail_reasons.get(key, 0) + 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.requests.failed")
            registry.inc(f"serve.requests.failed.{key}")
        self._resolve(
            GemmResponse(
                request_id=request.request_id,
                status=RequestStatus.FAILED,
                reason=reason,
                latency_s=self.now - request.submitted_at,
                retries=retries,
                degraded=request.degraded,
            ),
            request,
        )

    def _resolve_complete(
        self,
        request: GemmRequest,
        batch: Batch,
        device: DeviceWorker,
        d: np.ndarray,
        service_s: float,
        attempts: list,
        slot: int | None = None,
    ) -> GemmResponse:
        if slot is not None:
            self.table.release(slot)
        self._totals["completed"] += 1
        latency = self.now - request.submitted_at
        self.latencies.append(latency)
        registry = get_registry()
        if registry.enabled:
            registry.inc("serve.requests.completed")
            registry.observe("serve.latency_s", latency)
            registry.observe("serve.queue_wait_s", max(latency - service_s, 0.0))
        response = GemmResponse(
            request_id=request.request_id,
            status=RequestStatus.COMPLETED,
            d=d,
            kernel=batch.decision.kernel,
            error_bound=batch.decision.error_bound,
            device=device.name,
            batch_size=batch.size,
            queued_s=max(latency - service_s, 0.0),
            service_s=service_s,
            latency_s=latency,
            attempts=attempts,
            degraded=request.degraded,
            retries=batch.attempts,
            hedged=batch.hedged,
        )
        self._resolve(response, request)
        return response

    # -- the event loop -------------------------------------------------
    def run(
        self,
        arrivals: Iterable[tuple[float, GemmRequest]] = (),
        on_complete: Callable[[GemmResponse, float], list[GemmRequest]] | None = None,
        drain: bool = True,
    ) -> dict[int, GemmResponse]:
        """Run the event loop over a timed arrival schedule.

        ``arrivals`` yields ``(virtual_time, request)`` pairs (open-loop
        workloads precompute these from a seeded process).
        ``on_complete`` is called at every terminal resolution and may
        return follow-up requests to submit *now* — the closed-loop
        hook.  With ``drain`` (default) the loop flushes the batcher and
        runs the fleet dry before returning.
        """
        self._on_complete = on_complete
        self._defer_active = self._deferral_safe()
        if self.chaos is not None and not self._chaos_armed:
            self._chaos_armed = True
            for fault in self.chaos.faults:
                self._push(fault.at, _Event("chaos", fault=fault))
        try:
            for at, request in arrivals:
                self._push(at, _Event("arrive", request=request))
            while self._events:
                at, _seq, event = heapq.heappop(self._events)
                self.now = max(self.now, at)
                if event.kind == "arrive":
                    self.submit(event.request)
                elif event.kind == "batch_window":
                    for batch in self.batcher.due(self.now):
                        self._dispatch(batch)
                elif event.kind == "device_free":
                    device = self._device(event.device)
                    if event.epoch == device.epoch:
                        self._finish(device)
                elif event.kind == "chaos":
                    self._apply_chaos(event.fault)
                elif event.kind == "retry":
                    self._retry_batch(event.batch)
                elif event.kind == "hedge_check":
                    self._maybe_hedge(event.batch, straggler=event.device)
                if not self._events and drain and self.batcher.pending:
                    # Nothing left will fire a window event sooner than
                    # the residual wait; flush the tail explicitly.
                    due = self.batcher.next_due()
                    self.now = max(self.now, due if due is not None else self.now)
                    for batch in self.batcher.flush(self.now):
                        self._dispatch(batch)
        finally:
            self._on_complete = None
            self._flush_deferred()
            if self.accuracy_sampler is not None:
                # off the hot path by construction: the event loop is
                # done and deferred math has filled every placeholder
                self.accuracy_sampler.flush()
        if drain:
            self.check_accounting()
        return self.responses

    def _device(self, name: str) -> DeviceWorker:
        for device in self.pool.devices:
            if device.name == name:
                return device
        raise KeyError(name)

    # -- reporting ------------------------------------------------------
    def stats(self) -> dict:
        stats = {
            **self._totals,
            "in_flight": self.in_flight,
            "routing_mix": dict(sorted(self.routing_mix.items())),
            "batch_size_counts": {
                str(k): v for k, v in sorted(self.batch_size_counts.items())
            },
            "reject_reasons": dict(sorted(self.reject_reasons.items())),
            "fail_reasons": dict(sorted(self.fail_reasons.items())),
            "batcher": self.batcher.stats(),
            "router": self.router.stats(),
            "pool": self.pool.stats(),
            "virtual_s": self.now,
            "recovery": dict(self.recovery_stats),
            "fleet_faults": len(self.fleet_log),
        }
        if self._brownout is not None:
            stats["brownout"] = self._brownout.summary()
        return stats
