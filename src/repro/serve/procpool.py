"""Opt-in multiprocess shared-memory execution of deferred batch math.

The serving event loop is virtual-time and single-threaded by design —
real threads would make latency figures nondeterministic.  The *math*
behind completed responses, however, is pure: by the time
:meth:`~repro.serve.service.GemmService._flush_deferred` runs, every
shape-grouped stacked launch is an independent, side-effect-free
computation whose result is bit-identical no matter where it executes.
That makes the flush phase the one safe place to spend real cores.

``REPRO_SERVE_PROCS=N`` (N >= 1) opts in: the pool forks ``N`` worker
processes, ships each group's stacked operands through
``multiprocessing.shared_memory`` (one block per job, laid out
``[A | B | C? | D]``, so operands cross the process boundary as raw
bytes — no pickling of array payloads), and the workers write the
product ``D`` back into the same block.  Workers rebuild kernels by
name from :mod:`repro.kernels.registry`; ``run_batched`` is
bit-identical to the in-process path by construction, so results are
byte-deterministic for a fixed seed regardless of worker count or
scheduling.

Every failure mode falls back to the in-process path: no
``SharedMemory`` support (platforms without ``/dev/shm``), fork
unavailable, a worker crash, or a per-job error each degrade cleanly —
the serving layer never *requires* the pool.
"""

from __future__ import annotations

import logging
import os

import numpy as np

__all__ = ["SharedMemoryGemmPool", "procs_requested", "get_shared_pool"]

#: sentinel kernel name for the plain stacked-fp32 path
FP32_KERNEL = "__fp32_stacked__"


def procs_requested() -> int:
    """Worker count requested via ``REPRO_SERVE_PROCS`` (0 = disabled)."""
    raw = os.environ.get("REPRO_SERVE_PROCS", "").strip()
    if not raw:
        return 0
    try:
        return max(int(raw), 0)
    except ValueError:
        return 0


def _attach(name: str):
    """Attach to a shared block without taking ownership of it.

    The creating process owns the block's lifetime.  Python >= 3.13
    makes that explicit (``track=False``); on older versions a plain
    attach is correct under the fork start method (the registration is
    a set-add in the *shared* resource tracker, removed exactly once by
    the parent's ``unlink``).
    """
    from multiprocessing.shared_memory import SharedMemory

    try:
        return SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        return SharedMemory(name=name)


def _views(buf, dims: tuple[int, int, int, int], has_c: bool):
    """The ``[A | B | C? | D]`` float32 views over one job's block."""
    nb, m, k, n = dims
    a_sz, b_sz, mn_sz = nb * m * k, nb * k * n, nb * m * n
    off = 0
    a = np.frombuffer(buf, dtype=np.float32, count=a_sz, offset=off).reshape(nb, m, k)
    off += a_sz * 4
    b = np.frombuffer(buf, dtype=np.float32, count=b_sz, offset=off).reshape(nb, k, n)
    off += b_sz * 4
    c = None
    if has_c:
        c = np.frombuffer(buf, dtype=np.float32, count=mn_sz, offset=off).reshape(nb, m, n)
        off += mn_sz * 4
    d = np.frombuffer(buf, dtype=np.float32, count=mn_sz, offset=off).reshape(nb, m, n)
    return a, b, c, d


def _job_bytes(dims: tuple[int, int, int, int], has_c: bool) -> int:
    nb, m, k, n = dims
    return 4 * (nb * m * k + nb * k * n + (2 if has_c else 1) * nb * m * n)


def _worker_loop(conn) -> None:
    """Worker entry: attach, compute, write D in place, acknowledge."""
    kernels: dict[str, object] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        job_id, shm_name, kernel_name, dims, has_c = msg
        try:
            shm = _attach(shm_name)
            try:
                a, b, c, d_slot = _views(shm.buf, dims, has_c)
                if kernel_name == FP32_KERNEL:
                    d = np.matmul(a, b)
                    if c is not None:
                        d = d + c
                else:
                    kernel = kernels.get(kernel_name)
                    if kernel is None:
                        from ..kernels.registry import get_kernel

                        kernel = get_kernel(kernel_name)
                        kernels[kernel_name] = kernel
                    d, _ = kernel._gemm.run_batched(a, b, c)  # noqa: SLF001
                d_slot[...] = d
            finally:
                del a, b, c, d_slot  # drop buffer views before close
                shm.close()
            conn.send((job_id, None))
        except Exception as exc:  # per-job fallback signal
            try:
                conn.send((job_id, f"{type(exc).__name__}: {exc}"))
            except Exception:
                return


class SharedMemoryGemmPool:
    """N forked workers computing stacked GEMM groups via shared memory."""

    def __init__(self, procs: int):
        if procs < 1:
            raise ValueError("procs must be >= 1")
        import multiprocessing as mp
        from multiprocessing.shared_memory import SharedMemory

        if "fork" in mp.get_all_start_methods():
            ctx = mp.get_context("fork")
        else:  # pragma: no cover - non-fork platforms
            ctx = mp.get_context("spawn")
        # Probe shared-memory support up front so an unsupported
        # platform fails construction (and the caller falls back) once.
        probe = SharedMemory(create=True, size=16)
        probe.close()
        probe.unlink()
        self.procs = procs
        self._workers = []
        self._conns = []
        self._dead = [False] * procs
        for _ in range(procs):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_loop, args=(child_conn,), daemon=True)
            proc.start()
            child_conn.close()
            self._workers.append(proc)
            self._conns.append(parent_conn)

    @property
    def dead_workers(self) -> int:
        """Workers detected dead so far (their jobs fall back in-process)."""
        return sum(self._dead)

    def _mark_dead(self, conn_i: int) -> None:
        """Record one worker's death (idempotent) and log the fallback."""
        if self._dead[conn_i]:
            return
        self._dead[conn_i] = True
        proc = self._workers[conn_i]
        logging.getLogger(__name__).warning(
            "shared-memory gemm worker %d (pid %s) died (exitcode %s); "
            "its jobs fall back to in-process execution",
            conn_i, proc.pid, proc.exitcode,
        )

    def run_groups(self, jobs: list[tuple]) -> list[np.ndarray | None]:
        """Execute ``(kernel_name, a_list, b_list, c_list | None)`` jobs.

        Jobs are dealt round-robin to the workers, all dispatched before
        any collection so independent groups overlap.  A job whose
        worker reports an error (or dies) comes back as ``None`` — the
        caller recomputes it in process.  Collection order is by job
        index, so the returned list is deterministic.
        """
        from multiprocessing.shared_memory import SharedMemory

        blocks: list = [None] * len(jobs)
        metas: list = [None] * len(jobs)
        results: list[np.ndarray | None] = [None] * len(jobs)
        sent: list[list[int]] = [[] for _ in self._conns]
        alive = [i for i, dead in enumerate(self._dead) if not dead]
        cursor = 0
        try:
            for idx, (kernel_name, a_list, b_list, c_list) in enumerate(jobs):
                nb = len(a_list)
                m, k = a_list[0].shape
                n = b_list[0].shape[1]
                dims = (nb, m, k, n)
                has_c = c_list is not None
                shm = SharedMemory(create=True, size=_job_bytes(dims, has_c))
                a, b, c, _d = _views(shm.buf, dims, has_c)
                for i in range(nb):
                    a[i] = a_list[i]
                    b[i] = b_list[i]
                    if has_c:
                        c[i] = c_list[i]
                del a, b, c, _d
                blocks[idx] = shm
                metas[idx] = (dims, has_c)
                # Deal over the *live* workers only; a send that hits a
                # freshly dead worker (killed child, closed pipe) marks
                # it and redeals to the next one.  A job no live worker
                # accepts stays None — the in-process fallback.
                while alive:
                    conn_i = alive[cursor % len(alive)]
                    if not self._workers[conn_i].is_alive():
                        self._mark_dead(conn_i)
                        alive.remove(conn_i)
                        continue
                    try:
                        self._conns[conn_i].send(
                            (idx, shm.name, kernel_name, dims, has_c)
                        )
                    except (BrokenPipeError, OSError):
                        self._mark_dead(conn_i)
                        alive.remove(conn_i)
                        continue
                    sent[conn_i].append(idx)
                    cursor += 1
                    break
            # Each worker is serial, so its pipe yields acknowledgements
            # in dispatch order; a dead worker leaves its jobs as None
            # and the caller recomputes them in process.
            for conn_i, conn in enumerate(self._conns):
                for _ in sent[conn_i]:
                    try:
                        job_id, error = conn.recv()
                    except (EOFError, OSError):
                        self._mark_dead(conn_i)
                        break
                    if error is None:
                        dims, has_c = metas[job_id]
                        _a, _b, _c, d = _views(blocks[job_id].buf, dims, has_c)
                        results[job_id] = np.array(d, copy=True)
                        del _a, _b, _c, d
        finally:
            for shm in blocks:
                if shm is not None:
                    try:
                        shm.close()
                        shm.unlink()
                    except Exception:
                        pass
        return results

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
                conn.close()
            except Exception:
                pass
        for proc in self._workers:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover
                proc.terminate()
        self._workers = []
        self._conns = []

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass


_POOL: SharedMemoryGemmPool | None = None
_POOL_UNAVAILABLE = False


def get_shared_pool() -> SharedMemoryGemmPool | None:
    """Process-wide pool singleton honouring ``REPRO_SERVE_PROCS``.

    Returns ``None`` when the feature is off (the default), when a
    previous construction attempt failed (no shared-memory support), or
    when construction fails now — callers treat ``None`` as "use the
    in-process path".
    """
    global _POOL, _POOL_UNAVAILABLE
    procs = procs_requested()
    if procs <= 0 or _POOL_UNAVAILABLE:
        return None
    if _POOL is None or _POOL.procs != procs:
        if _POOL is not None:
            _POOL.close()
            _POOL = None
        try:
            _POOL = SharedMemoryGemmPool(procs)
        except Exception:
            _POOL_UNAVAILABLE = True
            return None
    return _POOL
