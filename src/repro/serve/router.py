"""Precision-aware routing: cheapest kernel that certifies the SLO.

The kernel menu spans an accuracy-throughput frontier (Table 5 plus the
int8 successor): ``cuBLAS-TC-Half`` is fastest and sloppiest (10
effective mantissa bits), the extended-precision emulations sit in the
middle (20-21 bits at near-half throughput), the fp32 CUDA-core kernel
is the most accurate and slowest.  The router turns a request's
``max_rel_error`` into a kernel choice:

1. compute each kernel's **analytic** forward-error bound for the
   request's ``k`` (:func:`repro.fp.error.gemm_relative_error_bound`
   with the kernel's effective mantissa / accumulator widths) — the
   bound, not a measured error, so eligibility is a worst-case
   certificate;
2. among kernels whose bound is at or below the SLO, pick the one whose
   modelled wall time (``kernel.time`` — the instruction-level engine or
   calibrated roofline) is smallest;
3. no eligible kernel -> :class:`~repro.serve.api.SloUnsatisfiableError`
   (typed, immediate — an impossible SLO must never hang the batcher).

Timing and bound lookups are memoized per ``(kernel, shape, gpu)``: the
models are deterministic, and a serving stream re-routes the same few
shapes thousands of times.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fp.error import gemm_relative_error_bound
from ..gpu.engine import LAUNCH_OVERHEAD_S
from ..gpu.spec import TESLA_T4, GpuSpec
from ..kernels.registry import get_kernel
from ..obs.metrics import get_registry
from ..obs.tracing import get_tracer
from .api import GemmRequest, SloUnsatisfiableError

__all__ = [
    "DEFAULT_MENU",
    "RoutingDecision",
    "PrecisionRouter",
    "kernel_error_model",
    "clear_router_memos",
]

# Process-wide L2 memos behind every router instance.  Both lookups are
# pure functions of their keys — the analytic bound of (mantissa,
# accumulator, k) and the modelled wall time of (gpu, kernel, shape) —
# so a fresh GemmService (one per load test / bench repetition) starts
# warm instead of re-running the instruction-level engine for every
# (kernel, shape, device) triple it routes.
_BOUND_MEMO: dict[tuple[int, int, int], float] = {}
_TIME_MEMO: dict[tuple[GpuSpec, str, tuple[int, int, int]], float] = {}


def clear_router_memos() -> None:
    """Drop the process-wide bound/time memos (test isolation hook)."""
    _BOUND_MEMO.clear()
    _TIME_MEMO.clear()


#: default serving menu, spanning the accuracy-throughput frontier
DEFAULT_MENU = (
    "cublas-tc-half",
    "egemm-tc",
    "markidis",
    "cublas-tc-emulation",
    "ozaki-int8",
    "cublas-cuda-fp32",
)


def kernel_error_model(kernel) -> tuple[int, int]:
    """``(mantissa_bits, accumulator_bits)`` of a kernel's arithmetic.

    Emulation-backed kernels expose their scheme (21 bits for the
    round-split, 20 for truncate, 10 for bare half), all accumulating in
    fp32.  The Ozaki int8 kernel represents ``7*slices - 1`` leading
    bits across its digit slices and recombines exactly-computed int32
    partials in fp64.  fp32 CUDA-core kernels round both input and
    accumulator at 23 stored bits.
    """
    scheme = getattr(kernel, "scheme", None)
    if scheme is None:
        gemm = getattr(kernel, "_gemm", None)
        scheme = getattr(gemm, "scheme", None)
    if scheme is not None:
        return scheme.effective_mantissa_bits, 23
    slices = getattr(kernel, "slices", None)
    if slices is not None:
        return 7 * slices - 1, 52
    if kernel.info.precision == "single":
        return 23, 23
    # conservative fallback: treat an unknown kernel as bare half
    return 10, 23


@dataclass(frozen=True)
class RoutingDecision:
    """One request's routing outcome: kernel + its certificates."""

    kernel: str
    #: analytic relative-error bound the kernel certifies at this k
    error_bound: float
    #: modelled single-GEMM wall time on the routed device class
    seconds: float
    #: route through ABFT + resilient fallback (request.reliable)
    reliable: bool = False
    #: menu kernels that would have been *cheaper* but whose analytic
    #: bound failed to certify the SLO — the audit trail of why the
    #: router paid for precision (span/flight-recorder attribute)
    rejected_cheaper: tuple[str, ...] = ()

    def batch_seconds(self, batch_size: int) -> float:
        """Modelled service time of a ``batch_size``-element fused batch.

        A coalesced batch pays the kernel-launch overhead once; every
        element past the first adds only the launch-free execution time.
        Degenerate shapes (``seconds`` below the overhead itself) never
        go negative.
        """
        if batch_size <= 0:
            return 0.0
        extra = max(self.seconds - LAUNCH_OVERHEAD_S, 0.0)
        return self.seconds + (batch_size - 1) * extra


class PrecisionRouter:
    """Maps requests to the cheapest SLO-certifying kernel on a menu."""

    def __init__(self, menu: tuple[str, ...] = DEFAULT_MENU, spec: GpuSpec = TESLA_T4):
        if not menu:
            raise ValueError("router menu must name at least one kernel")
        self.spec = spec
        self.kernels = {name: get_kernel(name) for name in menu}
        self._bits = {
            name: kernel_error_model(kern) for name, kern in self.kernels.items()
        }
        self._bound_memo: dict[tuple[str, int], float] = {}
        self._time_memo: dict[tuple[str, tuple[int, int, int]], float] = {}
        # Full-decision memo: routing is a pure function of the request's
        # (shape, SLO, reliability) under a fixed menu and device, and a
        # serving stream repeats the same few keys thousands of times.
        self._route_memo: dict[
            tuple[int, int, int, float, bool], RoutingDecision | str
        ] = {}
        self.decisions = 0
        self.unsatisfiable = 0

    # -- certificates ---------------------------------------------------
    def error_bound(self, kernel_name: str, k: int) -> float:
        """Analytic forward-error bound of one menu kernel at depth k."""
        key = (kernel_name, k)
        bound = self._bound_memo.get(key)
        if bound is None:
            mant, acc = self._bits[kernel_name]
            gkey = (mant, acc, k)
            bound = _BOUND_MEMO.get(gkey)
            if bound is None:
                bound = gemm_relative_error_bound(k, mant, acc)
                _BOUND_MEMO[gkey] = bound
            self._bound_memo[key] = bound
        return bound

    def seconds_for(self, kernel_name: str, shape: tuple[int, int, int]) -> float:
        """Memoized modelled wall time of one GEMM on this router's GPU.

        Public because the service re-prices a batch on the *executing*
        device's router — kernel choice is device-independent (accuracy
        is), but service time is not.
        """
        key = (kernel_name, shape)
        seconds = self._time_memo.get(key)
        if seconds is None:
            gkey = (self.spec, kernel_name, shape)
            seconds = _TIME_MEMO.get(gkey)
            if seconds is None:
                m, k, n = shape
                if min(m, n, k) <= 0:
                    # Degenerate GEMM: nothing launches but the call still
                    # pays the fixed overhead (kernel.time refuses k=0).
                    seconds = LAUNCH_OVERHEAD_S
                else:
                    seconds = self.kernels[kernel_name].time(m, n, k, self.spec).seconds
                _TIME_MEMO[gkey] = seconds
            self._time_memo[key] = seconds
        return seconds

    # -- routing --------------------------------------------------------
    def route(
        self, request: GemmRequest, max_rel_error: float | None = None
    ) -> RoutingDecision:
        """Cheapest menu kernel whose analytic bound certifies the SLO.

        ``max_rel_error`` overrides the request's own SLO — the brownout
        controller routes degradable requests against their *fallback*
        SLO through this parameter without mutating the request.
        """
        m, k, n = request.shape
        slo = request.max_rel_error if max_rel_error is None else max_rel_error
        self.decisions += 1
        registry = get_registry()
        memo_key = (m, k, n, slo, request.reliable)
        cached = self._route_memo.get(memo_key)
        if cached is not None:
            if isinstance(cached, str):  # memoized unsatisfiable message
                self.unsatisfiable += 1
                if registry.enabled:
                    registry.inc("serve.router.unsatisfiable")
                raise SloUnsatisfiableError(cached)
            if registry.enabled:
                registry.inc("serve.router.decisions")
                registry.inc(f"serve.router.kernel.{cached.kernel}")
            return cached
        eligible = [
            (name, bound)
            for name in self.kernels
            if (bound := self.error_bound(name, k)) <= slo
        ]
        if not eligible:
            self.unsatisfiable += 1
            best = min(self.error_bound(name, k) for name in self.kernels)
            if registry.enabled:
                registry.inc("serve.router.unsatisfiable")
            message = (
                f"no kernel on the menu certifies max_rel_error={slo:g} "
                f"at k={k} (best analytic bound: {best:g})"
            )
            self._route_memo[memo_key] = message
            raise SloUnsatisfiableError(message)
        choice, bound = min(
            eligible, key=lambda nb: (self.seconds_for(nb[0], request.shape), nb[0])
        )
        seconds = self.seconds_for(choice, request.shape)
        # the audit trail: kernels that modelled cheaper than the choice
        # but could not certify the SLO (sorted cheapest-first)
        eligible_names = {name for name, _ in eligible}
        rejected_cheaper = tuple(sorted(
            (name for name in self.kernels
             if name not in eligible_names
             and self.seconds_for(name, request.shape) < seconds),
            key=lambda name: (self.seconds_for(name, request.shape), name),
        ))
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "serve.route", category="serve", kernel=choice,
                m=m, k=k, n=n, slo=slo,
            ) as span:
                span.set(bound=bound, seconds=seconds,
                         rejected_cheaper=",".join(rejected_cheaper))
        if registry.enabled:
            registry.inc("serve.router.decisions")
            registry.inc(f"serve.router.kernel.{choice}")
        decision = RoutingDecision(
            kernel=choice, error_bound=bound, seconds=seconds,
            reliable=request.reliable, rejected_cheaper=rejected_cheaper,
        )
        self._route_memo[memo_key] = decision
        return decision

    def stats(self) -> dict:
        return {
            "decisions": self.decisions,
            "unsatisfiable": self.unsatisfiable,
            "bound_memo": len(self._bound_memo),
            "time_memo": len(self._time_memo),
        }
