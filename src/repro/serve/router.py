"""Precision-aware routing: cheapest kernel that certifies the SLO.

The kernel menu spans an accuracy-throughput frontier (Table 5 plus the
int8 successor): ``cuBLAS-TC-Half`` is fastest and sloppiest (10
effective mantissa bits), the extended-precision emulations sit in the
middle (20-21 bits at near-half throughput), the fp32 CUDA-core kernel
is the most accurate and slowest.  The router turns a request's
``max_rel_error`` into a kernel choice:

1. compute each kernel's **analytic** forward-error bound for the
   request's ``k`` (:func:`repro.fp.error.gemm_relative_error_bound`
   with the kernel's effective mantissa / accumulator widths) — the
   bound, not a measured error, so eligibility is a worst-case
   certificate;
2. among kernels whose bound is at or below the SLO, pick the one whose
   modelled wall time (``kernel.time`` — the instruction-level engine or
   calibrated roofline) is smallest;
3. no eligible kernel -> :class:`~repro.serve.api.SloUnsatisfiableError`
   (typed, immediate — an impossible SLO must never hang the batcher).

Timing and bound lookups are memoized per ``(kernel, shape, gpu)``: the
models are deterministic, and a serving stream re-routes the same few
shapes thousands of times.

**Operand-dependent kernels route in two stages.**  Two kernel
families carry certificates that depend on the operands, not just the
shape:

* the Ozaki int8 line — digit slicing under a shared per-row exponent
  is accurate relative to the row *maximum*, so its componentwise bound
  scales with the operands' max/min-nonzero magnitude spread
  (:func:`repro.fp.error.block_scaled_relative_error_bound`; the
  earlier static ``7*slices - 1``-mantissa-bit model was unsound — the
  accuracy verifier measured errors >2x past it on standard-normal
  operands);
* every fp16-split/half kernel — elements whose split parts land on
  fp16's *subnormal* grid pay an absolute representation error
  ``eta`` instead of the relative ``u_in * |x|`` the static model
  assumes, adding an operand-dependent floor ``eta / min_nonzero``
  (:func:`repro.fp.error.split_subnormal_floor`; the accuracy
  verifier's property test measured errors ~30x past the static bound
  on wide-exponent operands at small k).

Stage one routes statically against each kernel's *floor* bound
(spread 1 / no subnormal parts, its best case) and memoizes as usual;
only when the static winner is operand-dependent does stage two
measure the request's actual operands and walk the statically eligible
kernels in cost order, confirming the first whose *refined* bound
(spread-bucketed for blockwise, subnormal-floor-bucketed for the fp16
family, static for fp32) still certifies the SLO.  ``reliable``
requests price the fp16 family's floor *after* the exact power-of-two
conditioning the resilient front door applies (same trigger rule as
:class:`repro.resilience.runner.ResilientRunner`), because that is the
arithmetic their escalated execution actually runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..fp.error import (
    CONDITIONING_TARGET_EXP,
    block_scaled_relative_error_bound,
    gemm_relative_error_bound,
    operand_spread,
    split_subnormal_floor,
)
from ..gpu.engine import LAUNCH_OVERHEAD_S
from ..gpu.spec import TESLA_T4, GpuSpec
from ..kernels.registry import get_kernel
from ..obs.metrics import get_registry
from ..obs.tracing import get_tracer
from ..resilience.runner import assess_operand
from .api import GemmRequest, SloUnsatisfiableError

__all__ = [
    "DEFAULT_MENU",
    "RoutingDecision",
    "PrecisionRouter",
    "kernel_error_model",
    "kernel_blockwise_slices",
    "kernel_subnormal_eta",
    "clear_router_memos",
]

# Process-wide L2 memos behind every router instance.  Both lookups are
# pure functions of their keys — the analytic bound of (mantissa,
# accumulator, k) and the modelled wall time of (gpu, kernel, shape) —
# so a fresh GemmService (one per load test / bench repetition) starts
# warm instead of re-running the instruction-level engine for every
# (kernel, shape, device) triple it routes.
_BOUND_MEMO: dict[tuple[int, int, int], float] = {}
_TIME_MEMO: dict[tuple[GpuSpec, str, tuple[int, int, int]], float] = {}
#: spread-refined blockwise bounds keyed (slices, k, bucket_a, bucket_b)
_SPREAD_BOUND_MEMO: dict[tuple[int, int, int, int], float] = {}
#: subnormal-floor-refined fp16-family bounds keyed
#: (mantissa, accumulator, eta, k, bucket_a, bucket_b)
_FLOOR_BOUND_MEMO: dict[tuple[int, int, float, int, int | None, int | None], float] = {}


def clear_router_memos() -> None:
    """Drop the process-wide bound/time memos (test isolation hook)."""
    _BOUND_MEMO.clear()
    _TIME_MEMO.clear()
    _SPREAD_BOUND_MEMO.clear()
    _FLOOR_BOUND_MEMO.clear()


#: default serving menu, spanning the accuracy-throughput frontier
DEFAULT_MENU = (
    "cublas-tc-half",
    "egemm-tc",
    "markidis",
    "cublas-tc-emulation",
    "ozaki-int8",
    "cublas-cuda-fp32",
)


def kernel_blockwise_slices(kernel) -> int | None:
    """Digit-slice count of a blockwise-scaled kernel, else ``None``.

    Blockwise kernels (the Ozaki int8 line) carry an operand-dependent
    certificate — :func:`repro.fp.error.block_scaled_relative_error_bound`
    — instead of a static (mantissa, accumulator) pair, and the router
    routes them in two stages.
    """
    slices = getattr(kernel, "slices", None)
    return int(slices) if slices is not None else None


def kernel_error_model(kernel) -> tuple[int, int]:
    """``(mantissa_bits, accumulator_bits)`` of a kernel's arithmetic.

    Emulation-backed kernels expose their scheme (21 bits for the
    round-split, 20 for truncate, 10 for bare half), all accumulating in
    fp32.  fp32 CUDA-core kernels round both input and accumulator at 23
    stored bits.  For the blockwise Ozaki int8 kernel this static pair is
    only the *floor* of an operand-dependent certificate (its slicing
    error is relative to each row's maximum, so ``u_in`` is
    ``2^-(7*(slices-1) + 6)`` at best — 19 effective mantissa bits for 3
    slices, degrading with the operands' magnitude spread); the router
    certifies it through
    :func:`repro.fp.error.block_scaled_relative_error_bound`, never
    through this model.
    """
    scheme = getattr(kernel, "scheme", None)
    if scheme is None:
        gemm = getattr(kernel, "_gemm", None)
        scheme = getattr(gemm, "scheme", None)
    if scheme is not None:
        return scheme.effective_mantissa_bits, 23
    slices = kernel_blockwise_slices(kernel)
    if slices is not None:
        return 7 * (slices - 1) + 6 - 1, 52
    if kernel.info.precision == "single":
        return 23, 23
    # conservative fallback: treat an unknown kernel as bare half
    return 10, 23


def kernel_subnormal_eta(kernel) -> float | None:
    """Absolute fp16-subnormal representation error of a kernel's split.

    ``None`` for kernels without a half-precision encoding step (the
    fp32 CUDA-core and blockwise int8 lines): their certificates carry
    no subnormal floor.  For scheme-backed kernels this is the scheme's
    ``subnormal_eta`` — half the fp16 subnormal spacing (2^-25) for
    round-to-nearest encodings, the full spacing (2^-24) for truncating
    ones — which :func:`repro.fp.error.split_subnormal_floor` turns into
    the operand-dependent floor the router prices in stage two.
    """
    scheme = getattr(kernel, "scheme", None)
    if scheme is None:
        gemm = getattr(kernel, "_gemm", None)
        scheme = getattr(gemm, "scheme", None)
    if scheme is None:
        return None
    return float(getattr(scheme, "subnormal_eta", 2.0**-25))


def _spread_bucket(spread: float) -> int:
    """Power-of-two bucket index covering ``spread`` from above.

    The refined bound is memoized per bucket and must certify every
    request in it, so the spread quantizes *up*: bucket ``b`` covers
    spreads in ``(2^(b-1), 2^b]`` and prices them all at ``2^b``.
    Non-finite spreads return -1 (no certificate; handled by callers).
    """
    if math.isinf(spread) or math.isnan(spread):
        return -1
    return max(0, math.ceil(math.log2(max(spread, 1.0))))


def _floor_bucket(health, conditioned: bool) -> int | None:
    """Power-of-two bucket exponent of the smallest nonzero magnitude.

    Quantized *down*: the subnormal-floor charge ``eta / mu`` grows as
    ``mu`` shrinks, so pricing the bucket's lower edge ``2^b <= mu``
    certifies every operand in the bucket.  ``conditioned`` applies the
    exact power-of-two rescale of the resilient runner's ``'scaled'``
    escalation before bucketing (scaling is exact, so the shifted
    exponent is the one the split actually sees).  ``None`` means the
    operand has no nonzero magnitudes — zeros split exactly, no floor.
    """
    mu = health.min_nonzero
    if mu <= 0.0:
        return None
    if conditioned and health.max_abs > 0.0:
        mu = math.ldexp(mu, CONDITIONING_TARGET_EXP - math.floor(math.log2(health.max_abs)))
    return math.floor(math.log2(mu))


@dataclass(frozen=True)
class _OperandCandidate:
    """Stage-one outcome when the static winner is operand-dependent.

    Memoized in the route memo: the cost-ordered statically eligible
    kernels (the walk order of stage two) plus the audit pool of
    statically rejected ones.  Stage two measures the request's actual
    operands and confirms the first kernel in the walk whose *refined*
    bound still certifies the SLO; with none, the memoized
    unsatisfiable message is raised per request — these operands
    genuinely cannot meet the SLO on this menu.
    """

    #: cost-ordered statically eligible (kernel, static_bound, seconds)
    eligible: tuple[tuple[str, float, float], ...]
    #: statically rejected kernels with modelled seconds (audit pool)
    static_rejects: tuple[tuple[str, float], ...]
    unsat_message: str


@dataclass(frozen=True)
class RoutingDecision:
    """One request's routing outcome: kernel + its certificates."""

    kernel: str
    #: analytic relative-error bound the kernel certifies at this k
    error_bound: float
    #: modelled single-GEMM wall time on the routed device class
    seconds: float
    #: route through ABFT + resilient fallback (request.reliable)
    reliable: bool = False
    #: menu kernels that would have been *cheaper* but whose analytic
    #: bound failed to certify the SLO — the audit trail of why the
    #: router paid for precision (span/flight-recorder attribute)
    rejected_cheaper: tuple[str, ...] = ()

    def batch_seconds(self, batch_size: int) -> float:
        """Modelled service time of a ``batch_size``-element fused batch.

        A coalesced batch pays the kernel-launch overhead once; every
        element past the first adds only the launch-free execution time.
        Degenerate shapes (``seconds`` below the overhead itself) never
        go negative.
        """
        if batch_size <= 0:
            return 0.0
        extra = max(self.seconds - LAUNCH_OVERHEAD_S, 0.0)
        return self.seconds + (batch_size - 1) * extra


class PrecisionRouter:
    """Maps requests to the cheapest SLO-certifying kernel on a menu."""

    def __init__(
        self,
        menu: tuple[str, ...] = DEFAULT_MENU,
        spec: GpuSpec = TESLA_T4,
        tuning_db=None,
    ):
        if not menu:
            raise ValueError("router menu must name at least one kernel")
        self.spec = spec
        self.kernels = {name: get_kernel(name) for name in menu}
        #: optional :class:`repro.tune.TuningDatabase`.  Tuned entries
        #: refine only the *timing model* — execution stays on the
        #: static ``self.kernels`` instances, so attaching a database
        #: can never change the bits a decision produces.
        self.tuning_db = tuning_db
        self._tuned_seconds_memo: dict[tuple[str, tuple[int, int, int]], float | None] = {}
        self._tuned_kernel_memo: dict[str, object] = {}
        self.tuned_hits = 0
        self.tuned_misses = 0
        self.tuned_fallbacks = 0
        self._bits = {
            name: kernel_error_model(kern) for name, kern in self.kernels.items()
        }
        self._blockwise = {
            name: slices
            for name, kern in self.kernels.items()
            if (slices := kernel_blockwise_slices(kern)) is not None
        }
        self._floor_eta = {
            name: eta
            for name, kern in self.kernels.items()
            if (eta := kernel_subnormal_eta(kern)) is not None
        }
        self._bound_memo: dict[tuple[str, int], float] = {}
        self._time_memo: dict[tuple[str, tuple[int, int, int]], float] = {}
        # Full-decision memo: a static route is a pure function of the
        # request's (shape, SLO, reliability) under a fixed menu and
        # device, and a serving stream repeats the same few keys
        # thousands of times.  When the static winner is
        # operand-dependent (blockwise or fp16-family) the memo stores
        # an _OperandCandidate instead: the final decision additionally
        # depends on the request's operand magnitudes, resolved per
        # request in stage two.
        self._route_memo: dict[
            tuple[int, int, int, float, bool],
            RoutingDecision | str | _OperandCandidate,
        ] = {}
        self.decisions = 0
        self.unsatisfiable = 0
        #: stage-two outcomes (audit counters surfaced in stats())
        self.spread_refinements = 0
        self.spread_fallbacks = 0
        self.floor_refinements = 0
        self.floor_fallbacks = 0

    # -- certificates ---------------------------------------------------
    def error_bound(self, kernel_name: str, k: int) -> float:
        """Analytic forward-error bound of one menu kernel at depth k.

        For operand-dependent kernels this is the *best-case* bound:
        operand spread 1 for the blockwise line (the sound per-request
        certificate comes from :meth:`spread_bound`), no fp16-subnormal
        split parts for the scheme-backed family (per-request
        certificate from :meth:`floor_bound`).
        """
        key = (kernel_name, k)
        bound = self._bound_memo.get(key)
        if bound is None:
            slices = self._blockwise.get(kernel_name)
            if slices is not None:
                bound = self.spread_bound(kernel_name, k, 0, 0)
            else:
                mant, acc = self._bits[kernel_name]
                gkey = (mant, acc, k)
                bound = _BOUND_MEMO.get(gkey)
                if bound is None:
                    bound = gemm_relative_error_bound(k, mant, acc)
                    _BOUND_MEMO[gkey] = bound
            self._bound_memo[key] = bound
        return bound

    def spread_bound(
        self, kernel_name: str, k: int, bucket_a: int, bucket_b: int
    ) -> float:
        """Blockwise certificate at quantized operand spreads.

        ``bucket_a``/``bucket_b`` are :func:`_spread_bucket` indices: the
        bound is evaluated at spread ``2^bucket``, the bucket's upper
        edge, so it certifies every request whose measured spread falls
        inside.  Negative buckets (non-finite spreads) return ``inf``.
        """
        slices = self._blockwise[kernel_name]
        if bucket_a < 0 or bucket_b < 0:
            return float("inf")
        gkey = (slices, k, bucket_a, bucket_b)
        bound = _SPREAD_BOUND_MEMO.get(gkey)
        if bound is None:
            bound = block_scaled_relative_error_bound(
                k, slices, spread_a=2.0**bucket_a, spread_b=2.0**bucket_b
            )
            _SPREAD_BOUND_MEMO[gkey] = bound
        return bound

    def floor_bound(
        self, kernel_name: str, k: int, bucket_a: int | None, bucket_b: int | None
    ) -> float:
        """fp16-family certificate at quantized operand magnitude floors.

        ``bucket_a``/``bucket_b`` are :func:`_floor_bucket` exponents:
        the subnormal floor is priced at the bucket's lower edge
        ``2^bucket`` (the *largest* charge inside the bucket), so the
        bound certifies every operand whose smallest nonzero magnitude
        falls in it.  ``None`` buckets (all-zero operands) charge no
        floor, reducing to the static bound.
        """
        mant, acc = self._bits[kernel_name]
        eta = self._floor_eta[kernel_name]
        gkey = (mant, acc, eta, k, bucket_a, bucket_b)
        bound = _FLOOR_BOUND_MEMO.get(gkey)
        if bound is None:
            fa = 0.0 if bucket_a is None else split_subnormal_floor(2.0**bucket_a, 1.0, mant, eta)
            fb = 0.0 if bucket_b is None else split_subnormal_floor(2.0**bucket_b, 1.0, mant, eta)
            bound = gemm_relative_error_bound(k, mant, acc, floor_a=fa, floor_b=fb)
            _FLOOR_BOUND_MEMO[gkey] = bound
        return bound

    def _tuned_seconds(self, kernel_name: str, shape: tuple[int, int, int]) -> float | None:
        """Price a shape from the tuning database; ``None`` → static path.

        Resolution is memoized per (kernel, shape), so the hit / miss /
        fallback counters tally *distinct pricings*, not repeat calls.
        The database entry must carry the same functional identity
        (scheme, ``tk``) as this router's static kernel — a database
        written against a different menu build is refused (fallback),
        because pricing must describe the kernel the service will
        actually execute.  Tuned seconds deliberately stay out of the
        process-wide time memo: that cache is shared with untuned
        routers.
        """
        key = (kernel_name, shape)
        if key in self._tuned_seconds_memo:
            return self._tuned_seconds_memo[key]
        registry = get_registry()
        seconds: float | None = None
        m, k, n = shape
        if min(m, n, k) > 0:
            entry = self.tuning_db.lookup(self.spec, kernel_name, shape)
            if entry is None:
                self.tuned_misses += 1
                if registry.enabled:
                    registry.inc("serve.router.tuned_miss")
            else:
                kern = self.kernels[kernel_name]
                scheme = getattr(kern, "scheme", None)
                expected = {
                    "scheme": getattr(scheme, "name", None),
                    "tk": getattr(kern, "tk", None),
                }
                if entry.functional != expected:
                    self.tuned_fallbacks += 1
                    self.tuning_db.note_fallback()
                    if registry.enabled:
                        registry.inc("serve.router.tuned_fallback")
                else:
                    tuned = self._tuned_kernel_memo.get(entry.key)
                    if tuned is None:
                        tuned = entry.candidate.build_kernel()
                        self._tuned_kernel_memo[entry.key] = tuned
                    try:
                        seconds = tuned.time(m, n, k, self.spec).seconds
                    except (ValueError, RuntimeError):
                        seconds = None
                    if seconds is None:
                        self.tuned_fallbacks += 1
                        self.tuning_db.note_fallback()
                        if registry.enabled:
                            registry.inc("serve.router.tuned_fallback")
                    else:
                        self.tuned_hits += 1
                        if registry.enabled:
                            registry.inc("serve.router.tuned_hit")
        self._tuned_seconds_memo[key] = seconds
        return seconds

    def seconds_for(self, kernel_name: str, shape: tuple[int, int, int]) -> float:
        """Memoized modelled wall time of one GEMM on this router's GPU.

        Public because the service re-prices a batch on the *executing*
        device's router — kernel choice is device-independent (accuracy
        is), but service time is not.  With a tuning database attached,
        the tuned configuration's time is served first; every guard
        failure falls back to the static menu price below.
        """
        if self.tuning_db is not None:
            tuned = self._tuned_seconds(kernel_name, shape)
            if tuned is not None:
                return tuned
        key = (kernel_name, shape)
        seconds = self._time_memo.get(key)
        if seconds is None:
            gkey = (self.spec, kernel_name, shape)
            seconds = _TIME_MEMO.get(gkey)
            if seconds is None:
                m, k, n = shape
                if min(m, n, k) <= 0:
                    # Degenerate GEMM: nothing launches but the call still
                    # pays the fixed overhead (kernel.time refuses k=0).
                    seconds = LAUNCH_OVERHEAD_S
                else:
                    seconds = self.kernels[kernel_name].time(m, n, k, self.spec).seconds
                _TIME_MEMO[gkey] = seconds
            self._time_memo[key] = seconds
        return seconds

    # -- routing --------------------------------------------------------
    def route(
        self, request: GemmRequest, max_rel_error: float | None = None
    ) -> RoutingDecision:
        """Cheapest menu kernel whose analytic bound certifies the SLO.

        ``max_rel_error`` overrides the request's own SLO — the brownout
        controller routes degradable requests against their *fallback*
        SLO through this parameter without mutating the request.
        """
        m, k, n = request.shape
        slo = request.max_rel_error if max_rel_error is None else max_rel_error
        self.decisions += 1
        registry = get_registry()
        memo_key = (m, k, n, slo, request.reliable)
        cached = self._route_memo.get(memo_key)
        if cached is not None:
            if isinstance(cached, str):  # memoized unsatisfiable message
                self.unsatisfiable += 1
                if registry.enabled:
                    registry.inc("serve.router.unsatisfiable")
                raise SloUnsatisfiableError(cached)
            if isinstance(cached, _OperandCandidate):
                return self._refine(cached, request, slo, registry)
            if registry.enabled:
                registry.inc("serve.router.decisions")
                registry.inc(f"serve.router.kernel.{cached.kernel}")
            return cached
        eligible = [
            (name, bound)
            for name in self.kernels
            if (bound := self.error_bound(name, k)) <= slo
        ]
        if not eligible:
            self.unsatisfiable += 1
            best = min(self.error_bound(name, k) for name in self.kernels)
            if registry.enabled:
                registry.inc("serve.router.unsatisfiable")
            message = (
                f"no kernel on the menu certifies max_rel_error={slo:g} "
                f"at k={k} (best analytic bound: {best:g})"
            )
            self._route_memo[memo_key] = message
            raise SloUnsatisfiableError(message)
        choice, bound = min(
            eligible, key=lambda nb: (self.seconds_for(nb[0], request.shape), nb[0])
        )
        seconds = self.seconds_for(choice, request.shape)
        # the audit trail: kernels that modelled cheaper than the choice
        # but could not certify the SLO (sorted cheapest-first)
        eligible_names = {name for name, _ in eligible}
        rejected_cheaper = tuple(sorted(
            (name for name in self.kernels
             if name not in eligible_names
             and self.seconds_for(name, request.shape) < seconds),
            key=lambda name: (self.seconds_for(name, request.shape), name),
        ))
        if (choice in self._blockwise or choice in self._floor_eta) and k > 0:
            # Stage one only *nominates* an operand-dependent winner —
            # its static bound assumes best-case operands (spread 1 for
            # blockwise, no fp16-subnormal parts for the split family).
            # Memoize the cost-ordered eligible list and let stage two
            # certify against this request's actual operands, walking
            # to the next-cheapest eligible kernel on rejection.
            ordered = sorted(
                eligible,
                key=lambda nb: (self.seconds_for(nb[0], request.shape), nb[0]),
            )
            candidate = _OperandCandidate(
                eligible=tuple(
                    (name, b, self.seconds_for(name, request.shape))
                    for name, b in ordered
                ),
                static_rejects=tuple(
                    (name, self.seconds_for(name, request.shape))
                    for name in self.kernels
                    if name not in eligible_names
                ),
                unsat_message=(
                    f"no kernel on the menu certifies max_rel_error={slo:g} at "
                    f"k={k} for these operands (every statically eligible "
                    f"kernel's certificate is operand-dependent, and the "
                    f"operand magnitudes push all of them past the SLO)"
                ),
            )
            self._route_memo[memo_key] = candidate
            return self._refine(candidate, request, slo, registry)
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "serve.route", category="serve", kernel=choice,
                m=m, k=k, n=n, slo=slo,
            ) as span:
                span.set(bound=bound, seconds=seconds,
                         rejected_cheaper=",".join(rejected_cheaper))
        if registry.enabled:
            registry.inc("serve.router.decisions")
            registry.inc(f"serve.router.kernel.{choice}")
        decision = RoutingDecision(
            kernel=choice, error_bound=bound, seconds=seconds,
            reliable=request.reliable, rejected_cheaper=rejected_cheaper,
        )
        self._route_memo[memo_key] = decision
        return decision

    def _refine(
        self,
        candidate: _OperandCandidate,
        request: GemmRequest,
        slo: float,
        registry,
    ) -> RoutingDecision:
        """Stage two: walk the eligible kernels with refined certificates.

        Confirms the first (cheapest) statically eligible kernel whose
        operand-refined bound still certifies the SLO.  Operand
        measurements are lazy and shared across the walk: magnitude
        floors are kernel-independent (only the priced ``eta`` differs),
        spreads are measured once for the blockwise line.  A walk that
        exhausts every eligible kernel raises the typed unsatisfiable
        error — refinement only ever *raises* bounds, so statically
        rejected kernels can never rejoin.
        """
        k = request.shape[1]
        floors: tuple[int | None, int | None] | None = None
        spreads: tuple[int, int] | None = None
        walk_rejects: list[tuple[str, float]] = []
        for name, static_bound, seconds in candidate.eligible:
            if name in self._blockwise:
                self.spread_refinements += 1
                if registry.enabled:
                    registry.inc("serve.router.spread_refinements")
                if spreads is None:
                    spreads = (
                        _spread_bucket(operand_spread(request.a, axis=1)),
                        _spread_bucket(operand_spread(request.b, axis=0)),
                    )
                bound = self.spread_bound(name, k, *spreads)
                if bound > slo:
                    self.spread_fallbacks += 1
                    if registry.enabled:
                        registry.inc("serve.router.spread_fallbacks")
                    walk_rejects.append((name, seconds))
                    continue
            elif name in self._floor_eta:
                self.floor_refinements += 1
                if registry.enabled:
                    registry.inc("serve.router.floor_refinements")
                if floors is None:
                    ha = assess_operand(request.a)
                    hb = assess_operand(request.b)
                    # Reliable requests execute behind the resilient
                    # runner, whose 'scaled' escalation conditions the
                    # operands by exact powers of two; price the floor
                    # the conditioned split sees iff the runner's own
                    # trigger rule would fire.  Plain requests run the
                    # kernel directly — unconditioned floor.
                    conditioned = request.reliable and (
                        ha.needs_escalation or hb.needs_escalation
                        or ha.subnormal_risk or hb.subnormal_risk
                    )
                    floors = (
                        _floor_bucket(ha, conditioned),
                        _floor_bucket(hb, conditioned),
                    )
                bound = self.floor_bound(name, k, *floors)
                if bound > slo:
                    self.floor_fallbacks += 1
                    if registry.enabled:
                        registry.inc("serve.router.floor_fallbacks")
                    walk_rejects.append((name, seconds))
                    continue
            else:
                bound = static_bound
            rejected_cheaper = tuple(sorted(
                {nm for nm, s in walk_rejects if s < seconds}
                | {nm for nm, s in candidate.static_rejects if s < seconds},
                key=lambda nm: (self.seconds_for(nm, request.shape), nm),
            ))
            if registry.enabled:
                registry.inc("serve.router.decisions")
                registry.inc(f"serve.router.kernel.{name}")
            return RoutingDecision(
                kernel=name, error_bound=bound, seconds=seconds,
                reliable=request.reliable, rejected_cheaper=rejected_cheaper,
            )
        self.unsatisfiable += 1
        if registry.enabled:
            registry.inc("serve.router.unsatisfiable")
        raise SloUnsatisfiableError(candidate.unsat_message)

    def stats(self) -> dict:
        stats = {
            "decisions": self.decisions,
            "unsatisfiable": self.unsatisfiable,
            "spread_refinements": self.spread_refinements,
            "spread_fallbacks": self.spread_fallbacks,
            "floor_refinements": self.floor_refinements,
            "floor_fallbacks": self.floor_fallbacks,
            "bound_memo": len(self._bound_memo),
            "time_memo": len(self._time_memo),
        }
        if self.tuning_db is not None:
            # Reported only when a database is attached: the default
            # (static-menu) report stays byte-identical with no DB.
            stats["tuned_entries"] = len(self.tuning_db)
            stats["tuned_hits"] = self.tuned_hits
            stats["tuned_misses"] = self.tuned_misses
            stats["tuned_fallbacks"] = self.tuned_fallbacks
        return stats
