"""Split-plan caching: split a stationary operand exactly once (§3.2).

The data split is O(N²) against the GEMM's O(N³), but in the iterative
applications the same operand is re-split every iteration — the kMeans
data matrix across the Lloyd loop, the kNN corpus across query batches,
the power-iteration matrix across the k-loop.  The paper's fused kernel
splits once and reuses; :class:`SplitCache` restores that property for
the functional simulator.

A cached entry is a :class:`SplitPlan`: the fp16 :class:`SplitPair` plus
lazily materialized float64 promotions of its parts (the form the
simulated wide-accumulator matmul consumes), so a cache hit skips both
the split *and* the per-call float64 promotion.

Keying has two tiers:

* **identity fast path** — a non-writeable array cannot change content
  *through its own reference*, so ``id(array)`` (validated by an ``is``
  check against the stored reference, which makes id reuse after garbage
  collection safe) identifies the plan without hashing the data.  One
  loophole remains: a frozen *view* (``y = x.view();
  y.flags.writeable = False``) still aliases a writeable base, so the
  content can mutate underneath the frozen reference.  Identity hits are
  therefore re-validated against a ~64-element strided **guard sample**
  taken at insert time; a mismatch retires the stale entry (counted in
  ``stats.stale``) and recomputes.  The guard is probabilistic by design
  — callers wanting the contract airtight should freeze the *base*
  array, not a view — but it catches real mutations at O(1) cost and
  keeps the fast path data-untouched on the overwhelmingly common
  unchanged case;
* **content fingerprint fallback** — writeable arrays are keyed by
  (shape, dtype, blake2b digest of the bytes).  Hashing is a single
  cheap pass, far below the split's cost, and it guarantees that an
  in-place mutation is a *miss* — correctness never depends on callers
  remembering to invalidate.

The cache is a bounded LRU (least-recently-used plan evicted first) and
every counter update is taken under a lock so concurrent threads can
share one cache.  Process-pool workers do not share state: a pickled
cache arrives empty (identity keys are process-local) and workers
aggregate statistics through their returned results instead.
"""

from __future__ import annotations

import hashlib
import os
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import get_registry
from ..splits.base import SplitPair

__all__ = ["CacheStats", "SplitPlan", "SplitCache", "default_maxsize", "split_cache_stats"]

#: every live cache instance, keyed by id, for the registry's aggregate
#: provider.  Weak references: registering for observability must not
#: extend a cache's lifetime past its owner's.  (A WeakValueDictionary,
#: not a WeakSet — the eq-comparing dataclass is unhashable, and a dead
#: id is removed before it can be recycled.)
_LIVE_CACHES: "weakref.WeakValueDictionary[int, SplitCache]" = weakref.WeakValueDictionary()

#: counters folded in from caches that have been garbage-collected, so
#: the provider stays cumulative (metrics-counter semantics) instead of
#: forgetting a cache's work the moment its owner drops the reference
_RETIRED = {"caches": 0, "hits": 0, "misses": 0, "evictions": 0, "stale": 0}
_RETIRED_LOCK = threading.Lock()


def _retire(stats: "CacheStats") -> None:
    """finalize callback: fold a dead cache's counters into the totals.

    Receives the :class:`CacheStats` (not the cache — a finalizer must
    not hold its referent); by the time it runs no thread can still be
    mutating the counters, so no per-cache lock is needed.
    """
    with _RETIRED_LOCK:
        _RETIRED["caches"] += 1
        _RETIRED["hits"] += stats.hits
        _RETIRED["misses"] += stats.misses
        _RETIRED["evictions"] += stats.evictions
        _RETIRED["stale"] += stats.stale


def split_cache_stats() -> dict[str, float]:
    """Aggregate hit/miss stats across every :class:`SplitCache` ever made.

    Registered as the ``perf.split_cache`` provider of the metrics
    registry.  Live caches are read under their own locks; caches that
    have been garbage-collected contribute their final counters through
    the retired totals, so hit/miss counts are cumulative while
    ``caches``/``entries`` describe only the currently-live population.
    """
    with _RETIRED_LOCK:
        totals = {"caches": 0, "entries": 0, "hits": _RETIRED["hits"],
                  "misses": _RETIRED["misses"], "evictions": _RETIRED["evictions"],
                  "stale": _RETIRED["stale"], "retired_caches": _RETIRED["caches"]}
    for cache in list(_LIVE_CACHES.values()):
        with cache._lock:
            totals["caches"] += 1
            totals["entries"] += len(cache._entries)
            totals["hits"] += cache.stats.hits
            totals["misses"] += cache.stats.misses
            totals["evictions"] += cache.stats.evictions
            totals["stale"] += cache.stats.stale
    lookups = totals["hits"] + totals["misses"]
    totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
    return totals


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: identity-keyed entries retired because the guard sample showed the
    #: array content changed (mutation through a writeable view/base)
    stale: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


class SplitPlan:
    """One operand's split, ready for the wide-accumulator matmul.

    Holds the fp16 :class:`SplitPair` and caches the float64 promotion
    of each part on first use — fp16→fp64 conversion is exact, so the
    promoted arrays are bit-equivalent to promoting per k-chunk as the
    pre-cache implementation did.
    """

    __slots__ = ("pair", "_wide")

    def __init__(self, pair: SplitPair) -> None:
        self.pair = pair
        self._wide: dict[str, np.ndarray] = {}

    def wide(self, part: str) -> np.ndarray:
        """Float64 promotion of one part ('hi' or 'lo'), contiguous."""
        arr = self._wide.get(part)
        if arr is None:
            arr = np.ascontiguousarray(getattr(self.pair, part), dtype=np.float64)
            self._wide[part] = arr
        return arr


def _fingerprint(x: np.ndarray) -> bytes:
    """Content digest of an array (one pass, ~memcpy speed)."""
    data = np.ascontiguousarray(x)
    return hashlib.blake2b(data.view(np.uint8).reshape(-1), digest_size=16).digest()


#: elements sampled for the identity-entry guard (strided across the array)
_GUARD_SAMPLES = 64


def _guard_sample(x: np.ndarray) -> bytes:
    """Cheap content witness: up to 64 elements strided across ``x``.

    O(1) in array size (``np.take`` on the flat index space works for
    non-contiguous views without materializing a copy), so the identity
    fast path stays fast; enough coverage to catch any real re-fill of
    the operand between iterations.
    """
    n = x.size
    if n == 0:
        return b""
    idx = np.linspace(0, n - 1, num=min(_GUARD_SAMPLES, n), dtype=np.intp)
    return np.take(x, idx).tobytes()


@dataclass
class _Entry:
    plan: SplitPlan
    #: strong reference for identity-keyed entries, validated with ``is``
    #: on lookup so a recycled id can never alias a dead array
    array: np.ndarray | None = None
    #: guard sample taken at insert, re-checked on identity hits to catch
    #: mutation through a writeable view of the same buffer
    guard: bytes = b""


#: fallback capacity when ``REPRO_SPLITCACHE_SIZE`` is unset.  16 was
#: the original default and evicts under the serving workload's five
#: shape buckets × several operand identities per in-flight batch; 64
#: holds the steady-state working set with room to spare at ~KBs of
#: plan metadata per entry.
_DEFAULT_MAXSIZE = 64


def default_maxsize() -> int:
    """Per-instance default capacity, overridable by environment.

    ``REPRO_SPLITCACHE_SIZE`` lets a deployment size the cache without
    code changes; unset or unparsable values fall back to
    ``_DEFAULT_MAXSIZE``.  Read at construction (not import), so tests
    and operators can flip the variable between instances.
    """
    raw = os.environ.get("REPRO_SPLITCACHE_SIZE", "")
    if raw:
        try:
            size = int(raw)
        except ValueError:
            return _DEFAULT_MAXSIZE
        if size > 0:
            return size
    return _DEFAULT_MAXSIZE


@dataclass
class SplitCache:
    """Bounded LRU cache of :class:`SplitPlan` objects, thread-safe."""

    maxsize: int = field(default_factory=default_maxsize)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        _LIVE_CACHES[id(self)] = self
        weakref.finalize(self, _retire, self.stats)

    # --- keying -----------------------------------------------------------
    @staticmethod
    def _key(x: np.ndarray, split_name: str) -> tuple:
        if not x.flags.writeable:
            return ("id", split_name, id(x))
        return ("content", split_name, x.shape, x.dtype.str, _fingerprint(x))

    def _lookup_locked(self, key: tuple, x: np.ndarray) -> SplitPlan | None:
        """Probe one entry under the lock; handles guard-stale retirement."""
        entry = self._entries.get(key)
        if entry is not None and (entry.array is None or entry.array is x):
            if entry.array is not None and entry.guard != _guard_sample(x):
                # Frozen view, writeable base, content changed: the
                # cached plan no longer describes this data.
                del self._entries[key]
                self.stats.stale += 1
                return None
            self._entries.move_to_end(key)
            return entry.plan
        return None

    def _insert_locked(self, key: tuple, x: np.ndarray, plan: SplitPlan) -> None:
        is_id = key[0] == "id"
        self._entries[key] = _Entry(
            plan=plan,
            array=x if is_id else None,
            guard=_guard_sample(x) if is_id else b"",
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # --- API --------------------------------------------------------------
    def get(self, x: np.ndarray, split_name: str, splitter) -> SplitPlan:
        """The split plan for ``x``, computing it on a miss.

        ``splitter`` is a zero-argument-free callable ``x -> SplitPair``;
        ``split_name`` namespaces entries so two split algorithms never
        collide on the same operand.
        """
        key = self._key(x, split_name)
        with self._lock:
            plan = self._lookup_locked(key, x)
            if plan is not None:
                self.stats.hits += 1
                return plan
            self.stats.misses += 1
        # Split outside the lock: the split is the expensive part and is
        # deterministic, so a racing duplicate costs time, not correctness.
        plan = SplitPlan(splitter(x))
        with self._lock:
            self._insert_locked(key, x, plan)
        return plan

    def get_stacked(self, elements: list, split_name: str, splitter) -> SplitPlan:
        """A *stacked* split plan assembled from per-element cache entries.

        The bucket-aware key path for stacked-chunk launches: each
        element of the batch is keyed **individually** (identity or
        content, exactly as :meth:`get` would key it), so a stacked
        launch shares entries with single-request runs and with any
        other batch containing the same operand.  Missing elements are
        split by ONE ``splitter`` call over their sub-stack; their
        per-element plans (views into the sub-stack's parts) are
        inserted for future sharing.  Because the split is elementwise,
        the assembled stacked plan is bit-identical to splitting the
        stacked operand directly.
        """
        x32s = [np.asarray(x) for x in elements]
        keys = [self._key(x, split_name) for x in x32s]
        plans: list[SplitPlan | None] = [None] * len(x32s)
        with self._lock:
            for i, (x, key) in enumerate(zip(x32s, keys)):
                plan = self._lookup_locked(key, x)
                if plan is not None:
                    self.stats.hits += 1
                    plans[i] = plan
                else:
                    self.stats.misses += 1
        missing = [i for i, p in enumerate(plans) if p is None]
        if missing:
            sub = np.stack([x32s[i] for i in missing])
            pair = splitter(sub)
            for pos, i in enumerate(missing):
                plans[i] = SplitPlan(SplitPair(hi=pair.hi[pos], lo=pair.lo[pos]))
            with self._lock:
                for i in missing:
                    self._insert_locked(keys[i], x32s[i], plans[i])
            if len(missing) == len(plans):
                # Nothing was shared: the sub-stack IS the stack, in
                # order — reuse its parts without restacking.
                return SplitPlan(pair)
        hi = np.stack([p.pair.hi for p in plans])
        lo = np.stack([p.pair.lo for p in plans])
        return SplitPlan(SplitPair(hi=hi, lo=lo))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the counters in place (steady-state measurements).

        Mutates the existing :class:`CacheStats` object so the retire
        finalizer and any aliased references stay coherent.
        """
        with self._lock:
            self.stats.hits = 0
            self.stats.misses = 0
            self.stats.evictions = 0
            self.stats.stale = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # --- pickling ---------------------------------------------------------
    # Process-pool workers get a fresh, empty cache: identity keys are
    # process-local and locks are unpicklable.  Counter aggregation across
    # workers happens via returned stats, never via shared state.
    def __getstate__(self) -> dict:
        return {"maxsize": self.maxsize}

    def __setstate__(self, state: dict) -> None:
        self.maxsize = state["maxsize"]
        self.stats = CacheStats()
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        _LIVE_CACHES[id(self)] = self
        weakref.finalize(self, _retire, self.stats)


get_registry().register_provider("perf.split_cache", split_cache_stats)
