"""Preallocated scratch buffers for the hot-path NumPy dispatches.

The emulation cadence and the serving batcher issue many short-lived
intermediate arrays per launch — chunk partial products, the float64
promotion of the running accumulator, stacked operand buffers.  Under a
high-rate serving loop those allocations dominate: the arrays are small
(a few KB to a few MB), identically shaped from batch to batch, and dead
the moment the launch completes, which is exactly the profile allocator
churn punishes hardest.

:class:`ScratchPool` keeps one preallocated buffer per ``(tag, shape,
dtype)`` bucket and hands the *same* array back every time the bucket
repeats, so steady-state serving performs zero hot-path allocations.

Contract (deliberately minimal, matching how GEMM scratch behaves on a
real device):

* ``take`` returns a buffer with **arbitrary contents** — callers must
  fully overwrite before reading (e.g. ``np.matmul(..., out=buf)``);
* the buffer is valid until the *same bucket* is taken again — callers
  namespace concurrent uses with distinct ``tag`` strings;
* buffers are **per-thread** (thread-local storage), so two threads can
  never alias a bucket; the pool object itself may be shared freely.

Buckets are evicted least-recently-used once a thread's live bytes
exceed ``max_bytes``; a request larger than the whole budget is served
by a plain uncached allocation.  Like :class:`~repro.perf.SplitCache`,
every live pool reports into the ``perf.scratch`` registry provider and
pickled pools arrive empty (buffers are process/thread-local).
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import get_registry

__all__ = ["ScratchStats", "ScratchPool", "default_pool", "scratch_pool_stats"]

#: default per-thread byte budget — comfortably holds the serving hot
#: set (every live shape bucket times four split terms) while bounding a
#: pathological shape sweep
_DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: live pools for the registry provider (see split_cache._LIVE_CACHES)
_LIVE_POOLS: "weakref.WeakValueDictionary[int, ScratchPool]" = weakref.WeakValueDictionary()

_RETIRED = {"pools": 0, "hits": 0, "misses": 0, "evictions": 0, "oversize": 0}
_RETIRED_LOCK = threading.Lock()


def _retire(stats: "ScratchStats") -> None:
    with _RETIRED_LOCK:
        _RETIRED["pools"] += 1
        _RETIRED["hits"] += stats.hits
        _RETIRED["misses"] += stats.misses
        _RETIRED["evictions"] += stats.evictions
        _RETIRED["oversize"] += stats.oversize


def scratch_pool_stats() -> dict[str, float]:
    """Aggregate reuse stats across every :class:`ScratchPool` ever made.

    Registered as the ``perf.scratch`` provider.  ``hit_rate`` is the
    fraction of ``take`` calls served without allocating — the direct
    measure of how allocation-free the hot path runs.
    """
    with _RETIRED_LOCK:
        totals = {
            "pools": 0, "live_bytes": 0,
            "hits": _RETIRED["hits"], "misses": _RETIRED["misses"],
            "evictions": _RETIRED["evictions"], "oversize": _RETIRED["oversize"],
            "retired_pools": _RETIRED["pools"],
        }
    for pool in list(_LIVE_POOLS.values()):
        with pool._lock:
            totals["pools"] += 1
            totals["live_bytes"] += pool._live_bytes
            totals["hits"] += pool.stats.hits
            totals["misses"] += pool.stats.misses
            totals["evictions"] += pool.stats.evictions
            totals["oversize"] += pool.stats.oversize
    takes = totals["hits"] + totals["misses"] + totals["oversize"]
    totals["hit_rate"] = totals["hits"] / takes if takes else 0.0
    return totals


@dataclass
class ScratchStats:
    """Reuse counters of one pool instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: requests larger than the whole budget, served uncached
    oversize: int = 0

    @property
    def takes(self) -> int:
        return self.hits + self.misses + self.oversize

    @property
    def hit_rate(self) -> float:
        return self.hits / self.takes if self.takes else 0.0


@dataclass
class ScratchPool:
    """Shape-bucketed preallocated buffers with LRU eviction, per-thread."""

    max_bytes: int = _DEFAULT_MAX_BYTES
    stats: ScratchStats = field(default_factory=ScratchStats)

    def __post_init__(self) -> None:
        if self.max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self._lock = threading.Lock()
        self._local = threading.local()
        #: live bytes across threads (reporting only; eviction is per-thread)
        self._live_bytes = 0
        _LIVE_POOLS[id(self)] = self
        weakref.finalize(self, _retire, self.stats)

    def _buffers(self) -> OrderedDict:
        bufs = getattr(self._local, "buffers", None)
        if bufs is None:
            bufs = self._local.buffers = OrderedDict()
            self._local.nbytes = 0
        return bufs

    def take(self, tag: str, shape: tuple, dtype=np.float64) -> np.ndarray:
        """The bucket's buffer, allocating on first use.  Contents arbitrary.

        The returned array is owned by the caller until the same
        ``(tag, shape, dtype)`` bucket is taken again on this thread.
        """
        shape = tuple(int(s) for s in shape)
        dt = np.dtype(dtype)
        key = (tag, shape, dt.str)
        bufs = self._buffers()
        buf = bufs.get(key)
        if buf is not None:
            bufs.move_to_end(key)
            with self._lock:
                self.stats.hits += 1
            return buf
        buf = np.empty(shape, dtype=dt)
        if buf.nbytes > self.max_bytes:
            with self._lock:
                self.stats.oversize += 1
            return buf
        bufs[key] = buf
        self._local.nbytes += buf.nbytes
        evicted = 0
        freed = 0
        while self._local.nbytes > self.max_bytes and len(bufs) > 1:
            _, old = bufs.popitem(last=False)
            self._local.nbytes -= old.nbytes
            freed += old.nbytes
            evicted += 1
        with self._lock:
            self.stats.misses += 1
            self.stats.evictions += evicted
            self._live_bytes += buf.nbytes - freed
        return buf

    def clear(self) -> None:
        """Drop this thread's buffers (other threads keep theirs)."""
        bufs = self._buffers()
        freed = sum(b.nbytes for b in bufs.values())
        bufs.clear()
        self._local.nbytes = 0
        with self._lock:
            self._live_bytes -= freed

    @property
    def live_buffers(self) -> int:
        """Buckets currently held for the calling thread."""
        return len(self._buffers())

    # --- pickling ---------------------------------------------------------
    # A pickled pool arrives empty: buffers are process/thread-local and
    # locks are unpicklable, mirroring SplitCache's worker semantics.
    def __getstate__(self) -> dict:
        return {"max_bytes": self.max_bytes}

    def __setstate__(self, state: dict) -> None:
        self.max_bytes = state["max_bytes"]
        self.stats = ScratchStats()
        self.__post_init__()


_DEFAULT_POOL: ScratchPool | None = None
_DEFAULT_POOL_LOCK = threading.Lock()


def default_pool() -> ScratchPool:
    """The process-wide shared pool (created on first use).

    Thread safety comes from the pool's own per-thread buffers, so one
    shared instance serves every ``EmulatedGemm`` without wiring.
    """
    global _DEFAULT_POOL
    pool = _DEFAULT_POOL
    if pool is None:
        with _DEFAULT_POOL_LOCK:
            pool = _DEFAULT_POOL
            if pool is None:
                pool = _DEFAULT_POOL = ScratchPool()
    return pool


get_registry().register_provider("perf.scratch", scratch_pool_stats)
