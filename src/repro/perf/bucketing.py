"""Shape bucketing: group compatible GEMMs so they coalesce batchably.

A heterogeneous stream of GEMM problems — serving requests, sweep
points, app query batches — can only ride
:meth:`repro.emulation.gemm.EmulatedGemm.run_batched`'s stacked-matmul
fast path when the stacked elements agree on ``(m, k, n)``.  This module
is the one shared definition of "compatible":

* :func:`bucket_by_shape` — order-preserving grouping of arbitrary items
  by a shape key (the serving batcher's bucketing primitive and the
  bench's mixed-stream coalescer);
* :func:`run_bucketed` — the full coalescing path: bucket a mixed list
  of ``(a, b)`` problems, run one ``run_batched`` per bucket, and
  scatter results back into submission order.  Bit-identical to calling
  :meth:`~repro.emulation.gemm.EmulatedGemm.run` per problem (the
  rounding cadence is unchanged — only the Python-level loop over
  same-shape problems is coalesced), which the property tests assert.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Iterable, Sequence, TypeVar

import numpy as np

__all__ = ["gemm_shape_key", "bucket_by_shape", "run_bucketed"]

_T = TypeVar("_T")


def gemm_shape_key(a: np.ndarray, b: np.ndarray) -> tuple[int, int, int]:
    """The ``(m, k, n)`` coalescing key of one 2-D GEMM problem."""
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("gemm_shape_key expects 2-D operands")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"k-dimension mismatch: {a.shape} x {b.shape}")
    return (a.shape[0], a.shape[1], b.shape[1])


def bucket_by_shape(
    items: Iterable[_T],
    key: Callable[[_T], Hashable],
) -> "OrderedDict[Hashable, list[int]]":
    """Group item *indices* by ``key(item)``, preserving order.

    Buckets appear in first-seen order and each bucket lists its item
    indices in submission order, so any coalesced execution can scatter
    results back deterministically.  Returning indices (not items) keeps
    the helper allocation-free for large operands and lets callers carry
    side tables (deadlines, priorities) by position.
    """
    buckets: "OrderedDict[Hashable, list[int]]" = OrderedDict()
    for i, item in enumerate(items):
        buckets.setdefault(key(item), []).append(i)
    return buckets


def run_bucketed(
    gemm,
    problems: Sequence[tuple[np.ndarray, np.ndarray]],
) -> list[np.ndarray]:
    """Run a mixed-shape problem list through per-bucket batched GEMMs.

    ``gemm`` is an :class:`~repro.emulation.gemm.EmulatedGemm` (anything
    with ``run_batched``).  Problems sharing an ``(m, k, n)`` shape are
    stacked and computed by one ``run_batched`` call; results come back
    in submission order and are bit-identical to per-problem ``run``
    calls — the split is elementwise and the per-chunk rounding cadence
    is replayed identically over the stack.
    """
    results: list[np.ndarray | None] = [None] * len(problems)
    buckets = bucket_by_shape(problems, key=lambda p: gemm_shape_key(p[0], p[1]))
    for indices in buckets.values():
        if len(indices) == 1:
            i = indices[0]
            a, b = problems[i]
            results[i], _ = gemm.run(a, b)
            continue
        elements = getattr(gemm, "run_batched_elements", None)
        if elements is not None:
            # Element-listed entry: shares split-cache entries per
            # element across launches (bit-identical to the stack path).
            d, _ = elements(
                [problems[i][0] for i in indices],
                [problems[i][1] for i in indices],
            )
        else:
            stacked_a = np.stack([problems[i][0] for i in indices])
            stacked_b = np.stack([problems[i][1] for i in indices])
            d, _ = gemm.run_batched(stacked_a, stacked_b)
        for pos, i in enumerate(indices):
            results[i] = d[pos]
    return results  # type: ignore[return-value]
