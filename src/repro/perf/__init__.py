"""Cross-cutting performance layer: caching and parallelism for the hot paths.

The paper's own headline win comes from eliminating redundant work around
the Tensor Core primitive — the operands are split *once* and the split
data is reused by all four partial products (§3.2, §4).  This package
applies the same lesson to the reproduction's hot paths:

* :class:`SplitCache` — a bounded, thread-safe cache of split plans so a
  stationary operand (the kMeans data matrix, the kNN corpus, the
  power-iteration matrix) is split exactly once across an iterative run;
* :func:`parallel_map` — a process-pool map for the embarrassingly
  parallel experiment sweeps, controlled by the ``REPRO_JOBS`` env knob
  (serial by default, serial fallback on pickling failure);
* :func:`bucket_by_shape` / :func:`run_bucketed` — shape bucketing so a
  mixed GEMM stream (the serving batcher, the bench's mixed-shape sweep)
  coalesces compatible problems through the bit-exact
  ``EmulatedGemm.run_batched`` fast path;
* :mod:`repro.perf.bench` — the ``python -m repro bench`` entry point
  that times the before/after hot paths and writes ``BENCH_perf.json``
  so the performance trajectory is tracked from PR to PR.

Schedule memoization, the third caching layer, lives next to its subject
in :mod:`repro.gpu.scheduler` (``schedule_cache_stats`` /
``clear_schedule_cache``).
"""

from __future__ import annotations

from .bucketing import bucket_by_shape, gemm_shape_key, run_bucketed
from .parallel import default_jobs, parallel_map
from .split_cache import CacheStats, SplitCache, SplitPlan

__all__ = [
    "CacheStats",
    "SplitCache",
    "SplitPlan",
    "bucket_by_shape",
    "default_jobs",
    "gemm_shape_key",
    "parallel_map",
    "run_bucketed",
]
