"""``python -m repro bench``: measure the hot-path performance layer.

Three measurements, one per optimization pillar, each reported with a
bit-exactness verdict against a seed-faithful reference implementation:

* **batched GEMM** — a 64-element batch through the legacy per-element
  loop vs :meth:`~repro.emulation.gemm.EmulatedGemm.run_batched`'s
  stacked matmuls (identical bits, one BLAS call per chunk-term);
* **power iteration** — a 20-iteration dominant-eigenpair run with a
  fresh split per GEMM vs a split-caching kernel that splits the
  stationary matrix once;
* **schedule memoization** — a repeated Figure-8-shaped timing sweep
  with the scheduler memo cold per repetition vs warm, plus its hit rate.

Results land in ``BENCH_perf.json`` (see docs/performance.md for the
field glossary).  ``--quick`` shrinks the shapes for CI smoke runs.

Every run also appends one schema-versioned record to
``BENCH_history.jsonl`` (:mod:`repro.obs.benchtrack`), and ``--check``
turns the history into a **regression gate**: the tracked metrics are
compared against the median of the last few same-series records, with
tight tolerance bands on deterministic virtual-time metrics and
informational-only treatment of wall-clock timings.  A gated metric
outside its band fails the run (exit 1) — CI wires this in as a gate.
"""

from __future__ import annotations

import json
import time
from typing import Callable

import numpy as np

from ..emulation.gemm import EmulatedGemm
from ..emulation.schemes import EGEMM, EmulationScheme
from ..gpu.scheduler import clear_schedule_cache, schedule_cache_stats
from ..gpu.spec import TESLA_T4
from ..kernels.egemm import EgemmTcKernel
from ..obs.benchtrack import MetricSpec
from ..obs.metrics import get_registry
from .split_cache import SplitCache

__all__ = ["run_bench", "tracked_metrics", "METRIC_SPECS", "main"]

#: run-over-run comparison policy of ``--check``.  Deterministic
#: virtual-time metrics (same seed, same shapes -> bit-identical
#: numbers) carry tight gated bands; bit-exactness flags gate at zero
#: tolerance; wall-clock speedups and timings are informational only —
#: machine noise is not a regression.
METRIC_SPECS = (
    MetricSpec("serving.virtual_throughput_rps", "higher", 0.01),
    MetricSpec("serving.p99_latency_s", "lower", 0.01),
    MetricSpec("serving.completed", "higher", 0.0),
    MetricSpec("serving.mean_batch_size", "higher", 0.01),
    MetricSpec("batched_gemm.bit_identical", "higher", 0.0),
    MetricSpec("power_iteration.bit_identical", "higher", 0.0),
    MetricSpec("bucketed_stream.bit_identical", "higher", 0.0),
    MetricSpec("batched_gemm.split_cache_hit_rate", "higher", 0.01),
    MetricSpec("bucketed_stream.split_cache_hit_rate", "higher", 0.01),
    MetricSpec("schedule_memoization.hit_rate", "higher", 0.01),
    MetricSpec("batched_gemm.speedup", "higher", 0.5, gate=False),
    MetricSpec("power_iteration.speedup", "higher", 0.5, gate=False),
    MetricSpec("schedule_memoization.speedup", "higher", 0.5, gate=False),
    MetricSpec("bucketed_stream.speedup", "higher", 0.5, gate=False),
    MetricSpec("serving.wall_seconds", "lower", 1.0, gate=False),
    MetricSpec("serving.requests_per_wall_second", "higher", 1.0, gate=False),
)


def _legacy_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    scheme: EmulationScheme = EGEMM,
    tk: int = 16,
) -> np.ndarray:
    """Seed-faithful emulated GEMM: split per call, promote per chunk.

    This replicates the pre-optimization driver exactly — fresh split of
    both operands on every call, and a per-chunk ``astype(float64)`` of
    each fp16 term — so it is both the timing baseline and the
    bit-exactness oracle for the optimized paths.
    """
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    m, k = a32.shape
    n = b32.shape[1]
    pa, pb = scheme.split_operands(a32, b32)
    terms = scheme.product_terms(pa, pb)
    d = np.zeros((m, n), dtype=np.float32) if c is None else np.array(c, dtype=np.float32)
    for k0 in range(0, k, tk):
        k1 = min(k0 + tk, k)
        for a16, b16 in terms:
            wide = a16[:, k0:k1].astype(np.float64) @ b16[k0:k1, :].astype(np.float64)
            d = (d.astype(np.float64) + wide).astype(np.float32)
    return d


def _best_of(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    """(best wall time, last result) of ``repeats`` runs of ``fn``."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _bench_batched(quick: bool) -> dict:
    """Pillar 2 (+1): the 64-element batched GEMM, loop vs stacked matmuls.

    The optimized side is the full performance layer as the apps use it:
    ``run_batched``'s stacked chunk matmuls over a split-caching
    :class:`EmulatedGemm` with stationary (frozen) operands, so repeated
    batches split once.  The legacy side is the seed behaviour — a
    Python loop over batch elements, each re-splitting and re-promoting
    per call.  Best-of-N timing reports the steady state of both.
    """
    nbatch, m, k, n = (64, 24, 96, 24) if quick else (64, 48, 384, 48)
    rng = np.random.default_rng(7)
    a = rng.uniform(-1, 1, (nbatch, m, k)).astype(np.float32)
    b = rng.uniform(-1, 1, (nbatch, k, n)).astype(np.float32)
    repeats = 3 if quick else 5

    def loop() -> np.ndarray:
        return np.stack([_legacy_gemm(a[i], b[i]) for i in range(nbatch)])

    cache = SplitCache()
    gemm = EmulatedGemm(split_cache=cache)
    a_frozen = a.view()
    a_frozen.flags.writeable = False
    b_frozen = b.view()
    b_frozen.flags.writeable = False

    def batched() -> np.ndarray:
        return gemm.batched(a_frozen, b_frozen)

    t_loop, d_loop = _best_of(loop, repeats)
    # One warm-up launch populates the cache, then the stats are reset so
    # the reported hit rate is the *steady state* a stationary-operand
    # app sees — not diluted by the one unavoidable cold-miss pass.
    batched()
    cache.reset_stats()
    t_batched, d_batched = _best_of(batched, repeats)
    return {
        "batch": nbatch,
        "shape": [m, n, k],
        "loop_seconds": t_loop,
        "batched_seconds": t_batched,
        "speedup": t_loop / t_batched,
        "bit_identical": bool(
            np.array_equal(
                np.asarray(d_loop).view(np.uint32), np.asarray(d_batched).view(np.uint32)
            )
        ),
        "split_cache": {
            "hits": cache.stats.hits,
            "misses": cache.stats.misses,
            "hit_rate": cache.stats.hit_rate,
        },
    }


def _power_trajectory(
    gemm: Callable[[np.ndarray, np.ndarray], np.ndarray], a32: np.ndarray, iters: int
) -> np.ndarray:
    """The power-iteration inner loop over an arbitrary GEMM callable."""
    rng = np.random.default_rng(0)
    v = rng.normal(0, 1, (a32.shape[0], 1)).astype(np.float32)
    v /= np.linalg.norm(v)
    for _ in range(iters):
        w = gemm(a32, v)
        v = (w / np.linalg.norm(w)).astype(np.float32)
    return v


def _bench_power_iteration(quick: bool) -> dict:
    """Pillar 1: split caching on an iterative stationary-operand app."""
    n = 192 if quick else 512
    iters = 20
    rng = np.random.default_rng(3)
    a = rng.normal(0, 1, (n, n)).astype(np.float32)
    a = ((a + a.T) / 2).astype(np.float32)
    repeats = 2 if quick else 3

    def legacy() -> np.ndarray:
        return _power_trajectory(_legacy_gemm, a, iters)

    cache = SplitCache()
    gemm = EmulatedGemm(split_cache=cache)
    frozen = a.view()
    frozen.flags.writeable = False

    def cached() -> np.ndarray:
        return _power_trajectory(lambda x, v: gemm(x, v), frozen, iters)

    t_legacy, v_legacy = _best_of(legacy, repeats)
    t_cached, v_cached = _best_of(cached, repeats)
    return {
        "n": n,
        "iterations": iters,
        "legacy_seconds": t_legacy,
        "cached_seconds": t_cached,
        "speedup": t_legacy / t_cached,
        "bit_identical": bool(
            np.array_equal(
                np.asarray(v_legacy).view(np.uint32), np.asarray(v_cached).view(np.uint32)
            )
        ),
        "split_cache": {
            "hits": cache.stats.hits,
            "misses": cache.stats.misses,
            "hit_rate": cache.stats.hit_rate,
        },
    }


def _bench_schedule_memo(quick: bool) -> dict:
    """Pillar 3: the schedule memo on a repeated Figure-8-shaped sweep."""
    sizes = (1024, 2048, 4096) if quick else (1024, 2048, 4096, 8192, 12288, 16384)
    reps = 12
    spec = TESLA_T4
    kernel = EgemmTcKernel()
    kernel.tiling_for(spec)  # pre-solve so only scheduling is timed

    def sweep() -> list[float]:
        return [kernel.time(nn, nn, nn, spec).seconds for nn in sizes]

    # Cold: the memo is dropped before every repetition.
    t0 = time.perf_counter()
    for _ in range(reps):
        clear_schedule_cache()
        sweep()
    t_cold = time.perf_counter() - t0

    # Warm: one population pass, then reps served from the memo.
    clear_schedule_cache()
    t0 = time.perf_counter()
    for _ in range(reps):
        sweep()
    t_warm = time.perf_counter() - t0
    stats = schedule_cache_stats()
    return {
        "sizes": list(sizes),
        "repetitions": reps,
        "cold_seconds": t_cold,
        "warm_seconds": t_warm,
        "speedup": t_cold / t_warm,
        "hit_rate": stats["hit_rate"],
        "hits": stats["hits"],
        "misses": stats["misses"],
    }


def _bench_bucketed_stream(quick: bool) -> dict:
    """Pillar 4: a mixed-shape GEMM stream, per-problem loop vs bucketing.

    A serving-style stream interleaves a handful of shapes; the baseline
    computes each problem with its own ``run`` call, the optimized path
    groups compatible problems with :func:`repro.perf.bucket_by_shape`
    and coalesces each bucket through one stacked ``run_batched`` —
    exactly the serving batcher's execution path, so this pillar tracks
    the coalescing win (and its bit-exactness) from PR to PR.
    """
    from .bucketing import run_bucketed

    shapes = ((24, 96, 24), (48, 96, 16), (16, 96, 48)) if quick else (
        (48, 384, 48), (96, 384, 32), (32, 384, 96))
    count = 24 if quick else 48
    rng = np.random.default_rng(11)
    problems = []
    for i in range(count):
        m, k, n = shapes[int(rng.integers(len(shapes)))]
        problems.append(
            (
                rng.uniform(-1, 1, (m, k)).astype(np.float32),
                rng.uniform(-1, 1, (k, n)).astype(np.float32),
            )
        )
    repeats = 3 if quick else 5
    gemm = EmulatedGemm()
    # Size the cache to the stream's working set (2 operands per problem
    # plus headroom): the default 16-entry LRU thrashes on a replayed
    # stream this wide — every entry is evicted before its next use, so
    # the pillar would measure pure cache overhead instead of reuse.
    cache = SplitCache(maxsize=4 * count)
    gemm_cached = EmulatedGemm(split_cache=cache)

    def loop() -> list[np.ndarray]:
        return [gemm.run(a, b)[0] for a, b in problems]

    def bucketed() -> list[np.ndarray]:
        return run_bucketed(gemm_cached, problems)

    t_loop, d_loop = _best_of(loop, repeats)
    # steady-state hit rate: one warm pass, then reset (same policy as
    # the batched pillar — the cold pass is not the cache's report card)
    bucketed()
    cache.reset_stats()
    t_bucketed, d_bucketed = _best_of(bucketed, repeats)
    identical = all(
        np.array_equal(x.view(np.uint32), y.view(np.uint32))
        for x, y in zip(d_loop, d_bucketed)
    )
    return {
        "problems": count,
        "shapes": [list(s) for s in shapes],
        "loop_seconds": t_loop,
        "bucketed_seconds": t_bucketed,
        "speedup": t_loop / t_bucketed,
        "bit_identical": bool(identical),
        "split_cache": {
            "hits": cache.stats.hits,
            "misses": cache.stats.misses,
            "hit_rate": cache.stats.hit_rate,
            "maxsize": cache.maxsize,
        },
    }


def _bench_serving(quick: bool) -> dict:
    """Pillar 5: closed-loop serving throughput (virtual) + real wall time.

    A small seeded load test through :mod:`repro.serve` — routing,
    batching, dispatch, and the bit-accurate kernel math all included —
    so the serving layer's lifetime counters land in the registry
    providers this CLI prints, and its simulation overhead is tracked
    PR over PR.

    **Measured region**: ``GemmService.run`` only.  The seeded workload
    is pre-generated outside the timer (request *generation* is NumPy
    RNG work, not serving-layer work; the closed loop consumes requests
    in sequential RNG order, so pre-generation is byte-identical to
    generating inside ``on_complete``), and the wall time is the best of
    N repetitions so one scheduler hiccup on a busy CI box does not
    masquerade as a serving regression.  Virtual-time metrics are
    deterministic and identical across repetitions.
    """
    from ..serve import build_report
    from ..serve.loadgen import make_request
    from ..serve.service import GemmService

    requests = 120 if quick else 400
    concurrency = 16
    repeats = 2 if quick else 3
    best = float("inf")
    service = None
    for _ in range(repeats):
        rng = np.random.default_rng(0)
        stream = [make_request(rng) for _ in range(requests)]
        it = iter(stream)
        seeds = [(0.0, next(it)) for _ in range(min(concurrency, requests))]
        remaining = [requests - len(seeds)]

        def on_complete(_response, _now):
            if remaining[0] <= 0:
                return []
            remaining[0] -= 1
            return [next(it)]

        svc = GemmService()
        t0 = time.perf_counter()
        svc.run(seeds, on_complete=on_complete)
        wall = time.perf_counter() - t0
        if wall < best:
            best = wall
            service = svc
    report = build_report(service, {"requests": requests})
    return {
        "requests": requests,
        "counts": report["counts"],
        "virtual_throughput_rps": report["throughput_rps"],
        "p99_latency_s": report["latency_s"]["p99"],
        "mean_batch_size": report["batcher"]["mean_batch_size"],
        "wall_seconds": best,
        "requests_per_wall_second": requests / best if best > 0 else 0.0,
        "timed_region": "service.run only; workload pre-generated; "
                        f"best of {repeats}",
    }


def run_bench(quick: bool = False) -> dict:
    """Run all pillar benchmarks; return the report dict."""
    return {
        "quick": quick,
        "batched_gemm": _bench_batched(quick),
        "power_iteration": _bench_power_iteration(quick),
        "schedule_memoization": _bench_schedule_memo(quick),
        "bucketed_stream": _bench_bucketed_stream(quick),
        "serving": _bench_serving(quick),
    }


def tracked_metrics(report: dict) -> dict[str, float]:
    """The flat metric map one run contributes to ``BENCH_history.jsonl``."""
    b = report["batched_gemm"]
    p = report["power_iteration"]
    s = report["schedule_memoization"]
    u = report["bucketed_stream"]
    v = report["serving"]
    return {
        "batched_gemm.speedup": b["speedup"],
        "batched_gemm.bit_identical": float(b["bit_identical"]),
        "batched_gemm.split_cache_hit_rate": b["split_cache"]["hit_rate"],
        "power_iteration.speedup": p["speedup"],
        "power_iteration.bit_identical": float(p["bit_identical"]),
        "schedule_memoization.speedup": s["speedup"],
        "schedule_memoization.hit_rate": s["hit_rate"],
        "bucketed_stream.speedup": u["speedup"],
        "bucketed_stream.bit_identical": float(u["bit_identical"]),
        "bucketed_stream.split_cache_hit_rate": u["split_cache"]["hit_rate"],
        "serving.virtual_throughput_rps": v["virtual_throughput_rps"],
        "serving.p99_latency_s": v["p99_latency_s"],
        "serving.mean_batch_size": v["mean_batch_size"],
        "serving.completed": float(v["counts"]["completed"]),
        "serving.wall_seconds": v["wall_seconds"],
        "serving.requests_per_wall_second": v["requests_per_wall_second"],
    }


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro bench [--quick] [--check] [--out PATH]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="benchmark the hot-path performance layer (see docs/performance.md)",
    )
    parser.add_argument("--quick", action="store_true", help="small shapes for CI smoke runs")
    parser.add_argument("--out", default="BENCH_perf.json", help="report path (JSON)")
    parser.add_argument("--history", default="BENCH_history.jsonl", metavar="PATH",
                        help="benchmark-history JSONL (append + --check baseline)")
    parser.add_argument("--no-history", action="store_true",
                        help="skip appending this run to the benchmark history")
    parser.add_argument("--check", action="store_true",
                        help="regression gate: compare tracked metrics against the "
                             "history baseline; exit 1 on a gated regression")
    parser.add_argument("--inject-slowdown", type=float, default=0.0, metavar="FRAC",
                        help="gate-validation hook: synthetically worsen every gated "
                             "metric by FRAC before checking (the run is not recorded)")
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)

    b, p, s = report["batched_gemm"], report["power_iteration"], report["schedule_memoization"]
    print(f"batched GEMM   ({b['batch']}x{b['shape']}): "
          f"{b['speedup']:.2f}x, bit-identical: {b['bit_identical']}")
    print(f"power iteration (n={p['n']}, {p['iterations']} iters): "
          f"{p['speedup']:.2f}x, bit-identical: {p['bit_identical']}")
    print(f"schedule memo   ({s['repetitions']} reps over {len(s['sizes'])} sizes): "
          f"{s['speedup']:.2f}x")
    u = report["bucketed_stream"]
    print(f"bucketed stream ({u['problems']} mixed-shape problems): "
          f"{u['speedup']:.2f}x, bit-identical: {u['bit_identical']}")
    v = report["serving"]
    print(f"serving smoke   ({v['requests']} closed-loop requests): "
          f"{v['virtual_throughput_rps'] / 1e3:.1f} k req/s virtual, "
          f"mean batch {v['mean_batch_size']:.2f}, "
          f"{v['requests_per_wall_second']:.0f} req/s wall "
          f"({v['timed_region']})")
    print(f"split-cache hit rates (steady state, per pillar): "
          f"batched {b['split_cache']['hit_rate']:.1%}, "
          f"power-iter {p['split_cache']['hit_rate']:.1%}, "
          f"bucketed {u['split_cache']['hit_rate']:.1%}")
    # Cache statistics come from the one queryable namespace — the
    # metrics registry's providers — instead of per-subsystem printers.
    providers = get_registry().snapshot()["providers"]
    sched = providers.get("gpu.schedule_cache", {})
    split = providers.get("perf.split_cache", {})
    print(f"caches (registry): schedule memo {sched.get('hits', 0)}/{sched.get('misses', 0)} "
          f"hits/misses ({sched.get('hit_rate', 0.0):.1%}), "
          f"split caches {split.get('hits', 0)}/{split.get('misses', 0)} "
          f"hits/misses ({split.get('hit_rate', 0.0):.1%}) "
          f"across {split.get('caches', 0) + split.get('retired_caches', 0)} cache(s)")
    serve = providers.get("serve.service", {})
    counters = get_registry().query("serve")
    print(f"serving (registry): {serve.get('submitted', 0)} submitted -> "
          f"{serve.get('completed', 0)} completed / {serve.get('rejected', 0)} rejected / "
          f"{serve.get('expired', 0)} expired in {serve.get('batches', 0)} batches; "
          f"router decisions {counters.get('serve.router.decisions', 0):.0f}, "
          f"pool steals {counters.get('serve.pool.steals', 0):.0f}")
    # Importing the module registers the ``tune.db`` provider, so the
    # tuning counters show up even when no database was attached this
    # run (all zeros = the static menu served everything).
    from ..tune.db import tune_db_stats

    tuned = tune_db_stats()
    print(f"tuning DB (registry): {tuned['dbs']} live / {tuned['retired_dbs']} retired "
          f"database(s), {tuned['entries']} entries; "
          f"{tuned['hits']} hits / {tuned['misses']} misses / "
          f"{tuned['fallbacks']} fallbacks ({tuned['hit_rate']:.1%} hit rate)")
    print(f"report written to {args.out}")

    from ..obs.benchtrack import (
        append_record, check_metrics, format_check, load_history, make_record,
    )
    from ..obs.export import run_manifest

    exit_code = 0
    metrics = tracked_metrics(report)
    if args.inject_slowdown:
        factor = 1.0 + args.inject_slowdown
        for spec in METRIC_SPECS:
            if spec.gate and spec.name in metrics:
                metrics[spec.name] = (
                    metrics[spec.name] / factor
                    if spec.direction == "higher"
                    else metrics[spec.name] * factor
                )
        print(f"inject-slowdown: gated metrics worsened by {args.inject_slowdown:.0%}")
    if args.check:
        history = load_history(args.history, kind="bench", quick=args.quick)
        result = check_metrics(metrics, history, METRIC_SPECS)
        print(f"regression check vs {args.history} "
              f"({len(history)} prior record(s) in this series):")
        print(format_check(result))
        if not result["ok"]:
            exit_code = 1
    if not args.no_history and not args.inject_slowdown:
        # a synthetically worsened run must never poison the baseline
        record = make_record("bench", metrics, quick=args.quick,
                             manifest=run_manifest())
        append_record(args.history, record)
        print(f"history: bench record appended to {args.history}")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
