"""Process-pool map for the experiment sweeps, with a serial fallback.

Every figure/table sweep is embarrassingly parallel — independent
(kernel, size, spec) points of a closed-form timing model — so a process
pool gives near-linear speedup without touching the model.  Parallelism
is opt-in through the ``REPRO_JOBS`` environment variable:

* unset or ``1`` — run serially (deterministic, zero overhead; the
  default so tests and CI behave exactly as before);
* ``N > 1`` — map over an ``N``-worker process pool;
* ``0`` — use all available CPUs.

The pool is a *fallback-safe* optimization: if the work function or an
item cannot be pickled (closures, locks, live array views), or the pool
dies, the map transparently re-runs serially — callers never see a
pool-related failure.  Worker processes aggregate counters (MMA calls,
cache hits) through their *returned* values; in-process shared counters
are not visible across the process boundary.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["default_jobs", "parallel_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: environment variable controlling sweep parallelism
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (1 = serial; 0 = all CPUs)."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return max(jobs, 1)


def parallel_map(
    fn: Callable[[_T], _R], items: Iterable[_T], jobs: int | None = None
) -> list[_R]:
    """``[fn(x) for x in items]``, fanned over a process pool when asked.

    Order is preserved.  ``jobs=None`` reads ``REPRO_JOBS``; ``jobs<=1``
    or fewer than two items short-circuits to the serial path.  Any pool
    failure (unpicklable work, broken worker) falls back to the serial
    path, so results are identical either way.
    """
    work: Sequence[_T] = list(items)
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(work) < 2:
        return [fn(x) for x in work]
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
            return list(pool.map(fn, work))
    except Exception:
        # Pickling failure or a broken pool: the sweep functions are pure,
        # so re-running serially reproduces the same results (or the same
        # genuine error, now with a readable traceback).
        return [fn(x) for x in work]
