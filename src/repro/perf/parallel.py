"""Process-pool map for the experiment sweeps, with a serial fallback.

Every figure/table sweep is embarrassingly parallel — independent
(kernel, size, spec) points of a closed-form timing model — so a process
pool gives near-linear speedup without touching the model.  Parallelism
is opt-in through the ``REPRO_JOBS`` environment variable:

* unset or ``1`` — run serially (deterministic, zero overhead; the
  default so tests and CI behave exactly as before);
* ``N > 1`` — map over an ``N``-worker process pool;
* ``0`` — use all available CPUs.

The fallback is deliberately narrow.  Only *pool-infrastructure*
problems trigger the serial re-run — work that cannot be pickled
(detected up front, before any worker starts) or a pool whose workers
died (:class:`~concurrent.futures.process.BrokenProcessPool`) — and
each fallback logs its reason.  An exception raised *by the work
function* is a genuine error in the sweep: it propagates to the caller
once, with its real traceback, instead of being swallowed and re-raised
later from a confusing serial re-execution of the whole sweep.

Worker processes aggregate counters (MMA calls, cache hits) through
their *returned* values; in-process shared counters are not visible
across the process boundary.
"""

from __future__ import annotations

import logging
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["default_jobs", "parallel_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")

_log = logging.getLogger(__name__)

#: environment variable controlling sweep parallelism
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (1 = serial; 0 = all CPUs)."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return max(jobs, 1)


def _picklable(fn: Callable, sample: object) -> str | None:
    """Pre-flight check; returns the failure reason, or None when OK.

    Checks the function and one representative item — items of a sweep
    are homogeneous, so the first item stands in for all of them.
    """
    try:
        pickle.dumps(fn)
    except Exception as exc:  # pickle raises a zoo of types here
        return f"work function is not picklable ({type(exc).__name__}: {exc})"
    try:
        pickle.dumps(sample)
    except Exception as exc:
        return f"work item is not picklable ({type(exc).__name__}: {exc})"
    return None


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: int | None = None,
    timeout: float | None = None,
) -> list[_R]:
    """``[fn(x) for x in items]``, fanned over a process pool when asked.

    Order is preserved.  ``jobs=None`` reads ``REPRO_JOBS``; ``jobs<=1``
    or fewer than two items short-circuits to the serial path.

    Failure semantics: unpicklable work and a broken pool fall back to
    the serial path (logged); an exception raised by ``fn`` itself
    propagates immediately — it would fail identically in serial, so
    re-running the sweep would only delay and obscure it.  ``timeout``
    bounds the wall-clock wait for each mapped result (pool path only;
    a timeout raises :class:`TimeoutError` to the caller).
    """
    work: Sequence[_T] = list(items)
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(work) < 2:
        return [fn(x) for x in work]
    reason = _picklable(fn, work[0])
    if reason is not None:
        _log.warning("parallel_map falling back to serial: %s", reason)
        return [fn(x) for x in work]
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
            return list(pool.map(fn, work, timeout=timeout))
    except BrokenProcessPool as exc:
        _log.warning(
            "parallel_map falling back to serial: process pool broke (%s)", exc
        )
        return [fn(x) for x in work]
