"""GEMM-based k-nearest-neighbor search (Fig. 12b; Garcia et al. [9]).

The fast GPU kNN of Garcia et al. computes the full query-reference
distance matrix as a GEMM (85% of runtime) and then selects the k
smallest entries per query:

    D^2 = ||q||^2 - 2 Q R^T + ||r||^2

As with kMeans, the cross-term GEMM runs through a pluggable kernel;
selection is vectorized ``argpartition``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.spec import TESLA_T4, GpuSpec
from ..kernels.base import GemmKernel
from ..kernels.cublas import CublasCudaFp32
from ..kernels.egemm import EgemmTcKernel
from .common import AppTiming, app_speedup, non_gemm_seconds

__all__ = ["KnnSearch", "KnnWorkload"]


@dataclass
class KnnSearch:
    """Exact kNN over a reference set, distances via a GEMM kernel."""

    k: int
    kernel: GemmKernel = field(default_factory=EgemmTcKernel)

    reference_: np.ndarray | None = None
    _ref_norms: np.ndarray | None = None
    _reference_t: np.ndarray | None = None

    def fit(self, reference: np.ndarray) -> "KnnSearch":
        """Index the (n_ref, dim) reference points."""
        ref = np.asarray(reference, dtype=np.float32)
        if ref.ndim != 2:
            raise ValueError("reference must be 2-D (points, features)")
        if not 1 <= self.k <= ref.shape[0]:
            raise ValueError("need 1 <= k <= n_reference")
        self.reference_ = ref
        self._ref_norms = np.einsum("ij,ij->i", ref, ref, dtype=np.float64).astype(np.float32)
        # The transposed corpus is the stationary GEMM operand of every
        # query batch; a persistent frozen view (``.T`` makes a fresh
        # object per call) lets a split-caching kernel split it once.
        self._reference_t = ref.T
        self._reference_t.flags.writeable = False
        return self

    def squared_distances(self, queries: np.ndarray) -> np.ndarray:
        """(n_query, n_ref) squared euclidean distance matrix."""
        if self.reference_ is None:
            raise RuntimeError("fit() first")
        q = np.asarray(queries, dtype=np.float32)
        cross = self.kernel.compute(q, self._reference_t)
        q_norm = np.einsum("ij,ij->i", q, q, dtype=np.float64).astype(np.float32)
        return np.maximum(q_norm[:, None] - 2.0 * cross + self._ref_norms[None, :], 0.0)

    def kneighbors(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (distances, indices), each (n_query, k), ascending."""
        d2 = self.squared_distances(queries)
        part = np.argpartition(d2, self.k - 1, axis=1)[:, : self.k]
        rows = np.arange(d2.shape[0])[:, None]
        order = np.argsort(d2[rows, part], axis=1, kind="stable")
        idx = part[rows, order]
        return np.sqrt(d2[rows, idx]), idx


@dataclass
class KnnWorkload:
    """Figure 12b's workload: speedup vs number of data points.

    Queries and references both scale with the data-point count (the
    kNN benchmark of [9] matches a set against itself); defaults give the
    baseline an ~85% GEMM fraction at the largest size.
    """

    dim: int = 512
    non_gemm_inefficiency: float = 3.0
    non_gemm_fixed_seconds: float = 1.0e-3

    def gemm_shape(self, n_points: int) -> tuple[int, int, int]:
        return (n_points, n_points, self.dim)

    def non_gemm_seconds(self, n_points: int, spec: GpuSpec = TESLA_T4) -> float:
        # Selection scans the full distance matrix.
        bytes_touched = n_points * n_points * 4.0
        return non_gemm_seconds(
            bytes_touched, spec, self.non_gemm_inefficiency, self.non_gemm_fixed_seconds
        )

    def speedup(
        self,
        n_points: int,
        spec: GpuSpec = TESLA_T4,
        baseline: GemmKernel | None = None,
        accelerated: GemmKernel | None = None,
    ) -> tuple[AppTiming, AppTiming, float]:
        """(baseline timing, accelerated timing, end-to-end speedup)."""
        baseline = baseline or CublasCudaFp32()
        accelerated = accelerated or EgemmTcKernel()
        return app_speedup(
            baseline, accelerated, self.gemm_shape(n_points), self.non_gemm_seconds(n_points, spec), spec
        )
