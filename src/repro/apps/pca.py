"""PCA via a GEMM-based covariance matrix — a third GEMM-based
scientific-computing application beyond the paper's two, exercising the
public API on the "mathematical computations" class of workloads the
paper's introduction motivates [3].

The covariance ``(X - mu)^T (X - mu) / (n - 1)`` is an (d, d, n) GEMM —
precision-sensitive: eigen-decompositions amplify covariance errors, so
half-precision Tensor Core GEMM visibly perturbs the spectrum while the
extended-precision emulation tracks the fp32 result (the library's
precision tests quantify exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kernels.base import GemmKernel
from ..kernels.egemm import EgemmTcKernel

__all__ = ["PCA"]


@dataclass
class PCA:
    """Principal component analysis with a pluggable covariance GEMM."""

    n_components: int
    kernel: GemmKernel = field(default_factory=EgemmTcKernel)

    mean_: np.ndarray | None = None
    components_: np.ndarray | None = None
    explained_variance_: np.ndarray | None = None

    def covariance(self, x: np.ndarray) -> np.ndarray:
        """Sample covariance of ``x`` (n_samples, dim) via the kernel."""
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2 or x.shape[0] < 2:
            raise ValueError("X must be 2-D with at least 2 samples")
        centered = x - x.mean(axis=0, keepdims=True)
        cov = self.kernel.compute(centered.T, centered)
        return cov / np.float32(x.shape[0] - 1)

    def fit(self, x: np.ndarray) -> "PCA":
        x = np.asarray(x, dtype=np.float32)
        if not 1 <= self.n_components <= x.shape[1]:
            raise ValueError("need 1 <= n_components <= dim")
        self.mean_ = x.mean(axis=0)
        cov = self.covariance(x)
        # Symmetric eigendecomposition; largest components first.
        vals, vecs = np.linalg.eigh(cov.astype(np.float64))
        order = np.argsort(vals)[::-1][: self.n_components]
        self.explained_variance_ = vals[order]
        self.components_ = vecs[:, order].T.astype(np.float32)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("fit() first")
        centered = np.asarray(x, dtype=np.float32) - self.mean_
        return self.kernel.compute(centered, self.components_.T)
