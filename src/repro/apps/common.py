"""Shared machinery for GEMM-based scientific computing applications (§7.5).

The paper's application study swaps the GEMM inside open-source kMeans [2]
and kNN [9] implementations from ``cublasSgemm`` to EGEMM-TC and reports
end-to-end speedup.  Both apps decompose as

    T_total(kernel) = T_gemm(kernel) + T_non_gemm

where the non-GEMM part (distance post-processing, argmin/selection,
centroid updates) is identical for every kernel.  ``T_non_gemm`` is
modelled as memory-bound CUDA-core work: a data-proportional term with an
inefficiency factor (the open-source implementations are unoptimized,
multi-pass) plus a fixed per-invocation term (launch trains, reduction
tails).  The factors are chosen once so the *baseline* GEMM time fraction
matches the paper's §1 measurements — 67% for kMeans, 85% for kNN at the
largest size — and the speedup curves are then fully derived.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.spec import TESLA_T4, GpuSpec
from ..kernels.base import GemmKernel

__all__ = ["AppTiming", "non_gemm_seconds", "app_speedup"]


@dataclass(frozen=True)
class AppTiming:
    """End-to-end timing decomposition of one application run."""

    name: str
    gemm_seconds: float
    non_gemm_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.gemm_seconds + self.non_gemm_seconds

    @property
    def gemm_fraction(self) -> float:
        """Share of runtime spent in GEMM (the paper's 85%/67% numbers)."""
        return self.gemm_seconds / self.total_seconds if self.total_seconds else 0.0


def non_gemm_seconds(
    bytes_touched: float,
    spec: GpuSpec = TESLA_T4,
    inefficiency: float = 4.0,
    fixed_seconds: float = 1.5e-3,
) -> float:
    """Memory-bound model of the apps' non-GEMM kernels.

    ``bytes_touched`` is the data the post-processing passes read/write
    once each; ``inefficiency`` multiplies it for the unoptimized
    multi-pass open-source kernels; ``fixed_seconds`` covers the
    size-independent launch/reduction overhead.
    """
    return bytes_touched * inefficiency / (spec.dram_bw_gbps * 1e9) + fixed_seconds


def app_speedup(
    baseline: GemmKernel,
    accelerated: GemmKernel,
    gemm_shape: tuple[int, int, int],
    non_gemm: float,
    spec: GpuSpec = TESLA_T4,
) -> tuple[AppTiming, AppTiming, float]:
    """Amdahl-style end-to-end speedup of swapping the GEMM kernel."""
    m, n, k = gemm_shape
    t_base = AppTiming(baseline.info.name, baseline.time(m, n, k, spec).seconds, non_gemm)
    t_fast = AppTiming(accelerated.info.name, accelerated.time(m, n, k, spec).seconds, non_gemm)
    return t_base, t_fast, t_base.total_seconds / t_fast.total_seconds
