"""GEMM-based kMeans clustering (the paper's first application, Fig. 12a).

The Lloyd iteration's assignment step dominates and is GEMM-shaped:

    ||x - c||^2 = ||x||^2 - 2 x . c + ||c||^2

The cross term ``X @ C.T`` is an (n_points, n_clusters, dim) GEMM — 67%
of the open-source implementation's runtime [2] — and is computed through
a pluggable :class:`~repro.kernels.base.GemmKernel`, so the same code
runs on the fp32 baseline or on EGEMM-TC's extended-precision emulation.

Two interfaces:

* :class:`KMeans` — a functional clusterer (fit / predict / inertia) for
  correctness experiments and the examples;
* :class:`KMeansWorkload` — the timing model regenerating Figure 12a's
  speedup curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.spec import TESLA_T4, GpuSpec
from ..kernels.base import GemmKernel
from ..kernels.cublas import CublasCudaFp32
from ..kernels.egemm import EgemmTcKernel
from .common import AppTiming, app_speedup, non_gemm_seconds

__all__ = ["KMeans", "KMeansWorkload"]


@dataclass
class KMeans:
    """Lloyd's algorithm with the distance cross-term on a GEMM kernel."""

    n_clusters: int
    kernel: GemmKernel = field(default_factory=EgemmTcKernel)
    max_iter: int = 50
    tol: float = 1e-4
    seed: int = 0

    centroids_: np.ndarray | None = None
    n_iter_: int = 0
    inertia_: float = 0.0

    def _distances(self, x: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Squared euclidean distances via the GEMM decomposition."""
        cross = self.kernel.compute(x, centroids.T)  # (n, k) GEMM
        x_norm = np.einsum("ij,ij->i", x, x, dtype=np.float64).astype(np.float32)
        c_norm = np.einsum("ij,ij->i", centroids, centroids, dtype=np.float64).astype(np.float32)
        d = x_norm[:, None] - 2.0 * cross + c_norm[None, :]
        return np.maximum(d, 0.0)

    def _init_centroids(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread initial centroids by D^2 sampling."""
        n = x.shape[0]
        centroids = np.empty((self.n_clusters, x.shape[1]), dtype=np.float32)
        centroids[0] = x[rng.integers(n)]
        d2 = np.sum((x - centroids[0]) ** 2, axis=1, dtype=np.float64)
        for j in range(1, self.n_clusters):
            total = d2.sum()
            if total <= 0:  # all points coincide with chosen centroids
                centroids[j:] = centroids[0]
                break
            probs = d2 / total
            centroids[j] = x[rng.choice(n, p=probs)]
            d2 = np.minimum(d2, np.sum((x - centroids[j]) ** 2, axis=1, dtype=np.float64))
        return centroids

    def fit(self, x: np.ndarray) -> "KMeans":
        """Cluster ``x`` (n_samples, dim) with k-means++ initialization."""
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2:
            raise ValueError("X must be 2-D (samples, features)")
        n = x.shape[0]
        if self.n_clusters <= 0 or self.n_clusters > n:
            raise ValueError("need 1 <= n_clusters <= n_samples")
        rng = np.random.default_rng(self.seed)
        centroids = self._init_centroids(x, rng)

        # The data matrix is the stationary GEMM operand of every Lloyd
        # iteration.  A frozen view gives it a stable identity, so a
        # kernel with a split cache splits it exactly once per fit (the
        # caller's array is untouched — only this view is read-only).
        x = x.view()
        x.flags.writeable = False

        prev_inertia = np.inf
        for it in range(1, self.max_iter + 1):
            d = self._distances(x, centroids)
            labels = np.argmin(d, axis=1)
            inertia = float(d[np.arange(n), labels].sum())
            # Vectorized centroid update; empty clusters keep their spot.
            counts = np.bincount(labels, minlength=self.n_clusters).astype(np.float32)
            sums = np.zeros_like(centroids)
            np.add.at(sums, labels, x)
            nonempty = counts > 0
            centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
            self.n_iter_ = it
            converged = np.isfinite(prev_inertia) and (
                prev_inertia - inertia <= self.tol * max(prev_inertia, 1.0)
            )
            prev_inertia = inertia
            if converged:
                break

        self.centroids_ = centroids
        self.inertia_ = prev_inertia if np.isfinite(prev_inertia) else inertia
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Assign each sample to its nearest fitted centroid."""
        if self.centroids_ is None:
            raise RuntimeError("fit() first")
        return np.argmin(self._distances(np.asarray(x, dtype=np.float32), self.centroids_), axis=1)


@dataclass
class KMeansWorkload:
    """Figure 12a's workload: speedup of one Lloyd iteration vs data size.

    Defaults are chosen so the baseline's GEMM fraction reaches ~67% at
    the largest size (the paper's §1 measurement for kMeans [2]).
    """

    dim: int = 1024
    n_clusters: int = 1024
    non_gemm_inefficiency: float = 4.0
    non_gemm_fixed_seconds: float = 1.5e-3

    def gemm_shape(self, n_points: int) -> tuple[int, int, int]:
        return (n_points, self.n_clusters, self.dim)

    def non_gemm_seconds(self, n_points: int, spec: GpuSpec = TESLA_T4) -> float:
        # Post-processing touches the distance matrix (argmin) and the
        # points once (centroid update), all fp32.
        bytes_touched = (n_points * self.n_clusters + n_points * self.dim) * 4.0
        return non_gemm_seconds(
            bytes_touched, spec, self.non_gemm_inefficiency, self.non_gemm_fixed_seconds
        )

    def speedup(
        self,
        n_points: int,
        spec: GpuSpec = TESLA_T4,
        baseline: GemmKernel | None = None,
        accelerated: GemmKernel | None = None,
    ) -> tuple[AppTiming, AppTiming, float]:
        """(baseline timing, accelerated timing, end-to-end speedup)."""
        baseline = baseline or CublasCudaFp32()
        accelerated = accelerated or EgemmTcKernel()
        return app_speedup(
            baseline, accelerated, self.gemm_shape(n_points), self.non_gemm_seconds(n_points, spec), spec
        )
