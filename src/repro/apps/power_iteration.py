"""Power iteration / subspace iteration on a GEMM kernel — a fourth
GEMM-based scientific application, in the "mathematical computations"
class the paper's introduction cites [3].

Dominant-eigenpair computation by repeated matrix products is an
*iterative* workload: precision errors compound across iterations, so it
separates the precision tiers more sharply than one-shot kMeans/kNN —
half-precision GEMM visibly bends the convergence trajectory while the
extended-precision emulation tracks fp32.

``PowerIteration`` finds the dominant eigenvector of a symmetric matrix;
``SubspaceIteration`` generalizes to the top-q invariant subspace with a
QR re-orthonormalization per step (the GEMM is the (n, q, n) product).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kernels.base import GemmKernel
from ..kernels.egemm import EgemmTcKernel

__all__ = ["PowerIteration", "SubspaceIteration"]


@dataclass
class PowerIteration:
    """Dominant eigenpair of a symmetric matrix via repeated GEMV/GEMM."""

    kernel: GemmKernel = field(default_factory=EgemmTcKernel)
    max_iter: int = 200
    tol: float = 1e-6
    seed: int = 0

    eigenvalue_: float = 0.0
    eigenvector_: np.ndarray | None = None
    n_iter_: int = 0
    residuals_: list[float] = field(default_factory=list)

    def fit(self, a: np.ndarray) -> "PowerIteration":
        a32 = np.asarray(a, dtype=np.float32)
        if a32.ndim != 2 or a32.shape[0] != a32.shape[1]:
            raise ValueError("matrix must be square")
        n = a32.shape[0]
        # The matrix is stationary across all iterations; a frozen view
        # with a stable identity lets a split-caching kernel split it
        # exactly once for the whole fit.
        a32 = a32.view()
        a32.flags.writeable = False
        rng = np.random.default_rng(self.seed)
        v = rng.normal(0, 1, (n, 1)).astype(np.float32)
        v /= np.linalg.norm(v)

        self.residuals_ = []
        lam = 0.0
        for it in range(1, self.max_iter + 1):
            w = self.kernel.compute(a32, v)
            norm = float(np.linalg.norm(w))
            if norm == 0:
                raise ValueError("matrix maps the iterate to zero")
            v_new = (w / norm).astype(np.float32)
            av = self.kernel.compute(a32, v_new)
            lam = float((v_new.T @ av)[0, 0])
            residual = float(np.linalg.norm(av - lam * v_new))
            self.residuals_.append(residual)
            self.n_iter_ = it
            converged = residual <= self.tol * abs(lam)
            v = v_new
            if converged:
                break

        self.eigenvalue_ = lam
        self.eigenvector_ = v[:, 0]
        return self


@dataclass
class SubspaceIteration:
    """Top-q invariant subspace via block power iteration with QR."""

    q: int
    kernel: GemmKernel = field(default_factory=EgemmTcKernel)
    max_iter: int = 100
    tol: float = 1e-6
    seed: int = 0

    eigenvalues_: np.ndarray | None = None
    basis_: np.ndarray | None = None
    n_iter_: int = 0

    def fit(self, a: np.ndarray) -> "SubspaceIteration":
        a32 = np.asarray(a, dtype=np.float32)
        if a32.ndim != 2 or a32.shape[0] != a32.shape[1]:
            raise ValueError("matrix must be square")
        n = a32.shape[0]
        if not 1 <= self.q <= n:
            raise ValueError("need 1 <= q <= n")
        a32 = a32.view()
        a32.flags.writeable = False
        rng = np.random.default_rng(self.seed)
        v, _ = np.linalg.qr(rng.normal(0, 1, (n, self.q)))
        v = v.astype(np.float32)

        prev = np.zeros(self.q)
        for it in range(1, self.max_iter + 1):
            w = self.kernel.compute(a32, v)  # (n, q, n) GEMM
            v, r = np.linalg.qr(w.astype(np.float64))
            v = v.astype(np.float32)
            ritz = np.sort(np.abs(np.diag(r)))[::-1]
            self.n_iter_ = it
            if np.all(np.abs(ritz - prev) <= self.tol * np.maximum(np.abs(ritz), 1.0)):
                prev = ritz
                break
            prev = ritz

        # Rayleigh-Ritz for the final eigenvalue estimates.
        h = v.T @ self.kernel.compute(a32, v)
        vals, vecs = np.linalg.eigh(0.5 * (h + h.T).astype(np.float64))
        order = np.argsort(np.abs(vals))[::-1]
        self.eigenvalues_ = vals[order]
        self.basis_ = (v @ vecs[:, order].astype(np.float32)).astype(np.float32)
        return self
