"""Synthetic dataset generators for the application studies.

The paper motivates kMeans/kNN with gene analysis [31], environmental
science [19], and astronomy [18]; the examples and tests need matching
synthetic workloads with controllable difficulty.  All generators are
seeded and return float32.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian_blobs", "descriptor_set", "spd_matrix", "expression_profiles"]


def gaussian_blobs(
    rng: np.random.Generator,
    clusters: int = 4,
    per_cluster: int = 100,
    dim: int = 16,
    center_scale: float = 5.0,
    spread: float = 0.3,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Isotropic Gaussian clusters: (points, labels, centroids)."""
    if clusters <= 0 or per_cluster <= 0 or dim <= 0:
        raise ValueError("clusters, per_cluster and dim must be positive")
    centroids = rng.normal(0, center_scale, (clusters, dim)).astype(np.float32)
    points = np.vstack(
        [c + rng.normal(0, spread, (per_cluster, dim)) for c in centroids]
    ).astype(np.float32)
    labels = np.repeat(np.arange(clusters), per_cluster)
    return points, labels, centroids


def descriptor_set(
    rng: np.random.Generator,
    n_base: int = 400,
    n_query: int = 100,
    dim: int = 128,
    twin_noise: float = 1e-3,
    query_noise: float = 0.02,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unit-norm descriptors with near-duplicate twins (kNN stress case).

    Returns (reference, queries, true_indices): every base descriptor
    gets a twin ``twin_noise`` away (interleaved, twins at odd indices),
    creating top-1/top-2 margins far below half-precision GEMM error but
    far above the extended-precision emulation's.
    """
    base = rng.normal(0, 1, (n_base, dim)).astype(np.float32)
    base /= np.linalg.norm(base, axis=1, keepdims=True)
    twins = base + twin_noise * rng.normal(0, 1, (n_base, dim)).astype(np.float32)
    twins /= np.linalg.norm(twins, axis=1, keepdims=True)
    ref = np.empty((2 * n_base, dim), dtype=np.float32)
    ref[0::2] = base
    ref[1::2] = twins
    picks = rng.choice(n_base, size=n_query, replace=False)
    queries = base[picks] + query_noise * rng.normal(0, 1, (n_query, dim)).astype(np.float32)
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    return ref, queries.astype(np.float32), 2 * picks


def spd_matrix(
    rng: np.random.Generator, n: int = 48, spectrum: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric matrix with a prescribed spectrum: (A, sorted_spectrum).

    Used by the power-iteration app tests/examples; the spectrum controls
    the convergence rate (eigenvalue gaps) directly.
    """
    if spectrum is None:
        spectrum = np.linspace(1.0, 10.0, n)
    spectrum = np.asarray(spectrum, dtype=np.float64)
    if spectrum.shape != (n,):
        raise ValueError(f"spectrum must have shape ({n},)")
    q, _ = np.linalg.qr(rng.normal(0, 1, (n, n)))
    a = (q * spectrum) @ q.T
    return a.astype(np.float32), np.sort(spectrum)[::-1]


def expression_profiles(
    rng: np.random.Generator,
    clusters: int = 6,
    per_cluster: int = 150,
    genes: int = 96,
    separation: float = 0.9,
    spread: float = 0.35,
) -> tuple[np.ndarray, np.ndarray]:
    """Gene-expression-style data: log-normal-ish, close cluster pairs.

    Returns (profiles, labels).  The deliberately small ``separation``
    puts centroids close enough that half-precision distances bias the
    clustering objective — the precision-sensitivity regime of [31].
    """
    base = rng.normal(0, 1, (1, genes))
    centroids = base + separation * rng.normal(0, 1, (clusters, genes))
    x = np.vstack([c + spread * rng.normal(0, 1, (per_cluster, genes)) for c in centroids])
    labels = np.repeat(np.arange(clusters), per_cluster)
    return np.exp(0.1 * x).astype(np.float32), labels
