"""GEMM-based scientific computing applications (§7.5): kMeans, kNN, and
PCA, each running its GEMM through a pluggable kernel, plus the Amdahl
end-to-end timing models behind Figure 12."""

from .common import AppTiming, app_speedup, non_gemm_seconds
from .datasets import descriptor_set, expression_profiles, gaussian_blobs, spd_matrix
from .kmeans import KMeans, KMeansWorkload
from .knn import KnnSearch, KnnWorkload
from .pca import PCA
from .power_iteration import PowerIteration, SubspaceIteration

__all__ = [
    "AppTiming",
    "descriptor_set",
    "expression_profiles",
    "gaussian_blobs",
    "spd_matrix",
    "app_speedup",
    "non_gemm_seconds",
    "KMeans",
    "KMeansWorkload",
    "KnnSearch",
    "KnnWorkload",
    "PCA",
    "PowerIteration",
    "SubspaceIteration",
]
