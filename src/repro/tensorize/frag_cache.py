"""Intra-warp FRAG caching strategy (§4, Table 2).

The optimization: track which TC tiles are already resident in a warp's
fragments and skip the shared->register load when possible.  Concretely,

* the C accumulator fragments stay in FRAG for the *entire* k loop, and
* each A/B split panel is read into FRAG once per block iteration and
  reused across the output tiles that consume it.

:class:`FragCachePolicy` captures the decision procedure as used by the
functional kernel; :func:`frag_bytes_per_warp` and
:func:`check_register_budget` quantify the register-pressure cost the
analytic model must respect (Eq. 8's first constraint).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.spec import GpuSpec
from .tiling import TilingConfig

__all__ = ["FragCachePolicy", "frag_bytes_per_warp", "check_register_budget"]


@dataclass
class FragCachePolicy:
    """Tracks FRAG-resident tiles for one warp; answers "load or reuse?"."""

    enabled: bool = True
    _resident: set[object] = None  # type: ignore[assignment]
    loads_skipped: int = 0
    loads_performed: int = 0

    def __post_init__(self) -> None:
        self._resident = set()

    def should_load(self, key: object) -> bool:
        """True when the tile must be staged from shared memory.

        With caching disabled every query loads; with it enabled, a key
        seen since the last :meth:`invalidate` is register-resident.
        """
        if self.enabled and key in self._resident:
            self.loads_skipped += 1
            return False
        if self.enabled:
            self._resident.add(key)
        self.loads_performed += 1
        return True

    def invalidate(self) -> None:
        """Drop operand residency (new k-iteration overwrote shared mem).

        C-accumulator keys are intentionally *not* tracked here: the C
        fragments live in registers for the whole block lifetime and are
        never re-staged, caching on or off.
        """
        self._resident.clear()

    @property
    def hit_rate(self) -> float:
        total = self.loads_skipped + self.loads_performed
        return self.loads_skipped / total if total else 0.0


def frag_bytes_per_warp(config: TilingConfig) -> int:
    """Register/FRAG bytes one warp holds under the caching strategy.

    The C warp tile in fp32 plus both split halves of the A and B warp
    panels at the current wk step in fp16 (double-buffered).
    """
    c_bytes = 4 * config.wm * config.wn
    ab_bytes = 2 * 2 * (config.wm + config.wn) * config.wk * 2
    return c_bytes + ab_bytes


def check_register_budget(config: TilingConfig, spec: GpuSpec) -> bool:
    """Would the caching strategy fit the SM register file? (Eq. 8, c1).

    Evaluates the block-level FRAG demand ``4*bm*bn + 4*(bm+bn)*bk``
    against the register-file budget; exceeding it means register
    spilling and the "degraded performance" of §6.
    """
    return config.frag_bytes_per_block <= spec.register_file_per_sm
