"""Hierarchical tiling configuration (§4: block -> warp -> TC tiles).

EGEMM-TC's tensorization recursively divides the GEMM into *block
matrices* of size (bm, bk)/(bk, bn)/(bm, bn) assigned to GPU blocks,
*warp matrices* (wm, wk)/(wk, wn)/(wm, wn) assigned to warps, and *TC
matrices* matching the compute-primitive shape (tm, tn, tk).  The six
hyper-parameters (bm, bn, bk, wm, wn, wk) form the design space the
analytic model of §6 searches; this module owns the legality rules.

The paper's chosen T4 design point (Table 4) is exported as
:data:`T4_TILING`.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from ..tensorcore.mma import HMMA_1688, MmaShape

__all__ = ["TilingConfig", "T4_TILING", "SHMEM_PAD"]

#: half-precision elements of k-padding per staged operand row, avoiding
#: shared-memory bank conflicts.  Eq. 8 budgets (bk + 8); the 36 KB/block
#: figure of Table 4 implies an effective pad of 4 on the (128,128,32)
#: design point — we follow Table 4 and record the discrepancy in
#: EXPERIMENTS.md.
SHMEM_PAD = 4


@dataclass(frozen=True)
class TilingConfig:
    """One point of the 6-parameter tensorization design space."""

    bm: int
    bn: int
    bk: int
    wm: int
    wn: int
    wk: int
    tc: MmaShape = HMMA_1688

    def __post_init__(self) -> None:
        for name in ("bm", "bn", "bk", "wm", "wn", "wk"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.bm % self.wm or self.bn % self.wn:
            raise ValueError("block tile must partition into warp tiles")
        if self.wk > self.bk or self.bk % self.wk:
            raise ValueError("warp k-step must divide the block k-step")
        if self.wm % self.tc.m or self.wn % self.tc.n or self.wk % self.tc.k:
            raise ValueError("warp tile must partition into TC tiles")

    # --- structure -------------------------------------------------------
    @property
    def warp_grid(self) -> tuple[int, int]:
        """Warps along (m, n) within a block."""
        return (self.bm // self.wm, self.bn // self.wn)

    @property
    def warps_per_block(self) -> int:
        gm, gn = self.warp_grid
        return gm * gn

    @property
    def threads_per_block(self) -> int:
        return self.warps_per_block * 32

    def grid_blocks(self, m: int, n: int) -> int:
        """Blocks launched for an (m, n) output."""
        return ceil(m / self.bm) * ceil(n / self.bn)

    def grid_dims(self, m: int, n: int) -> tuple[int, int]:
        return (ceil(m / self.bm), ceil(n / self.bn))

    def k_iterations(self, k: int) -> int:
        return ceil(k / self.bk)

    # --- resource footprints ----------------------------------------------
    @property
    def shared_mem_bytes(self) -> int:
        """Staged Alo/Ahi/Blo/Bhi tiles: 2 splits x (bm + bn) rows x
        (bk + pad) halfs x 2 bytes — 36 KB at the Table 4 design point."""
        return 2 * (self.bm + self.bn) * (self.bk + SHMEM_PAD) * 2

    @property
    def frag_bytes_per_block(self) -> int:
        """Register/FRAG bytes of §6.1: the C block in fp32 plus the
        double-buffered split operands (4*bm*bn + 4*(bm+bn)*bk)."""
        return 4 * self.bm * self.bn + 4 * (self.bm + self.bn) * self.bk

    @property
    def c_frag_bytes_per_warp(self) -> int:
        """fp32 C accumulator fragment held by each warp."""
        return self.wm * self.wn * 4

    # --- per-iteration work (block scope) ---------------------------------
    @property
    def ldg_bytes_per_iteration(self) -> int:
        """Eq. 2: global bytes per block per k-iteration (4 split tiles)."""
        return 4 * (self.bm + self.bn) * self.bk

    @property
    def flops_per_iteration(self) -> int:
        """Eq. 3: FLOPs per block per k-iteration (4 emulation terms)."""
        return 8 * self.bm * self.bn * self.bk

    @property
    def compute_intensity(self) -> float:
        """Eq. 4: FLOPs per global byte = 2*bm*bn / (bm + bn).

        Independent of bk — the observation that lets the solver shrink
        bk to make room for larger (bm, bn).
        """
        return 2.0 * self.bm * self.bn / (self.bm + self.bn)

    def hmma_per_iteration(self, scheme_terms: int = 4) -> int:
        """TC instructions per block per k-iteration, normalized to
        HMMA.1688 equivalents (a 16x16x16 WMMA op is 4 of them), so the
        engine's per-HMMA issue interval applies uniformly."""
        tiles = (self.bm // self.tc.m) * (self.bn // self.tc.n) * (self.bk // self.tc.k)
        return tiles * scheme_terms * (self.tc.flops // HMMA_1688.flops)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"(bm,bn,bk)=({self.bm},{self.bn},{self.bk}) "
            f"(wm,wn,wk)=({self.wm},{self.wn},{self.wk})"
        )


#: the paper's Table 4 design choice for Tesla T4
T4_TILING = TilingConfig(bm=128, bn=128, bk=32, wm=64, wn=32, wk=8)
