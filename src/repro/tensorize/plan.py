"""Tensorization plan: traffic accounting and wave geometry for one GEMM.

Couples a :class:`~repro.tensorize.tiling.TilingConfig` with a concrete
(m, n, k) problem and answers the questions the engine and the analytic
model ask:

* per-warp shared-memory traffic with / without FRAG caching (Table 2),
* per-block / per-launch instruction counts,
* unique DRAM traffic per block after L2 reuse within a wave — the wave
  of concurrently resident blocks shares row/column panels through L2, so
  DRAM sees each panel once per wave rather than once per block.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, sqrt

from ..gpu.spec import GpuSpec
from .tiling import TilingConfig

__all__ = ["WarpTraffic", "table2_rows", "TensorizationPlan"]


@dataclass(frozen=True)
class WarpTraffic:
    """Per-warp shared->register bytes for one operand (Table 2 row)."""

    name: str
    size_bytes: int
    without_frag_caching: int
    with_frag_caching: int

    @property
    def saving_factor(self) -> float:
        return self.without_frag_caching / self.with_frag_caching


def table2_rows(config: TilingConfig) -> list[WarpTraffic]:
    """The paper's Table 2, evaluated on a tiling configuration.

    Per-warp shared-memory <-> FRAG/register bytes over one block
    k-iteration.  The paper writes the reload factor as ``wk/tk``; at the
    Table 4 design point (wk = tk = 8) that expression degenerates to 1,
    so — consistent with Eq. 1's derivation, where the factor counts
    "data loading when iterating over the k-dimension" of the *block*
    tile — we evaluate it as ``bk/tk`` (recorded in EXPERIMENTS.md):

    * ``Alo`` (half): without caching the warp re-stages its A panel from
      shared memory on every tc-k step of both emulation uses
      (``2 * (2*wm*bk) * bk/tk``); with caching it is read into FRAG once
      (``2 * wm * bk``).
    * ``C`` (fp32): without caching the accumulator round-trips once per
      tc-k step (``4 * wm * wn * bk/tk``); with caching it never leaves
      FRAG during the k loop (``4 * wm * wn``).
    """
    wm, wn, bk, tk = config.wm, config.wn, config.bk, config.tc.k
    return [
        WarpTraffic(
            name="Alo",
            size_bytes=2 * wm * bk,
            without_frag_caching=2 * (2 * wm * bk) * bk // tk,
            with_frag_caching=2 * wm * bk,
        ),
        WarpTraffic(
            name="C",
            size_bytes=4 * wm * wn,
            without_frag_caching=4 * wm * wn * bk // tk,
            with_frag_caching=4 * wm * wn,
        ),
    ]


@dataclass(frozen=True)
class TensorizationPlan:
    """A tiling configuration bound to one (m, n, k) problem."""

    m: int
    n: int
    k: int
    config: TilingConfig
    frag_caching: bool = True

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise ValueError("matrix dimensions must be positive")

    # --- launch shape ------------------------------------------------------
    @property
    def grid_blocks(self) -> int:
        return self.config.grid_blocks(self.m, self.n)

    @property
    def k_iterations(self) -> int:
        return self.config.k_iterations(self.k)

    @property
    def useful_flops(self) -> int:
        """Eq. 9 numerator."""
        return 2 * self.m * self.n * self.k

    # --- per-iteration instruction counts (block scope, warp-level) -------
    def ldg_per_iteration(self) -> int:
        """LDG.128 warp instructions staging the 4 split tiles (Eq. 2)."""
        return ceil(self.config.ldg_bytes_per_iteration / 512)

    def sts_per_iteration(self) -> int:
        """STS.128 warp instructions writing the staged tiles."""
        return ceil(self.config.ldg_bytes_per_iteration / 512)

    def lds_per_iteration(self) -> int:
        """LDS.128 warp instructions reading shared memory into FRAG.

        With FRAG caching each warp stages its A panels (both splits,
        wm x bk halfs each) and B panels (bk x wn) once per block
        iteration.  Without caching, A re-loads once per output-tile
        column (wn/tn) and B once per output-tile row (wm/tm), and the C
        accumulator round-trips through shared memory every tc-k step.
        """
        cfg = self.config
        a_bytes = 2 * cfg.wm * cfg.bk * 2
        b_bytes = 2 * cfg.wn * cfg.bk * 2
        if self.frag_caching:
            per_warp = a_bytes + b_bytes
        else:
            a_reload = a_bytes * (cfg.wn // cfg.tc.n)
            b_reload = b_bytes * (cfg.wm // cfg.tc.m)
            c_roundtrip = 2 * (4 * cfg.wm * cfg.wn) * (cfg.bk // cfg.tc.k)
            per_warp = a_reload + b_reload + c_roundtrip
        return ceil(per_warp * cfg.warps_per_block / 512)

    def hmma_per_iteration(self, scheme_terms: int = 4) -> int:
        return self.config.hmma_per_iteration(scheme_terms)

    # --- C traffic (once per block, not per iteration) ---------------------
    def c_io_bytes_per_block(self) -> int:
        """Load + store of the fp32 C/D block (skipped k/bk times in Eq. 2's
        accounting because it is amortized over the k loop)."""
        return 2 * self.config.bm * self.config.bn * 4

    # --- DRAM traffic with wave-level L2 reuse ------------------------------
    def wave_shape(self, spec: GpuSpec, blocks_per_sm: int = 1) -> tuple[int, int]:
        """Rows x cols of the block-grid tile one wave covers.

        Resident blocks are assigned near-square over the output grid
        (the rasterization cuBLAS and EGEMM-TC both use to maximize L2
        panel sharing).
        """
        gm, gn = self.config.grid_dims(self.m, self.n)
        wave = min(self.grid_blocks, spec.num_sms * blocks_per_sm)
        rows = min(gm, max(1, round(sqrt(wave * gm / max(gn, 1)))))
        cols = min(gn, ceil(wave / rows))
        rows = min(gm, ceil(wave / cols))
        return rows, cols

    def dram_bytes_per_block(self, spec: GpuSpec, blocks_per_sm: int = 1) -> float:
        """Unique DRAM bytes per block, assuming panels hit L2 within a wave.

        Per k-iteration a wave of (rows x cols) blocks touches unique
        operand panels of ``(rows*bm + cols*bn) * bk`` halfs per split
        (x2 splits x2 bytes); the C block I/O is paid once per block.
        When the wave's working set overflows L2, reuse degrades toward
        per-block traffic (linear falloff model).
        """
        rows, cols = self.wave_shape(spec, blocks_per_sm)
        wave_blocks = min(self.grid_blocks, spec.num_sms * blocks_per_sm, rows * cols)
        cfg = self.config
        unique_per_iter = (rows * cfg.bm + cols * cfg.bn) * cfg.bk * 2 * 2
        naive_per_iter = wave_blocks * cfg.ldg_bytes_per_iteration
        # L2 residency check: one iteration's wave working set.
        if unique_per_iter > spec.l2_size:
            overflow = min(1.0, (unique_per_iter - spec.l2_size) / max(unique_per_iter, 1))
            unique_per_iter = unique_per_iter + overflow * (naive_per_iter - unique_per_iter)
        total = unique_per_iter * self.k_iterations + wave_blocks * self.c_io_bytes_per_block()
        return total / wave_blocks
