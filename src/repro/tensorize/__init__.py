"""Tensor-Core-centric tensorization (§4): hierarchical tiling, warp
collaboration, FRAG caching, traffic planning (Table 2), and the
instruction-stream / functional kernel builders."""

from .codegen import RegisterMap, build_register_map, generate_iteration_sass
from .frag_cache import FragCachePolicy, check_register_budget, frag_bytes_per_warp
from .kernel import FunctionalResult, build_gemm_stream, run_functional
from .plan import TensorizationPlan, WarpTraffic, table2_rows
from .tiling import SHMEM_PAD, T4_TILING, TilingConfig

__all__ = [
    "RegisterMap",
    "build_register_map",
    "generate_iteration_sass",
    "FragCachePolicy",
    "check_register_budget",
    "frag_bytes_per_warp",
    "FunctionalResult",
    "build_gemm_stream",
    "run_functional",
    "TensorizationPlan",
    "WarpTraffic",
    "table2_rows",
    "SHMEM_PAD",
    "T4_TILING",
    "TilingConfig",
]
