"""The tensorized EGEMM kernel: instruction-stream builder + functional sim.

Two views of the same kernel:

* :func:`build_gemm_stream` emits the per-block SASS-level instruction
  schedule the timing engine consumes.  The ``latency_hiding`` flag
  selects between the two orderings of Figure 6: the software-pipelined
  schedule (iteration *i+1*'s LDG overlaps iteration *i*'s HMMAs, STS
  delayed to the end of the iteration) and the naive serialized schedule.
  Both contain identical instruction *counts* — only the dependency
  structure differs, so the Figure 11 speedup emerges from scheduling
  alone.

* :func:`run_functional` executes the tiled GEMM bit-accurately through
  the simulated memory hierarchy and Tensor Core primitive, measuring the
  actual traffic (validating Table 2) and producing the same numerics the
  timing model claims to time.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from ..emulation.schemes import EGEMM, EmulationScheme
from ..gpu.isa import InstructionStream, Opcode
from ..gpu.memory import GlobalMemory, SharedMemory, TrafficLog
from ..gpu.spec import TESLA_T4, GpuSpec
from ..tensorcore.mma import InternalPrecision, mma
from .frag_cache import FragCachePolicy
from .plan import TensorizationPlan
from .tiling import TilingConfig

__all__ = ["build_gemm_stream", "FunctionalResult", "run_functional"]


def build_gemm_stream(
    plan: TensorizationPlan,
    scheme_terms: int = 4,
    latency_hiding: bool = True,
    lds_cost_factor: float = 1.0,
    lds_head_steps: int | None = None,
) -> InstructionStream:
    """Emit one block's instruction schedule for the tensorized GEMM.

    Layout (Figure 6): a cold-start prologue loads iteration 0 from
    global memory and stages it to shared memory; each steady-state
    iteration then reads staged tiles to FRAG (LDS), computes (HMMA),
    and — in the pipelined variant — concurrently pulls iteration
    *i+1* from global memory (LDG), with the STS delayed until the
    current iteration's LDS batch has drained the buffer.
    """
    stream = InstructionStream()
    n_ldg = plan.ldg_per_iteration()
    n_sts = plan.sts_per_iteration()
    # ``lds_cost_factor`` models shared-memory bank conflicts: CUDA-level
    # wmma::load_matrix_sync on unswizzled row-major half tiles replays
    # each transaction ~4x (Jia et al. [12]); the SASS kernel's swizzled
    # layout is conflict-free (factor 1).
    n_lds = ceil(plan.lds_per_iteration() * lds_cost_factor)
    n_hmma = plan.hmma_per_iteration(scheme_terms)
    # The first wk-step's fragments gate the first HMMA; the remaining LDS
    # batch interleaves with compute (double-buffered FRAG operands).
    # ``lds_head_steps`` is a scheduler weight (autotuner axis): how many
    # wk-step batches the head is sized as 1/steps of.  The structural
    # default is the warp k-step count; it never changes which bytes move,
    # only how early the first HMMA may issue in the simulated schedule.
    if lds_head_steps is None:
        lds_steps = max(1, plan.config.bk // plan.config.wk)
    else:
        lds_steps = max(1, lds_head_steps)
    n_lds_head = max(1, n_lds // lds_steps)
    n_lds_rest = max(0, n_lds - n_lds_head)
    iters = plan.k_iterations

    # Prologue: load the C block into FRAG, cold-start iteration 0.
    c_ld = stream.emit(Opcode.LDG, ceil(plan.c_io_bytes_per_block() / 2 / 512), label="load C")
    g_ldg = stream.emit(Opcode.LDG, n_ldg, label="cold LDG[0]")
    g_sts = stream.emit(Opcode.STS, n_sts, depends_on=(g_ldg,), label="cold STS[0]")
    g_bar = stream.emit(Opcode.BAR, 1, depends_on=(g_sts, c_ld), label="cold barrier")

    for i in range(iters):
        last = i == iters - 1
        if latency_hiding:
            # Figure 6, right: loads for iteration i+1 issue during
            # iteration i's HMMAs; the STS is delayed until the current
            # LDS batch has drained the shared buffer (§5.1).
            g_head = stream.emit(Opcode.LDS, n_lds_head, depends_on=(g_bar,), label=f"LDS-head[{i}]")
            g_hmma = stream.emit(Opcode.HMMA, n_hmma, depends_on=(g_head,), label=f"HMMA[{i}]")
            g_rest = stream.emit(Opcode.LDS, n_lds_rest, depends_on=(g_bar,), label=f"LDS-rest[{i}]")
            if not last:
                g_next_ldg = stream.emit(Opcode.LDG, n_ldg, depends_on=(g_bar,), label=f"LDG[{i + 1}]")
                g_sts = stream.emit(
                    Opcode.STS, n_sts, depends_on=(g_next_ldg, g_rest), label=f"STS[{i + 1}]"
                )
                g_bar = stream.emit(Opcode.BAR, 1, depends_on=(g_sts,), label=f"bar[{i}]")
        else:
            # Figure 6, left: per-warp program order keeps the loads for
            # iteration i+1 behind iteration i's HMMAs, so their issue is
            # exposed.  Concurrent warps stagger enough that completion
            # latencies of LDG are still covered, but the issue slots and
            # the end-of-iteration store/barrier are on the critical path.
            g_lds = stream.emit(Opcode.LDS, n_lds, depends_on=(g_bar,), label=f"LDS[{i}]")
            g_hmma = stream.emit(Opcode.HMMA, n_hmma, depends_on=(g_lds,), label=f"HMMA[{i}]")
            if not last:
                g_ldg = stream.emit(Opcode.LDG, n_ldg, issue_after=(g_hmma,), label=f"LDG[{i + 1}]")
                g_sts = stream.emit(
                    Opcode.STS, n_sts, issue_after=(g_ldg,), depends_on=(g_lds,), label=f"STS[{i + 1}]"
                )
                g_bar = stream.emit(Opcode.BAR, 1, depends_on=(g_sts,), label=f"bar[{i}]")

    # Epilogue: write the D block back to global memory.
    stream.emit(
        Opcode.STG,
        ceil(plan.c_io_bytes_per_block() / 2 / 512),
        depends_on=(g_hmma,),
        label="store D",
    )
    return stream


@dataclass
class FunctionalResult:
    """Output of the functional tiled execution."""

    d: np.ndarray
    traffic: TrafficLog
    frag_hit_rate: float
    mma_calls: int


def _pad_to(x: np.ndarray, rows: int, cols: int) -> np.ndarray:
    if x.shape == (rows, cols):
        return x.astype(np.float32, copy=True)
    out = np.zeros((rows, cols), dtype=np.float32)
    out[: x.shape[0], : x.shape[1]] = x
    return out


def run_functional(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    config: TilingConfig | None = None,
    scheme: EmulationScheme = EGEMM,
    frag_caching: bool = True,
    spec: GpuSpec = TESLA_T4,
) -> FunctionalResult:
    """Execute the tensorized emulated GEMM through the simulated hierarchy.

    Bit-accurate but Python-loop-per-tile — intended for validation at
    small sizes (the vectorized :class:`~repro.emulation.gemm.EmulatedGemm`
    is the production numerical path).  Matrices not divisible by the
    block tile are zero-padded; the result is sliced back.
    """
    cfg = config or TilingConfig(bm=32, bn=32, bk=16, wm=16, wn=16, wk=8)
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    m, k = a32.shape
    k2, n = b32.shape
    if k != k2:
        raise ValueError("k-dimension mismatch")

    mp = ceil(m / cfg.bm) * cfg.bm
    np_ = ceil(n / cfg.bn) * cfg.bn
    kp = ceil(k / cfg.bk) * cfg.bk
    a_pad = _pad_to(a32, mp, kp)
    b_pad = _pad_to(b32, kp, np_)
    c_pad = _pad_to(np.zeros((m, n), dtype=np.float32) if c is None else np.asarray(c), mp, np_)

    # Data split on "CUDA cores" (host-side here), stored to global memory.
    pa, pb = scheme.split_operands(a_pad, b_pad)
    gmem = GlobalMemory()
    gmem.bind("Alo", pa.lo)
    gmem.bind("Ahi", pa.hi)
    gmem.bind("Blo", pb.lo)
    gmem.bind("Bhi", pb.hi)
    gmem.bind("C", c_pad)
    gmem.bind("D", np.zeros((mp, np_), dtype=np.float32))

    a_parts = {"lo": "Alo", "hi": "Ahi"}
    b_parts = {"lo": "Blo", "hi": "Bhi"}
    term_names = (
        [("lo", "lo"), ("lo", "hi"), ("hi", "lo"), ("hi", "hi")]
        if scheme.split is not None
        else [("hi", "hi")]
    )

    shared_traffic = TrafficLog()
    policy = FragCachePolicy(enabled=frag_caching)
    mma_calls = 0
    tm, tn, tk = cfg.tc.m, cfg.tc.n, cfg.tc.k
    gm_blocks, gn_blocks = cfg.grid_dims(mp, np_)

    for ib in range(gm_blocks):
        for jb in range(gn_blocks):
            r0, r1 = ib * cfg.bm, (ib + 1) * cfg.bm
            c0, c1 = jb * cfg.bn, (jb + 1) * cfg.bn
            shared = SharedMemory(capacity_bytes=spec.shared_mem_per_sm)
            # C block lives in FRAG for the whole k loop (never re-staged).
            acc = gmem.load("C", slice(r0, r1), slice(c0, c1))

            for kit in range(kp // cfg.bk):
                k0, k1 = kit * cfg.bk, (kit + 1) * cfg.bk
                # All warps collaboratively stage the four split tiles
                # (Figure 5 loading phase): LDG -> registers -> STS.
                for part, name in a_parts.items():
                    if scheme.split is None and part == "lo":
                        continue
                    shared.store(f"A{part}", gmem.load(name, slice(r0, r1), slice(k0, k1)))
                for part, name in b_parts.items():
                    if scheme.split is None and part == "lo":
                        continue
                    shared.store(f"B{part}", gmem.load(name, slice(k0, k1), slice(c0, c1)))
                policy.invalidate()  # shared buffers were overwritten

                # Computation phase: Algorithm 1's four terms, each term
                # swept over warp tiles and TC tiles.
                frag_a: dict[object, np.ndarray] = {}
                frag_b: dict[object, np.ndarray] = {}
                for pa_name, pb_name in term_names:
                    for wi in range(cfg.bm // cfg.wm):
                        for wj in range(cfg.bn // cfg.wn):
                            for kk in range(0, cfg.bk, cfg.wk):
                                for ti in range(cfg.wm // tm):
                                    for tj in range(cfg.wn // tn):
                                        for tkk in range(cfg.wk // tk):
                                            # Block-local tile coordinates.
                                            ar = slice(wi * cfg.wm + ti * tm, wi * cfg.wm + (ti + 1) * tm)
                                            ak = slice(kk + tkk * tk, kk + (tkk + 1) * tk)
                                            bc = slice(wj * cfg.wn + tj * tn, wj * cfg.wn + (tj + 1) * tn)
                                            # Keys carry the full warp identity
                                            # (wi, wj): FRAG is per-warp register
                                            # storage, so warps never share
                                            # fragments even when they read the
                                            # same shared-memory panel (that
                                            # sharing happens at the shared-
                                            # memory level, Figure 5).
                                            a_key = ("A", pa_name, wi, wj, ar.start, ak.start)
                                            b_key = ("B", pb_name, wi, wj, bc.start, ak.start)
                                            if policy.should_load(a_key):
                                                frag_a[a_key] = shared.load(f"A{pa_name}", ar, ak).astype(np.float16)
                                            if policy.should_load(b_key):
                                                frag_b[b_key] = shared.load(f"B{pb_name}", ak, bc).astype(np.float16)
                                            acc[ar, bc] = mma(
                                                frag_a[a_key],
                                                frag_b[b_key],
                                                acc[ar, bc],
                                                precision=InternalPrecision.TENSOR_CORE,
                                            )
                                            mma_calls += 1
            gmem.store("D", slice(r0, r1), slice(c0, c1), acc)
            shared_traffic = shared_traffic.merged(shared.log)

    traffic = gmem.log.merged(shared_traffic)
    return FunctionalResult(
        d=gmem.array("D")[:m, :n].copy(),
        traffic=traffic,
        frag_hit_rate=policy.hit_rate,
        mma_calls=mma_calls,
    )
