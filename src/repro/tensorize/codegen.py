"""SASS code generation for the EGEMM-TC kernel's steady-state iteration.

Produces the per-warp instruction listing the paper's artifact hand-writes
(and assembles with TuringAs), using the §5.2 register map and the §5.1
schedule.  For the Table 4 design point (bm=bn=128, bk=32, wm=64, wn=32,
wk=8, 8 warps) the per-thread register map is::

    R0   - R63   C accumulator fragments        (64 regs, fp32)
    R64  - R87   A/B operand fragments, buffer 0 (24 regs, fp16x2)
    R88  - R111  A/B operand fragments, buffer 1 (24 regs)
    R112 - R143  LDG staging, buffer 0           (32 regs)
    R144 - R175  LDG staging, buffer 1           (32 regs)
    R176 - R191  addressing temporaries          (16 regs)
    R192 - R231  context (indices, strides)      (40 regs)

— 232 registers, matching §5.2's "232 out of 256".

Per k-iteration each warp issues (design point numbers):

* 8 ``LDG.E.128``  — its share of staging the next block tile,
* 24 ``LDS.128``   — operand fragments, 6 per wk-step, double-buffered,
* 256 ``HMMA.1688.F32`` — 64 per wk-step (4x4 output tiles x 4 terms),
* 8 ``STS.128``    — delayed store of the staged tile,
* 1 ``BAR.SYNC``.

``latency_hiding=True`` emits the Figure 6 interleaving (LDGs spread
between HMMA runs, STS delayed to the end); ``False`` emits the naive
program order.  Either way the listing passes :func:`repro.gpu.sass
.validate` — registers under budget, def-before-use, coherent barriers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.sass import Reg, SassInstr, SassListing
from .tiling import T4_TILING, TilingConfig

__all__ = [
    "RegisterMap",
    "build_register_map",
    "generate_iteration_sass",
    "generate_kernel_sass",
]


@dataclass(frozen=True)
class RegisterMap:
    """Per-thread register assignment of the EGEMM kernel stages."""

    c_base: int
    c_count: int
    frag_base: tuple[int, int]  # double-buffered operand fragments
    frag_count: int
    stage_base: tuple[int, int]  # double-buffered LDG staging
    stage_count: int
    #: registers of the A-split fragments within each frag buffer (the
    #: B-split fragments occupy the remainder)
    a_frag_regs: int
    addr_base: int
    addr_count: int
    context_base: int
    context_count: int

    @property
    def total(self) -> int:
        return (
            self.c_count
            + 2 * self.frag_count
            + 2 * self.stage_count
            + self.addr_count
            + self.context_count
        )

    def live_in(self) -> frozenset[int]:
        """Registers the prologue defines: context, addressing, and the
        C fragments (loaded before the k loop), plus the staged buffers
        filled by the cold-start iteration."""
        regs = set(range(self.context_base, self.context_base + self.context_count))
        regs |= set(range(self.addr_base, self.addr_base + self.addr_count))
        regs |= set(range(self.c_base, self.c_base + self.c_count))
        for base in self.frag_base:
            regs |= set(range(base, base + self.frag_count))
        for base in self.stage_base:
            regs |= set(range(base, base + self.stage_count))
        return frozenset(regs)


def build_register_map(config: TilingConfig = T4_TILING) -> RegisterMap:
    """Derive the register map from the tiling (Table 4 point -> 232)."""
    c_count = (config.wm * config.wn * 4) // (32 * 4)
    frag_count = (2 * (config.wm + config.wn) * config.wk * 2) // (32 * 4)
    a_frag_regs = max(2, (2 * config.wm * config.wk * 2) // (32 * 4))
    stage_count = (2 * (config.bm + config.bn) * config.bk * 2) // (config.threads_per_block * 4)
    c_base = 0
    frag0 = c_base + c_count
    frag1 = frag0 + frag_count
    stage0 = frag1 + frag_count
    stage1 = stage0 + stage_count
    addr_base = stage1 + stage_count
    addr_count = 16
    context_base = addr_base + addr_count
    context_count = 40
    return RegisterMap(
        c_base=c_base,
        c_count=c_count,
        frag_base=(frag0, frag1),
        frag_count=frag_count,
        stage_base=(stage0, stage1),
        stage_count=stage_count,
        a_frag_regs=a_frag_regs,
        addr_base=addr_base,
        addr_count=addr_count,
        context_base=context_base,
        context_count=context_count,
    )


def _ldg(regmap: RegisterMap, buf: int, j: int) -> SassInstr:
    base = regmap.stage_base[buf] + 4 * j
    return SassInstr(
        opcode="LDG.E.128",
        dests=Reg(base).span(4),
        srcs=(Reg(regmap.addr_base),),
        operands=f"[R{regmap.addr_base}.64+{hex(16 * j)}]",
        stall=1,
        wrtdb=0,
    )


def _sts(regmap: RegisterMap, buf: int, j: int, wait_ldg: bool) -> SassInstr:
    base = regmap.stage_base[buf] + 4 * j
    return SassInstr(
        opcode="STS.128",
        dests=(),
        srcs=(Reg(regmap.addr_base + 1), *Reg(base).span(4)),
        operands=f"[R{regmap.addr_base + 1}+{hex(16 * j)}], R{base}",
        stall=2,
        watdb=(1 << 0) if wait_ldg else 0,
    )


def _lds(regmap: RegisterMap, buf: int, j: int) -> SassInstr:
    base = regmap.frag_base[buf] + 4 * j
    return SassInstr(
        opcode="LDS.128",
        dests=Reg(base).span(4),
        srcs=(Reg(regmap.addr_base + 2),),
        operands=f"[R{regmap.addr_base + 2}+{hex(16 * j)}]",
        stall=1,
        wrtdb=1,
    )


def _hmma(regmap: RegisterMap, buf: int, tile: int, term: int, first_of_step: bool) -> SassInstr:
    c_span = Reg(regmap.c_base + 4 * (tile % (regmap.c_count // 4))).span(4)
    a_slots = max(regmap.a_frag_regs // 2, 1)
    b_regs = max(regmap.frag_count - regmap.a_frag_regs, 1)
    a_base = regmap.frag_base[buf] + 2 * ((term * 5 + tile) % a_slots)
    b_base = regmap.frag_base[buf] + regmap.a_frag_regs + ((term + tile) % b_regs)
    return SassInstr(
        opcode="HMMA.1688.F32",
        dests=c_span,
        srcs=(*Reg(a_base).span(2), Reg(b_base), *c_span),
        operands=f"R{a_base}, R{b_base}, R{c_span[0].index}",
        stall=2,
        watdb=(1 << 1) if first_of_step else 0,
    )


def generate_iteration_sass(
    config: TilingConfig = T4_TILING,
    scheme_terms: int = 4,
    latency_hiding: bool = True,
) -> SassListing:
    """Emit one steady-state k-iteration of the EGEMM kernel, per warp."""
    regmap = build_register_map(config)
    listing = SassListing(
        name=f"egemm_iteration{'_pipelined' if latency_hiding else '_naive'}",
        live_in=regmap.live_in(),
    )

    wk_steps = config.bk // config.wk
    # Output tiles per wk-step, times the tc.k sub-steps inside one wk step.
    tiles_per_step = (
        (config.wm // config.tc.m)
        * (config.wn // config.tc.n)
        * (config.wk // config.tc.k)
    )
    n_ldg = max(1, config.ldg_bytes_per_iteration // 512 // config.warps_per_block)
    n_sts = n_ldg
    lds_per_step = max(1, regmap.frag_count // 4)

    ldg_emitted = 0
    sts_emitted = 0
    hmma_runs: list[int] = []
    run = 0

    for step in range(wk_steps):
        buf = step % 2
        # Fragment loads for this wk-step (double-buffered register bank).
        for j in range(lds_per_step):
            listing.emit(_lds(regmap, buf, j))
        for term in range(scheme_terms):
            for tile in range(tiles_per_step):
                first = term == 0 and tile == 0
                listing.emit(_hmma(regmap, buf, tile, term, first_of_step=first))
                run += 1
                if latency_hiding:
                    # Figure 6: spread the global loads between HMMA runs.
                    every = max(1, (wk_steps * scheme_terms * tiles_per_step) // max(n_ldg, 1))
                    if run % every == 0 and ldg_emitted < n_ldg:
                        hmma_runs.append(run)
                        run = 0
                        listing.emit(_ldg(regmap, (step + 1) % 2, ldg_emitted))
                        ldg_emitted += 1
        if latency_hiding and step == wk_steps - 1:
            # Delayed STS: the shared buffer has been fully read by now.
            while sts_emitted < n_sts:
                listing.emit(
                    _sts(regmap, (step + 1) % 2, sts_emitted, wait_ldg=sts_emitted == 0)
                )
                sts_emitted += 1
    hmma_runs.append(run)

    if not latency_hiding:
        # Naive program order: loads and stores after all the math.
        for j in range(n_ldg):
            listing.emit(_ldg(regmap, 1, j))
        for j in range(n_sts):
            listing.emit(_sts(regmap, 1, j, wait_ldg=j == 0))

    listing.emit(SassInstr(opcode="BAR.SYNC", operands="0x0", stall=5, watdb=0))
    return listing


def generate_kernel_sass(
    config: TilingConfig = T4_TILING,
    k: int = 512,
    scheme_terms: int = 4,
    latency_hiding: bool = True,
) -> SassListing:
    """Emit the *complete* EGEMM kernel listing for one warp.

    Structure mirrors the §5.2 stage analysis:

    1. **context stage** — ``S2R`` reads of the thread/block indices and
       the ``IMAD``/``SHF`` address arithmetic establishing the context
       and addressing registers;
    2. **load-C stage** — the warp's C fragments pulled from global
       memory into R0..;
    3. **cold start** — iteration 0's global loads staged to shared
       memory (Figure 6's prologue);
    4. **compute stage** — the k-loop: the steady-state iteration body
       (see :func:`generate_iteration_sass`) plus the loop-control
       instructions (counter ``IADD3``, ``ISETP`` compare, predicated
       ``BRA`` back edge);
    5. **store-C stage** — ``STG.E.128`` writeback and ``EXIT``.

    The body is emitted once with explicit loop control rather than
    unrolled ``k/bk`` times — matching how the artifact's hand-written
    kernel is structured — so the listing length is size-independent.
    """
    regmap = build_register_map(config)
    listing = SassListing(
        name=f"egemm_kernel{'_pipelined' if latency_hiding else '_naive'}",
        live_in=frozenset(),
    )
    ctx = regmap.context_base
    addr = regmap.addr_base

    # --- stage 1: context ------------------------------------------------
    for i, sreg in enumerate(("SR_CTAID.X", "SR_CTAID.Y", "SR_TID.X")):
        listing.emit(SassInstr(opcode="S2R", dests=(Reg(ctx + i),), operands=sreg, stall=2))
    # block-matrix addressing: strides, base pointers, warp offsets
    for i in range(3, regmap.context_count):
        srcs = (Reg(ctx + (i % 3)), Reg(ctx + max(0, i - 1)))
        listing.emit(
            SassInstr(
                opcode="IMAD",
                dests=(Reg(ctx + i),),
                srcs=srcs,
                operands=f"R{srcs[0].index}, R{srcs[1].index}, {hex(4 * i)}",
                stall=1,
            )
        )
    for i in range(regmap.addr_count):
        src = Reg(ctx + (i % regmap.context_count))
        listing.emit(
            SassInstr(
                opcode="IADD3",
                dests=(Reg(addr + i),),
                srcs=(src,),
                operands=f"R{src.index}, {hex(64 * i)}, RZ",
                stall=1,
            )
        )

    # --- stage 2: load the C fragments ------------------------------------
    for j in range(regmap.c_count // 4):
        base = regmap.c_base + 4 * j
        listing.emit(
            SassInstr(
                opcode="LDG.E.128",
                dests=Reg(base).span(4),
                srcs=(Reg(addr + 3),),
                operands=f"[R{addr + 3}.64+{hex(16 * j)}]",
                stall=1,
                wrtdb=2,
            )
        )

    # --- stage 3: cold start (iteration 0 staged to shared memory) --------
    n_ldg = max(1, config.ldg_bytes_per_iteration // 512 // config.warps_per_block)
    for j in range(n_ldg):
        listing.emit(_ldg(regmap, 0, j))
    for j in range(n_ldg):
        listing.emit(_sts(regmap, 0, j, wait_ldg=j == 0))
    listing.emit(SassInstr(opcode="BAR.SYNC", operands="0x0", stall=5, watdb=1 << 2))

    # --- stage 4: the k-loop ------------------------------------------------
    loop_counter = Reg(addr + regmap.addr_count - 1)
    listing.emit(
        SassInstr(opcode="MOV", dests=(loop_counter,), srcs=(), operands="RZ", stall=1)
    )
    listing.emit(SassInstr(opcode="NOP", operands=f"// LOOP_BODY: {k // config.bk} iterations", stall=0))
    body = generate_iteration_sass(config, scheme_terms, latency_hiding)
    for instr in body:
        listing.emit(instr)
    listing.emit(
        SassInstr(
            opcode="IADD3",
            dests=(loop_counter,),
            srcs=(loop_counter,),
            operands=f"R{loop_counter.index}, 0x1, RZ",
            stall=1,
        )
    )
    listing.emit(
        SassInstr(
            opcode="ISETP.LT.AND",
            srcs=(loop_counter,),
            operands=f"P0, PT, R{loop_counter.index}, {hex(max(k // config.bk, 1))}, PT",
            stall=2,
        )
    )
    listing.emit(SassInstr(opcode="BRA", operands="@P0 LOOP_BODY", stall=5, yield_=True))

    # --- stage 5: store C and exit -------------------------------------------
    for j in range(regmap.c_count // 4):
        base = regmap.c_base + 4 * j
        listing.emit(
            SassInstr(
                opcode="STG.E.128",
                srcs=(Reg(addr + 4), *Reg(base).span(4)),
                operands=f"[R{addr + 4}.64+{hex(16 * j)}], R{base}",
                stall=1,
            )
        )
    listing.emit(SassInstr(opcode="EXIT", stall=15))
    return listing
