"""EGEMM-TC reproduction: extended-precision emulated GEMM on (simulated)
Tensor Cores.

Reproduces *EGEMM-TC: Accelerating Scientific Computing on Tensor Cores
with Extended Precision* (Feng et al., PPoPP 2021) as a pure-Python
library: a bit-accurate Tensor Core functional simulator, the round-split
4-instruction emulation algorithm, the tensorized kernel with FRAG caching
and SASS-level latency hiding, a cycle-approximate GPU timing model, the
hardware-aware analytic autotuner, and the GEMM-based scientific-computing
applications (kMeans, kNN, PCA).

Quickstart::

    import numpy as np
    from repro import egemm, EgemmTcKernel

    a = np.random.uniform(-1, 1, (512, 512)).astype(np.float32)
    b = np.random.uniform(-1, 1, (512, 512)).astype(np.float32)
    d = egemm(a, b)                      # extended-precision D = A @ B

    kernel = EgemmTcKernel()
    print(kernel.tflops(8192, 8192, 8192))   # simulated T4 throughput

Subpackages: :mod:`repro.fp` (float formats and bit views),
:mod:`repro.splits` (round/truncate/Dekker splits), :mod:`repro.tensorcore`
(the simulated compute primitive), :mod:`repro.profiling` (the generalized
emulation-design workflow), :mod:`repro.emulation` (Algorithm 1),
:mod:`repro.gpu` (the timing simulator), :mod:`repro.tensorize` (§4),
:mod:`repro.model` (§6), :mod:`repro.kernels` (Table 5),
:mod:`repro.apps` (§7.5), :mod:`repro.experiments` (every table/figure),
:mod:`repro.resilience` (fault injection, ABFT-protected GEMM, and the
resilient kernel runner — see docs/robustness.md),
:mod:`repro.obs` (tracing, metrics, Chrome-trace/profile export — see
docs/observability.md),
:mod:`repro.serve` (precision-aware GEMM serving: SLO routing, dynamic
batching, multi-device dispatch — see docs/serving.md).
"""

from __future__ import annotations

import numpy as np

from .apps import KMeans, KnnSearch, PCA
from .emulation import (
    EGEMM,
    HALF,
    MARKIDIS,
    EmulatedGemm,
    EmulationScheme,
    emulated_gemm,
    get_scheme,
    reference_exact,
    reference_single,
)
from .gpu import RTX6000, TESLA_T4, GpuSpec, get_gpu
from .kernels import (
    CublasCudaFp32,
    CublasTcEmulation,
    CublasTcHalf,
    EgemmTcKernel,
    GemmKernel,
    MarkidisKernel,
    SdkCudaFp32,
    get_kernel,
)
from .model import solve as autotune
from .obs import configure as configure_tracing, get_registry, get_tracer
from .perf import SplitCache, parallel_map
from .profiling import PrecisionProfiler
from .resilience import (
    AbftGemm,
    AbftKernel,
    FaultInjector,
    FaultSite,
    ResilientRunner,
    run_campaign,
)
from .serve import GemmRequest, GemmResponse, GemmService, PrecisionRouter, ServeConfig
from .splits import RoundSplit, TruncateSplit, round_split, truncate_split
from .tensorcore import InternalPrecision, mma
from .verify import VerificationError, verify as selfcheck

__version__ = "1.0.0"

__all__ = [
    "egemm",
    "KMeans",
    "KnnSearch",
    "PCA",
    "EGEMM",
    "HALF",
    "MARKIDIS",
    "EmulatedGemm",
    "EmulationScheme",
    "emulated_gemm",
    "get_scheme",
    "reference_exact",
    "reference_single",
    "RTX6000",
    "TESLA_T4",
    "GpuSpec",
    "get_gpu",
    "CublasCudaFp32",
    "CublasTcEmulation",
    "CublasTcHalf",
    "EgemmTcKernel",
    "GemmKernel",
    "MarkidisKernel",
    "SdkCudaFp32",
    "get_kernel",
    "autotune",
    "configure_tracing",
    "get_registry",
    "get_tracer",
    "SplitCache",
    "parallel_map",
    "PrecisionProfiler",
    "AbftGemm",
    "AbftKernel",
    "FaultInjector",
    "FaultSite",
    "ResilientRunner",
    "run_campaign",
    "RoundSplit",
    "TruncateSplit",
    "round_split",
    "truncate_split",
    "InternalPrecision",
    "mma",
    "GemmRequest",
    "GemmResponse",
    "GemmService",
    "PrecisionRouter",
    "ServeConfig",
    "VerificationError",
    "selfcheck",
    "__version__",
]

_SCHEME_ALIASES = {"egemm-tc": "egemm-tc", "egemm": "egemm-tc"}


def egemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    scheme: str = "egemm-tc",
    trans_a: bool = False,
    trans_b: bool = False,
) -> np.ndarray:
    """Extended-precision ``D = op(A) @ op(B) + C`` — the library's front door.

    ``scheme`` selects the emulation: 'egemm-tc' (default, round-split),
    'markidis' (truncate-split), 'half', or 'dekker'.  ``trans_a`` /
    ``trans_b`` apply BLAS-style transposes to the operands (zero-copy
    views; the split handles any memory layout).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if trans_a:
        a = a.T
    if trans_b:
        b = b.T
    return emulated_gemm(a, b, c, scheme=get_scheme(_SCHEME_ALIASES.get(scheme, scheme)))
