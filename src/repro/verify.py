"""Library self-check: one call that exercises the numerical core.

``python -c "import repro; repro.verify.verify()"`` (or ``repro.selfcheck()``)
runs in a few seconds and validates the invariants a correct install must
satisfy — the same checks the artifact's "Getting Started Guide" performs
with its `make ...; ./...` smoke runs.  Raises :class:`VerificationError`
with a specific diagnosis on the first failure; returns a summary dict on
success.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VerificationError", "verify"]


class VerificationError(AssertionError):
    """A self-check invariant failed — the install is not trustworthy."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise VerificationError(message)


def verify(verbose: bool = False) -> dict[str, object]:
    """Run the self-check suite; return a summary of measured values."""
    from .emulation.gemm import EmulatedGemm, reference_exact, reference_single
    from .emulation.schemes import EGEMM, HALF
    from .fp.error import max_error
    from .kernels.cublas import CublasCudaFp32
    from .kernels.egemm import EgemmTcKernel
    from .model.solver import solve
    from .profiling.workflow import PrecisionProfiler
    from .splits.round import RoundSplit

    summary: dict[str, object] = {}
    rng = np.random.default_rng(0)

    # 1. split exactness class
    x = rng.uniform(-1, 1, 4096).astype(np.float32)
    err = RoundSplit().max_reconstruction_error(x)
    _check(err <= 2.0**-21, f"round-split residual {err:.3e} exceeds the 21-bit class")
    summary["round_split_residual"] = err

    # 2. emulation beats half by orders of magnitude
    a = rng.uniform(-1, 1, (96, 96)).astype(np.float32)
    b = rng.uniform(-1, 1, (96, 96)).astype(np.float32)
    ref = reference_single(a, b)
    e_ext = max_error(EmulatedGemm(scheme=EGEMM)(a, b), ref)
    e_half = max_error(EmulatedGemm(scheme=HALF)(a, b), ref)
    _check(e_half > 50 * e_ext, f"emulation advantage too small: {e_half:.2e} vs {e_ext:.2e}")
    summary["emulation_error"] = e_ext
    summary["half_error"] = e_half

    # 3. emulation is extended-precision against the exact product
    e_exact = max_error(EmulatedGemm(scheme=EGEMM)(a, b), reference_exact(a, b))
    _check(e_exact < 1e-4, f"emulation error vs exact {e_exact:.2e} out of class")

    # 4. the profiling workflow reaches the paper's verdict
    result = PrecisionProfiler().run(trials=120)
    float_min = next(p for p in result.agreements if p.probe.name == "d_FLOAT").min_bits
    _check(float_min >= 21, f"d_FLOAT agreement {float_min} < 21 mantissa bits")
    summary["profiling_min_bits"] = float_min

    # 5. the analytic solver lands on Table 4
    best = solve().best
    _check(
        (best.bm, best.bn, best.bk, best.wm, best.wn, best.wk) == (128, 128, 32, 64, 32, 8),
        f"solver picked {best} instead of the Table 4 point",
    )

    # 6. the timing model's headline ordering
    egemm_tf = EgemmTcKernel().tflops(8192, 8192, 8192)
    fp32_tf = CublasCudaFp32().tflops(8192, 8192, 8192)
    _check(egemm_tf > 2 * fp32_tf, f"speedup collapsed: {egemm_tf:.1f} vs {fp32_tf:.1f} TFLOPS")
    summary["egemm_tflops"] = egemm_tf
    summary["speedup_vs_fp32"] = egemm_tf / fp32_tf

    if verbose:  # pragma: no cover - cosmetic
        for key, value in summary.items():
            print(f"  {key}: {value}")
        print("self-check passed")
    return summary
