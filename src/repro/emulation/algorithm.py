"""Algorithm 1 — the lightweight GEMM emulation on one primitive-sized tile.

Two functionally equivalent realizations are provided:

* :func:`emulate_tile` — the fast path: issues the scheme's partial
  products straight to the :func:`~repro.tensorcore.mma.mma` primitive
  (what a SASS kernel does with raw HMMA instructions);
* :func:`emulate_tile_wmma` — the literate path: walks the full CUDA-style
  fragment API (``load_matrix_sync`` / ``mma_sync`` / ``store_matrix_sync``)
  exactly as Algorithm 1 is written, used by integration tests to pin the
  two paths together.

Both take single-precision A, B, C and return ``D = A x B + C`` with the
scheme's extended precision.
"""

from __future__ import annotations

import numpy as np

from ..tensorcore.fragment import FragmentRole
from ..tensorcore.mma import InternalPrecision, MmaCounter, MmaShape, mma
from ..tensorcore.wmma import WmmaContext, load_matrix_sync, mma_sync, store_matrix_sync
from .schemes import EGEMM, EmulationScheme

__all__ = ["emulate_tile", "emulate_tile_wmma"]


def emulate_tile(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    scheme: EmulationScheme = EGEMM,
    precision: InternalPrecision = InternalPrecision.TENSOR_CORE,
    counter: MmaCounter | None = None,
) -> np.ndarray:
    """Algorithm 1 on a tile that fits the compute primitive directly.

    Lines 2-3 (Round-Split of A and B) happen in ``scheme.split_operands``;
    lines 5-8 are the chained ``mma`` calls, with the core's native fp32
    accumulator carrying the data combination.
    """
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    if a32.ndim != 2 or b32.ndim != 2 or a32.shape[1] != b32.shape[0]:
        raise ValueError("emulate_tile expects (m,k) @ (k,n) matrices")
    m, n = a32.shape[0], b32.shape[1]
    d = np.zeros((m, n), dtype=np.float32) if c is None else np.asarray(c, dtype=np.float32)

    pa, pb = scheme.split_operands(a32, b32)
    for a_part, b_part in scheme.product_terms(pa, pb):
        d = mma(a_part, b_part, d, precision=precision, counter=counter)
    return d


def emulate_tile_wmma(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    scheme: EmulationScheme = EGEMM,
    ctx: WmmaContext | None = None,
) -> np.ndarray:
    """Algorithm 1 through the fragment-level WMMA API, verbatim.

    Requires the operands to match the context's primitive shape (16x16x16
    by default); raises otherwise — larger matrices go through the
    tensorized driver in :mod:`repro.emulation.gemm`.
    """
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    m, k = a32.shape
    n = b32.shape[1]
    if ctx is None:
        ctx = WmmaContext()  # the 16x16x16 WMMA primitive
    if (m, n, k) != (ctx.shape.m, ctx.shape.n, ctx.shape.k):
        raise ValueError(f"tile {(m, n, k)} does not fit primitive shape {ctx.shape}")

    pa, pb = scheme.split_operands(a32, b32)

    frag_a = ctx.fragment(FragmentRole.MATRIX_A)
    frag_b = ctx.fragment(FragmentRole.MATRIX_B)
    frag_acc = ctx.fragment(FragmentRole.ACCUMULATOR)
    if c is None:
        frag_acc.fill(0.0)
    else:
        load_matrix_sync(ctx, frag_acc, np.asarray(c, dtype=np.float32))

    # Lines 5-8 of Algorithm 1: D accumulates across the four mma_sync
    # calls (the accumulator fragment is both C and D of each call).
    for a_part, b_part in scheme.product_terms(pa, pb):
        load_matrix_sync(ctx, frag_a, a_part)
        load_matrix_sync(ctx, frag_b, b_part)
        mma_sync(ctx, frag_acc, frag_a, frag_b, frag_acc)
    return store_matrix_sync(ctx, frag_acc)
