"""The paper's core contribution: lightweight extended-precision GEMM
emulation on (simulated) Tensor Cores — Algorithm 1 and its large-matrix
driver, plus the baseline emulation schemes."""

from .algorithm import emulate_tile, emulate_tile_wmma
from .extended import EGEMM3, ThreeTermScheme
from .gemm import EmulatedGemm, GemmStats, emulated_gemm, reference_exact, reference_single
from .schemes import DEKKER, EGEMM, HALF, MARKIDIS, SCHEMES, EmulationScheme, get_scheme

__all__ = [
    "EGEMM3",
    "ThreeTermScheme",
    "emulate_tile",
    "emulate_tile_wmma",
    "EmulatedGemm",
    "GemmStats",
    "emulated_gemm",
    "reference_exact",
    "reference_single",
    "DEKKER",
    "EGEMM",
    "HALF",
    "MARKIDIS",
    "SCHEMES",
    "EmulationScheme",
    "get_scheme",
]
