"""Extended emulation schemes beyond the paper: the 9-call three-term design.

The paper's design space has two published points: 4 Tensor Core calls
for 21 mantissa bits (EGEMM-TC) and 16 half instructions for Dekker.
The natural next point splits each operand into *three* half terms and
issues all nine pairwise products at 9x compute overhead.

Measured verdict (ablation A1): the split-level residual halves (~1
extra bit on unit-scaled data — fp16's subnormal floor caps the third
term, see :mod:`repro.splits.three_term`), but *end to end* the gain
vanishes: the fp32 accumulator's rounding dominates and the five extra
roundings per k-chunk offset the tighter split.  Combined with the 9/4
throughput cost, this quantifies why the paper's 4-call design is the
sweet spot.  The scheme exposes the same duck-typed interface
:class:`~repro.emulation.gemm.EmulatedGemm` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..splits.three_term import SplitTriple, ThreeTermSplit

__all__ = ["ThreeTermScheme", "EGEMM3"]


@dataclass(frozen=True)
class ThreeTermScheme:
    """Nine-call emulation over three-term splits (duck-typed scheme)."""

    name: str = "egemm3"
    compute_overhead: int = 9
    memory_overhead: int = 3
    effective_mantissa_bits: int = 23
    description: str = "three-term round-split + 9 Tensor Core calls (~23-bit input precision)"

    #: scheme protocol compatibility: the underlying split object
    @property
    def split(self) -> ThreeTermSplit:
        return ThreeTermSplit()

    @property
    def split_id(self) -> str:
        """Cache namespace — keyed on the split algorithm."""
        return ThreeTermSplit.name

    def split_one(self, x: np.ndarray) -> SplitTriple:
        """Three-term split of a single operand."""
        return ThreeTermSplit().split3(np.asarray(x, dtype=np.float32))

    def split_operands(self, a: np.ndarray, b: np.ndarray) -> tuple[SplitTriple, SplitTriple]:
        return self.split_one(a), self.split_one(b)

    def term_parts(self) -> tuple[tuple[str, str], ...]:
        """Name form of :meth:`product_terms` (same nine-pair order)."""
        return (
            ("lo", "lo"),
            ("lo", "mid"),
            ("mid", "lo"),
            ("mid", "mid"),
            ("lo", "hi"),
            ("hi", "lo"),
            ("mid", "hi"),
            ("hi", "mid"),
            ("hi", "hi"),
        )

    def product_terms(
        self, pa: SplitTriple, pb: SplitTriple
    ) -> Sequence[tuple[np.ndarray, np.ndarray]]:
        """All nine pairwise products, smallest magnitudes first.

        Accumulating low-order terms first keeps them from being absorbed
        by a large running sum — the same ordering argument as
        Algorithm 1's four terms.
        """
        a_hi, a_mid, a_lo = pa.terms()
        b_hi, b_mid, b_lo = pb.terms()
        return [
            (a_lo, b_lo),
            (a_lo, b_mid),
            (a_mid, b_lo),
            (a_mid, b_mid),
            (a_lo, b_hi),
            (a_hi, b_lo),
            (a_mid, b_hi),
            (a_hi, b_mid),
            (a_hi, b_hi),
        ]


EGEMM3 = ThreeTermScheme()
