"""Large-matrix emulated GEMM: Algorithm 1 driven over k-chunks.

The tensorized kernel iterates over the k dimension in primitive-sized
steps, each step accumulating four partial products into the fp32
accumulator (§4).  Numerically, what matters is the *rounding cadence*:
one fp32 rounding per partial product per k-chunk.  This driver reproduces
exactly that cadence while staying fully vectorized — each chunk's partial
product is one NumPy matmul over the whole output matrix, so the only
Python-level loop is the short k-chunk loop.

``EmulatedGemm`` is the functional core the public API, the kernels of
:mod:`repro.kernels`, and the applications of :mod:`repro.apps` all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tensorcore.mma import InternalPrecision, MmaCounter
from .schemes import EGEMM, EmulationScheme

__all__ = ["GemmStats", "EmulatedGemm", "emulated_gemm", "reference_single", "reference_exact"]


@dataclass
class GemmStats:
    """Accounting for one emulated GEMM execution."""

    m: int = 0
    n: int = 0
    k: int = 0
    scheme: str = ""
    k_chunks: int = 0
    partial_products: int = 0
    #: nominal HMMA-primitive invocations (16x16x16 granularity)
    mma_calls: int = 0

    @property
    def flops(self) -> int:
        """Useful FLOPs of the emulated GEMM (2*m*n*k, Eq. 9 numerator)."""
        return 2 * self.m * self.n * self.k

    @property
    def emulation_flops(self) -> int:
        """FLOPs actually issued to the core (overhead x useful FLOPs)."""
        return self.flops * max(self.partial_products // max(self.k_chunks, 1), 1)


@dataclass
class EmulatedGemm:
    """Configurable extended-precision GEMM through the simulated core.

    Parameters
    ----------
    scheme:
        Emulation scheme (default: the paper's EGEMM-TC round-split).
    tk:
        k-chunk length — the cadence at which partial sums are rounded
        into the fp32 accumulator.  16 matches the WMMA primitive; larger
        values trade rounding-cadence fidelity for speed and are used by
        the large benchmark sweeps (documented in EXPERIMENTS.md).
    precision:
        Internal model of the simulated core; ``TENSOR_CORE`` is the
        hardware, the probing models exist for profiling experiments.
    """

    scheme: EmulationScheme = field(default_factory=lambda: EGEMM)
    tk: int = 16
    precision: InternalPrecision = InternalPrecision.TENSOR_CORE
    counter: MmaCounter = field(default_factory=MmaCounter)

    def __post_init__(self) -> None:
        if self.tk <= 0:
            raise ValueError("tk must be positive")

    def __call__(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None
    ) -> np.ndarray:
        d, _ = self.run(a, b, c)
        return d

    def batched(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None
    ) -> np.ndarray:
        """Batched emulated GEMM over leading batch dimensions.

        ``a`` has shape (..., m, k) and ``b`` (..., k, n) with
        broadcast-compatible batch prefixes (mirroring
        ``cublasGemmStridedBatchedEx``); each batch element runs the full
        emulation.  The k-chunked split work is shared per element.
        """
        a32 = np.asarray(a, dtype=np.float32)
        b32 = np.asarray(b, dtype=np.float32)
        if a32.ndim < 2 or b32.ndim < 2:
            raise ValueError("batched operands need at least 2 dimensions")
        batch = np.broadcast_shapes(a32.shape[:-2], b32.shape[:-2])
        m, k = a32.shape[-2:]
        kb, n = b32.shape[-2:]
        if k != kb:
            raise ValueError(f"k-dimension mismatch: {a32.shape} x {b32.shape}")
        a_b = np.broadcast_to(a32, (*batch, m, k)).reshape(-1, m, k)
        b_b = np.broadcast_to(b32, (*batch, kb, n)).reshape(-1, kb, n)
        if c is not None:
            c32 = np.asarray(c, dtype=np.float32)
            c_b = np.broadcast_to(c32, (*batch, m, n)).reshape(-1, m, n)
        out = np.empty((a_b.shape[0], m, n), dtype=np.float32)
        for i in range(a_b.shape[0]):
            out[i] = self(a_b[i], b_b[i], c_b[i] if c is not None else None)
        return out.reshape(*batch, m, n)

    def run(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None
    ) -> tuple[np.ndarray, GemmStats]:
        """Compute ``D = A @ B + C`` and return (D, stats)."""
        a32 = np.asarray(a, dtype=np.float32)
        b32 = np.asarray(b, dtype=np.float32)
        if a32.ndim != 2 or b32.ndim != 2:
            raise ValueError("EmulatedGemm expects 2-D matrices")
        m, k = a32.shape
        kb, n = b32.shape
        if k != kb:
            raise ValueError(f"k-dimension mismatch: {a32.shape} x {b32.shape}")
        if c is None:
            d = np.zeros((m, n), dtype=np.float32)
        else:
            c = np.asarray(c, dtype=np.float32)
            if c.shape != (m, n):
                raise ValueError(f"C shape {c.shape} != {(m, n)}")
            d = c.copy()

        # Data split runs once over each operand (O(N^2), §3.2) — on CUDA
        # cores in the real system, vectorized bit-twiddling here.
        pa, pb = self.scheme.split_operands(a32, b32)
        terms = self.scheme.product_terms(pa, pb)

        stats = GemmStats(m=m, n=n, k=k, scheme=self.scheme.name)
        if self.precision is InternalPrecision.TENSOR_CORE:
            d = self._run_tensor_core(d, terms, k, stats)
        else:
            d = self._run_generic(d, terms, k, stats)

        # Nominal primitive count at WMMA granularity, for overhead reports.
        tiles = -(-m // 16) * -(-n // 16) * -(-k // 16)
        stats.mma_calls = tiles * self.scheme.compute_overhead
        self.counter.calls += stats.mma_calls
        self.counter.flops += stats.flops * self.scheme.compute_overhead
        return d, stats

    def _run_tensor_core(self, d, terms, k, stats) -> np.ndarray:
        """Hardware model: exact chunk products, one fp32 rounding each.

        The float64 matmul of a (m, tk) x (tk, n) chunk realizes the wide
        internal accumulator of the primitive; adding it to the float64
        promotion of the running fp32 accumulator and rounding once gives
        the per-chunk-per-term rounding cadence of the tensorized kernel.
        """
        for k0 in range(0, k, self.tk):
            k1 = min(k0 + self.tk, k)
            stats.k_chunks += 1
            for a_part, b_part in terms:
                wide = a_part[:, k0:k1].astype(np.float64) @ b_part[k0:k1, :].astype(np.float64)
                d = (d.astype(np.float64) + wide).astype(np.float32)
                stats.partial_products += 1
        return d

    def _run_generic(self, d, terms, k, stats) -> np.ndarray:
        """Probing models: route every chunk through the mma primitive."""
        from ..tensorcore.mma import mma

        for k0 in range(0, k, self.tk):
            k1 = min(k0 + self.tk, k)
            stats.k_chunks += 1
            for a_part, b_part in terms:
                d = mma(a_part[:, k0:k1], b_part[k0:k1, :], d, precision=self.precision)
                stats.partial_products += 1
        return d


def emulated_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    scheme: EmulationScheme = EGEMM,
    tk: int = 16,
) -> np.ndarray:
    """One-shot functional emulated GEMM (see :class:`EmulatedGemm`)."""
    return EmulatedGemm(scheme=scheme, tk=tk)(a, b, c)


def reference_single(a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
    """Single-precision reference — the paper's ``V_single`` (Eq. 10).

    Computed as a float32 matmul, matching ``cublasSgemm``'s working
    precision (accumulation order differs between BLAS implementations;
    both are "the" single-precision result for Eq. 10 purposes).
    """
    d = np.asarray(a, dtype=np.float32) @ np.asarray(b, dtype=np.float32)
    if c is not None:
        d = d + np.asarray(c, dtype=np.float32)
    return d.astype(np.float32)


def reference_exact(a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
    """Float64 ground truth, for error decomposition in tests."""
    d = np.asarray(a, dtype=np.float64) @ np.asarray(b, dtype=np.float64)
    if c is not None:
        d = d + np.asarray(c, dtype=np.float64)
    return d
