"""Large-matrix emulated GEMM: Algorithm 1 driven over k-chunks.

The tensorized kernel iterates over the k dimension in primitive-sized
steps, each step accumulating four partial products into the fp32
accumulator (§4).  Numerically, what matters is the *rounding cadence*:
one fp32 rounding per partial product per k-chunk.  This driver reproduces
exactly that cadence while staying fully vectorized — each chunk's partial
product is one NumPy matmul over the whole output matrix, so the only
Python-level loop is the short k-chunk loop.

Two hot-path optimizations ride on top of that cadence, both bit-neutral:

* **split-plan reuse** — the operands' splits (and their exact float64
  promotions) are computed once per ``run`` and, with a
  :class:`~repro.perf.SplitCache` attached, once per *operand lifetime*,
  mirroring the paper's "split once, reuse across the k-loop" design;
* **chunk batching** — when the per-chunk output is small (tall-skinny
  GEMMs, GEMVs), the independent chunk products of one term are computed
  by a single stacked ``(chunks, m, tk) @ (chunks, tk, n)`` matmul and
  the rounding cadence is then replayed over the precomputed partials.
  ``batched`` does the same across batch elements.

``EmulatedGemm`` is the functional core the public API, the kernels of
:mod:`repro.kernels`, and the applications of :mod:`repro.apps` all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.hooks import fault_hook_override
from ..obs.metrics import get_registry
from ..obs.tracing import get_tracer
from ..perf.scratch import ScratchPool, default_pool
from ..perf.split_cache import SplitCache, SplitPlan
from ..tensorcore.mma import InternalPrecision, MmaCounter
from .schemes import EGEMM, EmulationScheme

__all__ = ["GemmStats", "EmulatedGemm", "emulated_gemm", "reference_single", "reference_exact"]

#: float64 scratch budget (bytes) per product term for chunk batching —
#: large outputs stream chunk-by-chunk, small outputs batch every chunk
_WIDE_SCRATCH_BYTES = 8 * 1024 * 1024

#: fault-injection hook (``repro.resilience.faults``): when set, called as
#: ``FAULT_HOOK("accumulator", d)`` after every chunk-term rounding with
#: the running fp32 accumulator; returns the (possibly corrupted) array
#: to continue with.  ``None`` in normal operation.  A context-local
#: override (``repro.obs.hooks``) takes precedence, so concurrent
#: serving requests can instrument independently.
FAULT_HOOK = None


@dataclass
class GemmStats:
    """Accounting for one emulated GEMM execution (or batch thereof)."""

    m: int = 0
    n: int = 0
    k: int = 0
    scheme: str = ""
    #: batch elements covered by this record (1 for a plain ``run``)
    batch: int = 1
    #: k-chunk visits, summed over batch elements
    k_chunks: int = 0
    partial_products: int = 0
    #: nominal HMMA-primitive invocations (16x16x16 granularity)
    mma_calls: int = 0

    @property
    def flops(self) -> int:
        """Useful FLOPs of the emulated GEMM (2*m*n*k per batch element,
        Eq. 9 numerator)."""
        return 2 * self.batch * self.m * self.n * self.k

    @property
    def emulation_flops(self) -> int:
        """FLOPs actually issued to the core (overhead x useful FLOPs)."""
        return self.flops * max(self.partial_products // max(self.k_chunks, 1), 1)

    def as_dict(self) -> dict:
        """The record as a plain dict (span attributes, JSON reports)."""
        return {
            "m": self.m,
            "n": self.n,
            "k": self.k,
            "scheme": self.scheme,
            "batch": self.batch,
            "k_chunks": self.k_chunks,
            "partial_products": self.partial_products,
            "mma_calls": self.mma_calls,
            "flops": self.flops,
            "emulation_flops": self.emulation_flops,
        }


def _record_run(stats: GemmStats) -> None:
    """Fold one run's accounting into the process-wide metrics registry."""
    registry = get_registry()
    if not registry.enabled:
        return
    registry.inc("emulation.gemm.runs")
    registry.inc("emulation.gemm.flops", stats.flops)
    registry.inc("emulation.gemm.mma_calls", stats.mma_calls)
    registry.inc("emulation.gemm.partial_products", stats.partial_products)
    registry.inc("emulation.gemm.k_chunks", stats.k_chunks)


@dataclass
class EmulatedGemm:
    """Configurable extended-precision GEMM through the simulated core.

    Parameters
    ----------
    scheme:
        Emulation scheme (default: the paper's EGEMM-TC round-split).
    tk:
        k-chunk length — the cadence at which partial sums are rounded
        into the fp32 accumulator.  16 matches the WMMA primitive; larger
        values trade rounding-cadence fidelity for speed and are used by
        the large benchmark sweeps (documented in EXPERIMENTS.md).
    precision:
        Internal model of the simulated core; ``TENSOR_CORE`` is the
        hardware, the probing models exist for profiling experiments.
    split_cache:
        Optional :class:`~repro.perf.SplitCache`.  When set, operand
        split plans are looked up by identity/content so a stationary
        operand across an iterative workload is split exactly once.
        Results are bit-identical with or without the cache.
    """

    scheme: EmulationScheme = field(default_factory=lambda: EGEMM)
    tk: int = 16
    precision: InternalPrecision = InternalPrecision.TENSOR_CORE
    counter: MmaCounter = field(default_factory=MmaCounter)
    split_cache: SplitCache | None = None
    #: scratch buffers for the cadence loop's intermediates; ``None``
    #: uses the process-wide shared pool (buffers are per-thread, so
    #: sharing is safe).  Results are bit-identical either way.
    scratch: ScratchPool | None = None

    def _pool(self) -> ScratchPool:
        return self.scratch if self.scratch is not None else default_pool()

    def __post_init__(self) -> None:
        if self.tk <= 0:
            raise ValueError("tk must be positive")

    def __call__(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None
    ) -> np.ndarray:
        d, _ = self.run(a, b, c)
        return d

    def _plan(self, x32: np.ndarray) -> SplitPlan:
        """Split plan for one operand, served from the cache when attached."""
        if self.split_cache is not None:
            return self.split_cache.get(x32, self.scheme.split_id, self.scheme.split_one)
        return SplitPlan(self.scheme.split_one(x32))

    # --- batched ----------------------------------------------------------
    def batched(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None
    ) -> np.ndarray:
        """Batched emulated GEMM over leading batch dimensions.

        ``a`` has shape (..., m, k) and ``b`` (..., k, n) with
        broadcast-compatible batch prefixes (mirroring
        ``cublasGemmStridedBatchedEx``); each batch element runs the full
        emulation.  See :meth:`run_batched` for the stats-returning form.
        """
        d, _ = self.run_batched(a, b, c)
        return d

    def run_batched(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None
    ) -> tuple[np.ndarray, GemmStats]:
        """Compute the batched GEMM and return (D, aggregated stats).

        The whole stacked operand is split once and every k-chunk partial
        product runs as a single stacked ``(B, m, tk) @ (B, tk, n)``
        float64 matmul — bit-identical to looping :meth:`run` over the
        batch elements (the per-chunk-per-term rounding cadence is
        unchanged; only the Python-level loop over elements is gone).
        Stats are aggregated across elements with ``mma_calls`` counted
        once per element.
        """
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "emulation.gemm.run_batched", category="emulation",
                scheme=self.scheme.name,
            ) as span:
                d, stats = self._run_batched_impl(a, b, c)
                span.set(**stats.as_dict())
        else:
            d, stats = self._run_batched_impl(a, b, c)
        _record_run(stats)
        return d, stats

    def _run_batched_impl(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None
    ) -> tuple[np.ndarray, GemmStats]:
        a32 = np.asarray(a, dtype=np.float32)
        b32 = np.asarray(b, dtype=np.float32)
        if a32.ndim < 2 or b32.ndim < 2:
            raise ValueError("batched operands need at least 2 dimensions")
        batch = np.broadcast_shapes(a32.shape[:-2], b32.shape[:-2])
        m, k = a32.shape[-2:]
        kb, n = b32.shape[-2:]
        if k != kb:
            raise ValueError(f"k-dimension mismatch: {a32.shape} x {b32.shape}")
        out_shape = (*batch, m, n)
        if c is None:
            d = np.zeros(out_shape, dtype=np.float32)
        else:
            c32 = np.asarray(c, dtype=np.float32)
            d = np.array(np.broadcast_to(c32, out_shape), dtype=np.float32)

        nbatch = 1
        for dim in batch:
            nbatch *= dim
        stats = GemmStats(m=m, n=n, k=k, scheme=self.scheme.name, batch=nbatch)
        if nbatch == 0 or min(m, n, k) == 0:
            # Degenerate GEMM: nothing to split or accumulate.  D is the
            # correctly-shaped zero (or broadcast C) result and the stats
            # stay empty — downstream never sees an empty-operand split.
            return d, stats

        if self.precision is not InternalPrecision.TENSOR_CORE:
            # Probing models route through the scalar mma primitive; keep
            # the per-element loop (profiling runs are deliberately small).
            flat_a = np.broadcast_to(a32, (*batch, m, k)).reshape(-1, m, k)
            flat_b = np.broadcast_to(b32, (*batch, k, n)).reshape(-1, kb, n)
            flat_d = d.reshape(-1, m, n)
            for i in range(nbatch):
                # _run_impl, not run: the batched wrapper already records
                # the aggregate, so per-element runs must not double-count.
                flat_d[i], elem = self._run_impl(flat_a[i], flat_b[i], flat_d[i])
                stats.k_chunks += elem.k_chunks
                stats.partial_products += elem.partial_products
                stats.mma_calls += elem.mma_calls
            return d, stats

        # Split the (possibly stacked) operands once — the split is
        # elementwise, so splitting the stack equals stacking the splits.
        plan_a = self._plan(a32)
        plan_b = self._plan(b32)
        unbroadcast = a32.shape == (*batch, m, k) and b32.shape == (*batch, k, n)
        d = self._batched_cadence(
            plan_a, plan_b, batch, m, k, n, d, stats, unbroadcast
        )

        tiles = -(-m // 16) * -(-n // 16) * -(-k // 16)
        stats.mma_calls = tiles * self.scheme.compute_overhead * nbatch
        self.counter.add(stats.mma_calls, stats.flops * self.scheme.compute_overhead)
        return d, stats

    def run_batched_elements(
        self,
        a_elements: list,
        b_elements: list,
        c_elements: list | None = None,
    ) -> tuple[np.ndarray, GemmStats]:
        """Batched GEMM over per-element operand lists (one batcher bucket).

        The serving batcher's execution entry: all elements must share
        one ``(m, k, n)`` shape.  With a :class:`SplitCache` attached the
        elements share split entries **individually**
        (:meth:`~repro.perf.SplitCache.get_stacked`), so a stacked
        launch reuses the splits of operands seen in earlier batches or
        single runs.  Bit-identical to stacking the elements and calling
        :meth:`run_batched`, and therefore to per-element :meth:`run`.
        """
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "emulation.gemm.run_batched", category="emulation",
                scheme=self.scheme.name,
            ) as span:
                d, stats = self._run_batched_elements_impl(
                    a_elements, b_elements, c_elements
                )
                span.set(**stats.as_dict())
        else:
            d, stats = self._run_batched_elements_impl(
                a_elements, b_elements, c_elements
            )
        _record_run(stats)
        return d, stats

    def _run_batched_elements_impl(
        self,
        a_elements: list,
        b_elements: list,
        c_elements: list | None,
    ) -> tuple[np.ndarray, GemmStats]:
        nbatch = len(a_elements)
        if nbatch == 0 or len(b_elements) != nbatch:
            raise ValueError("element lists must be non-empty and equal-length")
        a32s = [np.asarray(x, dtype=np.float32) for x in a_elements]
        b32s = [np.asarray(x, dtype=np.float32) for x in b_elements]
        if any(x.ndim != 2 for x in a32s) or any(x.ndim != 2 for x in b32s):
            raise ValueError("elements must be 2-D matrices")
        m, k = a32s[0].shape
        kb, n = b32s[0].shape
        if k != kb:
            raise ValueError(f"k-dimension mismatch: {a32s[0].shape} x {b32s[0].shape}")
        if any(x.shape != (m, k) for x in a32s) or any(x.shape != (k, n) for x in b32s):
            raise ValueError("all elements must share one (m, k, n) shape")

        if self.precision is not InternalPrecision.TENSOR_CORE:
            c = None if c_elements is None else np.stack(c_elements)
            return self._run_batched_impl(np.stack(a32s), np.stack(b32s), c)

        if c_elements is None:
            d = np.zeros((nbatch, m, n), dtype=np.float32)
        else:
            if len(c_elements) != nbatch:
                raise ValueError("c_elements must match the batch length")
            d = np.stack([np.asarray(c, dtype=np.float32) for c in c_elements])
            if d.shape != (nbatch, m, n):
                raise ValueError(f"C shape {d.shape[1:]} != {(m, n)}")
        stats = GemmStats(m=m, n=n, k=k, scheme=self.scheme.name, batch=nbatch)
        if min(m, n, k) == 0:
            return d, stats

        if self.split_cache is not None:
            plan_a = self.split_cache.get_stacked(
                a32s, self.scheme.split_id, self.scheme.split_one
            )
            plan_b = self.split_cache.get_stacked(
                b32s, self.scheme.split_id, self.scheme.split_one
            )
        else:
            plan_a = SplitPlan(self.scheme.split_one(np.stack(a32s)))
            plan_b = SplitPlan(self.scheme.split_one(np.stack(b32s)))
        d = self._batched_cadence(
            plan_a, plan_b, (nbatch,), m, k, n, d, stats, True
        )

        tiles = -(-m // 16) * -(-n // 16) * -(-k // 16)
        stats.mma_calls = tiles * self.scheme.compute_overhead * nbatch
        self.counter.add(stats.mma_calls, stats.flops * self.scheme.compute_overhead)
        return d, stats

    def _batched_cadence(
        self,
        plan_a: SplitPlan,
        plan_b: SplitPlan,
        batch: tuple,
        m: int,
        k: int,
        n: int,
        d: np.ndarray,
        stats: GemmStats,
        unbroadcast: bool,
    ) -> np.ndarray:
        """The stacked per-chunk-per-term rounding cadence (shared core)."""
        nbatch = stats.batch
        terms64 = [
            (
                np.broadcast_to(plan_a.wide(pa), (*batch, m, k)),
                np.broadcast_to(plan_b.wide(pb), (*batch, k, n)),
            )
            for pa, pb in self.scheme.term_parts()
        ]
        # Pooled scratch keeps the cadence loop allocation-free, and each
        # rounding step is ONE fused ufunc pass: ``np.add(wide, d, out=d)``
        # promotes D to fp64 inside the add loop and rounds the fp64 sum
        # once on the fp32 store — bit-identical to
        # ``(d.astype(f64) + wide).astype(f32)``.
        pool = self._pool()
        hook = fault_hook_override(FAULT_HOOK)
        tk = self.tk
        full, rem = divmod(k, tk)
        nterms = len(terms64)
        # Fused stacked-chunk path: every (term, chunk, element) partial
        # product is computed by ONE batched matmul per term, then the
        # rounding cadence is replayed over the precomputed stack in the
        # exact chunk-major/term-inner order of the per-chunk loop below.
        # Requires unbroadcast operands (so the chunk reshapes are views)
        # and the full product stack inside the scratch budget.
        if (
            full >= 1
            and unbroadcast
            and nterms * nbatch * full * m * n * 8 <= _WIDE_SCRATCH_BYTES
        ):
            wide_all = pool.take("batched.chunk_products", (nterms, *batch, full, m, n))
            for t, (a64, b64) in enumerate(terms64):
                ac = np.swapaxes(
                    a64[..., :, : full * tk].reshape(*batch, m, full, tk), -3, -2
                )
                bc = b64[..., : full * tk, :].reshape(*batch, full, tk, n)
                np.matmul(ac, bc, out=wide_all[t])
            for ci in range(full):
                stats.k_chunks += nbatch
                for t in range(nterms):
                    np.add(wide_all[t][..., ci, :, :], d, out=d)
                    if hook is not None:
                        d = hook("accumulator", d)
                    stats.partial_products += nbatch
            if rem:
                k0 = full * tk
                wide = pool.take("batched.acc", (*batch, m, n))
                stats.k_chunks += nbatch
                for a64, b64 in terms64:
                    np.matmul(a64[..., :, k0:], b64[..., k0:, :], out=wide)
                    np.add(wide, d, out=d)
                    if hook is not None:
                        d = hook("accumulator", d)
                    stats.partial_products += nbatch
        else:
            wide = pool.take("batched.acc", (*batch, m, n))
            for k0 in range(0, k, tk):
                k1 = min(k0 + tk, k)
                stats.k_chunks += nbatch
                for a64, b64 in terms64:
                    np.matmul(a64[..., :, k0:k1], b64[..., k0:k1, :], out=wide)
                    np.add(wide, d, out=d)
                    if hook is not None:
                        d = hook("accumulator", d)
                    stats.partial_products += nbatch

        return d

    # --- single -----------------------------------------------------------
    def run(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None
    ) -> tuple[np.ndarray, GemmStats]:
        """Compute ``D = A @ B + C`` and return (D, stats)."""
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "emulation.gemm.run", category="emulation", scheme=self.scheme.name,
            ) as span:
                d, stats = self._run_impl(a, b, c)
                span.set(**stats.as_dict())
        else:
            d, stats = self._run_impl(a, b, c)
        _record_run(stats)
        return d, stats

    def _run_impl(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None
    ) -> tuple[np.ndarray, GemmStats]:
        a32 = np.asarray(a, dtype=np.float32)
        b32 = np.asarray(b, dtype=np.float32)
        if a32.ndim != 2 or b32.ndim != 2:
            raise ValueError("EmulatedGemm expects 2-D matrices")
        m, k = a32.shape
        kb, n = b32.shape
        if k != kb:
            raise ValueError(f"k-dimension mismatch: {a32.shape} x {b32.shape}")
        if c is None:
            d = np.zeros((m, n), dtype=np.float32)
        else:
            c = np.asarray(c, dtype=np.float32)
            if c.shape != (m, n):
                raise ValueError(f"C shape {c.shape} != {(m, n)}")
            d = c.copy()

        if min(m, n, k) == 0:
            # Degenerate GEMM (k=0 or an empty output): return the
            # correctly-shaped zero/C result with empty stats instead of
            # pushing empty operands through the split machinery.
            return d, GemmStats(m=m, n=n, k=k, scheme=self.scheme.name)

        # Data split runs once over each operand (O(N^2), §3.2) — on CUDA
        # cores in the real system, vectorized bit-twiddling here.  The
        # plan also carries the exact float64 promotion of each part so
        # the k-chunk loop works on views instead of re-converting.
        plan_a = self._plan(a32)
        plan_b = self._plan(b32)

        stats = GemmStats(m=m, n=n, k=k, scheme=self.scheme.name)
        if self.precision is InternalPrecision.TENSOR_CORE:
            terms64 = [
                (plan_a.wide(pa), plan_b.wide(pb)) for pa, pb in self.scheme.term_parts()
            ]
            d = self._run_tensor_core(d, terms64, k, stats)
        else:
            terms = self.scheme.product_terms(plan_a.pair, plan_b.pair)
            d = self._run_generic(d, terms, k, stats)

        # Nominal primitive count at WMMA granularity, for overhead reports.
        tiles = -(-m // 16) * -(-n // 16) * -(-k // 16)
        stats.mma_calls = tiles * self.scheme.compute_overhead
        self.counter.add(stats.mma_calls, stats.flops * self.scheme.compute_overhead)
        return d, stats

    def _run_tensor_core(self, d, terms64, k, stats) -> np.ndarray:
        """Hardware model: exact chunk products, one fp32 rounding each.

        The float64 matmul of a (m, tk) x (tk, n) chunk realizes the wide
        internal accumulator of the primitive; adding it to the float64
        promotion of the running fp32 accumulator and rounding once gives
        the per-chunk-per-term rounding cadence of the tensorized kernel.

        The chunk products of one term are independent of the running
        accumulator, so when the per-chunk output fits the scratch budget
        they are computed ahead by one stacked matmul per term and the
        rounding cadence is replayed over the stack — fewer Python-level
        BLAS calls, identical bits.
        """
        tk = self.tk
        m, n = d.shape
        pos = 0
        full = k // tk
        hook = fault_hook_override(FAULT_HOOK)
        pool = self._pool()
        nterms = len(terms64)
        group = int(_WIDE_SCRATCH_BYTES // max(nterms * m * n * 8, 1))
        if full >= 2 and group >= 2:
            stacked = [
                (
                    a64[:, : full * tk].reshape(m, full, tk).transpose(1, 0, 2),
                    b64[: full * tk, :].reshape(full, tk, n),
                )
                for a64, b64 in terms64
            ]
            for c0 in range(0, full, group):
                c1 = min(c0 + group, full)
                wides = pool.take("run.chunk_products", (nterms, c1 - c0, m, n))
                for t, (ar, br) in enumerate(stacked):
                    np.matmul(ar[c0:c1], br[c0:c1], out=wides[t])
                for i in range(c1 - c0):
                    stats.k_chunks += 1
                    for t in range(nterms):
                        np.add(wides[t, i], d, out=d)
                        if hook is not None:
                            d = hook("accumulator", d)
                        stats.partial_products += 1
            pos = full * tk
        if pos < k:
            wide = pool.take("run.acc", (m, n))
            for k0 in range(pos, k, tk):
                k1 = min(k0 + tk, k)
                stats.k_chunks += 1
                for a64, b64 in terms64:
                    np.matmul(a64[:, k0:k1], b64[k0:k1, :], out=wide)
                    np.add(wide, d, out=d)
                    if hook is not None:
                        d = hook("accumulator", d)
                    stats.partial_products += 1
        return d

    def _run_generic(self, d, terms, k, stats) -> np.ndarray:
        """Probing models: route every chunk through the mma primitive."""
        from ..tensorcore.mma import mma

        for k0 in range(0, k, self.tk):
            k1 = min(k0 + self.tk, k)
            stats.k_chunks += 1
            for a_part, b_part in terms:
                d = mma(a_part[:, k0:k1], b_part[k0:k1, :], d, precision=self.precision)
                stats.partial_products += 1
        return d


def emulated_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    scheme: EmulationScheme = EGEMM,
    tk: int = 16,
) -> np.ndarray:
    """One-shot functional emulated GEMM (see :class:`EmulatedGemm`)."""
    return EmulatedGemm(scheme=scheme, tk=tk)(a, b, c)


def reference_single(a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
    """Single-precision reference — the paper's ``V_single`` (Eq. 10).

    Computed as a float32 matmul, matching ``cublasSgemm``'s working
    precision (accumulation order differs between BLAS implementations;
    both are "the" single-precision result for Eq. 10 purposes).
    """
    d = np.asarray(a, dtype=np.float32) @ np.asarray(b, dtype=np.float32)
    if c is not None:
        d = d + np.asarray(c, dtype=np.float32)
    return d.astype(np.float32)


def reference_exact(a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
    """Float64 ground truth, for error decomposition in tests."""
    d = np.asarray(a, dtype=np.float64) @ np.asarray(b, dtype=np.float64)
    if c is not None:
        d = d + np.asarray(c, dtype=np.float64)
    return d
