"""Emulation schemes: how a GEMM is decomposed into specialized-core calls.

A scheme bundles (a) the data-split algorithm applied to the fp32 inputs,
(b) the ordered sequence of partial products issued to the Tensor Core
primitive (the *data combination* of Figure 2b happens implicitly in the
core's single-precision accumulator), and (c) the bookkeeping the paper
reports: compute overhead (Tensor Core calls per emulated GEMM) and memory
overhead.

Schemes provided:

* ``EGEMM``    — the paper's lightweight 4-instruction round-split emulation
  (Algorithm 1; 21 effective mantissa bits),
* ``MARKIDIS`` — the same 4-call structure with truncate-split
  (20 bits; the baseline of [20]),
* ``HALF``     — no split: inputs rounded to fp16, one call per tile
  (the ``cuBLAS-TC-Half`` baseline of Table 5),
* ``DEKKER``   — the 16-instruction half-only emulation (handled by
  :mod:`repro.splits.dekker`; listed here for overhead accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..splits.base import Split, SplitPair
from ..splits.eft import DEKKER_EMULATED_FMA_OPS
from ..splits.round import RoundSplit
from ..splits.truncate import TruncateSplit

__all__ = ["EmulationScheme", "EGEMM", "MARKIDIS", "HALF", "DEKKER", "SCHEMES", "get_scheme"]


@dataclass(frozen=True)
class EmulationScheme:
    """One strategy for emulating extended-precision GEMM on the core."""

    name: str
    split: Split | None
    #: Tensor Core primitive calls per emulated tile ("4x" vs "16x" in §3.2)
    compute_overhead: int
    #: fp16 operand matrices read per input matrix (2 for split schemes);
    #: with FRAG caching the paper reduces realized traffic to 2x (§3.2)
    memory_overhead: int
    effective_mantissa_bits: int
    #: absolute representation error of an fp16-encoded part that lands on
    #: the subnormal grid (spacing 2^-24): half the spacing for
    #: round-to-nearest encodings, the full spacing for truncating ones.
    #: Feeds :func:`repro.fp.error.split_subnormal_floor` — the
    #: operand-dependent charge the accuracy verifier's property test
    #: showed the pure-relative ``u_in`` model silently omits.
    subnormal_eta: float = 2.0**-25
    description: str = ""

    @property
    def split_id(self) -> str:
        """Cache namespace of this scheme's split algorithm.

        Keyed on the *split*, not the scheme, so two schemes sharing a
        split (EGEMM and DEKKER both round-split) share cached plans.
        """
        return self.split.name if self.split is not None else "half-cast"

    def split_one(self, x: np.ndarray) -> SplitPair:
        """Apply the data split to a single operand (fp32 -> fp16 pair)."""
        if self.split is None:
            x16 = np.asarray(x, dtype=np.float32).astype(np.float16)
            return SplitPair(hi=x16, lo=np.zeros_like(x16))
        return self.split.split(x)

    def split_operands(self, a: np.ndarray, b: np.ndarray) -> tuple[SplitPair, SplitPair]:
        """Apply the data split to both operands (fp32 -> fp16 pairs)."""
        return self.split_one(a), self.split_one(b)

    def term_parts(self) -> tuple[tuple[str, str], ...]:
        """Ordered (A-part, B-part) *names* of the product terms.

        The name form of :meth:`product_terms`, letting callers pick the
        parts from a cached split plan (fp16 or pre-promoted float64)
        without re-pairing arrays.  Order matches Algorithm 1.
        """
        if self.split is None:
            return (("hi", "hi"),)
        return (("lo", "lo"), ("lo", "hi"), ("hi", "lo"), ("hi", "hi"))

    def product_terms(
        self, pa: SplitPair, pb: SplitPair
    ) -> Sequence[tuple[np.ndarray, np.ndarray]]:
        """Ordered (A-part, B-part) pairs issued to the core.

        Algorithm 1 accumulates low-order terms first (lo*lo, lo*hi,
        hi*lo, hi*hi) so small contributions are not absorbed by a large
        running sum before the dominant term arrives.
        """
        if self.split is None:
            return [(pa.hi, pb.hi)]
        return [(pa.lo, pb.lo), (pa.lo, pb.hi), (pa.hi, pb.lo), (pa.hi, pb.hi)]


EGEMM = EmulationScheme(
    name="egemm-tc",
    split=RoundSplit(),
    compute_overhead=4,
    memory_overhead=2,
    effective_mantissa_bits=21,
    description="EGEMM-TC lightweight emulation: round-split + 4 Tensor Core calls (Algorithm 1)",
)

MARKIDIS = EmulationScheme(
    name="markidis",
    split=TruncateSplit(),
    compute_overhead=4,
    memory_overhead=2,
    effective_mantissa_bits=20,
    subnormal_eta=2.0**-24,
    description="Markidis et al.: truncate-split + 4 Tensor Core calls (1-bit precision loss)",
)

HALF = EmulationScheme(
    name="half",
    split=None,
    compute_overhead=1,
    memory_overhead=1,
    effective_mantissa_bits=10,
    description="plain half-precision Tensor Core GEMM (cuBLAS-TC-Half baseline)",
)

DEKKER = EmulationScheme(
    name="dekker",
    split=RoundSplit(),
    compute_overhead=DEKKER_EMULATED_FMA_OPS,
    memory_overhead=2,
    effective_mantissa_bits=20,
    description="Dekker 16-instruction half-only emulation (CPU-era baseline)",
)

SCHEMES = {s.name: s for s in (EGEMM, MARKIDIS, HALF, DEKKER)}


def get_scheme(name: str) -> EmulationScheme:
    """Look up a scheme by name, with a helpful error."""
    try:
        return SCHEMES[name]
    except KeyError:
        raise KeyError(f"unknown emulation scheme {name!r}; choose from {sorted(SCHEMES)}") from None
