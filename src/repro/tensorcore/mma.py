"""The simulated Tensor Core compute primitive ``D = A x B + C``.

This is the reproduction's stand-in for the HMMA instruction /
``wmma::mma_sync`` API.  The hardware contract (§2.1): ``A`` and ``B`` are
half-precision matrices, ``C``/``D`` are single-precision, and — the key
fact the paper's profiling uncovers — the *internal* multiply is **not**
performed in half precision: products are formed at full precision and
accumulated at (at least) single precision, so "the only precision loss
comes from the half-precision data type of A and B" (§3.2).

The internal behaviour is configurable through :class:`InternalPrecision`
precisely so the generalized profiling workflow (Figure 2a) has distinct
probing primitives to discriminate between:

* ``HALF``   — products and accumulation rounded to fp16 (the pessimistic
  hypothesis under which Dekker's 16-instruction emulation is needed),
* ``FLOAT``  — operands promoted to fp32, sequential fp32 accumulation
  (the ``d_FLOAT`` reference of Figure 3),
* ``TENSOR_CORE`` — the simulated silicon: exact products, a wide internal
  dot-product accumulator, and a single rounding into the fp32 accumulator
  per primitive invocation,
* ``EXACT``  — float64 throughout; ground-truth for tests.

Products of two fp16 values carry at most 22 significand bits and are
exactly representable in fp32, so ``FLOAT`` and ``TENSOR_CORE`` agree to
well over the 21 mantissa bits the paper reports; ``HALF`` disagrees
catastrophically — which is exactly the discrimination the profiling
workflow performs.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

import numpy as np

from ..obs.hooks import fault_hook_override

__all__ = ["InternalPrecision", "MmaShape", "M16N16K16", "HMMA_1688", "mma", "MmaCounter"]

#: fault-injection hook (``repro.resilience.faults``): when set, called as
#: ``FAULT_HOOK("frag", operand)`` on each fp16 operand entering the
#: primitive and ``FAULT_HOOK("accumulator", out)`` on the result; returns
#: the (possibly corrupted) array to use.  ``None`` in normal operation.
FAULT_HOOK = None


class InternalPrecision(enum.Enum):
    """Internal arithmetic model of the simulated specialized core."""

    HALF = "half"
    FLOAT = "float"
    TENSOR_CORE = "tensor_core"
    EXACT = "exact"


@dataclass(frozen=True)
class MmaShape:
    """An (m, n, k) compute-primitive shape."""

    m: int
    n: int
    k: int

    @property
    def flops(self) -> int:
        """Multiply-add FLOPs of one primitive invocation (2*m*n*k)."""
        return 2 * self.m * self.n * self.k

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"m{self.m}n{self.n}k{self.k}"


#: the WMMA API tile (``wmma::mma_sync`` with 16x16x16 fragments)
M16N16K16 = MmaShape(16, 16, 16)
#: the native Turing SASS instruction shape (HMMA.1688: m16 n8 k8)
HMMA_1688 = MmaShape(16, 8, 8)


@dataclass
class MmaCounter:
    """Counts primitive invocations and FLOPs, for overhead accounting.

    Increments are taken under a lock so a counter shared by concurrent
    threads (e.g. a kernel driven from a threaded sweep) stays exact.
    Process-pool workers do *not* share a counter — a pickled counter
    arrives reset, and workers report their accounting through the
    returned :class:`~repro.emulation.gemm.GemmStats` instead.
    """

    calls: int = 0
    flops: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(self, calls: int, flops: int) -> None:
        """Atomically add a batch of invocations and FLOPs."""
        with self._lock:
            self.calls += calls
            self.flops += flops

    def record(self, shape_m: int, shape_n: int, shape_k: int) -> None:
        self.add(1, 2 * shape_m * shape_n * shape_k)

    def snapshot(self) -> dict[str, int]:
        """Atomic point-in-time reading of both totals.

        Reading ``calls`` and ``flops`` as separate attribute accesses can
        interleave with a concurrent :meth:`add` and pair a pre-update
        call count with a post-update FLOP count; the snapshot takes both
        under the lock (the registry's snapshot/reset protocol).
        """
        with self._lock:
            return {"calls": self.calls, "flops": self.flops}

    def reset(self) -> dict[str, int]:
        """Atomically zero the counter; returns the final totals."""
        with self._lock:
            out = {"calls": self.calls, "flops": self.flops}
            self.calls = 0
            self.flops = 0
            return out

    def __getstate__(self) -> dict:
        # Locks don't pickle, and counts are process-local by design.
        return {"calls": 0, "flops": 0}

    def __setstate__(self, state: dict) -> None:
        self.calls = state["calls"]
        self.flops = state["flops"]
        self._lock = threading.Lock()


def _validate(a: np.ndarray, b: np.ndarray, c: np.ndarray | None, shape: MmaShape | None):
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("mma operands must be 2-D matrices")
    if a.dtype != np.float16 or b.dtype != np.float16:
        raise TypeError("Tensor Core inputs A and B must be float16")
    m, ka = a.shape
    kb, n = b.shape
    if ka != kb:
        raise ValueError(f"k-dimension mismatch: {a.shape} x {b.shape}")
    if shape is not None and (m, n, ka) != (shape.m, shape.n, shape.k):
        raise ValueError(f"operands {(m, n, ka)} do not match primitive shape {shape}")
    if c is None:
        c = np.zeros((m, n), dtype=np.float32)
    else:
        c = np.asarray(c)
        if c.shape != (m, n):
            raise ValueError(f"accumulator shape {c.shape} != {(m, n)}")
        if c.dtype not in (np.dtype(np.float16), np.dtype(np.float32)):
            raise TypeError("accumulator must be float16 or float32")
    return a, b, c


def _mma_half(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Probing primitive: products and running sums rounded to fp16."""
    acc = c.astype(np.float16)
    k = a.shape[1]
    # Sequential fp16 accumulation along k: each outer product slice is a
    # vectorized (m, n) update; only the short k loop is Python-level.
    for j in range(k):
        prod = (a[:, j : j + 1] * b[j : j + 1, :]).astype(np.float16)
        acc = (acc + prod).astype(np.float16)
    return acc.astype(np.float32)


def _mma_float(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Probing primitive: fp32 promotion + sequential fp32 accumulation."""
    acc = c.astype(np.float32).copy()
    a32 = a.astype(np.float32)
    b32 = b.astype(np.float32)
    for j in range(a.shape[1]):
        # fp16*fp16 products are exact in fp32; each accumulation rounds.
        acc = (acc + a32[:, j : j + 1] * b32[j : j + 1, :]).astype(np.float32)
    return acc


def _mma_tensor_core(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Simulated silicon: exact products, wide dot accumulator, one rounding.

    The float64 matmul holds every 22-bit product exactly and sums them
    with <= 2^-53 relative error — below fp32 resolution, i.e. effectively
    an infinitely-precise internal accumulator.  A single rounding to fp32
    happens when the result lands in the accumulator, matching the
    profiling observation that only the fp16 input conversion loses data.
    """
    wide = a.astype(np.float64) @ b.astype(np.float64)
    return (c.astype(np.float64) + wide).astype(np.float32)


def _mma_exact(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Ground truth in float64 (no fp32 rounding at all)."""
    return a.astype(np.float64) @ b.astype(np.float64) + c.astype(np.float64)


_IMPL = {
    InternalPrecision.HALF: _mma_half,
    InternalPrecision.FLOAT: _mma_float,
    InternalPrecision.TENSOR_CORE: _mma_tensor_core,
    InternalPrecision.EXACT: _mma_exact,
}


def mma(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    precision: InternalPrecision = InternalPrecision.TENSOR_CORE,
    shape: MmaShape | None = None,
    counter: MmaCounter | None = None,
) -> np.ndarray:
    """Execute one specialized-core compute primitive ``D = A x B + C``.

    Parameters
    ----------
    a, b:
        float16 input matrices of shape (m, k) and (k, n).
    c:
        Optional accumulator (float16 or float32); zeros when omitted.
    precision:
        Internal arithmetic model (see :class:`InternalPrecision`).
    shape:
        When given, operand shapes must match this primitive shape exactly
        (e.g. :data:`M16N16K16` for the WMMA API).
    counter:
        Optional :class:`MmaCounter` to record the invocation.

    Returns
    -------
    The (m, n) result: float32 for all models except ``EXACT`` (float64).
    """
    a, b, c = _validate(a, b, c, shape)
    if counter is not None:
        counter.record(a.shape[0], b.shape[1], a.shape[1])
    hook = fault_hook_override(FAULT_HOOK)
    if hook is not None:
        # FRAG faults corrupt operand registers before the multiply;
        # accumulator faults corrupt the rounded primitive output.
        a = hook("frag", a)
        b = hook("frag", b)
    out = _IMPL[precision](a, b, c)
    if hook is not None:
        out = hook("accumulator", out)
    return out
