"""Simulated Tensor Core: the mma primitive, FRAG fragments, probing cores,
and the warp-level WMMA-style API."""

from .fragment import Fragment, FragmentOverflowError, FragmentRole, FragmentSpace
from .mma import HMMA_1688, M16N16K16, InternalPrecision, MmaCounter, MmaShape, mma
from .probing import (
    ALL_PROBES,
    EXACT_PROBE,
    FLOAT_PROBE,
    HALF_PROBE,
    ProbeSample,
    ProbingPrimitive,
    probe_sample,
)
from .imma import IMMA_MAX_K, imma
from .layout import collect, distribute, elements_per_thread, ownership
from .tf32 import (
    TF32_MANTISSA_BITS,
    Tf32RoundSplit,
    emulated_gemm_tf32,
    tf32_mma,
    tf32_probes,
    tf32_round_split_arrays,
    to_tf32,
)
from .wmma import WmmaContext, fill_fragment, load_matrix_sync, mma_sync, store_matrix_sync

__all__ = [
    "Fragment",
    "FragmentOverflowError",
    "FragmentRole",
    "FragmentSpace",
    "HMMA_1688",
    "M16N16K16",
    "InternalPrecision",
    "MmaCounter",
    "MmaShape",
    "mma",
    "ALL_PROBES",
    "EXACT_PROBE",
    "FLOAT_PROBE",
    "HALF_PROBE",
    "ProbeSample",
    "ProbingPrimitive",
    "probe_sample",
    "IMMA_MAX_K",
    "imma",
    "collect",
    "distribute",
    "elements_per_thread",
    "ownership",
    "TF32_MANTISSA_BITS",
    "Tf32RoundSplit",
    "emulated_gemm_tf32",
    "tf32_mma",
    "tf32_probes",
    "tf32_round_split_arrays",
    "to_tf32",
    "WmmaContext",
    "fill_fragment",
    "load_matrix_sync",
    "mma_sync",
    "store_matrix_sync",
]
