"""Probing compute primitives for the generalized profiling workflow.

Figure 2a's workflow discriminates between candidate hypotheses about a
specialized core's undocumented internal precision by evaluating *probing
compute primitives* — reference implementations pinned to one specific
intermediate precision each — and comparing them bit-wise against the
hardware output over many random inputs.

Each :class:`ProbingPrimitive` bundles a candidate hypothesis with the
reference implementation that realizes it on the "CPU" (here: NumPy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..fp.bits import hex_bits
from .mma import InternalPrecision, mma

__all__ = ["ProbingPrimitive", "HALF_PROBE", "FLOAT_PROBE", "EXACT_PROBE", "ALL_PROBES", "ProbeSample", "probe_sample"]


@dataclass(frozen=True)
class ProbingPrimitive:
    """One candidate hypothesis for the core's internal precision.

    ``compute(a, b, c)`` evaluates the primitive on the CPU with the
    hypothesized intermediate precision; the profiling workflow compares
    its output bit-wise with the specialized core's output.
    """

    name: str
    hypothesis: str
    compute: Callable[[np.ndarray, np.ndarray, np.ndarray | None], np.ndarray]


def _half_compute(a, b, c=None):
    return mma(a, b, c, precision=InternalPrecision.HALF)


def _float_compute(a, b, c=None):
    return mma(a, b, c, precision=InternalPrecision.FLOAT)


def _exact_compute(a, b, c=None):
    return mma(a, b, c, precision=InternalPrecision.EXACT).astype(np.float32)


HALF_PROBE = ProbingPrimitive(
    name="d_HALF",
    hypothesis="A x B is conducted in half precision (same as the inputs)",
    compute=_half_compute,
)

FLOAT_PROBE = ProbingPrimitive(
    name="d_FLOAT",
    hypothesis="A and B are promoted to single precision; A x B is conducted in single (or wider) precision",
    compute=_float_compute,
)

EXACT_PROBE = ProbingPrimitive(
    name="d_EXACT",
    hypothesis="A x B is conducted with an effectively infinite accumulator",
    compute=_exact_compute,
)

#: the probes Figure 3's profiling code evaluates (plus the exact reference)
ALL_PROBES = (HALF_PROBE, FLOAT_PROBE, EXACT_PROBE)


@dataclass(frozen=True)
class ProbeSample:
    """One scalar comparison, formatted like the Appendix A.3 output::

        half_result: 926.00000000, 0x00806744
        single_result: 934.40637207, 0x029a6944
        Tensor Core : 934.40631104, 0x019a6944
    """

    half_result: float
    single_result: float
    tensor_core_result: float

    def lines(self) -> list[str]:
        return [
            f"half_result: {self.half_result:.8f}, {hex_bits(self.half_result)}",
            f"single_result: {self.single_result:.8f}, {hex_bits(self.single_result)}",
            f"Tensor Core : {self.tensor_core_result:.8f}, {hex_bits(self.tensor_core_result)}",
        ]


def probe_sample(a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None, index: tuple[int, int] = (0, 0)) -> ProbeSample:
    """Evaluate all three primitives on one tile; report one output element."""
    i, j = index
    d_half = HALF_PROBE.compute(a, b, c)
    d_float = FLOAT_PROBE.compute(a, b, c)
    d_tc = mma(a, b, c, precision=InternalPrecision.TENSOR_CORE)
    return ProbeSample(
        half_result=float(d_half[i, j]),
        single_result=float(d_float[i, j]),
        tensor_core_result=float(d_tc[i, j]),
    )
