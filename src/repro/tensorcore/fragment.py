"""FRAG — the Tensor Core register-backed fragment memory space (§2.1, §4).

Before a warp can call the Tensor Core primitive, its 32 threads must
collaboratively stage operand tiles into *fragments*: an opaque memory
space that microbenchmarking (Jia et al. [12, 13]) shows is implemented as
registers shared across the threads of a warp.  Two properties of FRAG
drive the paper's §4 optimizations:

* intra-warp sharing — all 32 threads of a warp can reuse a fragment,
  enabling the intra-warp FRAG caching strategy (Table 2), and
* capacity — the register file (256 KB/SM on T4) is 4x the shared memory
  (64 KB/SM), so caching in FRAG relieves the scarcer resource.

:class:`Fragment` models one operand tile; :class:`FragmentSpace` models a
warp's fragment storage with byte accounting, hit/miss tracking for the
caching study, and a capacity check against the per-warp register budget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..obs.hooks import fault_hook_override

__all__ = ["FragmentRole", "Fragment", "FragmentSpace", "FragmentOverflowError"]

#: fault-injection hook (``repro.resilience.faults``): when set, called as
#: ``FAULT_HOOK("frag", data)`` after a tile is staged into registers;
#: returns the (possibly corrupted) tile.  ``None`` in normal operation.
FAULT_HOOK = None


class FragmentRole(enum.Enum):
    """WMMA fragment kinds, mirroring ``wmma::matrix_a`` etc."""

    MATRIX_A = "matrix_a"
    MATRIX_B = "matrix_b"
    ACCUMULATOR = "accumulator"


class FragmentOverflowError(RuntimeError):
    """Raised when fragment allocations exceed the register budget."""


_ROLE_DTYPE = {
    FragmentRole.MATRIX_A: np.dtype(np.float16),
    FragmentRole.MATRIX_B: np.dtype(np.float16),
    FragmentRole.ACCUMULATOR: np.dtype(np.float32),
}


@dataclass
class Fragment:
    """One register-resident operand tile of a warp.

    ``data`` is owned by the fragment (loads copy into it), mirroring the
    hardware reality that a fragment is a register snapshot, not a view of
    shared/global memory.
    """

    role: FragmentRole
    shape: tuple[int, int]
    data: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        m, n = self.shape
        if m <= 0 or n <= 0:
            raise ValueError("fragment dimensions must be positive")
        self.data = np.zeros(self.shape, dtype=_ROLE_DTYPE[self.role])

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        """Register bytes consumed by this fragment across the warp."""
        return int(self.data.nbytes)

    def fill(self, value: float) -> None:
        """``wmma::fill_fragment`` — broadcast a scalar into the tile."""
        self.data[...] = value

    def load(self, src: np.ndarray) -> None:
        """``wmma::load_matrix_sync`` — stage a tile into registers."""
        src = np.asarray(src)
        if src.shape != self.shape:
            raise ValueError(f"tile shape {src.shape} != fragment shape {self.shape}")
        self.data[...] = src.astype(self.dtype)
        hook = fault_hook_override(FAULT_HOOK)
        if hook is not None:
            self.data[...] = hook("frag", self.data)

    def store(self) -> np.ndarray:
        """``wmma::store_matrix_sync`` — copy the tile out of registers."""
        return self.data.copy()


@dataclass
class FragmentSpace:
    """A warp's fragment storage with capacity and reuse accounting.

    ``capacity_bytes`` is the per-warp slice of the SM register file (the
    analytic model's Eq. 8 budgets this explicitly).  ``get`` implements
    the intra-warp FRAG caching of §4: a keyed lookup that either reuses a
    resident fragment (cache hit — no shared-memory traffic) or allocates
    and counts a load.
    """

    capacity_bytes: int
    used_bytes: int = 0
    hits: int = 0
    misses: int = 0
    _store: dict[object, Fragment] = field(default_factory=dict)

    def allocate(self, role: FragmentRole, shape: tuple[int, int]) -> Fragment:
        """Allocate an anonymous fragment, enforcing the register budget."""
        frag = Fragment(role, shape)
        if self.used_bytes + frag.nbytes > self.capacity_bytes:
            raise FragmentOverflowError(
                f"fragment allocation of {frag.nbytes} B exceeds budget "
                f"({self.used_bytes}/{self.capacity_bytes} B in use) — the "
                f"analytic model should have rejected this tiling"
            )
        self.used_bytes += frag.nbytes
        return frag

    def get(self, key: object, role: FragmentRole, shape: tuple[int, int]) -> tuple[Fragment, bool]:
        """Keyed fragment lookup: returns (fragment, was_cached).

        A hit means the tile is already register-resident and the LDS
        traffic to re-stage it is skipped — the mechanism behind the
        "w/ FRAG caching" column of Table 2.
        """
        frag = self._store.get(key)
        if frag is not None:
            if frag.role != role or frag.shape != shape:
                raise ValueError(f"fragment key {key!r} reused with a different signature")
            self.hits += 1
            return frag, True
        frag = self.allocate(role, shape)
        self._store[key] = frag
        self.misses += 1
        return frag, False

    def evict(self, key: object) -> None:
        """Release a keyed fragment (frees register budget)."""
        frag = self._store.pop(key, None)
        if frag is not None:
            self.used_bytes -= frag.nbytes

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
