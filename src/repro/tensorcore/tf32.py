"""A second simulated specialized core: TF32 (Ampere-style), exercising
the generalized emulation design workflow end to end (§3.1's claim that
the workflow "can be generally applied towards various accelerators").

The TF32 primitive differs from the half-precision Tensor Core in the
input format only: operands are fp32 values whose mantissas the core
*truncates to 10 bits at the multiplier inputs* (full 8-bit exponent
range), products are formed at full precision and accumulated in fp32.

Running the same :class:`~repro.profiling.workflow.PrecisionProfiler`
against this core with TF32-specific probing primitives identifies the
correct internal-precision hypothesis, and the same round-split +
4-call emulation design then recovers >= 21 mantissa bits — with *no
exponent-range hazard*, since TF32 keeps fp32's exponent.
"""

from __future__ import annotations

import numpy as np

from ..fp.rounding import round_to_mantissa
from ..splits.base import Split, SplitPair
from .probing import ProbingPrimitive

__all__ = [
    "TF32_MANTISSA_BITS",
    "to_tf32",
    "tf32_mma",
    "Tf32RoundSplit",
    "tf32_round_split_arrays",
    "emulated_gemm_tf32",
    "TF32_TRUNC_PROBE",
    "TF32_FULL_PROBE",
    "tf32_probes",
]

#: TF32 keeps fp32's 8-bit exponent but only 10 explicit mantissa bits
TF32_MANTISSA_BITS = 10


def to_tf32(x: np.ndarray) -> np.ndarray:
    """Round fp32 values to the TF32 grid (10 mantissa bits, fp32 range)."""
    return round_to_mantissa(np.asarray(x, dtype=np.float32), TF32_MANTISSA_BITS).astype(
        np.float32
    )


def tf32_mma(a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
    """The simulated TF32 compute primitive ``D = A x B + C``.

    Inputs are fp32; the core truncates them to the TF32 grid at the
    multiplier, forms exact products (two 11-bit significands fit f64
    exactly), sums with a wide accumulator, and rounds once into the
    fp32 accumulator.
    """
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    if a32.ndim != 2 or b32.ndim != 2 or a32.shape[1] != b32.shape[0]:
        raise ValueError("tf32_mma expects (m,k) @ (k,n)")
    at = to_tf32(a32).astype(np.float64)
    bt = to_tf32(b32).astype(np.float64)
    wide = at @ bt
    if c is None:
        return wide.astype(np.float32)
    return (np.asarray(c, dtype=np.float32).astype(np.float64) + wide).astype(np.float32)


# --- probing primitives for the profiling workflow -----------------------

def _trunc_compute(a, b, c=None):
    """Hypothesis: inputs are reduced to 10 mantissa bits, op is wide."""
    at = to_tf32(np.asarray(a, dtype=np.float32)).astype(np.float64)
    bt = to_tf32(np.asarray(b, dtype=np.float32)).astype(np.float64)
    out = at @ bt
    if c is not None:
        out = out + np.asarray(c, dtype=np.float32).astype(np.float64)
    return out.astype(np.float32)


def _full_compute(a, b, c=None):
    """Hypothesis: the core multiplies full fp32 inputs."""
    out = np.asarray(a, dtype=np.float64) @ np.asarray(b, dtype=np.float64)
    if c is not None:
        out = out + np.asarray(c, dtype=np.float64)
    return out.astype(np.float32)


TF32_TRUNC_PROBE = ProbingPrimitive(
    name="d_TF32",
    hypothesis="inputs reduced to 10 mantissa bits; multiply at full precision",
    compute=_trunc_compute,
)

TF32_FULL_PROBE = ProbingPrimitive(
    name="d_FP32FULL",
    hypothesis="inputs used at full fp32 precision",
    compute=_full_compute,
)


def tf32_probes() -> tuple[ProbingPrimitive, ProbingPrimitive]:
    """The probing primitives to hand to :class:`PrecisionProfiler`."""
    return (TF32_TRUNC_PROBE, TF32_FULL_PROBE)


# --- emulation design on the TF32 core ------------------------------------

class Tf32RoundSplit(Split):
    """Round-split of fp32 into two TF32-grid values.

    Unlike the fp16 split, both terms keep fp32's exponent range, so
    there is no subnormal/overflow hazard; the high term carries the top
    11 significand bits and the low term the remaining 13 (of which TF32
    keeps 11) — ~22 effective bits.
    """

    name = "tf32-round"
    effective_mantissa_bits = 22

    def split(self, x: np.ndarray) -> SplitPair:  # pragma: no cover - protocol stub
        raise NotImplementedError("TF32 terms are fp32-storage; use split_arrays")

    def split_arrays(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x64 = np.asarray(x, dtype=np.float32).astype(np.float64)
        hi = to_tf32(x64.astype(np.float32))
        lo = to_tf32((x64 - hi.astype(np.float64)).astype(np.float32))
        return hi, lo


def tf32_round_split_arrays(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Functional wrapper around :class:`Tf32RoundSplit`."""
    return Tf32RoundSplit().split_arrays(x)


def emulated_gemm_tf32(
    a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None, tk: int = 16
) -> np.ndarray:
    """Algorithm 1 transplanted onto the TF32 core: 4 primitive calls.

    Same structure as the Tensor Core emulation — split both operands,
    accumulate lo*lo, lo*hi, hi*lo, hi*hi through the core's fp32
    accumulator, k-chunked at the primitive cadence.
    """
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    if a32.ndim != 2 or b32.ndim != 2 or a32.shape[1] != b32.shape[0]:
        raise ValueError("emulated_gemm_tf32 expects (m,k) @ (k,n)")
    m, k = a32.shape
    n = b32.shape[1]
    d = np.zeros((m, n), dtype=np.float32) if c is None else np.asarray(c, dtype=np.float32).copy()

    split = Tf32RoundSplit()
    a_hi, a_lo = split.split_arrays(a32)
    b_hi, b_lo = split.split_arrays(b32)
    terms = [(a_lo, b_lo), (a_lo, b_hi), (a_hi, b_lo), (a_hi, b_hi)]
    for k0 in range(0, k, tk):
        k1 = min(k0 + tk, k)
        for ta, tb in terms:
            d = tf32_mma(ta[:, k0:k1], tb[k0:k1, :], d)
    return d
