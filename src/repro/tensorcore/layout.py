"""Thread-level fragment element ownership (the real WMMA layout).

"All registers in a warp need to collaboratively store these matrices
into ... Fragment" (§2.1): on real Turing hardware each of the 32 threads
owns a fixed subset of a fragment's elements, and the HMMA instruction
reads each thread's registers according to that map.  This module
implements the documented m16n8k8 ownership functions (PTX ISA,
``mma.sync.aligned.m16n8k8``):

* A (16x8 fp16): thread ``t`` = (group g = t/4, lane l = t%4) owns
  ``A[g][2l], A[g][2l+1], A[g+8][2l], A[g+8][2l+1]`` — 4 elements,
* B (8x8 fp16): owns ``B[2l][g'], B[2l+1][g']`` with g' = t/4 — wait, the
  documented map is ``B[2l + i][g]`` for i in {0,1} — 2 elements,
* C/D (16x8 fp32): owns ``C[g][2l], C[g][2l+1], C[g+8][2l], C[g+8][2l+1]``
  — 4 elements.

:func:`distribute` shards a tile into per-thread element vectors;
:func:`collect` reassembles it.  The partition property (every element
owned by exactly one thread) is what makes the intra-warp FRAG caching
of §4 sound, and is verified by the test suite.
"""

from __future__ import annotations

import numpy as np

from .fragment import FragmentRole

__all__ = ["ownership", "distribute", "collect", "elements_per_thread"]

_SHAPES = {
    FragmentRole.MATRIX_A: (16, 8),
    FragmentRole.MATRIX_B: (8, 8),
    FragmentRole.ACCUMULATOR: (16, 8),
}


def ownership(role: FragmentRole) -> np.ndarray:
    """(rows, cols) int array: which thread owns each tile element."""
    rows, cols = _SHAPES[role]
    owner = np.empty((rows, cols), dtype=np.int64)
    for t in range(32):
        for r, c in _thread_elements(role, t):
            owner[r, c] = t
    return owner


def _thread_elements(role: FragmentRole, t: int) -> list[tuple[int, int]]:
    g, l = divmod(t, 4)
    if role is FragmentRole.MATRIX_A or role is FragmentRole.ACCUMULATOR:
        return [(g, 2 * l), (g, 2 * l + 1), (g + 8, 2 * l), (g + 8, 2 * l + 1)]
    # MATRIX_B: 8x8, two elements per thread
    return [(2 * l, g), (2 * l + 1, g)]


def elements_per_thread(role: FragmentRole) -> int:
    """Fragment elements each thread's registers hold."""
    return len(_thread_elements(role, 0))


def distribute(tile: np.ndarray, role: FragmentRole) -> np.ndarray:
    """Shard a tile into a (32, elements_per_thread) per-thread view.

    This is what ``wmma::load_matrix_sync`` physically does: each thread
    pulls its owned elements into its registers.
    """
    tile = np.asarray(tile)
    if tile.shape != _SHAPES[role]:
        raise ValueError(f"{role.value} fragments are {_SHAPES[role]}, got {tile.shape}")
    out = np.empty((32, elements_per_thread(role)), dtype=tile.dtype)
    for t in range(32):
        for slot, (r, c) in enumerate(_thread_elements(role, t)):
            out[t, slot] = tile[r, c]
    return out


def collect(per_thread: np.ndarray, role: FragmentRole) -> np.ndarray:
    """Inverse of :func:`distribute`: reassemble the tile from registers."""
    per_thread = np.asarray(per_thread)
    expected = (32, elements_per_thread(role))
    if per_thread.shape != expected:
        raise ValueError(f"expected per-thread shape {expected}, got {per_thread.shape}")
    rows, cols = _SHAPES[role]
    tile = np.empty((rows, cols), dtype=per_thread.dtype)
    for t in range(32):
        for slot, (r, c) in enumerate(_thread_elements(role, t)):
            tile[r, c] = per_thread[t, slot]
    return tile
