"""Simulated integer tensor core (IMMA): exact int8 x int8 -> int32 GEMM.

Turing's second tensor-core mode multiplies int8 operands into an int32
accumulator *exactly* — there is no rounding anywhere in the primitive.
That exactness is the foundation of the Ozaki-scheme emulation
(:mod:`repro.splits.ozaki`), the modern successor line to the paper's
fp16 emulation (the ozIMMU family): slice fp32/fp64 operands into int8
digits, multiply the digit planes exactly, and pay rounding only in the
final recombination.

Overflow note: an int32 accumulator holds k products of magnitude up to
127^2 exactly while ``k <= 2^31 / 127^2 ~= 133k`` — checked explicitly,
since silent wraparound is the real hardware's failure mode.
"""

from __future__ import annotations

import numpy as np

__all__ = ["IMMA_MAX_K", "imma"]

#: largest reduction length whose worst-case int8 dot fits int32
IMMA_MAX_K = (2**31 - 1) // (127 * 127)


def imma(a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
    """Exact integer compute primitive ``D = A x B + C`` (int8 -> int32)."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.dtype != np.int8 or b.dtype != np.int8:
        raise TypeError("IMMA operands must be int8")
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError("imma expects (m,k) @ (k,n)")
    if a.shape[1] > IMMA_MAX_K:
        raise ValueError(
            f"k={a.shape[1]} exceeds the int32 accumulator's exact range "
            f"(max {IMMA_MAX_K})"
        )
    # float64 matmul is exact for these magnitudes — every product is an
    # integer of magnitude <= 127^2 and every partial sum stays an exact
    # integer below 2^53 for any k <= IMMA_MAX_K — and it runs on BLAS,
    # where an integer matmul would take numpy's non-BLAS fallback loop.
    wide = (a.astype(np.float64) @ b.astype(np.float64)).astype(np.int64)
    if c is not None:
        c = np.asarray(c)
        if c.dtype != np.int32 or c.shape != wide.shape:
            raise TypeError("accumulator must be int32 of the output shape")
        wide = wide + c.astype(np.int64)
    if np.any(np.abs(wide) > np.iinfo(np.int32).max):
        raise OverflowError("int32 accumulator overflow")
    return wide.astype(np.int32)
