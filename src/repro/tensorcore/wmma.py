"""Warp-level WMMA-style API over the simulated Tensor Core.

Mirrors the CUDA ``nvcuda::wmma`` interface the paper's Figure 3 profiling
code uses (``load_matrix_sync`` / ``mma_sync`` / ``store_matrix_sync``),
operating on :class:`~repro.tensorcore.fragment.Fragment` objects and the
:func:`~repro.tensorcore.mma.mma` primitive.  The tensorized kernels of
:mod:`repro.tensorize` are written against this API, so the functional
path through the library exercises the same call structure as the CUDA
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .fragment import Fragment, FragmentRole
from .mma import M16N16K16, InternalPrecision, MmaCounter, MmaShape, mma

__all__ = ["WmmaContext", "load_matrix_sync", "mma_sync", "store_matrix_sync", "fill_fragment"]


@dataclass
class WmmaContext:
    """Per-warp execution context: primitive shape, precision, counters."""

    shape: MmaShape = M16N16K16
    precision: InternalPrecision = InternalPrecision.TENSOR_CORE
    counter: MmaCounter = field(default_factory=MmaCounter)
    #: bytes moved into fragments by load_matrix_sync (traffic accounting)
    load_bytes: int = 0
    #: bytes moved out of fragments by store_matrix_sync
    store_bytes: int = 0

    def fragment(self, role: FragmentRole) -> Fragment:
        """Allocate a fragment of the context's primitive tile shape."""
        if role is FragmentRole.MATRIX_A:
            return Fragment(role, (self.shape.m, self.shape.k))
        if role is FragmentRole.MATRIX_B:
            return Fragment(role, (self.shape.k, self.shape.n))
        return Fragment(role, (self.shape.m, self.shape.n))


def load_matrix_sync(ctx: WmmaContext, frag: Fragment, src: np.ndarray) -> None:
    """Collaboratively stage a tile from (shared or global) memory."""
    frag.load(src)
    ctx.load_bytes += frag.nbytes


def fill_fragment(frag: Fragment, value: float) -> None:
    """Broadcast a scalar into a fragment (``wmma::fill_fragment``)."""
    frag.fill(value)


def mma_sync(
    ctx: WmmaContext,
    d: Fragment,
    a: Fragment,
    b: Fragment,
    c: Fragment,
) -> None:
    """``wmma::mma_sync`` — one Tensor Core primitive on fragments."""
    if a.role is not FragmentRole.MATRIX_A or b.role is not FragmentRole.MATRIX_B:
        raise TypeError("mma_sync operand fragments have the wrong roles")
    if c.role is not FragmentRole.ACCUMULATOR or d.role is not FragmentRole.ACCUMULATOR:
        raise TypeError("mma_sync accumulator fragments have the wrong roles")
    out = mma(
        a.data,
        b.data,
        c.data,
        precision=ctx.precision,
        shape=ctx.shape,
        counter=ctx.counter,
    )
    d.data[...] = out.astype(d.dtype)


def store_matrix_sync(ctx: WmmaContext, frag: Fragment) -> np.ndarray:
    """Copy an accumulator fragment back to memory."""
    ctx.store_bytes += frag.nbytes
    return frag.store()
