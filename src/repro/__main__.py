"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro                      # everything (the artifact's "make all")
    python -m repro tables               # Tables 1-5
    python -m repro profiling            # Figures 2-3 / Appendix profiling
    python -m repro fig7 ... fig12       # individual figures
    python -m repro appendix             # Appendix precision_test + anchors
    python -m repro ablations            # design-choice ablations (A1-A4)
    python -m repro generality           # TF32-core workflow generality
    python -m repro bench [--quick]      # hot-path performance benchmarks
    python -m repro faults [--quick]     # fault-injection campaign (ABFT)
    python -m repro serve [--requests N] [--arrival poisson|uniform|closed]
                          [--trace T.json] [--flight-log F.jsonl]
                                         # GEMM serving load test -> SERVE_slo.json
    python -m repro chaos [--quick] [--seeds 0,1] [--requests N]
                                         # fleet chaos campaign -> CHAOS_campaign.json
    python -m repro postmortem <request-id> [--log FLIGHT_serve.jsonl]
                                         # reconstruct one request's lifecycle
    python -m repro accuracy [--quick] [--seed N]
                                         # shadow-sampled accuracy verification
                                         # -> ACCURACY_report.json
    python -m repro tune [--quick] [--check] [--gpu t4] [--shapes MxKxN,...]
                                         # autotune kernel configs -> TUNE_db.json
    python -m repro metrics [SNAPSHOT.json]
                                         # registry snapshot in OpenMetrics text
    python -m repro latency [--quick] [--check] [--seed N]
                                         # exact per-request latency attribution
                                         # + critical path -> LATENCY_report.json
    python -m repro whatif [--quick] [--scenarios exec:0.8,...]
                                         # Coz-style what-if speedup predictions
                                         # validated vs re-runs -> WHATIF_report.json
    python -m repro profile <kernel> --shape MxNxK [--trace out.json]
                                         # per-kernel profile report + trace
"""

from __future__ import annotations

import sys

from .experiments import ablations, appendix, fig6, fig7, fig8, fig9, fig10, fig11, fig12
from .experiments import generality, profiling_exp, report, sensitivity, tables, traffic_validation

_EXPERIMENTS = {
    "tables": tables.main,
    "fig6": fig6.main,
    "profiling": profiling_exp.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
    "fig10": fig10.main,
    "fig11": fig11.main,
    "fig12": fig12.main,
    "appendix": appendix.main,
    "ablations": ablations.main,
    "generality": generality.main,
    "report": report.main,
    "sensitivity": sensitivity.main,
    "traffic": traffic_validation.main,
}

#: everything except the slow full-trial profiling run
_DEFAULT_ORDER = (
    "tables",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "appendix",
    "ablations",
    "generality",
    "sensitivity",
    "traffic",
)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if args and args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    if args and args[0] == "bench":
        # Experiments with their own flags (--quick, --out) get the rest
        # of the argv verbatim.
        from .perf.bench import main as bench_main

        return bench_main(args[1:])
    if args and args[0] == "faults":
        from .resilience.campaign import main as faults_main

        return faults_main(args[1:])
    if args and args[0] == "serve":
        from .serve.loadgen import main as serve_main

        return serve_main(args[1:])
    if args and args[0] == "chaos":
        from .serve.chaos import main as chaos_main

        return chaos_main(args[1:])
    if args and args[0] == "postmortem":
        from .obs.flight import main as postmortem_main

        return postmortem_main(args[1:])
    if args and args[0] == "accuracy":
        from .obs.accuracy import main as accuracy_main

        return accuracy_main(args[1:])
    if args and args[0] == "tune":
        from .tune.cli import main as tune_main

        return tune_main(args[1:])
    if args and args[0] == "metrics":
        from .obs.metrics import main as metrics_main

        return metrics_main(args[1:])
    if args and args[0] == "profile":
        from .obs.profile import main as profile_main

        return profile_main(args[1:])
    if args and args[0] == "latency":
        from .obs.latency import main as latency_main

        return latency_main(args[1:])
    if args and args[0] == "whatif":
        from .obs.latency import whatif_main

        return whatif_main(args[1:])
    names = args or list(_DEFAULT_ORDER)
    unknown = [n for n in names if n not in _EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(_EXPERIMENTS)}", file=sys.stderr)
        return 2
    for i, name in enumerate(names):
        if i:
            print("\n" + "=" * 72 + "\n")
        print(f"### {name} ###\n")
        _EXPERIMENTS[name]()
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # piping into head/less is fine
        raise SystemExit(0)
