"""Roofline analysis: arithmetic intensity, ridge points, boundedness.

§6.1's compute-to-memory ratio (Eq. 4) is a roofline argument; this
module makes the full picture queryable for any kernel and GPU:

* :func:`ridge_intensity` — FLOP/byte where a GPU turns compute-bound,
* :class:`RooflinePoint` — one kernel's intensity + achieved throughput
  and its classification (memory-bound / compute-bound / overhead-bound),
* :func:`analyze_kernels` — the Table-style roofline summary used by the
  documentation and the ablation narrative ("EGEMM-TC's tiling pushes
  intensity past the ridge; the SDK kernel is pinned below it").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.spec import TESLA_T4, GpuSpec
from ..kernels.base import GemmKernel

__all__ = ["ridge_intensity", "RooflinePoint", "analyze_kernels"]


def ridge_intensity(spec: GpuSpec, peak_tflops: float | None = None) -> float:
    """FLOP/byte at which ``peak`` compute meets DRAM bandwidth.

    Defaults to the Tensor Core peak — the ridge EGEMM-TC's *issued*
    FLOPs must clear (the useful-FLOP ridge is 4x lower thanks to the
    emulation's 4x compute overhead).
    """
    peak = spec.peak_half_tc_tflops if peak_tflops is None else peak_tflops
    return peak * 1e12 / (spec.dram_bw_gbps * 1e9)


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel at one problem size on the roofline."""

    kernel: str
    intensity_flop_per_byte: float
    achieved_tflops: float
    roof_tflops: float
    ridge: float

    @property
    def bound(self) -> str:
        if self.intensity_flop_per_byte < self.ridge:
            return "memory-bound"
        if self.achieved_tflops >= 0.7 * self.roof_tflops:
            return "compute-bound"
        return "overhead-bound"

    @property
    def roof_fraction(self) -> float:
        return self.achieved_tflops / self.roof_tflops if self.roof_tflops else 0.0


def _kernel_traffic(kernel: GemmKernel, n: int, spec: GpuSpec) -> float:
    """Estimated DRAM bytes of one n^3 GEMM under the kernel's tiling."""
    from ..kernels.sdk import SdkCudaFp32
    from ..kernels.egemm import EgemmTcKernel
    from ..kernels.markidis import MarkidisKernel
    from ..tensorize.plan import TensorizationPlan

    if isinstance(kernel, SdkCudaFp32):
        return kernel.dram_bytes(n, n, n)
    if isinstance(kernel, (EgemmTcKernel, MarkidisKernel)):
        cfg = kernel.tiling_for(spec) if isinstance(kernel, EgemmTcKernel) else kernel.tiling
        plan = TensorizationPlan(n, n, n, cfg)
        return plan.dram_bytes_per_block(spec) * plan.grid_blocks
    from ..kernels.cublas import gemm_dram_bytes

    element = 2 if "TC" in kernel.info.name else 4
    return gemm_dram_bytes(n, n, n, element, 128, spec)


def analyze_kernels(
    kernels: list[GemmKernel], n: int = 8192, spec: GpuSpec = TESLA_T4
) -> list[RooflinePoint]:
    """Place each kernel on the roofline at one problem size."""
    points = []
    for kernel in kernels:
        flops = 2.0 * n * n * n
        bytes_ = _kernel_traffic(kernel, n, spec)
        intensity = flops / bytes_
        # The roof for useful FLOPs folds each kernel's compute overhead.
        overhead = getattr(getattr(kernel, "scheme", None), "compute_overhead", 1)
        if "FP32" in kernel.info.name or "SDK" in kernel.info.name:
            peak = spec.peak_fp32_tflops
        else:
            peak = spec.peak_half_tc_tflops / max(overhead, 1)
        roof = min(peak, intensity * spec.dram_bw_gbps / 1e3)
        points.append(
            RooflinePoint(
                kernel=kernel.info.name,
                intensity_flop_per_byte=intensity,
                achieved_tflops=kernel.tflops(n, n, n, spec),
                roof_tflops=roof,
                ridge=ridge_intensity(spec, peak),
            )
        )
    return points
