"""Resource-consumption equations of the hardware-aware analytic model (§6.1).

Each function implements one numbered equation of the paper, parameterized
by the tiling hyper-parameters and the instruction timings of a
:class:`~repro.gpu.spec.GpuSpec`:

* Eq. 2 — global-memory bytes per block per k-iteration,
* Eq. 3 — FLOPs per block per k-iteration (4 Tensor Core calls),
* Eq. 4 — compute-to-global-traffic ratio (the solver's objective),
* Eq. 5 — per-iteration computation time ``T_Comp``,
* Eq. 6 — global->shared staging time ``T_Mem1``,
* Eq. 7 — shared->FRAG load time ``T_Mem2``,
* Eq. 8's left-hand sides — register/FRAG and shared-memory footprints.

Instruction-time symbols map onto the spec as: ``T_HMMA`` is the time one
4-Tensor-Core HMMA group occupies the pipe (4x the per-instruction issue
interval, since each block drives 4 TCs simultaneously [12, 13]);
``T_LDG.128``/``T_STS.128`` are the LSU issue intervals; ``T_LDS.32`` is a
quarter of the 128-bit LDS interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.spec import GpuSpec

__all__ = ["ModelTimes", "times_from_spec", "global_bytes_per_iteration", "flops_per_iteration",
           "compute_intensity", "t_comp", "t_mem1", "t_mem2", "register_bytes", "shmem_bytes"]

#: FLOPs of one HMMA.1688 instruction group across the 4 simultaneously
#: driven Tensor Cores (Eq. 5's denominator: 2 x 16 x 8 x 8 x 4)
HMMA_GROUP_FLOPS = 2 * 16 * 8 * 8 * 4


@dataclass(frozen=True)
class ModelTimes:
    """The instruction-time constants Eq. 5-7 consume (cycles)."""

    t_hmma: float
    t_ldg_128: float
    t_sts_128: float
    t_lds_32: float


def times_from_spec(spec: GpuSpec) -> ModelTimes:
    """Derive the model's instruction times from a GPU spec."""
    return ModelTimes(
        t_hmma=4.0 * spec.hmma_issue_cycles,
        t_ldg_128=spec.ldg_issue_cycles,
        t_sts_128=spec.sts_issue_cycles,
        t_lds_32=spec.lds_issue_cycles / 4.0,
    )


def global_bytes_per_iteration(bm: int, bn: int, bk: int) -> int:
    """Eq. 2: ``(bm + bm + bn + bn) * bk * 2 = 4 (bm + bn) bk`` bytes.

    Two half-precision split matrices per operand, 2 bytes each.  The C
    block is excluded: it is read once per ``k/bk`` iterations and is
    negligible (§6.1).
    """
    return 4 * (bm + bn) * bk


def flops_per_iteration(bm: int, bn: int, bk: int) -> int:
    """Eq. 3: ``2 * bm * bn * bk * 4 = 8 bm bn bk`` — the 4 is EGEMM's
    four Tensor Core calls per extended-precision computation."""
    return 8 * bm * bn * bk


def compute_intensity(bm: int, bn: int) -> float:
    """Eq. 4: FLOPs per global byte, ``2 bm bn / (bm + bn)``.

    Notably independent of ``bk`` — the paper's "surprising" observation
    that lets the solver pick a small ``bk`` to free capacity for larger
    ``bm``/``bn``.
    """
    return 2.0 * bm * bn / (bm + bn)


def t_comp(bm: int, bn: int, bk: int, times: ModelTimes) -> float:
    """Eq. 5: per-iteration Tensor Core time of one block."""
    return flops_per_iteration(bm, bn, bk) / HMMA_GROUP_FLOPS * times.t_hmma


def t_mem1(bm: int, bn: int, bk: int, times: ModelTimes) -> float:
    """Eq. 6: global->shared staging time (all warps collaborating).

    ``(2bm + 2bn) * bk * 2 / (32 * 16)`` 128-bit transactions, each paying
    one LDG and one STS issue slot (Nvidia GPUs cannot load straight from
    global to shared memory, §5.1).
    """
    transactions = (2 * bm + 2 * bn) * bk * 2 / (32 * 16)
    return transactions * (times.t_ldg_128 + times.t_sts_128)


def t_mem2(bm: int, bn: int, bk: int, wm: int, wn: int, wk: int, times: ModelTimes) -> float:
    """Eq. 7: shared->FRAG load time across the block's warp iterations."""
    groups = (bm * bn * bk) / (wm * wn * wk)
    per_group = (wm / 8 + wm / 8 + wn / 8 + wn / 8)
    return groups * per_group * times.t_lds_32


def register_bytes(bm: int, bn: int, bk: int) -> int:
    """Eq. 8 constraint 1 LHS: FRAG bytes of the C block plus the
    double-buffered split operands — ``4 bm bn + 4 (bm + bn) bk``."""
    return 4 * bm * bn + 4 * (bm + bn) * bk


def shmem_bytes(bm: int, bn: int, bk: int, pad: int = 8) -> int:
    """Eq. 8 constraint 2 LHS: staged split tiles with k-padding —
    ``2 (bm + bn) (bk + pad) * 2`` bytes (the paper pads by 8)."""
    return 2 * (bm + bn) * (bk + pad) * 2
