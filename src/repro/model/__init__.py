"""Hardware-aware analytic model (§6): resource-consumption equations
(Eq. 2-7) and the design-space solver (Eq. 8) that regenerates Table 4."""

from .resources import (
    HMMA_GROUP_FLOPS,
    ModelTimes,
    compute_intensity,
    flops_per_iteration,
    global_bytes_per_iteration,
    register_bytes,
    shmem_bytes,
    t_comp,
    t_mem1,
    t_mem2,
    times_from_spec,
)
from .roofline import RooflinePoint, analyze_kernels, ridge_intensity
from .solver import Candidate, DesignSpace, SolverResult, solve, table4_rows

__all__ = [
    "HMMA_GROUP_FLOPS",
    "ModelTimes",
    "compute_intensity",
    "flops_per_iteration",
    "global_bytes_per_iteration",
    "register_bytes",
    "shmem_bytes",
    "t_comp",
    "t_mem1",
    "t_mem2",
    "times_from_spec",
    "RooflinePoint",
    "analyze_kernels",
    "ridge_intensity",
    "Candidate",
    "DesignSpace",
    "SolverResult",
    "solve",
    "table4_rows",
]
