"""Analytic solver for the tensorization design space (§6.2, Eq. 8).

Maximizes the compute-to-traffic ratio (Eq. 4) subject to:

1. the register/FRAG budget (Eq. 8, constraint 1),
2. the shared-memory budget (Eq. 8, constraint 2),
3. compute-bound warps: ``T_Mem1 + T_Mem2 <= T_Comp`` (Eq. 8, constraint 3),
4. structural legality (warp tiles partition block tiles, TC tiles
   partition warp tiles, at most ``max_warps`` warps per block),
5. the per-thread register limit under the §5.2 stage-reuse allocator —
   the constraint that actually rules out wider warp tiles and pins the
   paper's (64, 32) choice.

The space is small and discrete (a few thousand candidates), so the
"optimization solver" is an exhaustive feasibility scan with
lexicographic tie-breaking — equivalent to the cvxopt formulation the
paper references but dependency-free and exact on the integer lattice.
Ties on the objective prefer (in order) larger ``bk`` (fewer iterations,
fewer barriers), smaller ``wk`` (less fragment pressure), and
``wm >= wn`` (row-major staging).

On the Tesla T4 budget the solver returns the paper's Table 4 point:
``(bm, bn, bk) = (128, 128, 32)``, ``(wm, wn, wk) = (64, 32, 8)``,
36 KB shared memory per block, 1 active block per SM, 8 warps per block.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..gpu.occupancy import BlockResources, occupancy
from ..gpu.registers import allocate, egemm_stage_usage
from ..gpu.spec import TESLA_T4, GpuSpec
from ..tensorize.tiling import TilingConfig
from . import resources as R

__all__ = [
    "Candidate", "SolverResult", "DesignSpace", "solve", "clear_solve_memo",
    "table4_rows",
]


@dataclass(frozen=True)
class Candidate:
    """One evaluated design-space point."""

    config: TilingConfig
    objective: float
    feasible: bool
    violated: tuple[str, ...] = ()


@dataclass(frozen=True)
class DesignSpace:
    """Discrete candidate values for the six hyper-parameters."""

    bm: Sequence[int] = (32, 64, 96, 128, 192, 256)
    bn: Sequence[int] = (32, 64, 96, 128, 192, 256)
    bk: Sequence[int] = (8, 16, 32, 64)
    wm: Sequence[int] = (16, 32, 64, 128)
    wn: Sequence[int] = (16, 32, 64, 128)
    wk: Sequence[int] = (8, 16, 32)
    max_warps: int = 8

    def candidates(self) -> Iterable[TilingConfig]:
        for bm in self.bm:
            for bn in self.bn:
                for bk in self.bk:
                    for wm in self.wm:
                        for wn in self.wn:
                            for wk in self.wk:
                                try:
                                    cfg = TilingConfig(bm=bm, bn=bn, bk=bk, wm=wm, wn=wn, wk=wk)
                                except ValueError:
                                    continue
                                if cfg.warps_per_block > self.max_warps:
                                    continue
                                yield cfg


@dataclass
class SolverResult:
    """Outcome of the design-space scan."""

    best: TilingConfig
    objective: float
    evaluated: int
    feasible_count: int
    candidates: list[Candidate] = field(default_factory=list)

    def blocks_per_sm(self, spec: GpuSpec) -> int:
        usage = egemm_stage_usage(
            self.best.wm, self.best.wn, self.best.wk,
            self.best.bm, self.best.bn, self.best.bk,
            self.best.threads_per_block,
        )
        regs = allocate(usage, spec, policy="stage-reuse").registers_per_thread
        res = BlockResources(
            threads=self.best.threads_per_block,
            shared_mem_bytes=self.best.shared_mem_bytes,
            registers_per_thread=regs,
        )
        return occupancy(res, spec).blocks_per_sm


def _check(cfg: TilingConfig, spec: GpuSpec, times: R.ModelTimes) -> tuple[bool, tuple[str, ...]]:
    violated = []
    if R.register_bytes(cfg.bm, cfg.bn, cfg.bk) > spec.register_file_per_sm:
        violated.append("register-file (Eq. 8 c1)")
    if R.shmem_bytes(cfg.bm, cfg.bn, cfg.bk) > spec.shared_mem_per_sm:
        violated.append("shared-memory (Eq. 8 c2)")
    tc = R.t_comp(cfg.bm, cfg.bn, cfg.bk, times)
    tm = R.t_mem1(cfg.bm, cfg.bn, cfg.bk, times) + R.t_mem2(
        cfg.bm, cfg.bn, cfg.bk, cfg.wm, cfg.wn, cfg.wk, times
    )
    if tm > tc:
        violated.append("memory-bound (Eq. 8 c3)")
    usage = egemm_stage_usage(cfg.wm, cfg.wn, cfg.wk, cfg.bm, cfg.bn, cfg.bk, cfg.threads_per_block)
    alloc = allocate(usage, spec, policy="stage-reuse")
    if alloc.spills:
        violated.append("per-thread registers (spills under stage reuse)")
    return (not violated), tuple(violated)


#: memoized default-space solves, keyed by the (frozen, hashable) spec.
#: The scan is a pure function of its inputs and every serving router /
#: kernel instance needs the same point, so one process pays the
#: exhaustive scan once per GPU model instead of once per instance.
_SOLVE_MEMO: dict[GpuSpec, SolverResult] = {}
_SOLVE_MEMO_LOCK = threading.Lock()


def clear_solve_memo() -> None:
    """Drop memoized solver results (tests and design-space experiments)."""
    with _SOLVE_MEMO_LOCK:
        _SOLVE_MEMO.clear()


def solve(
    spec: GpuSpec = TESLA_T4,
    space: DesignSpace | None = None,
    keep_candidates: bool = False,
) -> SolverResult:
    """Scan the design space; return the best feasible configuration.

    Default-space scans (``space=None, keep_candidates=False``) are
    memoized process-wide: the result is deterministic in ``spec`` and
    callers treat it as read-only.  Custom spaces and candidate-keeping
    runs always scan fresh.
    """
    if space is None and not keep_candidates:
        with _SOLVE_MEMO_LOCK:
            cached = _SOLVE_MEMO.get(spec)
        if cached is not None:
            return cached
        result = _solve_scan(spec, DesignSpace(), False)
        with _SOLVE_MEMO_LOCK:
            _SOLVE_MEMO.setdefault(spec, result)
        return result
    return _solve_scan(spec, space or DesignSpace(), keep_candidates)


def _solve_scan(
    spec: GpuSpec, space: DesignSpace, keep_candidates: bool
) -> SolverResult:
    times = R.times_from_spec(spec)

    best: TilingConfig | None = None
    best_key: tuple | None = None
    evaluated = 0
    feasible_count = 0
    kept: list[Candidate] = []

    for cfg in space.candidates():
        evaluated += 1
        feasible, violated = _check(cfg, spec, times)
        objective = R.compute_intensity(cfg.bm, cfg.bn)
        if keep_candidates:
            kept.append(Candidate(cfg, objective, feasible, violated))
        if not feasible:
            continue
        feasible_count += 1
        # Lexicographic preference: objective, then larger bk, smaller wk,
        # then wm >= wn, then smaller footprint for determinism.
        key = (objective, cfg.bk, -cfg.wk, cfg.wm >= cfg.wn, -cfg.shared_mem_bytes)
        if best_key is None or key > best_key:
            best, best_key = cfg, key

    if best is None:
        raise RuntimeError(f"no feasible tiling for {spec.name} in the given design space")
    return SolverResult(
        best=best,
        objective=R.compute_intensity(best.bm, best.bn),
        evaluated=evaluated,
        feasible_count=feasible_count,
        candidates=kept,
    )


def table4_rows(spec: GpuSpec = TESLA_T4) -> list[dict[str, str]]:
    """The paper's Table 4 (design choice), regenerated by the solver."""
    result = solve(spec)
    cfg = result.best
    return [
        {"item": "(bm, bn, bk)", "value": f"({cfg.bm}, {cfg.bn}, {cfg.bk})"},
        {"item": "(wm, wn, wk)", "value": f"({cfg.wm}, {cfg.wn}, {cfg.wk})"},
        {"item": "Shared memory/block", "value": f"{cfg.shared_mem_bytes // 1024} KB"},
        {"item": "Active Blocks/SM", "value": str(result.blocks_per_sm(spec))},
        {"item": "Active Warps / Block", "value": str(cfg.warps_per_block)},
    ]
