"""Kernel registry: the baselines of Table 5, constructible by name."""

from __future__ import annotations

from typing import Callable

from .base import GemmKernel
from .cublas import CublasCudaFp32, CublasTcEmulation, CublasTcHalf
from .dekker import DekkerCudaKernel
from .egemm import EgemmTcKernel
from .markidis import MarkidisKernel
from .ozaki import OzakiKernel
from .sdk import SdkCudaFp32

__all__ = ["KERNELS", "get_kernel", "table5_rows"]

KERNELS: dict[str, Callable[[], GemmKernel]] = {
    "egemm-tc": EgemmTcKernel,
    "cublas-cuda-fp32": CublasCudaFp32,
    "cublas-tc-half": CublasTcHalf,
    "cublas-tc-emulation": CublasTcEmulation,
    "sdk-cuda-fp32": SdkCudaFp32,
    "markidis": MarkidisKernel,
    "dekker-cuda-half": DekkerCudaKernel,
    "ozaki-int8": OzakiKernel,
}


def get_kernel(name: str, abft: bool = False) -> GemmKernel:
    """Instantiate a kernel by its registry name (case-insensitive).

    ``abft=True`` wraps the kernel in checksum-based fault tolerance
    (:class:`repro.resilience.abft.AbftKernel`) — same ``compute``/
    ``time`` interface, operands augmented with ABFT checksums.
    """
    key = name.lower()
    if key not in KERNELS:
        raise KeyError(f"unknown kernel {name!r}; choose from {sorted(KERNELS)}")
    kernel = KERNELS[key]()
    if abft:
        from ..resilience.abft import AbftKernel  # local import: avoids cycle

        kernel = AbftKernel(kernel)
    return kernel


def table5_rows() -> list[dict[str, str]]:
    """The paper's Table 5 (baseline kernels), from the registry.

    The kMeans/kNN rows of Table 5 are applications, not GEMM kernels;
    they live in :mod:`repro.apps` and are appended here for completeness.
    """
    rows = []
    for name in ("cublas-cuda-fp32", "cublas-tc-half", "cublas-tc-emulation", "sdk-cuda-fp32", "markidis"):
        info = get_kernel(name).info
        rows.append(
            {
                "name": info.name,
                "source": info.source,
                "precision": info.precision,
                "description": info.description,
            }
        )
    rows.append(
        {
            "name": "kMeans",
            "source": "[2]",
            "precision": "single",
            "description": "open-source implementation with cublasSgemm on CUDA Cores",
        }
    )
    rows.append(
        {
            "name": "kNN",
            "source": "[9]",
            "precision": "single",
            "description": "open-source implementation with cublasSgemm on CUDA Cores",
        }
    )
    return rows
