"""The EGEMM-TC kernel: the paper's system, end to end.

Functionally: the round-split 4-call emulation (Algorithm 1) through the
simulated Tensor Core, giving 21-mantissa-bit extended precision.

Performance: the full §4-§6 pipeline — the analytic model's tiling, the
tensorized instruction stream with register-enhanced latency hiding, the
stage-reuse register allocation, executed on the wave/DRAM engine — plus
the O(N^2) split pre-pass, which runs on CUDA cores and is DRAM-bound
(reads the fp32 operands, writes the four fp16 split matrices).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..emulation.gemm import EmulatedGemm
from ..emulation.schemes import EGEMM, EmulationScheme
from ..gpu.engine import LAUNCH_OVERHEAD_S, KernelLaunch, KernelTiming, execute
from ..gpu.occupancy import BlockResources
from ..gpu.registers import allocate, egemm_stage_usage
from ..gpu.spec import TESLA_T4, GpuSpec
from ..model.solver import solve
from ..perf.split_cache import SplitCache
from ..tensorize.kernel import build_gemm_stream
from ..tensorize.plan import TensorizationPlan
from ..tensorize.tiling import TilingConfig
from .base import GemmKernel, KernelInfo

__all__ = ["EgemmTcKernel", "split_pass_seconds"]


def split_pass_seconds(m: int, n: int, k: int, spec: GpuSpec) -> float:
    """Time of the data-split pre-pass on CUDA cores.

    Round-split touches every element of A and B once (§3.2's O(N^2)
    overhead): read 4 fp32 bytes, write two fp16 halves (4 bytes) per
    element — DRAM-bound at 8 bytes per element, plus one kernel launch.
    """
    elements = m * k + k * n
    return elements * 8 / (spec.dram_bw_gbps * 1e9) + LAUNCH_OVERHEAD_S


@dataclass
class EgemmTcKernel(GemmKernel):
    """EGEMM-TC with all optimizations (the paper's full system).

    Parameters
    ----------
    scheme:
        Emulation scheme (round-split EGEMM by default; swapping in
        MARKIDIS here isolates the split algorithm from the kernel
        engineering).
    tiling:
        Tensorization point; ``None`` runs the §6 analytic solver for
        the target GPU on first use (cached per spec).
    latency_hiding:
        §5.1's register-enhanced instruction scheduling (Figure 11's
        ablation switch).
    frag_caching:
        §4's intra-warp FRAG caching (Table 2's ablation switch).
    register_policy:
        'stage-reuse' (the §5.2 manual allocation) or 'naive' (every
        stage holds its own registers).  The naive policy spills at the
        paper's design point; spilled registers turn into local-memory
        round trips on the LSU every iteration — the "heavy slow down"
        ablation.
    tk:
        k-chunk cadence of the emulated accumulation (functional: it
        sets where the fp32 accumulator rounds between chunks).
    lds_head_steps:
        scheduler weight for the LDS batch gating the first HMMA of an
        iteration; ``None`` keeps the structural default (``bk // wk``).
        Performance-only — an autotuner axis.
    """

    scheme: EmulationScheme = field(default_factory=lambda: EGEMM)
    tiling: TilingConfig | None = None
    latency_hiding: bool = True
    frag_caching: bool = True
    register_policy: str = "stage-reuse"
    tk: int = 16
    lds_head_steps: int | None = None

    def __post_init__(self) -> None:
        self.info = KernelInfo(
            name="EGEMM-TC",
            source="this paper",
            precision="extended",
            description="round-split 4-call emulation with SASS-level kernel optimizations",
        )
        self._tiling_cache: dict[str, TilingConfig] = {}
        #: split plans are cached per kernel instance, so a stationary
        #: operand across an iterative workload is split exactly once —
        #: the software analogue of §3.2's "split once, reuse" pre-pass
        self.split_cache = SplitCache()
        self._gemm = EmulatedGemm(scheme=self.scheme, split_cache=self.split_cache, tk=self.tk)

    # --- functional -------------------------------------------------------
    def compute(self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
        return self._gemm(a, b, c)

    # --- performance ------------------------------------------------------
    def tiling_for(self, spec: GpuSpec) -> TilingConfig:
        """The tensorization point used on ``spec`` (solver output)."""
        if self.tiling is not None:
            return self.tiling
        if spec.name not in self._tiling_cache:
            self._tiling_cache[spec.name] = solve(spec).best
        return self._tiling_cache[spec.name]

    def time(self, m: int, n: int, k: int, spec: GpuSpec = TESLA_T4) -> KernelTiming:
        self._validate_dims(m, n, k)
        cfg = self.tiling_for(spec)
        plan = TensorizationPlan(m, n, k, cfg, frag_caching=self.frag_caching)
        usage = egemm_stage_usage(cfg.wm, cfg.wn, cfg.wk, cfg.bm, cfg.bn, cfg.bk, cfg.threads_per_block)
        alloc = allocate(usage, spec, policy=self.register_policy)
        regs = alloc.registers_per_thread

        # Spilled registers live in thread-local (L1-cached) memory and
        # round-trip on the LSU.  The spilled registers belong to the
        # compute stage, whose values are touched on every warp k-step of
        # the iteration — so each spilled byte costs one load and one
        # store per (bk/wk) step, all serialized on the single LSU pipe.
        spill_bytes = alloc.spill_bytes_per_thread * cfg.threads_per_block
        k_steps = max(cfg.bk // cfg.wk, 1)
        spill_lds = 2 * k_steps * -(-spill_bytes // 512) if alloc.spills else 0
        lds_cost = 1.0 + spill_lds / max(plan.lds_per_iteration(), 1)

        stream = build_gemm_stream(
            plan,
            scheme_terms=self.scheme.compute_overhead,
            latency_hiding=self.latency_hiding,
            lds_cost_factor=lds_cost,
            lds_head_steps=self.lds_head_steps,
        )
        launch = KernelLaunch(
            name=self.info.name,
            stream=stream,
            grid_blocks=plan.grid_blocks,
            resources=BlockResources(
                threads=cfg.threads_per_block,
                shared_mem_bytes=cfg.shared_mem_bytes,
                registers_per_thread=regs,
            ),
            dram_bytes_per_block=plan.dram_bytes_per_block(spec),
            useful_flops=plan.useful_flops,
        )
        timing = execute(launch, spec)
        if self.scheme.split is not None:
            timing.seconds += split_pass_seconds(m, n, k, spec)
        return timing
