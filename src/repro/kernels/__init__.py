"""End-to-end GEMM kernels (Table 5): EGEMM-TC and all baselines, each
with a bit-accurate functional path and a simulated timing path."""

from .base import GemmKernel, KernelInfo
from .cublas import CublasCudaFp32, CublasTcEmulation, CublasTcHalf, gemm_dram_bytes
from .dekker import DekkerCudaKernel
from .egemm import EgemmTcKernel, split_pass_seconds
from .markidis import MARKIDIS_TILING, MarkidisKernel
from .ozaki import OzakiKernel
from .registry import KERNELS, get_kernel, table5_rows
from .sdk import SDK_TILE, SdkCudaFp32

__all__ = [
    "GemmKernel",
    "KernelInfo",
    "CublasCudaFp32",
    "CublasTcEmulation",
    "CublasTcHalf",
    "gemm_dram_bytes",
    "DekkerCudaKernel",
    "EgemmTcKernel",
    "split_pass_seconds",
    "MARKIDIS_TILING",
    "MarkidisKernel",
    "OzakiKernel",
    "KERNELS",
    "get_kernel",
    "table5_rows",
    "SDK_TILE",
    "SdkCudaFp32",
]
