"""The CUDA-SDK ``matrixMul`` sample kernel (Table 5's SDK-CUDA-FP32).

The SDK sample is the classic pedagogical GEMM: 16x16 thread blocks, one
output element per thread, operand tiles staged through shared memory,
no register blocking.  Its arithmetic intensity is fixed at
``tile/2 = 8`` FLOPs per DRAM byte (each 16-wide k-slab of A and B is
re-read by every tile row/column), which pins it far below the roofline
ridge — the kernel is DRAM-bound at ~1 TFLOPS on T4 regardless of size,
matching the Appendix anchor.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from ..emulation.gemm import reference_single
from ..gpu.engine import KernelTiming, roofline_seconds
from ..gpu.spec import TESLA_T4, GpuSpec
from .base import GemmKernel, KernelInfo

__all__ = ["SdkCudaFp32", "SDK_TILE"]

#: the sample's BLOCK_SIZE
SDK_TILE = 16


@dataclass
class SdkCudaFp32(GemmKernel):
    """Open-source ``matrixMul`` from the CUDA SDK, on CUDA cores."""

    efficiency: float = 0.8  # fp32-pipe efficiency when not DRAM-bound
    #: achieved fraction of DRAM bandwidth: the sample's 16-wide tile
    #: loads do not fill GDDR6 burst transactions
    bw_efficiency: float = 0.75

    def __post_init__(self) -> None:
        self.info = KernelInfo(
            name="SDK-CUDA-FP32",
            source="SDK",
            precision="single",
            description="matrixMul on CUDA Cores",
        )

    def compute(self, a, b, c=None) -> np.ndarray:
        # Numerically the SDK kernel is a straight fp32 GEMM.
        return reference_single(a, b, c)

    def dram_bytes(self, m: int, n: int, k: int) -> float:
        """Without register blocking every 16x16 tile re-reads its A row
        slab and B column slab from DRAM: ``2 * m * n * k / 16`` elements
        of 4 bytes, plus the C store."""
        return 2.0 * m * n * k / SDK_TILE * 4 + m * n * 4

    def time(self, m: int, n: int, k: int, spec: GpuSpec = TESLA_T4) -> KernelTiming:
        self._validate_dims(m, n, k)
        flops = 2.0 * m * n * k
        seconds = roofline_seconds(
            flops,
            self.dram_bytes(m, n, k) / self.bw_efficiency,
            spec,
            spec.peak_fp32_tflops,
            self.efficiency,
            grid_blocks=ceil(m / SDK_TILE) * ceil(n / SDK_TILE),
            blocks_per_sm=4,
        )
        return KernelTiming(
            name=self.info.name,
            seconds=seconds,
            cycles=seconds * spec.clock_ghz * 1e9,
            useful_flops=flops,
        )
