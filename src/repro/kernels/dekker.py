"""Dekker-emulation kernel: the why-not baseline of the paper's §1.

Dekker's CPU-era scheme needs ~16 *serialized* half-precision scalar
instructions per emulated extended-precision FMA.  On a GPU those run on
the CUDA cores' fp16x2 pipes (2x the fp32 rate on Turing), so the useful
throughput ceiling is

    peak_fp32 * 2 / 16  =  peak_fp32 / 8

before accounting for the dependence chains inside each 16-instruction
bundle, which cap achievable ILP well below peak.  The paper's argument —
"half-precision computation on Tensor Cores is only 8x faster than
single-precision on CUDA Cores, this 16x overhead can easily make
emulation inappropriate" — lands here as a kernel that is *slower than
the plain fp32 baseline*, which is exactly why EGEMM-TC's 4-call design
matters.  Functional path: the faithful per-operation-rounded
:func:`~repro.splits.dekker.dekker_gemm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from ..gpu.engine import KernelTiming, roofline_seconds
from ..gpu.spec import TESLA_T4, GpuSpec
from ..splits.dekker import dekker_gemm
from ..splits.eft import DEKKER_EMULATED_FMA_OPS
from .base import GemmKernel, KernelInfo

__all__ = ["DekkerCudaKernel"]


@dataclass
class DekkerCudaKernel(GemmKernel):
    """16-instruction Dekker emulation on CUDA cores (half2 pipes)."""

    #: fraction of the fp16x2 peak the serialized bundles sustain — the
    #: two_sum/two_prod chains are pure dependence chains, so per-thread
    #: ILP is ~1 and only warp-level parallelism fills the pipes
    chain_efficiency: float = 0.45

    def __post_init__(self) -> None:
        self.info = KernelInfo(
            name="Dekker-CUDA-Half",
            source="[7]",
            precision="extended*",
            description="16 serialized half instructions per emulated FMA on CUDA cores",
        )

    def compute(self, a, b, c=None) -> np.ndarray:
        return dekker_gemm(a, b, c)

    def time(self, m: int, n: int, k: int, spec: GpuSpec = TESLA_T4) -> KernelTiming:
        self._validate_dims(m, n, k)
        useful_flops = 2.0 * m * n * k
        issued_flops = useful_flops * DEKKER_EMULATED_FMA_OPS / 2  # 16 ops per 2-flop FMA
        half2_peak = 2.0 * spec.peak_fp32_tflops
        # Memory traffic matches a well-tiled fp32 GEMM (the splits are
        # half-sized but there are two of them).
        from .cublas import gemm_dram_bytes

        dram = gemm_dram_bytes(m, n, k, 4, 128, spec)
        seconds = roofline_seconds(
            issued_flops,
            dram,
            spec,
            half2_peak,
            self.chain_efficiency,
            grid_blocks=ceil(m / 128) * ceil(n / 128),
        )
        return KernelTiming(
            name=self.info.name,
            seconds=seconds,
            cycles=seconds * spec.clock_ghz * 1e9,
            useful_flops=useful_flops,
        )
