"""Common interface of the GEMM kernels under evaluation (Table 5).

Every kernel pairs two views:

* ``compute(a, b, c)`` — the *functional* path: the bit-accurate result
  the kernel would produce, via the simulated Tensor Core / CUDA-core
  arithmetic (used by the precision experiments and the applications);
* ``time(m, n, k, spec)`` — the *performance* path: the simulated wall
  time on a given GPU, via the instruction-level engine or a calibrated
  roofline (used by every TFLOPS figure).

Keeping the two paths on one object mirrors the artifact's structure
(each baseline is one buildable binary that both computes and reports
throughput) while letting the precision benchmarks run at small sizes
and the timing sweeps at the paper's full sizes.
"""

from __future__ import annotations

import abc
import functools
from dataclasses import dataclass

import numpy as np

from ..gpu.engine import KernelTiming
from ..gpu.spec import TESLA_T4, GpuSpec
from ..obs.metrics import get_registry
from ..obs.tracing import get_tracer

__all__ = ["GemmKernel", "KernelInfo"]


def _timed(time_method):
    """Wrap a kernel's ``time`` with a span and registry accounting.

    Applied once per concrete subclass by ``__init_subclass__``, so every
    kernel — engine-modelled or roofline — reports through the same
    ``kernel.time`` span and ``kernels.*`` metrics without each
    implementation carrying instrumentation code.
    """

    @functools.wraps(time_method)
    def wrapper(self, m, n, k, spec=TESLA_T4):
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "kernel.time", category="kernel",
                kernel=self.info.name, m=m, n=n, k=k, gpu=spec.name,
            ) as span:
                timing = time_method(self, m, n, k, spec)
                span.set(seconds=timing.seconds, cycles=timing.cycles,
                         tflops=timing.tflops)
        else:
            timing = time_method(self, m, n, k, spec)
        registry = get_registry()
        if registry.enabled:
            registry.inc("kernels.timings")
            registry.observe("kernels.time_seconds", timing.seconds)
        return timing

    wrapper.__wrapped_by_obs__ = True
    return wrapper


@dataclass(frozen=True)
class KernelInfo:
    """Table 5 row: name, source, precision, description."""

    name: str
    source: str
    precision: str
    description: str


class GemmKernel(abc.ABC):
    """A GEMM implementation with functional and timed execution."""

    info: KernelInfo

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        time_method = cls.__dict__.get("time")
        if time_method is not None and not getattr(time_method, "__wrapped_by_obs__", False):
            cls.time = _timed(time_method)

    @abc.abstractmethod
    def compute(self, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
        """Bit-accurate ``D = A @ B + C`` under this kernel's arithmetic."""

    @abc.abstractmethod
    def time(self, m: int, n: int, k: int, spec: GpuSpec = TESLA_T4) -> KernelTiming:
        """Simulated wall time of one (m, n, k) GEMM on ``spec``."""

    def tflops(self, m: int, n: int, k: int, spec: GpuSpec = TESLA_T4) -> float:
        """Eq. 9 throughput of one (m, n, k) GEMM on ``spec``."""
        return self.time(m, n, k, spec).tflops

    def _validate_dims(self, m: int, n: int, k: int) -> None:
        if min(m, n, k) <= 0:
            raise ValueError(f"invalid GEMM shape ({m}, {n}, {k})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.info.name}>"
