"""Performance models of the cuBLAS vendor kernels (Table 5).

The paper treats cuBLAS as a black box measured from outside; we model
each kernel as a calibrated roofline — compute throughput at a sustained
efficiency taken from the artifact's anchors, DRAM traffic from the same
wave-level panel-reuse geometry the EGEMM plan uses, and per-launch
overhead.  Calibration anchors (Appendix A.3, Tesla T4, 8192^3):

* ``cublas_CUDA_FP32``  ~= 4 TFLOPS  (0.47 of the 8.1 TFLOPS peak),
* ``cuBLAS-TC-Half``    sustains ~35 TFLOPS (0.55 of the Table 3 peak;
  the 70 W T4 throttles under sustained Tensor Core load),
* ``cuBLAS-TC-Emulation`` = 4 serialized ``cublasGemmEx`` calls + the
  split pre-pass; each call re-reads its operand panels from DRAM (no
  cross-call FRAG reuse — the optimization headroom EGEMM-TC exploits)
  and, with beta=1, reads *and* writes C.

The Figure 9a cliff: when K dominates (k >= 2*max(m, n) at large sizes),
``cublasGemmEx`` switches to split-K kernels whose partial-sum traffic
and reduction pass cost ~45% of throughput — modelled as an efficiency
step, recorded in EXPERIMENTS.md as a calibrated behavioural rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, sqrt

import numpy as np

from ..emulation.gemm import EmulatedGemm, reference_single
from ..emulation.schemes import EGEMM, HALF
from ..gpu.engine import LAUNCH_OVERHEAD_S, KernelTiming, roofline_seconds
from ..gpu.spec import TESLA_T4, GpuSpec
from ..perf.split_cache import SplitCache
from .base import GemmKernel, KernelInfo
from .egemm import split_pass_seconds

__all__ = ["CublasCudaFp32", "CublasTcHalf", "CublasTcEmulation", "gemm_dram_bytes"]


def gemm_dram_bytes(
    m: int, n: int, k: int, element_size: int, tile: int, spec: GpuSpec, blocks_per_sm: int = 2
) -> float:
    """Wave-level DRAM traffic estimate of a tiled GEMM.

    Blocks resident in one wave share row/column panels through L2, so
    each wave reads ``(rows + cols) * tile * k`` unique operand elements;
    C is written (and with beta != 0, read) once.
    """
    grid_m, grid_n = ceil(m / tile), ceil(n / tile)
    grid = grid_m * grid_n
    wave = min(grid, spec.num_sms * blocks_per_sm)
    rows = min(grid_m, max(1, round(sqrt(wave * grid_m / max(grid_n, 1)))))
    cols = min(grid_n, ceil(wave / rows))
    waves = ceil(grid / max(rows * cols, 1))
    panel_bytes = (rows * tile + cols * tile) * k * element_size
    c_bytes = m * n * 4
    return waves * panel_bytes + c_bytes


@dataclass
class CublasCudaFp32(GemmKernel):
    """``cublasSgemm`` on CUDA cores — the primary baseline."""

    efficiency: float = 0.47  # anchored at ~4 TFLOPS on T4 (Appendix A.3)

    def __post_init__(self) -> None:
        self.info = KernelInfo(
            name="cuBLAS-CUDA-FP32",
            source="cuBLAS",
            precision="single",
            description="cublasSgemm on CUDA Cores",
        )

    def compute(self, a, b, c=None) -> np.ndarray:
        return reference_single(a, b, c)

    def time(self, m: int, n: int, k: int, spec: GpuSpec = TESLA_T4) -> KernelTiming:
        self._validate_dims(m, n, k)
        flops = 2.0 * m * n * k
        bytes_ = gemm_dram_bytes(m, n, k, 4, 128, spec)
        seconds = roofline_seconds(
            flops, bytes_, spec, spec.peak_fp32_tflops, self.efficiency,
            grid_blocks=ceil(m / 128) * ceil(n / 128),
        )
        return KernelTiming(name=self.info.name, seconds=seconds, cycles=seconds * spec.clock_ghz * 1e9, useful_flops=flops)


@dataclass
class CublasTcHalf(GemmKernel):
    """``cublasGemmEx`` half-in / fp32-accumulate on Tensor Cores."""

    #: sustained fraction of the Tensor Core peak.  The 70 W T4 throttles
    #: well below its boost clock under sustained HMMA load; ~35 TFLOPS
    #: measured half GEMM (0.55 of the Table 3 peak) is the anchor that
    #: also reproduces the paper's 1.35x EGEMM-vs-cuBLAS-TC-Emulation gap.
    efficiency: float = 0.55

    def __post_init__(self) -> None:
        self.info = KernelInfo(
            name="cuBLAS-TC-Half",
            source="cuBLAS",
            precision="half",
            description="cublasGemmEx on Tensor Cores",
        )
        self.split_cache = SplitCache()
        self._gemm = EmulatedGemm(scheme=HALF, split_cache=self.split_cache)

    def compute(self, a, b, c=None) -> np.ndarray:
        return self._gemm(a, b, c)

    def time(self, m: int, n: int, k: int, spec: GpuSpec = TESLA_T4) -> KernelTiming:
        self._validate_dims(m, n, k)
        flops = 2.0 * m * n * k
        bytes_ = gemm_dram_bytes(m, n, k, 2, 128, spec)
        eff = self.efficiency
        # Split-K kernel selection on strongly K-dominant shapes.
        if k >= 2 * max(m, n) and k >= 8192:
            eff *= 0.55
        seconds = roofline_seconds(
            flops, bytes_, spec, spec.peak_half_tc_tflops, eff,
            grid_blocks=ceil(m / 128) * ceil(n / 128),
        )
        return KernelTiming(name=self.info.name, seconds=seconds, cycles=seconds * spec.clock_ghz * 1e9, useful_flops=flops)


@dataclass
class CublasTcEmulation(GemmKernel):
    """Algorithm 1 implemented with 4 ``cublasGemmEx`` calls (Table 5).

    The strongest available baseline without the paper's kernel work:
    same numerics as EGEMM-TC (round-split + fp32 accumulation), but each
    partial product is a separate vendor-kernel launch that re-reads its
    operands from DRAM and round-trips C with beta=1.
    """

    half_kernel: CublasTcHalf = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.info = KernelInfo(
            name="cuBLAS-TC-Emulation",
            source="cuBLAS",
            precision="extended",
            description="implement [Algorithm 1] with cublasGemmEx on Tensor Cores",
        )
        if self.half_kernel is None:
            self.half_kernel = CublasTcHalf()
        self.split_cache = SplitCache()
        self._gemm = EmulatedGemm(scheme=EGEMM, split_cache=self.split_cache)

    def compute(self, a, b, c=None) -> np.ndarray:
        # Numerically identical to the fused kernel: the same four partial
        # products accumulate into the same fp32 C.
        return self._gemm(a, b, c)

    def time(self, m: int, n: int, k: int, spec: GpuSpec = TESLA_T4) -> KernelTiming:
        self._validate_dims(m, n, k)
        flops = 2.0 * m * n * k
        per_call_bytes = gemm_dram_bytes(m, n, k, 2, 128, spec) + m * n * 4  # beta=1: C read too
        eff = self.half_kernel.efficiency
        if k >= 2 * max(m, n) and k >= 8192:
            eff *= 0.55
        call_seconds = roofline_seconds(
            flops, per_call_bytes, spec, spec.peak_half_tc_tflops, eff,
            grid_blocks=ceil(m / 128) * ceil(n / 128),
        )
        seconds = 4 * call_seconds + split_pass_seconds(m, n, k, spec)
        return KernelTiming(
            name=self.info.name,
            seconds=seconds,
            cycles=seconds * spec.clock_ghz * 1e9,
            useful_flops=flops,
        )
