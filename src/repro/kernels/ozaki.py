"""Timed Ozaki-scheme kernel: the int8 successor as an end-to-end design.

Completes the A6 ablation's throughput axis.  Turing's int8 tensor-core
mode runs at 2x the fp16 rate (130 TOPS on T4), so the Ozaki scheme's
``slices^2`` exact IMMA calls cost, in fp16-HMMA-equivalents,
``slices^2 / 2`` — at 3 slices (round-split precision class) that is
4.5x vs EGEMM-TC's 4x, plus the slicing pre-pass and the fp64
recombination pass on CUDA cores that the fused fp16 accumulation
avoids.  Net: comparable precision at slightly lower throughput, with
the *range* robustness (per-row exponents) as the differentiator.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from ..gpu.engine import LAUNCH_OVERHEAD_S, KernelTiming, roofline_seconds
from ..gpu.spec import TESLA_T4, GpuSpec
from ..splits.ozaki import ozaki_gemm
from .base import GemmKernel, KernelInfo

__all__ = ["OzakiKernel"]


@dataclass
class OzakiKernel(GemmKernel):
    """Ozaki int8 emulation with a roofline timing model."""

    slices: int = 3
    #: int8 tensor-core peak relative to the fp16 peak (Turing: 2x)
    int8_speedup: float = 2.0
    #: sustained fraction of the int8 peak (same class as cuBLAS-TC)
    efficiency: float = 0.55

    def __post_init__(self) -> None:
        self.info = KernelInfo(
            name=f"Ozaki-INT8-{self.slices}s",
            source="ozIMMU line",
            precision="extended*" if self.slices >= 3 else "reduced",
            description=f"{self.slices}-slice int8 digit emulation on integer tensor cores",
        )

    def compute(self, a, b, c=None) -> np.ndarray:
        return ozaki_gemm(a, b, c, slices=self.slices)

    def time(self, m: int, n: int, k: int, spec: GpuSpec = TESLA_T4) -> KernelTiming:
        self._validate_dims(m, n, k)
        useful_flops = 2.0 * m * n * k
        issued_ops = useful_flops * self.slices**2
        int8_peak = spec.peak_half_tc_tflops * self.int8_speedup

        # Operand traffic: slices int8 planes per element (1 B each)
        # against the fp16 scheme's 2 x 2 B — comparable per slice pair.
        from .cublas import gemm_dram_bytes

        dram = gemm_dram_bytes(m, n, k, self.slices, 128, spec)
        gemm_s = roofline_seconds(
            issued_ops,
            dram,
            spec,
            int8_peak,
            self.efficiency,
            grid_blocks=ceil(m / 128) * ceil(n / 128),
        )
        # Slicing pre-pass (read fp32, write `slices` int8 planes) and the
        # fp64 recombination pass (read slices^2 int32 planes... fused to
        # one read-modify-write of the fp32 output per slice pair in the
        # practical implementations; modelled as such).
        slice_bytes = (m * k + k * n) * (4 + self.slices)
        recombine_bytes = self.slices**2 * m * n * 4
        passes_s = (slice_bytes + recombine_bytes) / (spec.dram_bw_gbps * 1e9)
        seconds = gemm_s + passes_s + LAUNCH_OVERHEAD_S
        return KernelTiming(
            name=self.info.name,
            seconds=seconds,
            cycles=seconds * spec.clock_ghz * 1e9,
            useful_flops=useful_flops,
        )
