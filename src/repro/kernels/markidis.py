"""The Markidis et al. [20] emulation kernel (Table 5).

Numerically: truncate-split + the same 4-call accumulation — one fewer
effective mantissa bit than EGEMM-TC (Figure 7's 2.33x error gap).

Performance: the original is a CUDA-level WMMA kernel.  The paper reports
that even after manually applying EGEMM-TC's optimizations to the CUDA
source, performance "remains similar" because the CUDA interface cannot
express the SASS-level scheduling and register control (§7.3).  We model
it accordingly: the same tensorized structure but at WMMA granularity
(16x16x16 tiles), modest 64x64 block tiles with 4 warps, *without* FRAG
caching and *without* the software-pipelined instruction schedule — all
three handicaps being interface limitations, not implementation sloppiness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..emulation.gemm import EmulatedGemm
from ..emulation.schemes import MARKIDIS, EmulationScheme
from ..gpu.engine import KernelLaunch, KernelTiming, execute
from ..gpu.occupancy import BlockResources
from ..gpu.spec import TESLA_T4, GpuSpec
from ..perf.split_cache import SplitCache
from ..tensorcore.mma import M16N16K16
from ..tensorize.kernel import build_gemm_stream
from ..tensorize.plan import TensorizationPlan
from ..tensorize.tiling import TilingConfig
from .base import GemmKernel, KernelInfo
from .egemm import split_pass_seconds

__all__ = ["MarkidisKernel", "MARKIDIS_TILING"]

#: CUDA-level WMMA tiling of the open-source implementation
MARKIDIS_TILING = TilingConfig(bm=64, bn=64, bk=16, wm=32, wn=32, wk=16, tc=M16N16K16)


@dataclass
class MarkidisKernel(GemmKernel):
    """Truncate-split emulation at the CUDA/WMMA programming level."""

    scheme: EmulationScheme = field(default_factory=lambda: MARKIDIS)
    tiling: TilingConfig = field(default_factory=lambda: MARKIDIS_TILING)
    #: shared-memory transaction replay of CUDA-level wmma loads on
    #: unswizzled half tiles (4-way bank conflicts, Jia et al. [12])
    lds_conflict_factor: float = 4.0

    def __post_init__(self) -> None:
        self.info = KernelInfo(
            name="Markidis",
            source="[20]",
            precision="extended*",
            description="implemented Markidis method on Tensor Cores (truncate-split, CUDA-level)",
        )
        self.split_cache = SplitCache()
        self._gemm = EmulatedGemm(scheme=self.scheme, split_cache=self.split_cache)

    def compute(self, a, b, c=None) -> np.ndarray:
        return self._gemm(a, b, c)

    def time(self, m: int, n: int, k: int, spec: GpuSpec = TESLA_T4) -> KernelTiming:
        self._validate_dims(m, n, k)
        cfg = self.tiling
        # CUDA-level kernel: no intra-warp FRAG caching (Table 2's w/o
        # column) and no SASS instruction scheduling (Figure 6 left).
        plan = TensorizationPlan(m, n, k, cfg, frag_caching=False)
        stream = build_gemm_stream(
            plan,
            scheme_terms=self.scheme.compute_overhead,
            latency_hiding=False,
            lds_cost_factor=self.lds_conflict_factor,
        )
        launch = KernelLaunch(
            name=self.info.name,
            stream=stream,
            grid_blocks=plan.grid_blocks,
            resources=BlockResources(
                threads=cfg.threads_per_block,
                shared_mem_bytes=cfg.shared_mem_bytes,
                # nvcc-compiled WMMA kernels sit well under the register cap
                registers_per_thread=128,
            ),
            dram_bytes_per_block=plan.dram_bytes_per_block(spec),
            useful_flops=plan.useful_flops,
        )
        timing = execute(launch, spec)
        timing.seconds += split_pass_seconds(m, n, k, spec)
        return timing
