"""Traffic-model validation: simulate the L2, measure the DRAM bytes.

The engine prices every kernel's DRAM traffic with the analytic
wave-reuse model (:meth:`TensorizationPlan.dram_bytes_per_block`): blocks
resident in one wave share row/column panels through L2.  This experiment
*measures* that quantity instead: it generates the actual LDG address
trace of one wave (:mod:`repro.gpu.trace`), drives it through a
functional T4-geometry L2 (:mod:`repro.gpu.cache`), and compares the
cache's miss fill bytes against the analytic prediction.

Outcome (asserted by the tests): the measured per-block DRAM bytes land
within ~25% of the analytic model across problem sizes, and the measured
L2 hit rate confirms the cross-block sharing the model assumes (~40-60%
of LDG lines hit, exactly the panels a neighbour block already pulled).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, sqrt

from ..gpu.cache import SetAssociativeCache
from ..gpu.spec import TESLA_T4, GpuSpec
from ..gpu.trace import wave_trace
from ..tensorize.plan import TensorizationPlan
from ..tensorize.tiling import T4_TILING, TilingConfig

__all__ = ["TrafficValidation", "validate_traffic_model"]


@dataclass(frozen=True)
class TrafficValidation:
    """Analytic vs cache-simulated DRAM traffic for one problem."""

    n: int
    wave_blocks: int
    analytic_bytes_per_block: float
    measured_bytes_per_block: float
    l2_hit_rate: float
    iterations_simulated: int

    @property
    def ratio(self) -> float:
        """measured / analytic — 1.0 means the model is exact."""
        return self.measured_bytes_per_block / self.analytic_bytes_per_block


def _wave_block_list(plan: TensorizationPlan, spec: GpuSpec) -> list[tuple[int, int]]:
    """The near-square wave placement the plan's model assumes."""
    gm, gn = plan.config.grid_dims(plan.m, plan.n)
    wave = min(plan.grid_blocks, spec.num_sms)
    rows = min(gm, max(1, round(sqrt(wave * gm / max(gn, 1)))))
    cols = min(gn, ceil(wave / rows))
    blocks = []
    for r in range(rows):
        for c in range(cols):
            if len(blocks) < wave:
                blocks.append((r, c))
    return blocks


def validate_traffic_model(
    n: int = 2048,
    spec: GpuSpec = TESLA_T4,
    config: TilingConfig = T4_TILING,
    iterations: int | None = None,
) -> TrafficValidation:
    """Drive one wave's trace through a functional L2; compare models.

    ``iterations`` caps the simulated k-iterations (the per-iteration
    traffic is periodic, so a prefix measures the steady state; None
    simulates the full k loop).
    """
    plan = TensorizationPlan(n, n, n, config)
    blocks = _wave_block_list(plan, spec)
    iters = plan.k_iterations if iterations is None else min(iterations, plan.k_iterations)

    cache = SetAssociativeCache(
        capacity_bytes=spec.l2_size, line_bytes=128, ways=16
    )
    for segment in wave_trace(plan, blocks, iterations=iters):
        cache.access_range(segment.start, segment.nbytes)

    measured_total = cache.stats.fill_bytes
    # Scale the analytic model to the same iteration count and add the
    # C I/O it charges per block only when the full loop runs.
    cfg = plan.config
    rows = len({r for r, _ in blocks})
    cols = len({c for _, c in blocks})
    analytic_per_iter = (rows * cfg.bm + cols * cfg.bn) * cfg.bk * 2 * 2
    analytic_total = analytic_per_iter * iters

    return TrafficValidation(
        n=n,
        wave_blocks=len(blocks),
        analytic_bytes_per_block=analytic_total / len(blocks),
        measured_bytes_per_block=measured_total / len(blocks),
        l2_hit_rate=cache.stats.hit_rate,
        iterations_simulated=iters,
    )


def main() -> None:  # pragma: no cover - CLI entry
    from .common import format_table

    rows = []
    for n in (1024, 2048, 4096):
        v = validate_traffic_model(n, iterations=8)
        rows.append(
            [
                n,
                v.wave_blocks,
                f"{v.analytic_bytes_per_block / 1024:.0f} KB",
                f"{v.measured_bytes_per_block / 1024:.0f} KB",
                f"{v.ratio:.2f}",
                f"{v.l2_hit_rate:.0%}",
            ]
        )
    print(
        format_table(
            ["N", "wave blocks", "analytic/block", "measured/block", "ratio", "L2 hit rate"],
            rows,
            "DRAM-traffic model vs functional L2 simulation (8 k-iterations).",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
