"""Calibration-sensitivity study: which conclusions survive model error?

The timing model carries a handful of fitted constants
(docs/calibration.md).  A calibrated model's *conclusions* are only as
good as their robustness to those fits, so this experiment perturbs each
anchor by ±20% and re-derives the paper's headline ratios:

* EGEMM-TC speedup over cuBLAS-CUDA-FP32 (Figure 8's 3.13x),
* EGEMM-TC speedup over cuBLAS-TC-Emulation (1.35x),
* the latency-hiding benefit (Figure 11's 1.14x),
* the qualitative orderings (EGEMM > emulation > fp32 > SDK).

The result: every ordering and the sign/magnitude class of every ratio
is stable across the perturbation grid — the reproduction's claims do
not hinge on the exact fitted values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.spec import TESLA_T4, GpuSpec
from ..kernels.cublas import CublasCudaFp32, CublasTcEmulation, CublasTcHalf
from ..kernels.egemm import EgemmTcKernel
from ..kernels.sdk import SdkCudaFp32
from ..perf.parallel import parallel_map

__all__ = ["SensitivityPoint", "run_sensitivity"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Headline ratios under one perturbed calibration."""

    label: str
    speedup_vs_fp32: float
    speedup_vs_emulation: float
    latency_hiding: float
    ordering_holds: bool


def _headline(task: tuple[GpuSpec, float, float, int]) -> SensitivityPoint:
    """Headline ratios at one perturbed calibration (pool-picklable)."""
    spec, fp32_eff, tc_eff, n = task
    egemm = EgemmTcKernel()
    egemm_no_hide = EgemmTcKernel(latency_hiding=False)
    fp32 = CublasCudaFp32(efficiency=fp32_eff)
    half = CublasTcHalf(efficiency=tc_eff)
    emu = CublasTcEmulation(half_kernel=half)
    sdk = SdkCudaFp32()

    t_egemm = egemm.tflops(n, n, n, spec)
    t_fp32 = fp32.tflops(n, n, n, spec)
    t_emu = emu.tflops(n, n, n, spec)
    t_sdk = sdk.tflops(n, n, n, spec)
    t_nohide = egemm_no_hide.tflops(n, n, n, spec)
    return SensitivityPoint(
        label=f"hmma={spec.hmma_issue_cycles:.2f} fp32_eff={fp32_eff:.2f} tc_eff={tc_eff:.2f}",
        speedup_vs_fp32=t_egemm / t_fp32,
        speedup_vs_emulation=t_egemm / t_emu,
        latency_hiding=t_egemm / t_nohide,
        ordering_holds=t_egemm > t_emu > t_fp32 > t_sdk,
    )


def run_sensitivity(perturbation: float = 0.2, n: int = 8192) -> list[SensitivityPoint]:
    """Perturb each fitted constant by ±``perturbation``; re-derive ratios.

    One-at-a-time perturbation around the calibrated point (a full grid
    adds nothing: the ratios are monotone in each constant).
    """
    base_hmma = TESLA_T4.hmma_issue_cycles
    base_fp32, base_tc = 0.47, 0.55
    tasks = [(TESLA_T4, base_fp32, base_tc, n)]
    for factor in (1 - perturbation, 1 + perturbation):
        tasks.append(
            (
                TESLA_T4.with_overrides(hmma_issue_cycles=base_hmma * factor),
                base_fp32,
                base_tc,
                n,
            )
        )
        tasks.append((TESLA_T4, base_fp32 * factor, base_tc, n))
        tasks.append((TESLA_T4, base_fp32, base_tc * factor, n))
    # Independent calibration points: fan out when REPRO_JOBS asks for it.
    return parallel_map(_headline, tasks)


def main() -> None:  # pragma: no cover - CLI entry
    from .common import format_table

    points = run_sensitivity()
    rows = [
        [
            p.label,
            f"{p.speedup_vs_fp32:.2f}x",
            f"{p.speedup_vs_emulation:.2f}x",
            f"{p.latency_hiding:.2f}x",
            "yes" if p.ordering_holds else "NO",
        ]
        for p in points
    ]
    print(
        format_table(
            ["calibration", "vs FP32", "vs TC-Emulation", "latency hiding", "ordering"],
            rows,
            "Calibration sensitivity (first row = fitted point; paper: 3.13x / 1.35x / 1.14x).",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
