"""Full reproduction report: run every experiment, render one markdown file.

``python -m repro report`` (or :func:`generate_report`) executes the whole
harness at CI scale and writes a paper-vs-measured markdown document —
the machine-generated counterpart of the hand-written EXPERIMENTS.md, so
a fresh checkout can regenerate its evidence in one command.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.spec import RTX6000, TESLA_T4
from .ablations import (
    run_frag_caching_timed,
    run_model_validation,
    run_overhead_ladder,
    run_register_policy,
)
from .appendix import run_performance_anchors, run_precision_test
from .fig7 import run_fig7
from .fig8 import run_fig8
from .fig9 import run_fig9
from .fig10 import run_fig10
from .fig11 import run_fig11
from .fig12 import run_fig12
from .generality import run_tf32_generality
from .profiling_exp import run_profiling
from .tables import run_table4

__all__ = ["ReportRow", "collect_rows", "generate_report"]


@dataclass(frozen=True)
class ReportRow:
    """One paper-vs-measured claim."""

    claim: str
    paper: str
    measured: str
    ok: bool


def collect_rows(profiling_trials: int = 800) -> list[ReportRow]:
    """Run every experiment at CI scale; return the claim table."""
    rows: list[ReportRow] = []

    prof = run_profiling(trials=profiling_trials)
    rows.append(
        ReportRow(
            "Tensor Core matches d_FLOAT bit-wise (mantissa bits, min)",
            "21",
            str(prof.float_min_bits),
            prof.float_min_bits >= 21,
        )
    )

    f7 = run_fig7(sizes=(128, 256, 512), samples=2)
    rows.append(
        ReportRow(
            "Emulation error reduction vs cuBLAS-TC-Half (avg)",
            "~350x",
            f"{f7.avg_half_over_egemm:.0f}x",
            f7.avg_half_over_egemm > 100,
        )
    )
    rows.append(
        ReportRow(
            "Round- vs truncate-split gap (split level)",
            "2.33x",
            f"{f7.split_level_ratio:.2f}x",
            f7.split_level_ratio > 1.5,
        )
    )

    f8 = run_fig8(TESLA_T4)
    rows.append(
        ReportRow(
            "Speedup vs cuBLAS-CUDA-FP32 (square, T4, avg)",
            "3.13x",
            f"{f8.avg_speedup_vs_fp32:.2f}x",
            2.5 < f8.avg_speedup_vs_fp32 < 3.7,
        )
    )
    rows.append(
        ReportRow(
            "Speedup vs cuBLAS-TC-Emulation (square, T4, avg)",
            "1.35x",
            f"{f8.avg_speedup_vs_emulation:.2f}x",
            1.2 < f8.avg_speedup_vs_emulation < 1.6,
        )
    )
    f8r = run_fig8(RTX6000)
    rows.append(
        ReportRow(
            "Same qualitative picture on RTX 6000 (avg vs FP32)",
            ">1 (similar)",
            f"{f8r.avg_speedup_vs_fp32:.2f}x",
            f8r.avg_speedup_vs_fp32 > 2.0,
        )
    )

    f9 = run_fig9("NxNx2N")
    emu = dict(zip(f9.bases, f9.cublas_tc_emulation.y))
    rows.append(
        ReportRow(
            "K-skew cliff for cuBLAS-TC-Emulation past 4096x4096x8192",
            "slowdown",
            f"{emu[2048]:.1f} -> {emu[4096]:.1f} TFLOPS",
            emu[4096] < emu[2048],
        )
    )

    f10 = run_fig10()
    rows.append(
        ReportRow(
            "Speedup vs SDK-CUDA-FP32 (avg)",
            "11.18x",
            f"{f10.avg_speedup_vs_sdk:.2f}x",
            9 < f10.avg_speedup_vs_sdk < 13,
        )
    )
    rows.append(
        ReportRow(
            "Speedup vs Markidis (avg)",
            "3.0x",
            f"{f10.avg_speedup_vs_markidis:.2f}x",
            2.3 < f10.avg_speedup_vs_markidis < 3.7,
        )
    )

    f11 = run_fig11()
    rows.append(
        ReportRow(
            "Latency-hiding benefit (avg)",
            "1.14x",
            f"{f11.avg_speedup:.2f}x",
            1.05 < f11.avg_speedup < 1.4,
        )
    )

    for app, paper in (("kmeans", "1.3x -> 1.82x"), ("knn", "up to ~2.4x")):
        f12 = run_fig12(app)
        rows.append(
            ReportRow(
                f"{app} end-to-end speedup",
                paper,
                f"{f12.speedup.y[0]:.2f}x -> {f12.max_speedup:.2f}x",
                f12.speedup.y == sorted(f12.speedup.y),
            )
        )

    t4_rows = {r["item"]: r["value"] for r in run_table4()}
    rows.append(
        ReportRow(
            "Analytic solver design choice (Table 4)",
            "(128, 128, 32) / (64, 32, 8)",
            f"{t4_rows['(bm, bn, bk)']} / {t4_rows['(wm, wn, wk)']}",
            t4_rows["(bm, bn, bk)"] == "(128, 128, 32)",
        )
    )

    pt = run_precision_test(n=256)
    rows.append(
        ReportRow(
            "Appendix precision_test error ratio",
            "~0.002 (n=1024)",
            f"{pt.ratio:.4f} (n=256)",
            pt.ratio < 0.01,
        )
    )
    anchors = run_performance_anchors()
    rows.append(
        ReportRow(
            "Appendix throughput anchors (EGEMM/cuBLAS/SDK, TFLOPS)",
            "~12 / ~4 / ~1",
            f"{anchors.egemm:.1f} / {anchors.cublas_fp32:.1f} / {anchors.sdk_fp32:.1f}",
            abs(anchors.egemm - 12) < 1.5,
        )
    )

    ladder = {r.name: r for r in run_overhead_ladder()}
    rows.append(
        ReportRow(
            "Dekker 16-op emulation slower than the fp32 baseline (§1)",
            "inappropriate",
            f"{ladder['Dekker (16 scalar ops)'].tflops:.2f} TFLOPS",
            ladder["Dekker (16 scalar ops)"].tflops < 2.0,
        )
    )
    fc = run_frag_caching_timed()
    rows.append(
        ReportRow("FRAG caching end-to-end benefit", "(Table 2 motivates)", f"{fc['speedup']:.2f}x", fc["speedup"] > 1.2)
    )
    rp = run_register_policy()
    rows.append(
        ReportRow("Stage-reuse vs naive register allocation", "heavy slowdown avoided", f"{rp['speedup']:.2f}x", rp["speedup"] > 1.2)
    )
    mv = run_model_validation()
    rows.append(
        ReportRow(
            "Analytic pick vs simulated-best tiling",
            "no trial-and-error needed",
            f"{mv.gap:.1%} gap",
            mv.gap < 0.10,
        )
    )
    from .ablations import run_ozaki_comparison
    from .traffic_validation import validate_traffic_model

    oz = run_ozaki_comparison()
    oz4 = next(r for r in oz["ladder"] if r.slices == 4)
    rows.append(
        ReportRow(
            "Ozaki int8 extension: 4 slices reach fp32-exact inputs",
            "(successor line, beyond paper)",
            f"{oz4.max_error_vs_exact:.1e} vs EGEMM {oz['egemm_error']:.1e}",
            oz4.max_error_vs_exact < oz["egemm_error"],
        )
    )
    tv = validate_traffic_model(n=1024, iterations=6)
    rows.append(
        ReportRow(
            "DRAM wave-reuse model vs functional L2 simulation",
            "within line-granularity effects",
            f"ratio {tv.ratio:.2f}, L2 hit rate {tv.l2_hit_rate:.0%}",
            0.8 <= tv.ratio <= 2.0,
        )
    )
    gen = run_tf32_generality(trials=150, n=128)
    rows.append(
        ReportRow(
            "Workflow generality: TF32 core profiled + emulated",
            "extendable (§3.1)",
            f"{gen.correct_probe_name}, {gen.error_reduction:.0f}x error reduction",
            gen.correct_probe_name == "d_TF32",
        )
    )

    from ..resilience.campaign import run_campaign

    fc_report = run_campaign(quick=True)
    acc = fc_report["accumulator"]
    rows.append(
        ReportRow(
            "ABFT fault coverage (quick seeded campaign)",
            "(beyond paper: robustness layer)",
            f"{100 * acc['detection_rate']:.0f}% of significant faults, "
            f"{fc_report['summary']['sdc']} SDC",
            fc_report["summary"]["sdc"] == 0
            and acc["detection_rate"] >= 0.99,
        )
    )
    rows.append(
        ReportRow(
            "ABFT false positives on clean sweeps",
            "0",
            str(fc_report["clean_sweeps"]["false_positives"]),
            fc_report["clean_sweeps"]["false_positives"] == 0,
        )
    )
    rows.append(
        ReportRow(
            "ABFT protection overhead (measured wall clock)",
            "O((m+n)/mn) extra work",
            f"{fc_report['overhead']['measured_overhead']:.2f}x",
            fc_report["overhead"]["measured_overhead"] < 1.5,
        )
    )
    return rows


def generate_report(path: str | None = None, profiling_trials: int = 800) -> str:
    """Render (and optionally write) the markdown report."""
    rows = collect_rows(profiling_trials=profiling_trials)
    lines = [
        "# EGEMM-TC reproduction report (machine-generated)",
        "",
        "Regenerated by `python -m repro report`; CI-scale sizes "
        "(see EXPERIMENTS.md for the scaled-size policy).",
        "",
        "| Claim | Paper | Measured | Status |",
        "|---|---|---|---|",
    ]
    for row in rows:
        status = "reproduced" if row.ok else "**DEVIATION**"
        lines.append(f"| {row.claim} | {row.paper} | {row.measured} | {status} |")
    ok = sum(r.ok for r in rows)
    lines += ["", f"{ok}/{len(rows)} claims reproduced."]
    text = "\n".join(lines)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text + "\n")
    return text


def main() -> None:  # pragma: no cover - CLI entry
    print(generate_report())


if __name__ == "__main__":  # pragma: no cover
    main()
