"""Figure 10: comparison with open-source kernels.

TFLOPS of SDK-CUDA-FP32 (the CUDA-SDK matrixMul sample), Markidis (the
truncate-split WMMA emulation), and EGEMM-TC on the square sweep.  Paper
headlines: 11.18x average over the SDK kernel; 3.0x over Markidis even
after hand-tuning, because the CUDA interface cannot express the
SASS-level optimizations (§7.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.spec import TESLA_T4, GpuSpec
from ..kernels.egemm import EgemmTcKernel
from ..kernels.markidis import MarkidisKernel
from ..kernels.sdk import SdkCudaFp32
from .common import DEFAULT_SIZES, Series, format_table, geomean

__all__ = ["Fig10Result", "run_fig10"]


@dataclass
class Fig10Result:
    sizes: tuple[int, ...]
    sdk: Series
    markidis: Series
    egemm: Series

    @property
    def avg_speedup_vs_sdk(self) -> float:
        return geomean(self.egemm.ratio_to(self.sdk))

    @property
    def avg_speedup_vs_markidis(self) -> float:
        return geomean(self.egemm.ratio_to(self.markidis))

    def table(self) -> str:
        rows = [
            [n, f"{s:.2f}", f"{m:.2f}", f"{e:.2f}"]
            for n, s, m, e in zip(self.sizes, self.sdk.y, self.markidis.y, self.egemm.y)
        ]
        return format_table(
            ["N", "SDK-CUDA-FP32", "Markidis", "EGEMM-TC"],
            rows,
            "Figure 10. Comparison with Open-Source Kernels (TFLOPS).",
        )


def run_fig10(spec: GpuSpec = TESLA_T4, sizes: tuple[int, ...] = DEFAULT_SIZES) -> Fig10Result:
    sdk, markidis, egemm = SdkCudaFp32(), MarkidisKernel(), EgemmTcKernel()
    return Fig10Result(
        sizes=tuple(sizes),
        sdk=Series("SDK-CUDA-FP32", sizes, [sdk.tflops(n, n, n, spec) for n in sizes]),
        markidis=Series("Markidis", sizes, [markidis.tflops(n, n, n, spec) for n in sizes]),
        egemm=Series("EGEMM-TC", sizes, [egemm.tflops(n, n, n, spec) for n in sizes]),
    )


def main() -> None:  # pragma: no cover - CLI entry
    result = run_fig10()
    print(result.table())
    print(f"avg speedup vs SDK-CUDA-FP32: {result.avg_speedup_vs_sdk:.2f}x (paper: 11.18x)")
    print(f"avg speedup vs Markidis: {result.avg_speedup_vs_markidis:.2f}x (paper: 3.0x)")


if __name__ == "__main__":  # pragma: no cover
    main()
