"""Figure 11: benefit of register-enhanced instruction scheduling (§5.1).

EGEMM-TC with and without the SASS-level latency-hiding schedule —
identical instruction counts, different issue order and dependency
structure (Figure 6).  The paper reports a 1.14x average speedup; the
gap comes from the exposed LDG/STS issue slots and the end-of-iteration
store/barrier landing on the critical path when loads cannot be hoisted
above the HMMAs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.spec import TESLA_T4, GpuSpec
from ..kernels.egemm import EgemmTcKernel
from .common import DEFAULT_SIZES, Series, format_table, geomean

__all__ = ["Fig11Result", "run_fig11"]


@dataclass
class Fig11Result:
    sizes: tuple[int, ...]
    without_hiding: Series
    with_hiding: Series

    @property
    def avg_speedup(self) -> float:
        return geomean(self.with_hiding.ratio_to(self.without_hiding))

    def table(self) -> str:
        rows = [
            [n, f"{wo:.2f}", f"{w:.2f}", f"{w / wo:.3f}x"]
            for n, wo, w in zip(self.sizes, self.without_hiding.y, self.with_hiding.y)
        ]
        return format_table(
            ["N", "w/o Latency Hiding", "w/ Latency Hiding", "speedup"],
            rows,
            "Figure 11. Benefit of Latency Hiding (TFLOPS).",
        )


def run_fig11(spec: GpuSpec = TESLA_T4, sizes: tuple[int, ...] = DEFAULT_SIZES) -> Fig11Result:
    with_h = EgemmTcKernel(latency_hiding=True)
    without_h = EgemmTcKernel(latency_hiding=False)
    return Fig11Result(
        sizes=tuple(sizes),
        without_hiding=Series("w/o Latency Hiding", sizes, [without_h.tflops(n, n, n, spec) for n in sizes]),
        with_hiding=Series("w/ Latency Hiding", sizes, [with_h.tflops(n, n, n, spec) for n in sizes]),
    )


def main() -> None:  # pragma: no cover - CLI entry
    result = run_fig11()
    print(result.table())
    print(f"avg speedup from instruction scheduling: {result.avg_speedup:.2f}x (paper: 1.14x)")


if __name__ == "__main__":  # pragma: no cover
    main()
