"""Figure 6 visualization: the latency-hiding schedule, rendered.

Not a measured figure — Figure 6 in the paper is a schematic — but this
experiment makes the reproduction's scheduling *visible*: it renders the
timing simulator's actual issue timeline for both instruction orders and
prints the SASS listing head for each, so the Figure 6 story can be
inspected instruction by instruction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.scheduler import schedule
from ..gpu.spec import TESLA_T4, GpuSpec
from ..gpu.timeline import render_timeline
from ..tensorize.codegen import generate_iteration_sass
from ..tensorize.kernel import build_gemm_stream
from ..tensorize.plan import TensorizationPlan
from ..tensorize.tiling import T4_TILING

__all__ = ["Fig6Result", "run_fig6"]


@dataclass
class Fig6Result:
    """Rendered timelines + cycle counts of both schedules."""

    pipelined_timeline: str
    naive_timeline: str
    pipelined_cycles: float
    naive_cycles: float
    pipelined_sass_head: str
    naive_sass_head: str

    @property
    def speedup(self) -> float:
        return self.naive_cycles / self.pipelined_cycles


def run_fig6(n: int = 512, spec: GpuSpec = TESLA_T4, width: int = 96) -> Fig6Result:
    """Render a few iterations of the EGEMM kernel under both schedules."""
    plan = TensorizationPlan(n, n, n, T4_TILING)
    results = {}
    for hiding in (True, False):
        stream = build_gemm_stream(plan, latency_hiding=hiding)
        timing = schedule(stream, spec)
        sass = generate_iteration_sass(latency_hiding=hiding)
        results[hiding] = (
            render_timeline(stream, spec, width=width),
            timing.total_cycles,
            "\n".join(sass.render().splitlines()[:10]),
        )
    return Fig6Result(
        pipelined_timeline=results[True][0],
        naive_timeline=results[False][0],
        pipelined_cycles=results[True][1],
        naive_cycles=results[False][1],
        pipelined_sass_head=results[True][2],
        naive_sass_head=results[False][2],
    )


def main() -> None:  # pragma: no cover - CLI entry
    result = run_fig6()
    print("=== with register-enhanced instruction scheduling (Figure 6, right) ===")
    print(result.pipelined_timeline)
    print(f"\nblock time: {result.pipelined_cycles:,.0f} cycles")
    print("\nSASS head (pipelined):")
    print(result.pipelined_sass_head)
    print("\n=== without scheduling (Figure 6, left) ===")
    print(result.naive_timeline)
    print(f"\nblock time: {result.naive_cycles:,.0f} cycles")
    print(f"\nschedule speedup on this block: {result.speedup:.2f}x")


if __name__ == "__main__":  # pragma: no cover
    main()
