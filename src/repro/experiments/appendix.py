"""Appendix A.3 experiments: the artifact's three step-by-step programs.

* ``precision_profiling`` — covered by :mod:`repro.experiments.profiling_exp`
  (scalar triples + the 21-mantissa-bit conclusion);
* ``precision_test`` — N = 1024 square GEMM: emulation max error,
  half-cuBLAS max error, and their ratio (the artifact prints ~0.00025,
  ~0.135, ratio ~0.0019 — "error reduced by more than 500x");
* ``performance anchors`` — the artifact's expected throughputs on T4 at
  8192^3: EGEMM ~12 TFLOPS, cublas_CUDA_FP32 ~4, SDK_CUDA_FP32 ~1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..emulation.gemm import EmulatedGemm, reference_single
from ..emulation.schemes import EGEMM, HALF
from ..fp.error import error_ratio, max_error
from ..gpu.spec import TESLA_T4, GpuSpec
from ..kernels.cublas import CublasCudaFp32
from ..kernels.egemm import EgemmTcKernel
from ..kernels.sdk import SdkCudaFp32

__all__ = ["PrecisionTestResult", "run_precision_test", "PerformanceAnchors", "run_performance_anchors"]


@dataclass
class PrecisionTestResult:
    """Output of the artifact's ``precision_test`` program."""

    n: int
    max_emulation_error: float
    max_half_cublas_error: float

    @property
    def ratio(self) -> float:
        """Max_Emulation_Error / Max_Half_cuBLAS_Error (artifact: ~0.0019)."""
        return error_ratio(self.max_emulation_error, self.max_half_cublas_error)

    def lines(self) -> list[str]:
        return [
            f"m*n*k: {self.n}.",
            f"max Emulation Error: {self.max_emulation_error:.8f}",
            f"max Half cuBLAS Error: {self.max_half_cublas_error:.8f}",
            f"Ratio (Max_Emulation_Error/Max_Half_cuBLAS_Error): {self.ratio:.8f}",
        ]


def run_precision_test(n: int = 1024, seed: int = 0) -> PrecisionTestResult:
    """The artifact's precision_test at size ``n`` (default: its 1024)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, (n, n)).astype(np.float32)
    b = rng.uniform(-1.0, 1.0, (n, n)).astype(np.float32)
    ref = reference_single(a, b)
    emu = EmulatedGemm(scheme=EGEMM)(a, b)
    half = EmulatedGemm(scheme=HALF)(a, b)
    return PrecisionTestResult(
        n=n,
        max_emulation_error=max_error(emu, ref),
        max_half_cublas_error=max_error(half, ref),
    )


@dataclass
class PerformanceAnchors:
    """The artifact's expected T4 throughputs at 8192^3 (TFLOPS)."""

    egemm: float
    cublas_fp32: float
    sdk_fp32: float

    def lines(self) -> list[str]:
        return [
            f"emulation (EGEMM-TC): {self.egemm:.1f} TFLOPS (artifact: ~12)",
            f"cublas_CUDA_FP32: {self.cublas_fp32:.1f} TFLOPS (artifact: ~4)",
            f"SDK_CUDA_FP32: {self.sdk_fp32:.1f} TFLOPS (artifact: ~1)",
        ]


def run_performance_anchors(n: int = 8192, spec: GpuSpec = TESLA_T4) -> PerformanceAnchors:
    return PerformanceAnchors(
        egemm=EgemmTcKernel().tflops(n, n, n, spec),
        cublas_fp32=CublasCudaFp32().tflops(n, n, n, spec),
        sdk_fp32=SdkCudaFp32().tflops(n, n, n, spec),
    )


def main() -> None:  # pragma: no cover - CLI entry
    print("\n".join(run_precision_test().lines()))
    print()
    print("\n".join(run_performance_anchors().lines()))


if __name__ == "__main__":  # pragma: no cover
    main()
