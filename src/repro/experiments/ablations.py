"""Ablation studies for the design choices DESIGN.md calls out.

Beyond the paper's own figures, these experiments probe the decisions the
paper asserts but does not sweep:

* **A1 — emulation overhead ladder**: half (1 call) / EGEMM-TC (4) /
  three-term (9) / Dekker (16 scalar ops): precision vs throughput.
* **A2 — FRAG caching, timed**: §4's optimization as end-to-end TFLOPS
  (Table 2 only counts bytes).
* **A3 — register allocation**: the §5.2 stage-reuse policy vs the naive
  policy whose spills round-trip through local memory.
* **A4 — analytic model validation**: time *every* feasible tiling on
  the simulator and check where the Eq. 8 solver's pick lands — the
  quantified version of §6's "without trial-and-error" claim.
* **A6 — the integer-pipe successor**: the Ozaki int8 scheme
  (:mod:`repro.splits.ozaki`) against the paper's fp16 design, precision
  per specialized-core call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..emulation.extended import EGEMM3
from ..emulation.gemm import EmulatedGemm, reference_exact
from ..emulation.schemes import EGEMM, HALF
from ..fp.error import max_error
from ..gpu.spec import TESLA_T4, GpuSpec
from ..kernels.dekker import DekkerCudaKernel
from ..kernels.egemm import EgemmTcKernel
from ..model.solver import DesignSpace, solve
from ..splits.dekker import dekker_gemm
from .common import format_table

__all__ = [
    "OzakiRung",
    "run_ozaki_comparison",
    "OverheadRung",
    "run_overhead_ladder",
    "run_frag_caching_timed",
    "run_register_policy",
    "ModelValidation",
    "run_model_validation",
]


@dataclass(frozen=True)
class OverheadRung:
    """One point on the precision/overhead ladder."""

    name: str
    core_calls: int
    effective_bits: int
    max_error_vs_exact: float
    tflops: float


def run_overhead_ladder(n: int = 128, seed: int = 0, spec: GpuSpec = TESLA_T4) -> list[OverheadRung]:
    """A1: precision and simulated throughput of each emulation depth."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, (n, n)).astype(np.float32)
    b = rng.uniform(-1.0, 1.0, (n, n)).astype(np.float32)
    exact = reference_exact(a, b)
    big = 4096  # timing shape

    rungs = [
        OverheadRung(
            name="half (1 call)",
            core_calls=1,
            effective_bits=10,
            max_error_vs_exact=max_error(EmulatedGemm(scheme=HALF)(a, b), exact),
            tflops=EgemmTcKernel(scheme=HALF).tflops(big, big, big, spec),
        ),
        OverheadRung(
            name="EGEMM-TC (4 calls)",
            core_calls=4,
            effective_bits=21,
            max_error_vs_exact=max_error(EmulatedGemm(scheme=EGEMM)(a, b), exact),
            tflops=EgemmTcKernel(scheme=EGEMM).tflops(big, big, big, spec),
        ),
        OverheadRung(
            name="three-term (9 calls)",
            core_calls=9,
            effective_bits=24,
            max_error_vs_exact=max_error(EmulatedGemm(scheme=EGEMM3)(a, b), exact),
            tflops=EgemmTcKernel(scheme=EGEMM3).tflops(big, big, big, spec),
        ),
        OverheadRung(
            name="Dekker (16 scalar ops)",
            core_calls=16,
            effective_bits=20,
            max_error_vs_exact=max_error(
                dekker_gemm(a[:32, :32], b[:32, :32]),
                reference_exact(a[:32, :32], b[:32, :32]),
            ),
            tflops=DekkerCudaKernel().tflops(big, big, big, spec),
        ),
    ]
    return rungs


@dataclass(frozen=True)
class OzakiRung:
    """One precision/cost point of the int8 Ozaki ladder."""

    slices: int
    imma_calls: int
    max_error_vs_exact: float


def run_ozaki_comparison(n: int = 96, seed: int = 0) -> dict[str, object]:
    """A6: Ozaki int8 ladder vs the paper's fp16 round-split emulation.

    The comparison the ozIMMU line of work later made standard: at 3
    slices (9 exact IMMA calls) the integer scheme lands in the paper's
    round-split precision class; at 4 it represents the fp32 inputs
    exactly — the headroom fp16's subnormal range denies the 9-call
    three-term fp16 design (ablation A1).
    """
    from ..splits.ozaki import ozaki_gemm

    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, (n, n)).astype(np.float32)
    b = rng.uniform(-1.0, 1.0, (n, n)).astype(np.float32)
    exact = reference_exact(a, b)
    ladder = [
        OzakiRung(
            slices=s,
            imma_calls=s * s,
            max_error_vs_exact=max_error(ozaki_gemm(a, b, slices=s), exact),
        )
        for s in (2, 3, 4)
    ]
    egemm_err = max_error(EmulatedGemm(scheme=EGEMM)(a, b), exact)
    return {"ladder": ladder, "egemm_error": egemm_err}


def run_frag_caching_timed(n: int = 8192, spec: GpuSpec = TESLA_T4) -> dict[str, float]:
    """A2: end-to-end TFLOPS with and without intra-warp FRAG caching."""
    with_c = EgemmTcKernel(frag_caching=True).tflops(n, n, n, spec)
    without_c = EgemmTcKernel(frag_caching=False).tflops(n, n, n, spec)
    return {"with_caching": with_c, "without_caching": without_c, "speedup": with_c / without_c}


def run_register_policy(n: int = 8192, spec: GpuSpec = TESLA_T4) -> dict[str, float]:
    """A3: stage-reuse vs naive register allocation (spill slowdown)."""
    reuse = EgemmTcKernel(register_policy="stage-reuse").tflops(n, n, n, spec)
    naive = EgemmTcKernel(register_policy="naive").tflops(n, n, n, spec)
    return {"stage_reuse": reuse, "naive": naive, "speedup": reuse / naive}


@dataclass
class ModelValidation:
    """A4 result: the solver's pick vs the simulated-best tiling."""

    solver_tflops: float
    best_tflops: float
    best_config: str
    solver_config: str
    configs_timed: int
    solver_rank: int  # 1 = simulated-best

    @property
    def gap(self) -> float:
        """Fractional throughput left on the table by the analytic pick."""
        return 1.0 - self.solver_tflops / self.best_tflops


def run_model_validation(
    n: int = 4096, spec: GpuSpec = TESLA_T4, space: DesignSpace | None = None
) -> ModelValidation:
    """A4: exhaustively simulate every feasible tiling; rank the solver pick."""
    result = solve(spec, space=space, keep_candidates=True)
    feasible = [c.config for c in result.candidates if c.feasible]
    timed = []
    for cfg in feasible:
        tflops = EgemmTcKernel(tiling=cfg).tflops(n, n, n, spec)
        timed.append((tflops, cfg))
    timed.sort(key=lambda t: -t[0])
    solver_tflops = EgemmTcKernel(tiling=result.best).tflops(n, n, n, spec)
    rank = 1 + next(i for i, (_, cfg) in enumerate(timed) if cfg == result.best)
    return ModelValidation(
        solver_tflops=solver_tflops,
        best_tflops=timed[0][0],
        best_config=str(timed[0][1]),
        solver_config=str(result.best),
        configs_timed=len(timed),
        solver_rank=rank,
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(
        format_table(
            ["Scheme", "core calls", "bits", "max err vs exact", "TFLOPS @4096^3"],
            [
                [r.name, r.core_calls, r.effective_bits, f"{r.max_error_vs_exact:.2e}", f"{r.tflops:.2f}"]
                for r in run_overhead_ladder()
            ],
            "A1. Emulation overhead ladder (precision vs throughput).",
        )
    )
    fc = run_frag_caching_timed()
    print(f"\nA2. FRAG caching: {fc['without_caching']:.2f} -> {fc['with_caching']:.2f} TFLOPS "
          f"({fc['speedup']:.2f}x)")
    rp = run_register_policy()
    print(f"A3. Register allocation: naive {rp['naive']:.2f} -> stage-reuse {rp['stage_reuse']:.2f} "
          f"TFLOPS ({rp['speedup']:.2f}x)")
    mv = run_model_validation()
    print(
        f"A4. Analytic model: pick {mv.solver_config} ranks #{mv.solver_rank} of "
        f"{mv.configs_timed} simulated configs ({mv.gap:.1%} below the simulated best)"
    )
    oz = run_ozaki_comparison()
    ladder = ", ".join(
        f"{r.slices} slices ({r.imma_calls} calls): {r.max_error_vs_exact:.1e}"
        for r in oz["ladder"]
    )
    print(f"A6. Ozaki int8 ladder: {ladder}  |  EGEMM-TC (4 calls): {oz['egemm_error']:.1e}")


if __name__ == "__main__":  # pragma: no cover
    main()
