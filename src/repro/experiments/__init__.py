"""Experiment harness: one module per paper table/figure (see DESIGN.md's
per-experiment index).  Each module exposes ``run_*`` returning structured
results and a ``main()`` that prints the table/series."""

from .ablations import (
    ModelValidation,
    OverheadRung,
    run_frag_caching_timed,
    run_model_validation,
    run_overhead_ladder,
    run_register_policy,
)
from .appendix import (
    PerformanceAnchors,
    PrecisionTestResult,
    run_performance_anchors,
    run_precision_test,
)
from .common import DEFAULT_SIZES, FULL_PAPER_SIZES, Series, format_table, geomean
from .fig6 import Fig6Result, run_fig6
from .fig7 import DEFAULT_FIG7_SIZES, PAPER_FIG7_SIZES, Fig7Result, run_fig7
from .fig8 import Fig8Result, run_fig8
from .fig9 import DEFAULT_SKEW_BASES, Fig9Result, run_fig9
from .fig10 import Fig10Result, run_fig10
from .fig11 import Fig11Result, run_fig11
from .fig12 import DEFAULT_POINTS, Fig12Result, run_fig12
from .generality import GeneralityResult, run_tf32_generality
from .profiling_exp import PAPER_TRIALS, ProfilingExperiment, run_profiling
from .report import ReportRow, collect_rows, generate_report
from .sensitivity import SensitivityPoint, run_sensitivity
from .traffic_validation import TrafficValidation, validate_traffic_model
from .tables import (
    format_all_tables,
    run_table1,
    run_table2,
    run_table2_measured,
    run_table3,
    run_table4,
    run_table5,
)

__all__ = [
    "ModelValidation",
    "OverheadRung",
    "run_frag_caching_timed",
    "run_model_validation",
    "run_overhead_ladder",
    "run_register_policy",
    "GeneralityResult",
    "run_tf32_generality",
    "PerformanceAnchors",
    "PrecisionTestResult",
    "run_performance_anchors",
    "run_precision_test",
    "DEFAULT_SIZES",
    "FULL_PAPER_SIZES",
    "Series",
    "format_table",
    "geomean",
    "Fig6Result",
    "run_fig6",
    "DEFAULT_FIG7_SIZES",
    "PAPER_FIG7_SIZES",
    "Fig7Result",
    "run_fig7",
    "Fig8Result",
    "run_fig8",
    "DEFAULT_SKEW_BASES",
    "Fig9Result",
    "run_fig9",
    "Fig10Result",
    "run_fig10",
    "Fig11Result",
    "run_fig11",
    "DEFAULT_POINTS",
    "Fig12Result",
    "run_fig12",
    "TrafficValidation",
    "validate_traffic_model",
    "SensitivityPoint",
    "run_sensitivity",
    "ReportRow",
    "collect_rows",
    "generate_report",
    "PAPER_TRIALS",
    "ProfilingExperiment",
    "run_profiling",
    "format_all_tables",
    "run_table1",
    "run_table2",
    "run_table2_measured",
    "run_table3",
    "run_table4",
    "run_table5",
]
