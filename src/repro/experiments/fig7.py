"""Figure 7: emulation precision — max error vs single precision (Eq. 10).

Square N x N x N GEMMs with values sampled uniformly from [-1, +1];
for each size, the max absolute elementwise deviation from the
single-precision result for

* EGEMM-TC (round-split emulation),
* Markidis (truncate-split emulation),
* cuBLAS-TC-Half (plain half-precision Tensor Core GEMM).

The paper reports: 350x average error reduction of EGEMM-TC vs
cuBLAS-TC-Half, 82x at N=8192, and 2.33x vs Markidis (the round-split
bit).  Errors grow slowly with N as the emulation error accumulates over
the N-term dot products (§7.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..emulation.gemm import EmulatedGemm, reference_single
from ..emulation.schemes import EGEMM, HALF, MARKIDIS
from ..fp.error import max_error
from .common import Series, format_table, geomean

__all__ = ["Fig7Result", "run_fig7", "DEFAULT_FIG7_SIZES", "PAPER_FIG7_SIZES"]

#: CI-friendly subset of the paper's sweep (errors scale smoothly with N)
DEFAULT_FIG7_SIZES = (128, 256, 512, 1024)
#: the paper's full Figure 7 x-axis
PAPER_FIG7_SIZES = (128, 256, 512, 1024, 2048, 4096, 8192)


@dataclass
class Fig7Result:
    """Max-error series per kernel plus the paper's headline ratios."""

    sizes: tuple[int, ...]
    egemm: Series
    markidis: Series
    half: Series
    #: round-split vs truncate-split measured at the *split* level
    #: (reconstruction residual through an exact product) — the pure
    #: Figure 4 effect, undiluted by accumulator/reference rounding
    split_level_ratio: float = 0.0
    samples: int = 1

    @property
    def avg_half_over_egemm(self) -> float:
        """Paper: ~350x average error reduction vs cuBLAS-TC-Half."""
        return geomean(h / e for h, e in zip(self.half.y, self.egemm.y))

    @property
    def avg_markidis_over_egemm(self) -> float:
        """Paper: ~2.33x error reduction vs Markidis (round vs truncate).

        In this reproduction the end-to-end ratio is smaller (~1.1x):
        the Eq. 10 metric compares against the fp32 reference, whose own
        accumulation error is common to both schemes and — because our
        simulated accumulator is exactly-rounded — dominates the split
        residuals.  ``split_level_ratio`` isolates the split effect and
        lands at ~2-3x, confirming the 1-extra-bit claim (recorded in
        EXPERIMENTS.md).
        """
        return geomean(m / e for m, e in zip(self.markidis.y, self.egemm.y))

    def table(self) -> str:
        rows = [
            [n, f"{e:.3e}", f"{m:.3e}", f"{h:.3e}"]
            for n, e, m, h in zip(self.sizes, self.egemm.y, self.markidis.y, self.half.y)
        ]
        return format_table(
            ["N", "EGEMM-TC", "Markidis", "cuBLAS-TC-Half"],
            rows,
            "Figure 7. Emulation Precision (max error vs single precision).",
        )


def run_fig7(
    sizes: tuple[int, ...] = DEFAULT_FIG7_SIZES, seed: int = 0, samples: int = 1, tk: int = 16
) -> Fig7Result:
    """Measure Eq. 10 max errors over ``sizes``; averages over ``samples``
    independent matrices per size (the paper averages over 10 runs)."""
    rng = np.random.default_rng(seed)
    errs = {name: [] for name in ("egemm", "markidis", "half")}
    gemms = {
        "egemm": EmulatedGemm(scheme=EGEMM, tk=tk),
        "markidis": EmulatedGemm(scheme=MARKIDIS, tk=tk),
        "half": EmulatedGemm(scheme=HALF, tk=tk),
    }

    # Split-level comparison (the pure Figure 4 effect): reconstruct each
    # split and multiply exactly, so only the split residuals differ.
    n0 = sizes[-1]
    a0 = rng.uniform(-1.0, 1.0, (n0, n0)).astype(np.float32)
    b0 = rng.uniform(-1.0, 1.0, (n0, n0)).astype(np.float32)
    exact = a0.astype(np.float64) @ b0.astype(np.float64)
    split_err = {}
    for name, scheme in (("egemm", EGEMM), ("markidis", MARKIDIS)):
        pa, pb = scheme.split_operands(a0, b0)
        split_err[name] = max_error(pa.reconstruct() @ pb.reconstruct(), exact)
    split_level_ratio = split_err["markidis"] / split_err["egemm"]

    for n in sizes:
        acc = {name: 0.0 for name in errs}
        for _ in range(samples):
            a = rng.uniform(-1.0, 1.0, (n, n)).astype(np.float32)
            b = rng.uniform(-1.0, 1.0, (n, n)).astype(np.float32)
            ref = reference_single(a, b)
            for name, gemm in gemms.items():
                acc[name] += max_error(gemm(a, b), ref)
        for name in errs:
            errs[name].append(acc[name] / samples)

    return Fig7Result(
        sizes=tuple(sizes),
        egemm=Series("EGEMM-TC", sizes, errs["egemm"]),
        markidis=Series("Markidis", sizes, errs["markidis"]),
        half=Series("cuBLAS-TC-Half", sizes, errs["half"]),
        split_level_ratio=split_level_ratio,
        samples=samples,
    )


def main() -> None:  # pragma: no cover - CLI entry
    # The CLI default stops at 2048: the functional simulator is O(N^3)
    # on CPU and the trend is smooth (EXPERIMENTS.md's scaled-size
    # policy).  Pass PAPER_FIG7_SIZES to run_fig7 for the full sweep.
    result = run_fig7(sizes=(128, 256, 512, 1024, 2048), samples=2)
    print(result.table())
    print(f"\navg error reduction vs cuBLAS-TC-Half: {result.avg_half_over_egemm:.0f}x (paper: ~350x)")
    print(f"avg error reduction vs Markidis (end-to-end): {result.avg_markidis_over_egemm:.2f}x (paper: 2.33x)")
    print(f"round vs truncate at the split level: {result.split_level_ratio:.2f}x (the 1-extra-bit effect)")


if __name__ == "__main__":  # pragma: no cover
    main()
