"""Experiment E2: Tensor Core precision profiling (Figures 2-3, Appendix).

Runs the generalized emulation design workflow against the simulated
Tensor Core: 10,000 randomized half-precision tiles (the paper's trial
count; reducible for CI), bit-wise comparison against the probing compute
primitives, and the verdict that the core's internal operation supports
extended precision (d_FLOAT agrees to >= 21 mantissa bits on every trial
while d_HALF diverges immediately).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..profiling.generator import TileGenerator
from ..profiling.report import format_profiling_report
from ..profiling.workflow import EXTENDED_PRECISION_BITS, PrecisionProfiler, ProfilingResult

__all__ = ["ProfilingExperiment", "run_profiling"]

#: the paper's trial count ("we randomly generate 10,000 groups of data")
PAPER_TRIALS = 10_000


@dataclass
class ProfilingExperiment:
    """Structured outcome of E2 for benchmarks and EXPERIMENTS.md."""

    result: ProfilingResult
    trials: int

    @property
    def float_min_bits(self) -> int:
        return next(a for a in self.result.agreements if a.probe.name == "d_FLOAT").min_bits

    @property
    def half_min_bits(self) -> int:
        return next(a for a in self.result.agreements if a.probe.name == "d_HALF").min_bits

    @property
    def half_mean_bits(self) -> float:
        return next(a for a in self.result.agreements if a.probe.name == "d_HALF").mean_bits

    @property
    def supports_extended_precision(self) -> bool:
        """The paper's headline profiling claim."""
        return self.float_min_bits >= EXTENDED_PRECISION_BITS

    def report(self) -> str:
        return format_profiling_report(self.result)


def run_profiling(trials: int = 1000, seed: int = 0) -> ProfilingExperiment:
    """Run E2 with ``trials`` random 16x16x16 tiles (paper: 10,000)."""
    profiler = PrecisionProfiler()
    result = profiler.run(trials=trials, generator=TileGenerator(seed=seed))
    return ProfilingExperiment(result=result, trials=trials)


def main() -> None:  # pragma: no cover - CLI entry
    exp = run_profiling(trials=PAPER_TRIALS)
    print(exp.report())


if __name__ == "__main__":  # pragma: no cover
    main()
