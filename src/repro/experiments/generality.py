"""Workflow-generality experiment: the TF32 core (§3.1's extendability).

The paper claims its emulation design workflow "can be generally applied
towards various accelerators and specialized cores."  This experiment
substantiates that with a second simulated core — an Ampere-style TF32
unit — by running the *same* :class:`PrecisionProfiler` with TF32
probing primitives and then transplanting Algorithm 1 onto the core:

1. profiling identifies the correct hypothesis (inputs reduced to 10
   mantissa bits, wide internal multiply) and rejects the full-fp32 one;
2. the round-split + 4-call emulation recovers >= 21 mantissa bits on
   the new core, with no exponent-range hazard.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fp.error import max_error
from ..profiling.generator import TileGenerator
from ..profiling.workflow import PrecisionProfiler, ProfilingResult
from ..tensorcore.tf32 import emulated_gemm_tf32, tf32_mma, tf32_probes

__all__ = ["GeneralityResult", "run_tf32_generality"]


@dataclass
class GeneralityResult:
    """Profiling verdict + emulation precision on the TF32 core."""

    profiling: ProfilingResult
    emulation_max_error: float
    plain_tf32_max_error: float
    n: int

    @property
    def correct_probe_name(self) -> str:
        return self.profiling.best_probe().probe.name

    @property
    def full_fp32_rejected(self) -> bool:
        agreement = next(
            a for a in self.profiling.agreements if a.probe.name == "d_FP32FULL"
        )
        return agreement.min_bits < 21

    @property
    def error_reduction(self) -> float:
        return self.plain_tf32_max_error / self.emulation_max_error


def run_tf32_generality(trials: int = 300, n: int = 256, seed: int = 0) -> GeneralityResult:
    """Run the full workflow against the simulated TF32 core."""
    # Step 1: precision profiling with TF32 hypotheses.  Inputs are fp32
    # (the TF32 core takes fp32 storage), so the generator's half rounding
    # is bypassed by regenerating single-precision tiles.
    profiler = PrecisionProfiler(hardware=tf32_mma, probes=tf32_probes())
    gen = TileGenerator(seed=seed)

    # The profiler's stock loop feeds half-precision tiles; the TF32
    # core's natural input is fp32, so the comparison loop is inlined
    # here over fp32 tiles (same aggregation as PrecisionProfiler.run).
    mins = {p.name: 24 for p in profiler.probes}
    from ..fp.bits import mantissa_bits_agreement
    from ..profiling.workflow import ProbeAgreement

    sums = {p.name: 0.0 for p in profiler.probes}
    identical = {p.name: 0 for p in profiler.probes}
    count = 0
    for _ in range(trials):
        a, b = gen.single_inputs()
        d_hw = tf32_mma(a, b)
        for probe in profiler.probes:
            d_probe = np.asarray(probe.compute(a, b, None), dtype=np.float32)
            bits = mantissa_bits_agreement(d_hw, d_probe)
            mins[probe.name] = min(mins[probe.name], int(bits.min()))
            sums[probe.name] += float(bits.mean())
            identical[probe.name] += int(np.count_nonzero(bits == 24))
        count += d_hw.size
    profiling = ProfilingResult(
        agreements=[
            ProbeAgreement(
                probe=p,
                min_bits=mins[p.name],
                mean_bits=sums[p.name] / trials,
                identical_fraction=identical[p.name] / count,
                trials=trials,
            )
            for p in profiler.probes
        ]
    )

    # Step 2: emulation design on the TF32 core.
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, (n, n)).astype(np.float32)
    b = rng.uniform(-1.0, 1.0, (n, n)).astype(np.float32)
    exact = a.astype(np.float64) @ b.astype(np.float64)
    emulated = emulated_gemm_tf32(a, b)
    plain = tf32_mma(a, b)
    return GeneralityResult(
        profiling=profiling,
        emulation_max_error=max_error(emulated, exact),
        plain_tf32_max_error=max_error(plain, exact),
        n=n,
    )


def main() -> None:  # pragma: no cover - CLI entry
    result = run_tf32_generality()
    print("TF32-core profiling:")
    for a in result.profiling.agreements:
        print(f"  {a.probe.name:<12} min bits {a.min_bits:>2}  mean {a.mean_bits:.2f}")
    print(f"correct hypothesis: {result.correct_probe_name}")
    print(f"full-fp32 hypothesis rejected: {result.full_fp32_rejected}")
    print(
        f"\nTF32 emulation at n={result.n}: max error {result.emulation_max_error:.3e} "
        f"vs plain TF32 {result.plain_tf32_max_error:.3e} "
        f"({result.error_reduction:.0f}x reduction)"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
