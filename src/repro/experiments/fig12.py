"""Figure 12: GEMM-based scientific computing acceleration (§7.5).

End-to-end speedup of kMeans (Fig. 12a) and kNN (Fig. 12b) when the
GEMM inside the open-source implementations is swapped from
``cublasSgemm`` to EGEMM-TC, over the 2048..16384 data-point sweep.

Paper observations: speedups grow with data size (both because EGEMM's
GEMM advantage grows and because GEMM takes a larger share of runtime),
reaching ~1.82x for kMeans and ~2.4x for kNN at 16384 points.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.kmeans import KMeansWorkload
from ..apps.knn import KnnWorkload
from ..gpu.spec import TESLA_T4, GpuSpec
from ..perf.parallel import parallel_map
from .common import Series, format_table, geomean

__all__ = ["Fig12Result", "run_fig12", "DEFAULT_POINTS"]

#: the paper's x-axis: number of data points
DEFAULT_POINTS = (2048, 4096, 8192, 12288, 16384)

_WORKLOADS = {"kmeans": KMeansWorkload, "knn": KnnWorkload}


def _fig12_point(task: tuple[str, GpuSpec, int]) -> tuple[float, float]:
    """(speedup, baseline GEMM share) at one size (pool-picklable)."""
    app, spec, n = task
    base, _fast, s = _WORKLOADS[app]().speedup(n, spec)
    return s, base.gemm_fraction


@dataclass
class Fig12Result:
    app: str
    points: tuple[int, ...]
    speedup: Series
    baseline_gemm_fraction: list[float]

    @property
    def avg_speedup(self) -> float:
        return geomean(self.speedup.y)

    @property
    def max_speedup(self) -> float:
        return max(self.speedup.y)

    def table(self) -> str:
        rows = [
            [n, f"{s:.2f}x", f"{f:.0%}"]
            for n, s, f in zip(self.points, self.speedup.y, self.baseline_gemm_fraction)
        ]
        return format_table(
            ["Data Points", "EGEMM-TC speedup", "baseline GEMM share"],
            rows,
            f"Figure 12 ({self.app}). Scientific Computing Acceleration.",
        )


def run_fig12(
    app: str = "kmeans", spec: GpuSpec = TESLA_T4, points: tuple[int, ...] = DEFAULT_POINTS
) -> Fig12Result:
    """Sweep one application's end-to-end speedup model."""
    if app not in _WORKLOADS:
        raise ValueError(f"unknown app {app!r}; use 'kmeans' or 'knn'")
    rows = parallel_map(_fig12_point, [(app, spec, n) for n in points])
    speedups = [r[0] for r in rows]
    fractions = [r[1] for r in rows]
    return Fig12Result(
        app=app,
        points=tuple(points),
        speedup=Series(f"{app} speedup", points, speedups),
        baseline_gemm_fraction=fractions,
    )


def main() -> None:  # pragma: no cover - CLI entry
    for app, paper in (("kmeans", "1.3x -> 1.82x"), ("knn", "up to ~2.4x")):
        result = run_fig12(app)
        print(result.table())
        print(f"avg speedup: {result.avg_speedup:.2f}x, max: {result.max_speedup:.2f}x (paper: {paper})\n")


if __name__ == "__main__":  # pragma: no cover
    main()
