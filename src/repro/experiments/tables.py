"""Table experiments: regenerate Tables 1-5 of the paper.

* Table 1 — precision specifications (from :mod:`repro.fp.formats`),
* Table 2 — per-warp memory traffic with/without FRAG caching, both the
  analytic expressions and a *measured* validation from the functional
  kernel,
* Table 3 — the T4 resource budget,
* Table 4 — the analytic solver's design choice,
* Table 5 — the baseline-kernel inventory.
"""

from __future__ import annotations

import numpy as np

from ..fp.formats import table1_rows
from ..gpu.spec import TESLA_T4, GpuSpec, table3_rows
from ..kernels.registry import table5_rows
from ..model.solver import table4_rows
from ..tensorize.kernel import run_functional
from ..tensorize.plan import table2_rows
from ..tensorize.tiling import T4_TILING, TilingConfig
from .common import format_table

__all__ = [
    "run_table1",
    "run_table2",
    "run_table2_measured",
    "run_table3",
    "run_table4",
    "run_table5",
    "format_all_tables",
]


def run_table1() -> list[dict[str, object]]:
    """Table 1: bit budgets of the four precision types."""
    return table1_rows()


def run_table2(config: TilingConfig = T4_TILING) -> list[dict[str, object]]:
    """Table 2: analytic per-warp traffic at a tiling point."""
    return [
        {
            "type": row.name,
            "size": row.size_bytes,
            "w/o FRAG caching": row.without_frag_caching,
            "w/ FRAG caching": row.with_frag_caching,
            "saving": f"{row.saving_factor:.1f}x",
        }
        for row in table2_rows(config)
    ]


def run_table2_measured(n: int = 64, seed: int = 0) -> dict[str, float]:
    """Validate Table 2's direction by *measuring* shared-memory traffic
    from the functional kernel with caching on vs off (small problem)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, (n, n)).astype(np.float32)
    b = rng.uniform(-1, 1, (n, n)).astype(np.float32)
    on = run_functional(a, b, frag_caching=True)
    off = run_functional(a, b, frag_caching=False)
    assert np.array_equal(on.d, off.d), "caching must not change numerics"
    return {
        "shared_load_bytes_with_caching": float(on.traffic.shared_load),
        "shared_load_bytes_without_caching": float(off.traffic.shared_load),
        "measured_saving": off.traffic.shared_load / on.traffic.shared_load,
        "frag_hit_rate": on.frag_hit_rate,
    }


def run_table3(spec: GpuSpec = TESLA_T4) -> list[dict[str, str]]:
    """Table 3: resource budget of the target GPU."""
    return table3_rows(spec)


def run_table4(spec: GpuSpec = TESLA_T4) -> list[dict[str, str]]:
    """Table 4: the solver's design choice on the target GPU."""
    return table4_rows(spec)


def run_table5() -> list[dict[str, str]]:
    """Table 5: baseline kernels."""
    return table5_rows()


def format_all_tables() -> str:
    """Render Tables 1-5 as the artifact would print them."""
    sections = [
        format_table(
            ["Data Type", "Sign", "Exponent", "Mantissa"],
            [[r["data_type"], r["sign"], r["exponent"], r["mantissa"]] for r in run_table1()],
            "Table 1. Precision Specifications. Unit: Number of Bits.",
        ),
        format_table(
            ["Type", "Size", "w/o FRAG Caching", "w/ FRAG Caching"],
            [[r["type"], r["size"], r["w/o FRAG caching"], r["w/ FRAG caching"]] for r in run_table2()],
            "Table 2. Memory access on each GPU warp (bytes, per block k-iteration).",
        ),
        format_table(
            ["Resource", "Budget"],
            [[r["resource"], r["budget"]] for r in run_table3()],
            "Table 3. Resource Budget on T4 GPU.",
        ),
        format_table(
            ["Item", "Value"],
            [[r["item"], r["value"]] for r in run_table4()],
            "Table 4. Design Choice on T4 GPU.",
        ),
        format_table(
            ["Name", "Source", "Precision", "Description"],
            [[r["name"], r["source"], r["precision"], r["description"]] for r in run_table5()],
            "Table 5. Baseline Kernels.",
        ),
    ]
    return "\n\n".join(sections)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_all_tables())


if __name__ == "__main__":  # pragma: no cover
    main()
