"""Figure 9: performance on skewed matrices.

Two skew families: (M, N, K) = (N, N, 2N) — K-dominant — and
(4N, N, N) — M-dominant.  Paper observations: cuBLAS-TC-Emulation slows
sharply once the K-dominant size exceeds 4096 x 4096 x 8192 (split-K
kernel selection) while EGEMM-TC stays flat, yielding 1.33x / 1.40x over
the emulation baseline and 2.89x / 2.9x over cuBLAS-CUDA-FP32 on the two
families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..gpu.spec import TESLA_T4, GpuSpec
from ..kernels.cublas import CublasCudaFp32, CublasTcEmulation
from ..kernels.egemm import EgemmTcKernel
from .common import Series, format_table, geomean

__all__ = ["Fig9Result", "run_fig9", "SKEW_K", "SKEW_M", "DEFAULT_SKEW_BASES"]

#: (N, N, 2N): enlarge the reduction dimension (Figure 9a)
SKEW_K: Callable[[int], tuple[int, int, int]] = lambda n: (n, n, 2 * n)
#: (4N, N, N): enlarge the M dimension (Figure 9b)
SKEW_M: Callable[[int], tuple[int, int, int]] = lambda n: (4 * n, n, n)

DEFAULT_SKEW_BASES = (1024, 2048, 4096, 6144, 8192)


@dataclass
class Fig9Result:
    """TFLOPS series of the three kernels on one skew family."""

    family: str
    bases: tuple[int, ...]
    shapes: tuple[tuple[int, int, int], ...]
    cublas_fp32: Series
    cublas_tc_emulation: Series
    egemm: Series

    @property
    def avg_speedup_vs_fp32(self) -> float:
        return geomean(self.egemm.ratio_to(self.cublas_fp32))

    @property
    def avg_speedup_vs_emulation(self) -> float:
        return geomean(self.egemm.ratio_to(self.cublas_tc_emulation))

    def table(self) -> str:
        rows = [
            [f"{m}x{n}x{k}", f"{f:.2f}", f"{e:.2f}", f"{g:.2f}"]
            for (m, n, k), f, e, g in zip(
                self.shapes, self.cublas_fp32.y, self.cublas_tc_emulation.y, self.egemm.y
            )
        ]
        return format_table(
            ["MxNxK", "cuBLAS-CUDA-FP32", "cuBLAS-TC-Emulation", "EGEMM-TC"],
            rows,
            f"Figure 9 ({self.family}). Skewed Matrices (TFLOPS).",
        )


def run_fig9(
    family: str = "NxNx2N",
    spec: GpuSpec = TESLA_T4,
    bases: tuple[int, ...] = DEFAULT_SKEW_BASES,
) -> Fig9Result:
    """Sweep one skew family ('NxNx2N' or '4NxNxN')."""
    shape_of = {"NxNx2N": SKEW_K, "4NxNxN": SKEW_M}.get(family)
    if shape_of is None:
        raise ValueError(f"unknown skew family {family!r}; use 'NxNx2N' or '4NxNxN'")
    shapes = tuple(shape_of(n) for n in bases)

    fp32, emu, egemm = CublasCudaFp32(), CublasTcEmulation(), EgemmTcKernel()
    series = {}
    for name, kern in (("fp32", fp32), ("emu", emu), ("egemm", egemm)):
        series[name] = [kern.tflops(m, n, k, spec) for (m, n, k) in shapes]
    return Fig9Result(
        family=family,
        bases=tuple(bases),
        shapes=shapes,
        cublas_fp32=Series("cuBLAS-CUDA-FP32", bases, series["fp32"]),
        cublas_tc_emulation=Series("cuBLAS-TC-Emulation", bases, series["emu"]),
        egemm=Series("EGEMM-TC", bases, series["egemm"]),
    )


def main() -> None:  # pragma: no cover - CLI entry
    for family, paper in (("NxNx2N", "1.33x / 2.89x"), ("4NxNxN", "1.40x / 2.9x")):
        result = run_fig9(family)
        print(result.table())
        print(
            f"avg speedup vs emulation: {result.avg_speedup_vs_emulation:.2f}x, "
            f"vs FP32: {result.avg_speedup_vs_fp32:.2f}x (paper: {paper})\n"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
