"""Figure 8: performance vs vendor kernels on square matrices (T4 + RTX6000).

TFLOPS (Eq. 9) of cuBLAS-CUDA-FP32, cuBLAS-TC-Emulation, and EGEMM-TC
over the N x N x N sweep, on both evaluation GPUs.  Paper headlines:
3.13x average speedup over cuBLAS-CUDA-FP32, 1.35x over
cuBLAS-TC-Emulation, larger speedups at larger sizes (occupancy /
compute-bound ramp), and the same qualitative picture on RTX 6000.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.spec import TESLA_T4, GpuSpec
from ..kernels.cublas import CublasCudaFp32, CublasTcEmulation
from ..kernels.egemm import EgemmTcKernel
from ..perf.parallel import parallel_map
from ..tensorize.tiling import TilingConfig
from .common import DEFAULT_SIZES, Series, format_table, geomean

__all__ = ["Fig8Result", "run_fig8"]


def _fig8_point(task: tuple[GpuSpec, TilingConfig, int]) -> tuple[float, float, float]:
    """TFLOPS of the three kernels at one size (top-level: pool-picklable).

    The solver's tiling is passed in pre-solved so neither the serial nor
    the pooled path re-runs the §6 search per point.
    """
    spec, tiling, n = task
    return (
        CublasCudaFp32().tflops(n, n, n, spec),
        CublasTcEmulation().tflops(n, n, n, spec),
        EgemmTcKernel(tiling=tiling).tflops(n, n, n, spec),
    )


@dataclass
class Fig8Result:
    """TFLOPS series of the three kernels on one GPU."""

    spec_name: str
    sizes: tuple[int, ...]
    cublas_fp32: Series
    cublas_tc_emulation: Series
    egemm: Series

    @property
    def avg_speedup_vs_fp32(self) -> float:
        return geomean(self.egemm.ratio_to(self.cublas_fp32))

    @property
    def avg_speedup_vs_emulation(self) -> float:
        return geomean(self.egemm.ratio_to(self.cublas_tc_emulation))

    def table(self) -> str:
        rows = [
            [n, f"{f:.2f}", f"{e:.2f}", f"{g:.2f}"]
            for n, f, e, g in zip(
                self.sizes, self.cublas_fp32.y, self.cublas_tc_emulation.y, self.egemm.y
            )
        ]
        return format_table(
            ["N", "cuBLAS-CUDA-FP32", "cuBLAS-TC-Emulation", "EGEMM-TC"],
            rows,
            f"Figure 8. Comparison with Vendor Kernels on Square Matrices ({self.spec_name}, TFLOPS).",
        )


def run_fig8(spec: GpuSpec = TESLA_T4, sizes: tuple[int, ...] = DEFAULT_SIZES) -> Fig8Result:
    """Sweep the three kernels' timing models over square sizes.

    Points are independent, so the sweep fans out over a process pool
    when ``REPRO_JOBS`` asks for one (serial and identical by default).
    """
    tiling = EgemmTcKernel().tiling_for(spec)
    rows = parallel_map(_fig8_point, [(spec, tiling, n) for n in sizes])
    fp32_y = [r[0] for r in rows]
    emu_y = [r[1] for r in rows]
    egemm_y = [r[2] for r in rows]
    return Fig8Result(
        spec_name=spec.name,
        sizes=tuple(sizes),
        cublas_fp32=Series("cuBLAS-CUDA-FP32", sizes, fp32_y),
        cublas_tc_emulation=Series("cuBLAS-TC-Emulation", sizes, emu_y),
        egemm=Series("EGEMM-TC", sizes, egemm_y),
    )


def main() -> None:  # pragma: no cover - CLI entry
    from ..gpu.spec import RTX6000

    for spec in (TESLA_T4, RTX6000):
        result = run_fig8(spec)
        print(result.table())
        print(f"avg speedup vs cuBLAS-CUDA-FP32: {result.avg_speedup_vs_fp32:.2f}x (paper: 3.13x)")
        print(f"avg speedup vs cuBLAS-TC-Emulation: {result.avg_speedup_vs_emulation:.2f}x (paper: 1.35x)\n")


if __name__ == "__main__":  # pragma: no cover
    main()
