"""Shared helpers for the experiment harness.

Every module in this package regenerates one table or figure of the
paper: a ``run(...)`` function returns structured rows/series (consumed
by the benchmark suite and the tests), and ``format_*`` helpers render
them the way the paper presents them.  ``main()`` entry points print to
stdout so each experiment is runnable as ``python -m
repro.experiments.<name>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import exp, log
from typing import Iterable, Sequence

__all__ = ["format_table", "Series", "geomean", "DEFAULT_SIZES", "FULL_PAPER_SIZES"]

#: default sweep sizes — a scaled-down version of the paper's 1024..16384
#: sweep that keeps the timing model cheap in CI (the model is closed-form,
#: so the full sweep is also fast; precision experiments are the costly ones)
DEFAULT_SIZES = (1024, 2048, 4096, 8192, 12288, 16384)

#: the paper's full evaluation sweep
FULL_PAPER_SIZES = (1024, 2048, 4096, 6144, 8192, 10240, 12288, 14336, 16384)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the conventional aggregate for speedup curves)."""
    vals = [v for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return exp(sum(log(v) for v in vals) / len(vals))


@dataclass
class Series:
    """One named curve of a figure: y-values over a shared x-axis."""

    name: str
    x: Sequence[float]
    y: Sequence[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.name!r}: x and y lengths differ")

    def ratio_to(self, other: "Series") -> list[float]:
        """Pointwise self/other (speedup of self over other)."""
        if list(self.x) != list(other.x):
            raise ValueError("series are on different x-axes")
        return [a / b for a, b in zip(self.y, other.y)]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Plain-text table renderer for experiment output."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
