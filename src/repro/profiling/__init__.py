"""Generalized emulation design workflow: randomized bit-wise precision
profiling of specialized cores (Figure 2a / Figure 3 / Appendix A.3)."""

from .generator import UNIT_POSITIVE, UNIT_SIGNED, InputDistribution, TileGenerator
from .report import format_profiling_report
from .sweep import SweepPoint, sweep_distribution, sweep_k
from .workflow import (
    EXTENDED_PRECISION_BITS,
    PrecisionProfiler,
    ProbeAgreement,
    ProfilingResult,
)

__all__ = [
    "UNIT_POSITIVE",
    "UNIT_SIGNED",
    "InputDistribution",
    "TileGenerator",
    "format_profiling_report",
    "SweepPoint",
    "sweep_distribution",
    "sweep_k",
    "EXTENDED_PRECISION_BITS",
    "PrecisionProfiler",
    "ProbeAgreement",
    "ProfilingResult",
]
