"""Profiling sensitivity sweeps: how the bit-agreement measurement moves
with the probing conditions.

The paper reports a single number (21 mantissa bits over 10,000 trials of
16x16x16 tiles).  Two methodological questions hide behind it, and this
module answers both measurably:

* **k-dependence** — the d_FLOAT probe accumulates sequentially in fp32,
  so its distance from the hardware's wide-accumulator result grows with
  the dot-product length; the minimum agreement decays roughly with
  log2(k).  At the WMMA k=16 the floor sits exactly at the paper's 21
  bits; longer unfused dots would report fewer.
* **distribution-dependence** — signed inputs allow catastrophic
  cancellation, where a tiny result magnifies *relative* disagreement;
  the workflow therefore probes with positive inputs (see
  :mod:`repro.profiling.generator`), and this sweep quantifies how many
  bits a signed distribution would cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fp.bits import mantissa_bits_agreement
from ..perf.parallel import parallel_map
from ..tensorcore.mma import InternalPrecision, mma
from .generator import UNIT_POSITIVE, UNIT_SIGNED, InputDistribution

__all__ = ["SweepPoint", "sweep_k", "sweep_distribution"]


@dataclass(frozen=True)
class SweepPoint:
    """Agreement statistics at one sweep setting."""

    setting: str
    min_bits: int
    mean_bits: float


def _agreement_point(
    task: tuple[str, int, int, InputDistribution, int]
) -> SweepPoint:
    """One sweep setting's agreement statistics (pool-picklable)."""
    setting, k, trials, distribution, seed = task
    min_bits, mean_bits = _agreement(k, trials, distribution, seed)
    return SweepPoint(setting=setting, min_bits=min_bits, mean_bits=mean_bits)


def _agreement(
    k: int, trials: int, distribution: InputDistribution, seed: int
) -> tuple[int, float]:
    rng = np.random.default_rng(seed)
    min_bits, total = 24, 0.0
    for _ in range(trials):
        a = distribution.sample(rng, (16, k)).astype(np.float16)
        b = distribution.sample(rng, (k, 16)).astype(np.float16)
        hw = mma(a, b, precision=InternalPrecision.TENSOR_CORE)
        probe = mma(a, b, precision=InternalPrecision.FLOAT)
        bits = mantissa_bits_agreement(hw, probe)
        min_bits = min(min_bits, int(bits.min()))
        total += float(bits.mean())
    return min_bits, total / trials


def sweep_k(
    ks: tuple[int, ...] = (4, 8, 16, 32, 64, 128),
    trials: int = 200,
    seed: int = 0,
) -> list[SweepPoint]:
    """Minimum d_FLOAT agreement as the dot-product length grows.

    Each k is an independent batch of trials; the sweep fans out over a
    process pool when ``REPRO_JOBS`` asks for one.
    """
    return parallel_map(
        _agreement_point, [(f"k={k}", k, trials, UNIT_POSITIVE, seed) for k in ks]
    )


def sweep_distribution(
    k: int = 16, trials: int = 200, seed: int = 0
) -> list[SweepPoint]:
    """Agreement under the positive vs signed input distributions."""
    return parallel_map(
        _agreement_point,
        [(dist.name, k, trials, dist, seed) for dist in (UNIT_POSITIVE, UNIT_SIGNED)],
    )
