"""Textual reports for profiling runs (Appendix A.3 "Profiling" output)."""

from __future__ import annotations

from .workflow import ProfilingResult

__all__ = ["format_profiling_report"]


def format_profiling_report(result: ProfilingResult) -> str:
    """Render a profiling result the way the artifact's program prints it.

    The first block reproduces the Appendix's scalar triples
    (``half_result`` / ``single_result`` / ``Tensor Core`` with hex bit
    patterns); the second summarizes per-probe mantissa agreement; the
    last line is the §3.2 verdict.
    """
    lines: list[str] = []
    for i, sample in enumerate(result.samples):
        if i:
            lines.append("")
        lines.extend(sample.lines())
    if result.samples:
        lines.append("")

    lines.append(f"{'probe':<10} {'min bits':>8} {'mean bits':>10} {'bit-identical':>14}")
    for agreement in result.agreements:
        lines.append(
            f"{agreement.probe.name:<10} {agreement.min_bits:>8d} "
            f"{agreement.mean_bits:>10.2f} {agreement.identical_fraction:>13.1%}"
        )
    lines.append("")
    lines.append(result.verdict())
    return "\n".join(lines)
