"""The generalized emulation design workflow — precision profiling half.

Implements Figure 2a and the Figure 3 profiling program: for many trials,

1. generate randomized half-precision inputs,
2. evaluate the specialized core (the simulated Tensor Core primitive),
3. evaluate every probing compute primitive on the "CPU",
4. compare bit-wise, tracking how many leading mantissa bits agree,

and identify the "correct" probing primitive: the one whose results agree
with the hardware on at least the extended-precision requirement (21
mantissa bits) across *all* tested inputs.

The workflow is hardware-agnostic by construction — ``hardware`` is any
callable with the primitive's signature — which is the paper's point about
extendability to other specialized cores (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..fp.bits import mantissa_bits_agreement
from ..tensorcore.mma import InternalPrecision, mma
from ..tensorcore.probing import ALL_PROBES, ProbeSample, ProbingPrimitive, probe_sample
from .generator import TileGenerator

__all__ = ["ProbeAgreement", "ProfilingResult", "PrecisionProfiler", "EXTENDED_PRECISION_BITS"]

#: mantissa bits required for extended-precision emulation (Table 1)
EXTENDED_PRECISION_BITS = 21


@dataclass
class ProbeAgreement:
    """Bit-agreement statistics of one probing primitive vs the hardware."""

    probe: ProbingPrimitive
    min_bits: int = 24
    mean_bits: float = 0.0
    identical_fraction: float = 0.0
    trials: int = 0

    @property
    def meets_extended_precision(self) -> bool:
        """True when every tested output agreed to >= 21 mantissa bits."""
        return self.trials > 0 and self.min_bits >= EXTENDED_PRECISION_BITS


@dataclass
class ProfilingResult:
    """Outcome of a profiling run over all probing primitives."""

    agreements: list[ProbeAgreement]
    samples: list[ProbeSample] = field(default_factory=list)

    def best_probe(self) -> ProbeAgreement:
        """The probing primitive that best matches the hardware."""
        return max(self.agreements, key=lambda a: (a.min_bits, a.mean_bits))

    def correct_probes(self) -> list[ProbeAgreement]:
        """All probes meeting the extended-precision agreement bar."""
        return [a for a in self.agreements if a.meets_extended_precision]

    def verdict(self) -> str:
        """Human-readable conclusion, phrased like §3.2's."""
        correct = self.correct_probes()
        if not correct:
            return (
                "no probing primitive matches the specialized core to "
                f"{EXTENDED_PRECISION_BITS} mantissa bits; fall back to Dekker-style emulation"
            )
        names = ", ".join(a.probe.name for a in correct)
        return (
            f"specialized core matches {names} bit-wisely up to "
            f"{min(a.min_bits for a in correct)} mantissa bits — the operation natively "
            "supports extended precision; only the half-precision inputs lose data"
        )


class PrecisionProfiler:
    """Runs the randomized bit-wise comparison loop of Figure 3.

    Parameters
    ----------
    hardware:
        The specialized-core primitive under test.  Defaults to the
        simulated Tensor Core (:func:`repro.tensorcore.mma` with the
        ``TENSOR_CORE`` internal model); injectable so the same workflow
        can profile any other core model.
    probes:
        Candidate probing primitives (defaults to d_HALF / d_FLOAT /
        d_EXACT, the hypotheses of §3.2).
    """

    def __init__(
        self,
        hardware: Callable[..., np.ndarray] | None = None,
        probes: Sequence[ProbingPrimitive] = ALL_PROBES,
    ) -> None:
        if hardware is None:
            hardware = lambda a, b, c=None: mma(a, b, c, precision=InternalPrecision.TENSOR_CORE)
        self.hardware = hardware
        self.probes = tuple(probes)

    def run(
        self,
        trials: int = 1000,
        generator: TileGenerator | None = None,
        with_c: bool = False,
        keep_samples: int = 3,
    ) -> ProfilingResult:
        """Profile over ``trials`` random tiles; aggregate agreement stats.

        ``keep_samples`` retains a few formatted scalar comparisons for the
        Appendix-style printout.
        """
        if trials <= 0:
            raise ValueError("trials must be positive")
        gen = generator or TileGenerator()

        mins = {p.name: 24 for p in self.probes}
        sums = {p.name: 0.0 for p in self.probes}
        identical = {p.name: 0 for p in self.probes}
        count = 0
        samples: list[ProbeSample] = []

        for t in range(trials):
            a, b, c = gen.half_inputs(with_c=with_c)
            d_hw = np.asarray(self.hardware(a, b, c), dtype=np.float32)
            for probe in self.probes:
                d_probe = np.asarray(probe.compute(a, b, c), dtype=np.float32)
                bits = mantissa_bits_agreement(d_hw, d_probe)
                mins[probe.name] = min(mins[probe.name], int(bits.min()))
                sums[probe.name] += float(bits.mean())
                identical[probe.name] += int(np.count_nonzero(bits == 24))
            count += d_hw.size
            if t < keep_samples:
                samples.append(probe_sample(a, b, c))

        agreements = [
            ProbeAgreement(
                probe=p,
                min_bits=mins[p.name],
                mean_bits=sums[p.name] / trials,
                identical_fraction=identical[p.name] / count,
                trials=trials,
            )
            for p in self.probes
        ]
        return ProfilingResult(agreements=agreements, samples=samples)
