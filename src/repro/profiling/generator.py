"""Randomized high-precision input generation for precision profiling.

Figure 2a's workflow starts from a "High-precision Random Number Generator"
feeding randomized data into both the specialized core and the CPU probing
primitives.  This module centralizes that generation so trials are
reproducible (seeded ``numpy.random.Generator``) and the value distribution
is explicit.

The default distribution is uniform over ``[0, 1)``: with same-sign terms
the dot products the profiling compares never cancel catastrophically, so
the mantissa-agreement measurement reflects the core's internal precision
rather than input-conditioning artifacts.  Signed distributions are also
provided for the emulation-precision experiments (Figure 7 samples from
``[-1, +1]``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["InputDistribution", "UNIT_POSITIVE", "UNIT_SIGNED", "TileGenerator"]


@dataclass(frozen=True)
class InputDistribution:
    """A named value distribution for random operand tiles."""

    name: str
    low: float
    high: float

    def sample(self, rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=shape)


#: distribution used by the bit-wise profiling workflow (no cancellation)
UNIT_POSITIVE = InputDistribution("unit_positive", 0.0, 1.0)
#: distribution used by the emulation-precision evaluation (§7.2)
UNIT_SIGNED = InputDistribution("unit_signed", -1.0, 1.0)


@dataclass
class TileGenerator:
    """Seeded generator of half-precision operand tiles for one mma shape.

    ``half_inputs()`` yields ``(A, B, C)`` with A/B already rounded to
    float16 (the profiling code of Figure 3 initializes the inputs *as*
    half data, so the split/rounding error is zero by construction and any
    observed discrepancy is attributable to the core's internals).
    """

    m: int = 16
    n: int = 16
    k: int = 16
    distribution: InputDistribution = UNIT_POSITIVE
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise ValueError("tile dimensions must be positive")
        self._rng = np.random.default_rng(self.seed)

    def half_inputs(self, with_c: bool = False) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        a = self.distribution.sample(self._rng, (self.m, self.k)).astype(np.float16)
        b = self.distribution.sample(self._rng, (self.k, self.n)).astype(np.float16)
        c = None
        if with_c:
            c = self.distribution.sample(self._rng, (self.m, self.n)).astype(np.float32)
        return a, b, c

    def single_inputs(self) -> tuple[np.ndarray, np.ndarray]:
        """Full-precision (float32) operands, for emulation-design tests."""
        a = self.distribution.sample(self._rng, (self.m, self.k)).astype(np.float32)
        b = self.distribution.sample(self._rng, (self.k, self.n)).astype(np.float32)
        return a, b
