"""The typed autotuning search space.

A :class:`TuneCandidate` is one complete configuration of the EGEMM-TC
kernel: the six tiling hyper-parameters of §4 plus every knob the
kernel exposes above them.  The axes split into two classes, and the
distinction carries the whole correctness story of the tuner:

* **performance-only axes** — tiling, latency-hiding schedule,
  FRAG caching, register-allocation policy, and the LDS-head scheduler
  weight — change only the *timing model* (the instruction stream the
  cycle simulator schedules).  The functional product is computed by
  :class:`~repro.emulation.gemm.EmulatedGemm`, which never sees them,
  so any candidate varying only these axes is bit-identical to the
  static kernel by construction;
* **functional axes** — the split scheme and the ``tk`` k-chunk
  rounding cadence — change the numerics.  Candidates that mutate them
  must survive :func:`repro.tune.verify.verify_bit_correct` against
  the reference emulation before they can win; in practice only
  mutations that are provably bit-equivalent (e.g. a ``tk`` change
  when the whole reduction fits one chunk either way) pass the gate.

:class:`SearchSpace` owns the discrete axis domains, legality
filtering (delegated to :class:`~repro.tensorize.tiling.TilingConfig`
and the warp budget), enumeration for the exhaustive sweep, and the
single-axis neighborhood the beam / multi-start strategies walk.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Sequence

from ..emulation.schemes import get_scheme
from ..tensorize.tiling import TilingConfig

__all__ = ["TuneCandidate", "SearchSpace", "quick_space", "default_space"]


@dataclass(frozen=True)
class TuneCandidate:
    """One point of the autotuning space: a complete kernel configuration."""

    tiling: TilingConfig
    #: emulation scheme name (functional axis — bit-gate applies)
    scheme: str = "egemm-tc"
    #: k-chunk rounding cadence (functional axis — bit-gate applies)
    tk: int = 16
    #: §5.1 register-enhanced instruction scheduling
    latency_hiding: bool = True
    #: §4 intra-warp FRAG caching
    frag_caching: bool = True
    #: 'stage-reuse' (§5.2) or 'naive' FRAG allocation
    register_policy: str = "stage-reuse"
    #: scheduler weight: LDS batches the first HMMA waits on.  ``None``
    #: keeps the kernel's structural default (``bk // wk``); smaller
    #: values front-load less of the LDS batch before compute starts.
    lds_head_steps: int | None = None

    def build_kernel(self):
        """Instantiate the EGEMM-TC kernel this candidate describes."""
        from ..kernels.egemm import EgemmTcKernel

        return EgemmTcKernel(
            scheme=get_scheme(self.scheme),
            tiling=self.tiling,
            latency_hiding=self.latency_hiding,
            frag_caching=self.frag_caching,
            register_policy=self.register_policy,
            tk=self.tk,
            lds_head_steps=self.lds_head_steps,
        )

    def sort_key(self) -> tuple:
        """Deterministic total order for tie-breaking across strategies."""
        t = self.tiling
        return (
            t.bm, t.bn, t.bk, t.wm, t.wn, t.wk,
            self.scheme, self.tk, self.latency_hiding, self.frag_caching,
            self.register_policy,
            -1 if self.lds_head_steps is None else self.lds_head_steps,
        )

    def as_dict(self) -> dict:
        """JSON-serializable form (the TUNE_db.json entry payload)."""
        t = self.tiling
        return {
            "bm": t.bm, "bn": t.bn, "bk": t.bk,
            "wm": t.wm, "wn": t.wn, "wk": t.wk,
            "scheme": self.scheme,
            "tk": self.tk,
            "latency_hiding": self.latency_hiding,
            "frag_caching": self.frag_caching,
            "register_policy": self.register_policy,
            "lds_head_steps": self.lds_head_steps,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "TuneCandidate":
        tiling = TilingConfig(
            bm=int(doc["bm"]), bn=int(doc["bn"]), bk=int(doc["bk"]),
            wm=int(doc["wm"]), wn=int(doc["wn"]), wk=int(doc["wk"]),
        )
        head = doc.get("lds_head_steps")
        return cls(
            tiling=tiling,
            scheme=str(doc.get("scheme", "egemm-tc")),
            tk=int(doc.get("tk", 16)),
            latency_hiding=bool(doc.get("latency_hiding", True)),
            frag_caching=bool(doc.get("frag_caching", True)),
            register_policy=str(doc.get("register_policy", "stage-reuse")),
            lds_head_steps=None if head is None else int(head),
        )


#: the non-tiling axes, in the order neighbor moves walk them
_KNOB_AXES = ("scheme", "tk", "latency_hiding", "frag_caching",
              "register_policy", "lds_head_steps")
_TILE_AXES = ("bm", "bn", "bk", "wm", "wn", "wk")


@dataclass(frozen=True)
class SearchSpace:
    """Discrete axis domains of the autotuning search.

    Tiling legality (divisibility, TC-tile alignment, the warp budget)
    is enforced at enumeration time, so every yielded candidate is a
    constructible kernel configuration.
    """

    bm: Sequence[int] = (16, 32, 64, 96, 128, 192, 256)
    bn: Sequence[int] = (16, 32, 64, 96, 128, 192, 256)
    bk: Sequence[int] = (8, 16, 32, 64)
    wm: Sequence[int] = (16, 32, 64, 128)
    wn: Sequence[int] = (16, 32, 64, 128)
    wk: Sequence[int] = (8, 16, 32)
    scheme: Sequence[str] = ("egemm-tc",)
    tk: Sequence[int] = (16,)
    latency_hiding: Sequence[bool] = (True,)
    frag_caching: Sequence[bool] = (True,)
    register_policy: Sequence[str] = ("stage-reuse",)
    lds_head_steps: Sequence[int | None] = (None,)
    max_warps: int = 8

    def _tiling(self, bm: int, bn: int, bk: int, wm: int, wn: int, wk: int) -> TilingConfig | None:
        try:
            cfg = TilingConfig(bm=bm, bn=bn, bk=bk, wm=wm, wn=wn, wk=wk)
        except ValueError:
            return None
        if cfg.warps_per_block > self.max_warps:
            return None
        return cfg

    def tilings(self) -> Iterator[TilingConfig]:
        for bm in self.bm:
            for bn in self.bn:
                for bk in self.bk:
                    for wm in self.wm:
                        for wn in self.wn:
                            for wk in self.wk:
                                cfg = self._tiling(bm, bn, bk, wm, wn, wk)
                                if cfg is not None:
                                    yield cfg

    def candidates(self) -> Iterator[TuneCandidate]:
        """Every legal candidate (exhaustive-sweep enumeration order)."""
        for cfg in self.tilings():
            for scheme in self.scheme:
                for tk in self.tk:
                    for lh in self.latency_hiding:
                        for fc in self.frag_caching:
                            for rp in self.register_policy:
                                for head in self.lds_head_steps:
                                    yield TuneCandidate(
                                        tiling=cfg, scheme=scheme, tk=tk,
                                        latency_hiding=lh, frag_caching=fc,
                                        register_policy=rp, lds_head_steps=head,
                                    )

    def count(self, limit: int = 100_000) -> int:
        """Number of legal candidates, counting at most ``limit``."""
        n = 0
        for _ in self.candidates():
            n += 1
            if n >= limit:
                break
        return n

    def contains_tiling(self, cfg: TilingConfig) -> bool:
        return (cfg.bm in self.bm and cfg.bn in self.bn and cfg.bk in self.bk
                and cfg.wm in self.wm and cfg.wn in self.wn and cfg.wk in self.wk
                and cfg.warps_per_block <= self.max_warps)

    # -- neighborhood (beam / multi-start moves) -------------------------
    def _axis_values(self, axis: str) -> Sequence:
        return getattr(self, axis)

    def neighbors(self, candidate: TuneCandidate) -> Iterator[TuneCandidate]:
        """Single-axis mutations of ``candidate`` inside this space.

        Tiling axes step to the adjacent value of their domain (both
        directions); knob axes step to every other domain value.  Only
        legal results are yielded, so strategies can consume the
        neighborhood without re-validating.
        """
        t = candidate.tiling
        tile_vals = {"bm": t.bm, "bn": t.bn, "bk": t.bk,
                     "wm": t.wm, "wn": t.wn, "wk": t.wk}
        for axis in _TILE_AXES:
            domain = list(self._axis_values(axis))
            cur = tile_vals[axis]
            if cur in domain:
                idx = domain.index(cur)
                steps = [i for i in (idx - 1, idx + 1) if 0 <= i < len(domain)]
            else:  # seed outside the domain: jump to the closest values
                order = sorted(range(len(domain)), key=lambda i: abs(domain[i] - cur))
                steps = order[:2]
            for i in steps:
                trial = dict(tile_vals)
                trial[axis] = domain[i]
                cfg = self._tiling(**trial)
                if cfg is not None and cfg != t:
                    yield replace(candidate, tiling=cfg)
        for axis in _KNOB_AXES:
            cur = getattr(candidate, axis)
            for value in self._axis_values(axis):
                if value != cur:
                    yield replace(candidate, **{axis: value})

    def random(self, rng) -> TuneCandidate:
        """One uniformly drawn legal candidate (multi-start seeds).

        Axis values are drawn independently and tiling draws retry
        until legal — a rejection loop, but the legality density of the
        default domains keeps it short.
        """
        def pick(seq: Sequence):
            return seq[int(rng.integers(len(seq)))]

        for _ in range(1000):
            cfg = self._tiling(pick(self.bm), pick(self.bn), pick(self.bk),
                               pick(self.wm), pick(self.wn), pick(self.wk))
            if cfg is not None:
                return TuneCandidate(
                    tiling=cfg,
                    scheme=pick(self.scheme),
                    tk=pick(self.tk),
                    latency_hiding=pick(self.latency_hiding),
                    frag_caching=pick(self.frag_caching),
                    register_policy=pick(self.register_policy),
                    lds_head_steps=pick(self.lds_head_steps),
                )
        raise RuntimeError("could not draw a legal tiling from the space")


def quick_space() -> SearchSpace:
    """Small space for ``--quick`` runs and tests: tiling-only axes.

    Every axis that could fail the bit gate is pinned to the static
    kernel's value, so the whole space is serving-safe by construction
    and an exhaustive sweep finishes in well under a second per bucket.
    """
    return SearchSpace(
        bm=(16, 32, 64, 128),
        bn=(16, 32, 64, 128),
        bk=(16, 32),
        wm=(16, 32, 64),
        wn=(16, 32),
        wk=(8,),
    )


def default_space() -> SearchSpace:
    """The full search space: every knob the kernel exposes.

    Includes the functional axes (scheme, ``tk``) — the bit-correct
    gate prunes the mutations that change numerics — plus both
    register policies, both schedules, and the LDS-head scheduler
    weights.  Too large for exhaustion; beam / multi-start territory.
    """
    return SearchSpace(
        scheme=("egemm-tc", "markidis"),
        tk=(8, 16, 32),
        latency_hiding=(True, False),
        frag_caching=(True, False),
        register_policy=("stage-reuse", "naive"),
        lds_head_steps=(None, 1, 2, 4),
    )
