"""Autotuning search over the cycle simulator (`docs/tuning.md`).

EGEMM-TC's §6 pitch is that a new GPU needs only "a small set of
resource budgets" — the analytic solver picks one tiling from the
budgets alone.  This package closes the remaining gap between *one
analytic point* and *the fastest verified configuration*: a typed
search space over every performance knob the kernel exposes (tiling,
split scheme, k-chunk cadence, scheduler weights, FRAG allocation
policy), searched by exhaustive sweep / beam / seeded multi-start,
scored on simulated cycles plus the certified error bound, gated by a
bit-correctness check against the reference emulation, and persisted
in a schema-versioned per-(device, shape-bucket) tuning database the
:class:`~repro.serve.router.PrecisionRouter` consults at serving time.
"""

from .db import (
    DB_SCHEMA,
    TuneEntry,
    TuningDatabase,
    shape_bucket,
    spec_fingerprint,
    tune_db_stats,
    validate_db_document,
)
from .search import (
    ScoredCandidate,
    SearchOutcome,
    beam_search,
    evaluate,
    exhaustive_search,
    multistart_search,
    search,
    static_baseline,
)
from .space import SearchSpace, TuneCandidate, default_space, quick_space
from .verify import verify_bit_correct

__all__ = [
    "DB_SCHEMA",
    "TuneEntry",
    "TuningDatabase",
    "shape_bucket",
    "spec_fingerprint",
    "tune_db_stats",
    "validate_db_document",
    "ScoredCandidate",
    "SearchOutcome",
    "beam_search",
    "evaluate",
    "exhaustive_search",
    "multistart_search",
    "search",
    "static_baseline",
    "SearchSpace",
    "TuneCandidate",
    "default_space",
    "quick_space",
    "verify_bit_correct",
]
