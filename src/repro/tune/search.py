"""Search strategies over the tuning space, scored on the cycle simulator.

Every strategy shares one evaluator: build the candidate's kernel, run
its analytic timing model — the instruction stream scheduled by
:func:`repro.gpu.scheduler.schedule` inside the wave/DRAM engine — and
read off the simulated cycles, alongside the candidate scheme's
certified forward-error bound from
:func:`repro.fp.error.gemm_relative_error_bound`.  The score is
lexicographic: a candidate is only *admissible* when its certified
bound does not exceed the static kernel's (tuning must never weaken
the accuracy certificate the router serves), and among admissible
candidates fewer simulated cycles wins, ties broken by modelled
seconds and then by the candidate's deterministic sort key, so every
strategy returns the same winner for the same scored set regardless of
evaluation order or parallelism.

Three strategies, matched to space size:

* :func:`exhaustive_search` — enumerate and score everything (the
  quick space, a few hundred points, fanned through ``parallel_map``);
* :func:`beam_search` — seed with the analytic solver's point plus
  shape-adapted downsizings, expand single-axis neighborhoods, keep
  the ``beam_width`` best, stop when a round stops improving;
* :func:`multistart_search` — seeded random restarts, each
  hill-climbed through the same neighborhood until a local optimum.

``search`` dispatches: exhaustive when the space enumerates under the
cap, beam otherwise, and is what the CLI calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..emulation.schemes import get_scheme
from ..fp.error import gemm_relative_error_bound
from ..gpu.spec import GpuSpec
from ..model.solver import solve
from ..obs.metrics import get_registry
from ..perf.parallel import parallel_map
from .space import SearchSpace, TuneCandidate

__all__ = [
    "ScoredCandidate",
    "SearchOutcome",
    "certified_bound",
    "evaluate",
    "static_baseline",
    "exhaustive_search",
    "beam_search",
    "multistart_search",
    "search",
]

#: exhaustive-search enumeration cap; larger spaces go to beam search
EXHAUSTIVE_CAP = 4096


@dataclass(frozen=True)
class ScoredCandidate:
    """One evaluated candidate: simulated cost + certified accuracy."""

    candidate: TuneCandidate
    #: simulated kernel cycles (the engine's schedule over the stream)
    cycles: float
    #: modelled end-to-end seconds (cycles + split pre-pass + launch)
    seconds: float
    #: analytic forward-error bound of the candidate's scheme at this k
    certified_bound: float
    occupancy: float = 0.0

    def score(self) -> tuple:
        return (self.cycles, self.seconds, self.candidate.sort_key())


@dataclass
class SearchOutcome:
    """Result of one strategy run over one (shape, spec) bucket."""

    strategy: str
    shape: tuple[int, int, int]
    best: ScoredCandidate | None
    #: admissible candidates, best-first — the verification walk order
    ranked: list[ScoredCandidate] = field(default_factory=list)
    evaluated: int = 0
    #: candidates rejected for weakening the certified bound
    inadmissible: int = 0


def certified_bound(candidate: TuneCandidate, k: int) -> float:
    """The candidate scheme's analytic bound at reduction depth ``k``."""
    scheme = get_scheme(candidate.scheme)
    return gemm_relative_error_bound(k, scheme.effective_mantissa_bits, 23)


def evaluate(
    candidate: TuneCandidate, shape: tuple[int, int, int], spec: GpuSpec
) -> ScoredCandidate | None:
    """Score one candidate on the cycle simulator; ``None`` if untimeable."""
    m, k, n = shape
    try:
        timing = candidate.build_kernel().time(m, n, k, spec)
    except (ValueError, RuntimeError):
        return None
    return ScoredCandidate(
        candidate=candidate,
        cycles=float(timing.cycles),
        seconds=float(timing.seconds),
        certified_bound=certified_bound(candidate, k),
        occupancy=float(getattr(timing.occupancy, "active_warps_per_sm", 0)),
    )


def _evaluate_job(job: tuple) -> ScoredCandidate | None:
    """Module-level work function so ``parallel_map`` can pickle it."""
    candidate, shape, spec = job
    return evaluate(candidate, shape, spec)


def static_baseline(shape: tuple[int, int, int], spec: GpuSpec) -> ScoredCandidate:
    """The untuned kernel's score: solver tiling, every knob at default."""
    candidate = TuneCandidate(tiling=solve(spec).best)
    scored = evaluate(candidate, shape, spec)
    if scored is None:  # the solver point is always timeable
        raise RuntimeError(f"static baseline failed to time on {spec.name}")
    return scored


def _rank(
    scored: list[ScoredCandidate | None], bound_budget: float
) -> tuple[list[ScoredCandidate], int]:
    """Admissible candidates best-first + the inadmissible count.

    ``bound_budget`` is the static kernel's certified bound: a tuned
    entry must certify at least as tightly, or the router's eligibility
    math would silently loosen when it consults the database.
    """
    kept = [s for s in scored if s is not None]
    admissible = [s for s in kept if s.certified_bound <= bound_budget * (1 + 1e-12)]
    admissible.sort(key=ScoredCandidate.score)
    return admissible, len(kept) - len(admissible)


def _record_progress(evaluated: int) -> None:
    registry = get_registry()
    if registry.enabled:
        registry.inc("tune.search.evaluated", evaluated)


def exhaustive_search(
    space: SearchSpace,
    shape: tuple[int, int, int],
    spec: GpuSpec,
    jobs: int | None = None,
    limit: int = EXHAUSTIVE_CAP,
) -> SearchOutcome:
    """Score every candidate of a small space (``parallel_map`` fan-out)."""
    candidates = []
    for cand in space.candidates():
        candidates.append(cand)
        if len(candidates) > limit:
            raise ValueError(
                f"space enumerates past {limit} candidates; "
                f"use beam or multistart search"
            )
    bound_budget = certified_bound(TuneCandidate(tiling=solve(spec).best), shape[1])
    scored = parallel_map(_evaluate_job, [(c, shape, spec) for c in candidates], jobs=jobs)
    _record_progress(len(candidates))
    ranked, inadmissible = _rank(scored, bound_budget)
    return SearchOutcome(
        strategy="exhaustive",
        shape=shape,
        best=ranked[0] if ranked else None,
        ranked=ranked,
        evaluated=len(candidates),
        inadmissible=inadmissible,
    )


def _seed_candidates(
    space: SearchSpace, shape: tuple[int, int, int], spec: GpuSpec
) -> list[TuneCandidate]:
    """Starting points: the solver's analytic optimum + shape-fitted tiles.

    The solver optimizes compute intensity for asymptotically large
    GEMMs; serving shapes are small, so the seeds also include block
    tiles clamped near the problem dimensions (better grid-level
    parallelism on a many-SM device) — the beam refines from both ends.
    """
    m, k, n = shape
    seeds: list[TuneCandidate] = [TuneCandidate(tiling=solve(spec).best)]

    def fit(dim: int, domain) -> list[int]:
        le = [v for v in domain if v <= max(dim, min(domain))]
        return sorted(le)[-2:] if le else [min(domain)]

    for bm in fit(m, space.bm):
        for bn in fit(n, space.bn):
            for bk in fit(k, space.bk):
                for wm in space.wm:
                    for wn in space.wn:
                        cfg = space._tiling(bm, bn, bk, wm, wn, min(space.wk))
                        if cfg is not None:
                            seeds.append(TuneCandidate(tiling=cfg))
    # dedupe preserving order
    seen: set[tuple] = set()
    unique = []
    for cand in seeds:
        key = cand.sort_key()
        if key not in seen:
            seen.add(key)
            unique.append(cand)
    return unique


def beam_search(
    space: SearchSpace,
    shape: tuple[int, int, int],
    spec: GpuSpec,
    beam_width: int = 8,
    rounds: int = 12,
    jobs: int | None = None,
) -> SearchOutcome:
    """Beam search: expand single-axis neighborhoods of the best frontier."""
    bound_budget = certified_bound(TuneCandidate(tiling=solve(spec).best), shape[1])
    seen: set[tuple] = set()
    ranked_all: dict[tuple, ScoredCandidate] = {}
    evaluated = 0
    inadmissible = 0

    def score_batch(batch: list[TuneCandidate]) -> list[ScoredCandidate]:
        nonlocal evaluated, inadmissible
        fresh = []
        for cand in batch:
            key = cand.sort_key()
            if key not in seen:
                seen.add(key)
                fresh.append(cand)
        if not fresh:
            return []
        scored = parallel_map(_evaluate_job, [(c, shape, spec) for c in fresh], jobs=jobs)
        evaluated += len(fresh)
        _record_progress(len(fresh))
        admissible, bad = _rank(scored, bound_budget)
        inadmissible += bad
        for s in admissible:
            ranked_all[s.candidate.sort_key()] = s
        return admissible

    frontier = score_batch(_seed_candidates(space, shape, spec))
    frontier = sorted(frontier, key=ScoredCandidate.score)[:beam_width]
    best_score = frontier[0].score() if frontier else None
    for _ in range(rounds):
        expansion: list[TuneCandidate] = []
        for entry in frontier:
            expansion.extend(space.neighbors(entry.candidate))
        fresh = score_batch(expansion)
        if not fresh:
            break
        frontier = sorted(frontier + fresh, key=ScoredCandidate.score)[:beam_width]
        new_best = frontier[0].score()
        if best_score is not None and new_best >= best_score:
            break
        best_score = new_best

    ranked = sorted(ranked_all.values(), key=ScoredCandidate.score)
    return SearchOutcome(
        strategy="beam",
        shape=shape,
        best=ranked[0] if ranked else None,
        ranked=ranked,
        evaluated=evaluated,
        inadmissible=inadmissible,
    )


def multistart_search(
    space: SearchSpace,
    shape: tuple[int, int, int],
    spec: GpuSpec,
    starts: int = 8,
    steps: int = 16,
    seed: int = 0,
    jobs: int | None = None,
) -> SearchOutcome:
    """Seeded random restarts, each hill-climbed to a local optimum.

    The generator is seeded per call, so outcomes are reproducible for
    a given ``(space, shape, spec, starts, steps, seed)``.
    """
    rng = np.random.default_rng(seed)
    bound_budget = certified_bound(TuneCandidate(tiling=solve(spec).best), shape[1])
    ranked_all: dict[tuple, ScoredCandidate] = {}
    scored_memo: dict[tuple, ScoredCandidate | None] = {}
    evaluated = 0
    inadmissible = 0

    def score_many(batch: list[TuneCandidate]) -> None:
        nonlocal evaluated, inadmissible
        fresh = [c for c in batch if c.sort_key() not in scored_memo]
        # unique-ify while preserving order
        uniq: dict[tuple, TuneCandidate] = {}
        for cand in fresh:
            uniq.setdefault(cand.sort_key(), cand)
        todo = list(uniq.values())
        if not todo:
            return
        scored = parallel_map(_evaluate_job, [(c, shape, spec) for c in todo], jobs=jobs)
        evaluated += len(todo)
        _record_progress(len(todo))
        for cand, result in zip(todo, scored):
            scored_memo[cand.sort_key()] = result
            if result is None:
                continue
            if result.certified_bound <= bound_budget * (1 + 1e-12):
                ranked_all[cand.sort_key()] = result
            else:
                inadmissible += 1

    starts_list = [TuneCandidate(tiling=solve(spec).best)]
    starts_list += [space.random(rng) for _ in range(max(starts - 1, 0))]
    score_many(starts_list)
    for start in starts_list:
        current = start
        current_scored = scored_memo.get(current.sort_key())
        for _ in range(steps):
            moves = list(space.neighbors(current))
            score_many(moves)
            best_move = None
            for move in moves:
                s = scored_memo.get(move.sort_key())
                if s is None or s.certified_bound > bound_budget * (1 + 1e-12):
                    continue
                if best_move is None or s.score() < best_move.score():
                    best_move = s
            if best_move is None:
                break
            if current_scored is not None and best_move.score() >= current_scored.score():
                break
            current, current_scored = best_move.candidate, best_move

    ranked = sorted(ranked_all.values(), key=ScoredCandidate.score)
    return SearchOutcome(
        strategy="multistart",
        shape=shape,
        best=ranked[0] if ranked else None,
        ranked=ranked,
        evaluated=evaluated,
        inadmissible=inadmissible,
    )


def search(
    space: SearchSpace,
    shape: tuple[int, int, int],
    spec: GpuSpec,
    strategy: str = "auto",
    jobs: int | None = None,
    seed: int = 0,
    beam_width: int = 8,
    starts: int = 8,
) -> SearchOutcome:
    """Strategy dispatcher: exhaustive when the space is small enough."""
    if strategy == "auto":
        strategy = (
            "exhaustive" if space.count(EXHAUSTIVE_CAP + 1) <= EXHAUSTIVE_CAP else "beam"
        )
    if strategy == "exhaustive":
        return exhaustive_search(space, shape, spec, jobs=jobs)
    if strategy == "beam":
        return beam_search(space, shape, spec, beam_width=beam_width, jobs=jobs)
    if strategy == "multistart":
        return multistart_search(space, shape, spec, starts=starts, seed=seed, jobs=jobs)
    raise ValueError(f"unknown strategy {strategy!r}; "
                     f"choose auto, exhaustive, beam, or multistart")
