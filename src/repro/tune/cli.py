"""``python -m repro tune`` — search, verify, persist, and check.

Per shape bucket: score the static baseline (the §6 analytic solver's
tiling with every knob at its default), run the configured search
strategy, walk the admissible ranking best-first through the
bit-correctness gate, and persist the first surviving candidate that is
*strictly* faster (simulated cycles) than the baseline.  The database
write is atomic; re-running refreshes entries in place.

``--check`` then closes the loop the way CI consumes it: reload the
persisted file, validate the schema, build a
:class:`~repro.serve.router.PrecisionRouter` with and without the
database, and assert that (a) tuned pricing is actually consulted
(``tuned_hits`` > 0), (b) at least two buckets improved, and (c) the
static-menu router keeps working with no database at all — the
fallback path the service relies on when ``TUNE_db.json`` is absent,
corrupt, or stale.
"""

from __future__ import annotations

import argparse
import sys

from ..gpu import get_gpu
from ..obs.metrics import get_registry
from .db import TuneEntry, TuningDatabase, shape_bucket, spec_fingerprint, validate_db_document
from .search import search, static_baseline
from .space import default_space, quick_space
from .verify import functional_identity, verify_bit_correct

__all__ = ["main", "tune_bucket", "run_tuning"]

#: default shapes tuned when ``--shapes`` is not given — the serving
#: workload mix of :mod:`repro.serve.loadgen`, so a default tune run
#: covers exactly the buckets ``python -m repro serve`` will price
DEFAULT_SHAPES = ((32, 32, 32), (64, 32, 64), (16, 64, 16), (128, 32, 128), (192, 32, 192))


def _parse_shapes(text: str) -> list[tuple[int, int, int]]:
    shapes = []
    for part in text.split(","):
        dims = part.lower().split("x")
        if len(dims) != 3:
            raise ValueError(f"bad shape {part!r} (want MxKxN)")
        shapes.append(tuple(int(d) for d in dims))
    return shapes


def tune_bucket(
    shape: tuple[int, int, int],
    spec,
    space,
    kernel_name: str = "egemm-tc",
    strategy: str = "auto",
    jobs: int | None = None,
    seed: int = 0,
    beam_width: int = 8,
    starts: int = 8,
) -> tuple[TuneEntry | None, dict]:
    """Tune one shape bucket; returns (entry-or-None, summary dict).

    ``None`` means the bucket keeps the static configuration — either
    nothing admissible beat it, or nothing faster survived the bit
    gate.  Both are healthy outcomes, not errors.
    """
    base = static_baseline(shape, spec)
    outcome = search(
        space, shape, spec, strategy=strategy, jobs=jobs,
        seed=seed, beam_width=beam_width, starts=starts,
    )
    summary = {
        "shape": shape,
        "bucket": shape_bucket(shape),
        "strategy": outcome.strategy,
        "evaluated": outcome.evaluated,
        "inadmissible": outcome.inadmissible,
        "static_cycles": base.cycles,
        "best_cycles": None,
        "verify_rejected": 0,
        "improved": False,
    }
    winner = None
    for scored in outcome.ranked:
        if not scored.cycles < base.cycles:
            break  # ranking is best-first: nothing further can improve
        if verify_bit_correct(scored.candidate, shape, spec, seed=seed,
                              kernel_name=kernel_name):
            winner = scored
            break
        summary["verify_rejected"] += 1
    if winner is None:
        return None, summary
    summary["best_cycles"] = winner.cycles
    summary["improved"] = True
    entry = TuneEntry(
        kernel=kernel_name,
        spec_fingerprint=spec_fingerprint(spec),
        spec_name=spec.name,
        bucket=shape_bucket(shape),
        shape=shape,
        candidate=winner.candidate,
        cycles=winner.cycles,
        seconds=winner.seconds,
        static_cycles=base.cycles,
        static_seconds=base.seconds,
        certified_bound=winner.certified_bound,
        functional=functional_identity(winner.candidate),
        verified_bit_correct=True,
        strategy=outcome.strategy,
        evaluated=outcome.evaluated,
    )
    return entry, summary


def run_tuning(
    shapes,
    spec,
    space,
    db: TuningDatabase,
    kernel_name: str = "egemm-tc",
    strategy: str = "auto",
    jobs: int | None = None,
    seed: int = 0,
    beam_width: int = 8,
    starts: int = 8,
    echo=print,
) -> list[dict]:
    """Tune every distinct bucket of ``shapes`` into ``db`` (no save)."""
    summaries = []
    done: set[str] = set()
    for shape in shapes:
        bucket = shape_bucket(shape)
        if bucket in done:
            continue
        done.add(bucket)
        entry, summary = tune_bucket(
            shape, spec, space, kernel_name=kernel_name, strategy=strategy,
            jobs=jobs, seed=seed, beam_width=beam_width, starts=starts,
        )
        if entry is not None:
            db.put(entry)
            echo(
                f"  {bucket:>14}: {summary['static_cycles']:10.1f} -> "
                f"{summary['best_cycles']:10.1f} cycles "
                f"({summary['static_cycles'] / summary['best_cycles']:.2f}x, "
                f"{summary['evaluated']} evaluated, {summary['strategy']})"
            )
        else:
            echo(
                f"  {bucket:>14}: static config stands at "
                f"{summary['static_cycles']:.1f} cycles "
                f"({summary['evaluated']} evaluated, "
                f"{summary['verify_rejected']} failed the bit gate)"
            )
        summaries.append(summary)
    return summaries


def check_database(path: str, spec, shapes, kernel_name: str = "egemm-tc",
                   min_improved: int = 2, echo=print) -> list[str]:
    """The ``--check`` contract; returns a list of problems (empty = pass)."""
    import json

    problems: list[str] = []
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    problems += validate_db_document(doc)

    db = TuningDatabase.load(path)
    problems += [f"load: {p}" for p in db.problems]

    from ..serve.router import PrecisionRouter

    tuned_router = PrecisionRouter(spec=spec, tuning_db=db)
    static_router = PrecisionRouter(spec=spec)
    improved = 0
    buckets = {shape_bucket(s): s for s in shapes}
    for bucket, shape in sorted(buckets.items()):
        tuned_s = tuned_router.seconds_for(kernel_name, shape)
        static_s = static_router.seconds_for(kernel_name, shape)
        entry = db.entries.get(f"{spec_fingerprint(spec)}/{bucket}/{kernel_name}")
        if entry is None:
            echo(f"  {bucket:>14}: no entry (static price {static_s * 1e6:.2f} us)")
            continue
        if not tuned_s < static_s:
            problems.append(
                f"{bucket}: tuned price {tuned_s} not below static {static_s}"
            )
        improved += 1
        echo(
            f"  {bucket:>14}: {static_s * 1e6:9.2f} -> {tuned_s * 1e6:9.2f} us "
            f"({static_s / tuned_s:.2f}x)"
        )
    if tuned_router.tuned_hits <= 0:
        problems.append("router never consulted the tuning database (tuned_hits == 0)")
    if improved < min(min_improved, len(buckets)):
        problems.append(
            f"only {improved} bucket(s) improved; "
            f"need at least {min(min_improved, len(buckets))}"
        )
    # The static router must keep serving with no database attached —
    # the production fallback when TUNE_db.json is absent or distrusted.
    if static_router.tuning_db is not None or any(
        key.startswith("tuned") for key in static_router.stats()
    ):
        problems.append("static router unexpectedly carries tuning state")
    echo(
        f"  router: {tuned_router.tuned_hits} tuned hit(s), "
        f"{tuned_router.tuned_misses} miss(es), "
        f"{tuned_router.tuned_fallbacks} fallback(s); "
        f"static-menu fallback router OK"
    )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro tune",
        description="autotune kernel configurations over the cycle simulator "
                    "(see docs/tuning.md)",
    )
    parser.add_argument("--gpu", default="t4", help="target GPU (t4, rtx6000)")
    parser.add_argument("--kernel", default="egemm-tc", help="menu kernel to tune")
    parser.add_argument("--shapes", default=None, metavar="MxKxN,...",
                        help="comma-separated GEMM shapes (default: the serving mix)")
    parser.add_argument("--strategy", default="auto",
                        choices=("auto", "exhaustive", "beam", "multistart"),
                        help="search strategy (auto: exhaustive when small enough)")
    parser.add_argument("--db", default="TUNE_db.json", help="tuning database path")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for multistart draws and verification operands")
    parser.add_argument("--beam-width", type=int, default=8, help="beam frontier size")
    parser.add_argument("--starts", type=int, default=8, help="multistart restarts")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel evaluation workers (default: auto)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: tiling-only space, exhaustive per bucket")
    parser.add_argument("--check", action="store_true",
                        help="after tuning, reload + validate the database and "
                             "prove the router consults it")
    args = parser.parse_args(argv)

    spec = get_gpu(args.gpu)
    shapes = _parse_shapes(args.shapes) if args.shapes else list(DEFAULT_SHAPES)
    space = quick_space() if args.quick else default_space()
    strategy = args.strategy
    if args.quick and args.strategy == "auto":
        strategy = "exhaustive"

    db = TuningDatabase.load(args.db)
    for problem in db.problems:
        print(f"note: {problem}")

    print(f"tuning {args.kernel} on {spec.name} "
          f"({len(set(shape_bucket(s) for s in shapes))} bucket(s), "
          f"space ~{space.count()} candidates, strategy {strategy}):")
    summaries = run_tuning(
        shapes, spec, space, db,
        kernel_name=args.kernel, strategy=strategy, jobs=args.jobs,
        seed=args.seed, beam_width=args.beam_width, starts=args.starts,
    )
    db.save(args.db)
    improved = sum(1 for s in summaries if s["improved"])
    evaluated = sum(s["evaluated"] for s in summaries)
    print(f"-> {args.db}: {len(db)} entr{'y' if len(db) == 1 else 'ies'} "
          f"({improved}/{len(summaries)} buckets improved, "
          f"{evaluated} candidates evaluated)")

    registry = get_registry()
    if registry.enabled:
        snapshot = registry.snapshot()
        tune_counts = {
            key: value for key, value in sorted(snapshot.get("counters", {}).items())
            if key.startswith("tune.")
        }
        if tune_counts:
            print("counters: " + ", ".join(f"{k}={v}" for k, v in tune_counts.items()))

    if args.check:
        print("check:")
        problems = check_database(
            args.db, spec, shapes, kernel_name=args.kernel, echo=print
        )
        if problems:
            for problem in problems:
                print(f"CHECK FAILED: {problem}", file=sys.stderr)
            return 1
        print("  all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
