"""The bit-correctness gate: no candidate wins without proving its bits.

A surviving search candidate claims to be a drop-in replacement for the
static menu kernel, and the serving layer's contract is *bitwise*
reproducibility — so the gate is bitwise too: the candidate kernel's
product on seeded operands must equal the reference emulation's, byte
for byte, before the candidate may be persisted to the tuning database.

Performance-only axes (tiling, schedule, FRAG policy) pass trivially —
they never touch :class:`~repro.emulation.gemm.EmulatedGemm`.  The
functional axes do real work here: a scheme mutation (round-split vs
truncate-split) changes the split bits and is rejected; a ``tk``
cadence mutation changes the rounding points and is rejected *unless*
the whole reduction provably fits one chunk under both cadences (then
the sums coincide exactly and the gate passes it).  Two operand draws
are checked — standard normal and a wide-exponent sample — so a
cadence or split difference cannot hide behind benign magnitudes.
"""

from __future__ import annotations

import numpy as np

from ..gpu.spec import GpuSpec
from ..kernels.registry import get_kernel
from ..obs.metrics import get_registry
from .space import TuneCandidate

__all__ = ["verify_bit_correct", "functional_identity"]

#: registry name of the menu kernel the tuner currently targets
TARGET_KERNEL = "egemm-tc"


def functional_identity(candidate: TuneCandidate) -> dict:
    """The numerics-determining part of a candidate (DB entry guard).

    Stored with every tuning entry; the router refuses an entry whose
    functional identity differs from its own static kernel's, so a
    database written against one menu build can never silently change
    the bits a later menu serves.
    """
    return {"scheme": candidate.scheme, "tk": candidate.tk}


def _operand_draws(
    shape: tuple[int, int, int], seed: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Deterministic operand pairs: standard-normal + wide-exponent."""
    m, k, n = shape
    rng = np.random.default_rng((seed, m, k, n))
    normal = (
        rng.standard_normal((m, k)).astype(np.float32),
        rng.standard_normal((k, n)).astype(np.float32),
    )
    wide = (
        (rng.standard_normal((m, k)) * np.exp2(rng.uniform(-12, 12, (m, k)))).astype(np.float32),
        (rng.standard_normal((k, n)) * np.exp2(rng.uniform(-12, 12, (k, n)))).astype(np.float32),
    )
    return [normal, wide]


def verify_bit_correct(
    candidate: TuneCandidate,
    shape: tuple[int, int, int],
    spec: GpuSpec | None = None,
    seed: int = 0,
    kernel_name: str = TARGET_KERNEL,
) -> bool:
    """``True`` iff the candidate's product is bitwise the reference's.

    The reference is the *static* registry kernel — the numerics the
    router's menu serves today.  ``spec`` is accepted for signature
    symmetry with the scorer but unused: correctness is device-free
    (the functional path never consults the GPU model).
    """
    m, k, n = shape
    reference = get_kernel(kernel_name)
    tuned = candidate.build_kernel()
    registry = get_registry()
    for a, b in _operand_draws(shape, seed):
        expect = reference.compute(a, b)
        got = tuned.compute(a, b)
        if expect.shape != got.shape or expect.tobytes() != got.tobytes():
            if registry.enabled:
                registry.inc("tune.verify.rejected")
            return False
    if registry.enabled:
        registry.inc("tune.verify.passed")
    return True
