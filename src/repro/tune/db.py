"""The persisted tuning database: ``TUNE_db.json``.

Schema-versioned, keyed by ``(GpuSpec fingerprint, shape bucket,
kernel name)``.  The fingerprint digests *every* field of the frozen
:class:`~repro.gpu.spec.GpuSpec` — topology, budgets, and the timing
constants — because a tuned cycle count is only meaningful against the
exact simulator parameters it was searched under; changing any of them
(a recalibrated ``hmma_issue_cycles``, say) makes the entry stale, and
the staleness guard silently falls the router back to the static menu
instead of serving a mispriced entry.

Shape buckets round each GEMM dimension up to a power of two — the
same granularity at which the serving shapes cluster — so one tuned
entry covers every shape in its bucket.  The entry stores the
*candidate configuration*, not a cached time: the router rebuilds the
tuned kernel and prices each concrete shape through the timing model,
so seconds stay exact per shape while the search cost is paid once per
bucket.

Writes are atomic (temp file + ``os.replace`` in the destination
directory), loads are defensive (a corrupt or wrong-schema file
degrades to an empty database and a counter, never an exception on the
serving path), and the ``tune.db`` metrics provider aggregates
hit/miss/fallback counters across every live database.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import weakref
from dataclasses import asdict, dataclass, field

from ..gpu.spec import GpuSpec
from ..obs.metrics import get_registry
from .space import TuneCandidate

__all__ = [
    "DB_SCHEMA",
    "TuneEntry",
    "TuningDatabase",
    "shape_bucket",
    "spec_fingerprint",
    "tune_db_stats",
    "validate_db_document",
]

#: database schema identifier, bumped on breaking layout changes
DB_SCHEMA = "repro.tune.db/1"

#: live databases for the registry provider (the split-cache idiom)
_LIVE_DBS: "weakref.WeakValueDictionary[int, TuningDatabase]" = weakref.WeakValueDictionary()
_RETIRED = {"dbs": 0, "hits": 0, "misses": 0, "fallbacks": 0, "corrupt_loads": 0}
_RETIRED_LOCK = threading.Lock()

#: memoized spec fingerprints (the digest is pure in the frozen spec)
_FP_MEMO: dict[GpuSpec, str] = {}


def _retire(stats: dict) -> None:
    with _RETIRED_LOCK:
        _RETIRED["dbs"] += 1
        for key in ("hits", "misses", "fallbacks", "corrupt_loads"):
            _RETIRED[key] += stats.get(key, 0)


def tune_db_stats() -> dict:
    """Aggregate counters across every tuning database (``tune.db``)."""
    with _RETIRED_LOCK:
        totals = {
            "dbs": 0,
            "entries": 0,
            "hits": _RETIRED["hits"],
            "misses": _RETIRED["misses"],
            "fallbacks": _RETIRED["fallbacks"],
            "corrupt_loads": _RETIRED["corrupt_loads"],
            "retired_dbs": _RETIRED["dbs"],
        }
    for db in list(_LIVE_DBS.values()):
        totals["dbs"] += 1
        totals["entries"] += len(db.entries)
        for key in ("hits", "misses", "fallbacks", "corrupt_loads"):
            totals[key] += db.counters[key]
    lookups = totals["hits"] + totals["misses"] + totals["fallbacks"]
    totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
    return totals


get_registry().register_provider("tune.db", tune_db_stats)


def spec_fingerprint(spec: GpuSpec) -> str:
    """Stable digest of every field of a (frozen, hashable) GpuSpec."""
    fp = _FP_MEMO.get(spec)
    if fp is None:
        import hashlib

        payload = json.dumps(asdict(spec), sort_keys=True).encode()
        fp = hashlib.blake2b(payload, digest_size=8).hexdigest()
        _FP_MEMO[spec] = fp
    return fp


def _pow2_ceil(x: int) -> int:
    return 1 if x <= 1 else 1 << (x - 1).bit_length()


def shape_bucket(shape: tuple[int, int, int]) -> str:
    """Power-of-two bucket key of an ``(m, k, n)`` GEMM shape."""
    m, k, n = shape
    return f"{_pow2_ceil(m)}x{_pow2_ceil(k)}x{_pow2_ceil(n)}"


@dataclass(frozen=True)
class TuneEntry:
    """One persisted tuning result for a (spec, bucket, kernel) key."""

    kernel: str
    spec_fingerprint: str
    spec_name: str
    bucket: str
    #: representative shape the search scored (a member of the bucket)
    shape: tuple[int, int, int]
    candidate: TuneCandidate
    cycles: float
    seconds: float
    static_cycles: float
    static_seconds: float
    certified_bound: float
    #: numerics-determining identity (scheme, tk) — router guard input
    functional: dict
    verified_bit_correct: bool
    strategy: str = ""
    evaluated: int = 0

    @property
    def key(self) -> str:
        return f"{self.spec_fingerprint}/{self.bucket}/{self.kernel}"

    def to_json(self) -> dict:
        return {
            "kernel": self.kernel,
            "spec_fingerprint": self.spec_fingerprint,
            "spec_name": self.spec_name,
            "bucket": self.bucket,
            "shape": list(self.shape),
            "candidate": self.candidate.as_dict(),
            "cycles": self.cycles,
            "seconds": self.seconds,
            "static_cycles": self.static_cycles,
            "static_seconds": self.static_seconds,
            "certified_bound": self.certified_bound,
            "functional": dict(self.functional),
            "verified_bit_correct": self.verified_bit_correct,
            "strategy": self.strategy,
            "evaluated": self.evaluated,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "TuneEntry":
        return cls(
            kernel=str(doc["kernel"]),
            spec_fingerprint=str(doc["spec_fingerprint"]),
            spec_name=str(doc.get("spec_name", "")),
            bucket=str(doc["bucket"]),
            shape=tuple(int(v) for v in doc["shape"]),
            candidate=TuneCandidate.from_dict(doc["candidate"]),
            cycles=float(doc["cycles"]),
            seconds=float(doc["seconds"]),
            static_cycles=float(doc["static_cycles"]),
            static_seconds=float(doc["static_seconds"]),
            certified_bound=float(doc["certified_bound"]),
            functional=dict(doc.get("functional", {})),
            verified_bit_correct=bool(doc.get("verified_bit_correct", False)),
            strategy=str(doc.get("strategy", "")),
            evaluated=int(doc.get("evaluated", 0)),
        )


def validate_db_document(doc: object) -> list[str]:
    """Schema check of a raw TUNE_db.json document; returns problems.

    The CLI's ``--check`` mode and the CI smoke step hold the persisted
    artifact to this contract.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != DB_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {DB_SCHEMA!r}")
    entries = doc.get("entries")
    if not isinstance(entries, dict):
        return problems + ["entries missing or not an object"]
    for key, raw in entries.items():
        if not isinstance(raw, dict):
            problems.append(f"entry {key}: not an object")
            continue
        try:
            entry = TuneEntry.from_json(raw)
        except (KeyError, TypeError, ValueError) as exc:
            problems.append(f"entry {key}: malformed ({exc})")
            continue
        if entry.key != key:
            problems.append(f"entry {key}: key disagrees with fields ({entry.key})")
        if not entry.verified_bit_correct:
            problems.append(f"entry {key}: persisted without bit-correct verification")
        if not entry.cycles < entry.static_cycles:
            problems.append(
                f"entry {key}: cycles {entry.cycles} not strictly below "
                f"static {entry.static_cycles}"
            )
        if len(entry.shape) != 3 or any(v <= 0 for v in entry.shape):
            problems.append(f"entry {key}: bad shape {entry.shape}")
        if shape_bucket(entry.shape) != entry.bucket:
            problems.append(
                f"entry {key}: shape {entry.shape} buckets to "
                f"{shape_bucket(entry.shape)}, not {entry.bucket}"
            )
    return problems


@dataclass
class TuningDatabase:
    """In-memory view of TUNE_db.json with guarded lookups."""

    entries: dict[str, TuneEntry] = field(default_factory=dict)
    #: path the database was loaded from (informational)
    path: str | None = None
    #: problems found at load time (corrupt file, schema mismatch)
    problems: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.counters = {"hits": 0, "misses": 0, "fallbacks": 0, "corrupt_loads": 0}
        self._lock = threading.Lock()
        _LIVE_DBS[id(self)] = self
        weakref.finalize(self, _retire, self.counters)

    # -- persistence -----------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "TuningDatabase":
        """Read a database; corrupt or missing files degrade to empty.

        A serving process must never crash because its tuning file is
        damaged — the static menu is always a sound fallback — so every
        load failure is recorded in ``problems`` (and the
        ``corrupt_loads`` counter) instead of raised.
        """
        db = cls(path=path)
        if not os.path.exists(path):
            db.problems.append(f"{path}: not found (starting empty)")
            return db
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            db.problems.append(f"{path}: unreadable ({exc})")
            db.counters["corrupt_loads"] += 1
            return db
        if not isinstance(doc, dict) or doc.get("schema") != DB_SCHEMA:
            db.problems.append(
                f"{path}: schema {doc.get('schema') if isinstance(doc, dict) else None!r} "
                f"!= {DB_SCHEMA!r} (ignoring file)"
            )
            db.counters["corrupt_loads"] += 1
            return db
        for key, raw in (doc.get("entries") or {}).items():
            try:
                entry = TuneEntry.from_json(raw)
            except (KeyError, TypeError, ValueError) as exc:
                db.problems.append(f"{path}: entry {key} malformed ({exc})")
                db.counters["corrupt_loads"] += 1
                continue
            db.entries[entry.key] = entry
        return db

    def to_json(self) -> dict:
        return {
            "schema": DB_SCHEMA,
            "entries": {key: entry.to_json() for key in sorted(self.entries)
                        for entry in (self.entries[key],)},
        }

    def save(self, path: str | None = None) -> str:
        """Atomically persist: temp file in the target directory + replace."""
        path = path or self.path
        if path is None:
            raise ValueError("no path to save the tuning database to")
        directory = os.path.dirname(os.path.abspath(path))
        payload = json.dumps(self.to_json(), indent=2, sort_keys=True)
        fd, tmp = tempfile.mkstemp(prefix=".TUNE_db.", suffix=".tmp", dir=directory)
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.path = path
        return path

    # -- lookups ---------------------------------------------------------
    def put(self, entry: TuneEntry) -> None:
        with self._lock:
            self.entries[entry.key] = entry

    def lookup(
        self, spec: GpuSpec, kernel_name: str, shape: tuple[int, int, int]
    ) -> TuneEntry | None:
        """Guarded entry lookup; ``None`` means use the static menu.

        A missing key counts as a *miss*; an entry rejected by a
        staleness guard (fingerprint disagreement after a spec change,
        unverified entry) counts as a *fallback* — distinct counters,
        because a fallback means a database exists but cannot be
        trusted for this device, which is worth alerting on.
        """
        fp = spec_fingerprint(spec)
        key = f"{fp}/{shape_bucket(shape)}/{kernel_name}"
        with self._lock:
            entry = self.entries.get(key)
            if entry is None:
                self.counters["misses"] += 1
                return None
            if entry.spec_fingerprint != fp or not entry.verified_bit_correct:
                self.counters["fallbacks"] += 1
                return None
            self.counters["hits"] += 1
        return entry

    def note_fallback(self) -> None:
        """Record a consumer-side rejection (functional-identity guard)."""
        with self._lock:
            self.counters["fallbacks"] += 1

    def stats(self) -> dict:
        with self._lock:
            return {"entries": len(self.entries), **self.counters}

    def __len__(self) -> int:
        with self._lock:
            return len(self.entries)
