"""A minimal SASS text assembler/parser (the TuringAs role).

The artifact assembles hand-written SASS text with TuringAs; this module
closes the loop in the reproduction by *parsing* rendered listings back
into :class:`~repro.gpu.sass.SassListing` objects, so listings round-trip
(``parse(render(listing))`` preserves every instruction and control
word) and externally-authored listing text can be validated with
:func:`repro.gpu.sass.validate`.

Grammar (one instruction per line)::

    [B<wait6>:R<r>:W<w>:<Y|->:S<nn>]  OPCODE [operands...] ;

Comment lines (``//``) and blank lines are skipped.  Register operands
are recovered from the operand text (every ``R<n>`` token) — enough for
def-before-use and budget validation; destination registers are taken as
the leading register tokens for opcodes that write (loads, HMMA, MOV).
"""

from __future__ import annotations

import re

from .sass import Reg, SassInstr, SassListing

__all__ = ["SassParseError", "parse"]

_LINE_RE = re.compile(
    r"^\[B(?P<wait>[-0-5]{6}):R(?P<read>[-0-5]):W(?P<write>[-0-5]):(?P<yield>[Y-]):S(?P<stall>\d{2})\]"
    r"\s+(?P<opcode>[A-Z][A-Z0-9._]*)\s*(?P<operands>.*?)\s*;\s*$"
)
_REG_RE = re.compile(r"\bR(\d{1,3})\b")

#: opcodes whose leading register vector is a destination, with its width
_DEST_WIDTH = {
    "LDG.E.128": 4,
    "LDS.128": 4,
    "LDG.E.64": 2,
    "LDS.64": 2,
    "LDG.E": 1,
    "LDS": 1,
    "HMMA.1688.F32": 4,
    "MOV": 1,
    "IADD3": 1,
    "FADD": 1,
    "FFMA": 1,
}


class SassParseError(ValueError):
    """The text is not a well-formed listing line."""


def _parse_line(line: str, lineno: int) -> SassInstr:
    match = _LINE_RE.match(line.strip())
    if match is None:
        raise SassParseError(f"line {lineno}: cannot parse {line.strip()!r}")
    wait = 0
    for ch in match["wait"]:
        if ch != "-":
            wait |= 1 << int(ch)
    operand_text = match["operands"]
    regs = [Reg(int(tok)) for tok in _REG_RE.findall(operand_text)]
    dest_width = _DEST_WIDTH.get(match["opcode"], 0)
    dests = tuple(regs[:dest_width])
    srcs = tuple(regs[dest_width:])
    # The renderer prints the destination vector before the operand text;
    # strip it back out so parse(render(x)) renders identically.
    if dest_width:
        tokens = list(_REG_RE.finditer(operand_text))
        if len(tokens) >= dest_width:
            cut = tokens[dest_width - 1].end()
            operand_text = operand_text[cut:].lstrip(", ").strip()
    return SassInstr(
        opcode=match["opcode"],
        dests=dests,
        srcs=srcs,
        operands=operand_text,
        stall=int(match["stall"]),
        yield_=match["yield"] == "Y",
        wrtdb=None if match["write"] == "-" else int(match["write"]),
        readb=None if match["read"] == "-" else int(match["read"]),
        watdb=wait,
    )


def parse(text: str, name: str = "parsed", live_in: frozenset[int] = frozenset()) -> SassListing:
    """Parse rendered listing text back into a :class:`SassListing`."""
    listing = SassListing(name=name, live_in=live_in)
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        listing.emit(_parse_line(stripped, lineno))
    return listing
