"""Global-memory address traces of the tensorized GEMM kernel.

Generates the byte-address ranges each block's LDG instructions touch,
iteration by iteration, in the wave order the GPU schedules blocks —
the input the L2 cache simulator needs to *measure* cross-block panel
reuse instead of assuming it.

Memory layout (matching the kernel's reality): the four split matrices
live contiguously in device memory as row-major fp16 arrays::

    Alo @ 0,           Ahi @ size(A),
    Blo @ 2 size(A),   Bhi @ 2 size(A) + size(B)

Each iteration a block reads ``bk`` columns of its A panels (``bm`` rows
x ``bk`` halfs, row-major -> ``bm`` short row segments each) and ``bk``
rows of its B panels (contiguous ``bk * n`` region sliced to ``bn``
columns -> ``bk`` segments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..tensorize.plan import TensorizationPlan

__all__ = ["Segment", "block_iteration_segments", "wave_trace"]


@dataclass(frozen=True)
class Segment:
    """One contiguous global-memory read: (byte start, byte length)."""

    start: int
    nbytes: int


def _a_panel_segments(base: int, row0: int, k0: int, bm: int, bk: int, k: int) -> Iterator[Segment]:
    """Row-major (m, k) fp16 matrix: bm row slices of bk halfs each."""
    for r in range(row0, row0 + bm):
        yield Segment(start=base + (r * k + k0) * 2, nbytes=bk * 2)


def _b_panel_segments(base: int, k0: int, col0: int, bk: int, bn: int, n: int) -> Iterator[Segment]:
    """Row-major (k, n) fp16 matrix: bk row slices of bn halfs each."""
    for r in range(k0, k0 + bk):
        yield Segment(start=base + (r * n + col0) * 2, nbytes=bn * 2)


def block_iteration_segments(
    plan: TensorizationPlan, block_row: int, block_col: int, iteration: int
) -> list[Segment]:
    """The LDG byte ranges of one block's k-iteration (all 4 split tiles)."""
    cfg = plan.config
    m, n, k = plan.m, plan.n, plan.k
    a_bytes = m * k * 2
    b_bytes = k * n * 2
    bases = {"Alo": 0, "Ahi": a_bytes, "Blo": 2 * a_bytes, "Bhi": 2 * a_bytes + b_bytes}
    row0 = block_row * cfg.bm
    col0 = block_col * cfg.bn
    k0 = iteration * cfg.bk
    segments: list[Segment] = []
    for name in ("Alo", "Ahi"):
        segments.extend(_a_panel_segments(bases[name], row0, k0, cfg.bm, cfg.bk, k))
    for name in ("Blo", "Bhi"):
        segments.extend(_b_panel_segments(bases[name], k0, col0, cfg.bk, cfg.bn, n))
    return segments


def wave_trace(
    plan: TensorizationPlan, wave_blocks: list[tuple[int, int]], iterations: int | None = None
) -> Iterator[Segment]:
    """Interleaved address stream of one wave of concurrent blocks.

    Blocks of a wave run in lockstep across k-iterations (they all stall
    on the same barrier cadence), so the stream interleaves per
    iteration: iteration 0 of every block, then iteration 1, ... — the
    access pattern under which panel sharing either hits L2 or does not.
    """
    total_iters = plan.k_iterations if iterations is None else iterations
    for it in range(total_iters):
        for row, col in wave_blocks:
            yield from block_iteration_segments(plan, row, col, it)
