"""Kernel execution engine: waves, DRAM bandwidth, and end-to-end timing.

Combines the per-block instruction schedule (:mod:`repro.gpu.scheduler`)
with the launch-level effects that shape the paper's performance figures:

* **occupancy ramp** — grids smaller than the SM count leave SMs idle
  (the small-matrix regime of Figure 8);
* **waves** — blocks execute in ``ceil(grid / (SMs x blocks_per_SM))``
  rounds; the tail wave underutilizes the GPU;
* **DRAM bandwidth** — each wave's unique global traffic is bounded by the
  aggregate GDDR6 bandwidth; a wave is either pipeline-bound or
  DRAM-bound, whichever is slower (the roofline at block granularity);
* **launch overhead** — a fixed per-kernel cost that penalizes the
  4-launch ``cuBLAS-TC-Emulation`` baseline relative to EGEMM-TC's fused
  single kernel.

Timing is reported through :class:`KernelTiming`, whose ``tflops`` uses
the paper's Eq. 9 (useful FLOPs over wall time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

from ..obs.hooks import exec_hook_override
from ..obs.metrics import get_registry
from ..obs.tracing import get_tracer
from .isa import ExecUnit, InstructionStream
from .occupancy import BlockResources, Occupancy, occupancy
from .scheduler import ScheduleResult, schedule
from .spec import GpuSpec

__all__ = [
    "KernelLaunch",
    "KernelTiming",
    "execute",
    "roofline_seconds",
    "LAUNCH_OVERHEAD_S",
    "EXEC_HOOK",
]

#: fixed kernel-launch overhead (driver + grid setup), seconds
LAUNCH_OVERHEAD_S = 4e-6

#: execution observer: when set (same module-global idiom as
#: ``emulation.gemm.FAULT_HOOK``), called once per :func:`execute` with an
#: ``repro.obs.profile.ExecutionTrace`` carrying the launch, schedule,
#: occupancy, per-wave records, and the returned timing.  The profiler
#: installs it via ``repro.obs.profile.collect_executions``; the engine
#: never imports the profiler at module level, so the dependency stays
#: one-directional.
EXEC_HOOK = None


@dataclass(frozen=True)
class KernelLaunch:
    """Everything the engine needs to time one kernel launch."""

    name: str
    stream: InstructionStream
    grid_blocks: int
    resources: BlockResources
    #: unique DRAM bytes per block after L2 reuse (the kernel builder
    #: computes this from the wave geometry; raw LDG traffic that hits L2
    #: does not pay DRAM bandwidth)
    dram_bytes_per_block: float
    #: useful FLOPs of the whole launch (2*m*n*k — Eq. 9 numerator)
    useful_flops: float


@dataclass
class KernelTiming:
    """Timing result of one kernel launch (or a fused sequence)."""

    name: str
    seconds: float
    cycles: float
    useful_flops: float
    occupancy: Occupancy | None = None
    waves: int = 0
    dram_bound_waves: int = 0
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def tflops(self) -> float:
        """Eq. 9: 2*M*N*K / time, in TFLOPS."""
        return self.useful_flops / self.seconds / 1e12 if self.seconds > 0 else 0.0

    def combined(self, other: "KernelTiming", name: str | None = None) -> "KernelTiming":
        """Serial composition of two launches (e.g. 4 cuBLAS calls)."""
        return KernelTiming(
            name=name or f"{self.name}+{other.name}",
            seconds=self.seconds + other.seconds,
            cycles=self.cycles + other.cycles,
            useful_flops=self.useful_flops + other.useful_flops,
            waves=self.waves + other.waves,
            dram_bound_waves=self.dram_bound_waves + other.dram_bound_waves,
        )


def execute(launch: KernelLaunch, spec: GpuSpec) -> KernelTiming:
    """Time one kernel launch on ``spec``."""
    if launch.grid_blocks <= 0:
        raise ValueError("grid must contain at least one block")

    hook = exec_hook_override(EXEC_HOOK)
    with get_tracer().span(
        "gpu.execute", category="gpu", kernel=launch.name,
        grid_blocks=launch.grid_blocks,
    ) as span:
        occ = occupancy(launch.resources, spec)
        sched: ScheduleResult = schedule(launch.stream, spec)

        # Per-SM block service time.  With a single resident block the SM pays
        # the full dependency critical path; with more, the other residents
        # fill the bubbles and throughput approaches the busiest-unit bound.
        busy_bound = max(sched.unit_busy.values(), default=0.0)
        if occ.blocks_per_sm <= 1:
            cycles_per_block = sched.total_cycles
        else:
            cycles_per_block = max(busy_bound, sched.total_cycles / occ.blocks_per_sm)

        slots = spec.num_sms * occ.blocks_per_sm
        waves = ceil(launch.grid_blocks / slots)
        total_cycles = 0.0
        dram_bound_waves = 0
        dram_bw_cycle = spec.dram_bw_gbps * 1e9 / (spec.clock_ghz * 1e9)  # bytes/cycle total

        wave_log: list[tuple] = []
        remaining = launch.grid_blocks
        for wave_index in range(waves):
            active = min(remaining, slots)
            remaining -= active
            # Pipeline-bound time of the wave: resident blocks per SM run
            # back-to-back; SMs run in parallel.
            blocks_per_active_sm = ceil(active / spec.num_sms)
            pipeline_cycles = cycles_per_block * blocks_per_active_sm
            # DRAM-bound time of the wave: unique traffic over full bandwidth.
            dram_cycles = launch.dram_bytes_per_block * active / dram_bw_cycle
            dram_bound = dram_cycles > pipeline_cycles
            if dram_bound:
                dram_bound_waves += 1
            start = total_cycles
            total_cycles += max(pipeline_cycles, dram_cycles)
            if hook is not None:
                wave_log.append(
                    (wave_index, active, start, total_cycles,
                     pipeline_cycles, dram_cycles, dram_bound)
                )

        seconds = spec.cycles_to_seconds(total_cycles) + LAUNCH_OVERHEAD_S
        timing = KernelTiming(
            name=launch.name,
            seconds=seconds,
            cycles=total_cycles,
            useful_flops=launch.useful_flops,
            occupancy=occ,
            waves=waves,
            dram_bound_waves=dram_bound_waves,
            breakdown={
                "block_cycles": sched.total_cycles,
                "tensor_busy": sched.unit_busy.get(ExecUnit.TENSOR, 0.0),
                "mem_busy": sched.unit_busy.get(ExecUnit.MEM, 0.0),
            },
        )
        span.set(waves=waves, dram_bound_waves=dram_bound_waves,
                 cycles=total_cycles, seconds=seconds)

    registry = get_registry()
    if registry.enabled:
        registry.inc("gpu.engine.launches")
        registry.inc("gpu.engine.waves", waves)
        registry.inc("gpu.engine.dram_bound_waves", dram_bound_waves)
        registry.inc("gpu.engine.cycles", total_cycles)
        registry.observe("gpu.engine.block_cycles", sched.total_cycles)

    if hook is not None:
        from ..obs.profile import ExecutionTrace, WaveRecord

        hook(
            ExecutionTrace(
                launch=launch,
                spec=spec,
                occupancy=occ,
                schedule=sched,
                timing=timing,
                waves=[WaveRecord(*w) for w in wave_log],
            )
        )
    return timing


def roofline_seconds(
    flops: float,
    dram_bytes: float,
    spec: GpuSpec,
    peak_tflops: float,
    efficiency: float = 1.0,
    grid_blocks: int | None = None,
    blocks_per_sm: int = 2,
) -> float:
    """Classic roofline time with an occupancy ramp, for vendor baselines.

    ``efficiency`` is the fraction of ``peak_tflops`` the kernel sustains
    at full occupancy (calibrated per baseline from the paper's Appendix
    anchors); when ``grid_blocks`` is given, compute throughput is further
    scaled by the fraction of SM block slots the grid fills, reproducing
    the small-matrix ramp of Figure 8.
    """
    eff = efficiency
    if grid_blocks is not None:
        slots = spec.num_sms * blocks_per_sm
        # Quantize to whole waves: a grid of slots+1 blocks costs 2 waves.
        waves = ceil(grid_blocks / slots)
        fill = grid_blocks / (waves * slots)
        eff = efficiency * fill
    compute_s = flops / (peak_tflops * 1e12 * max(eff, 1e-9))
    memory_s = dram_bytes / (spec.dram_bw_gbps * 1e9)
    return max(compute_s, memory_s) + LAUNCH_OVERHEAD_S
