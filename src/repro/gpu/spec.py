"""GPU hardware specifications and resource budgets (Table 3).

A :class:`GpuSpec` carries the small set of resource budgets the paper's
hardware-aware analytic model consumes (§6: "the user only needs to provide
a small set of resource budgets") plus the microarchitectural constants the
timing simulator needs.  Values for the two evaluation GPUs come from the
public datasheets [23, 24] and the microbenchmarking studies the paper
cites (Jia et al. [12, 13]):

* **Tesla T4** (TU104, 40 SMs, 320 Tensor Cores, 16 GB GDDR6 @ 320 GB/s) —
  Table 3's budget: 64 KB shared memory/SM, 256 KB registers/SM, 2^6
  TFLOPS peak, 750 GB/s L2.
* **Quadro RTX 6000** (TU102, 72 SMs, 576 Tensor Cores, 24 GB GDDR6 @
  672 GB/s).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["GpuSpec", "TESLA_T4", "RTX6000", "GPUS", "get_gpu", "table3_rows"]


@dataclass(frozen=True)
class GpuSpec:
    """Resource budgets and timing constants of one GPU model."""

    name: str
    # --- topology -------------------------------------------------------
    num_sms: int
    tensor_cores_per_sm: int
    fp32_cores_per_sm: int
    clock_ghz: float
    # --- per-SM resource budgets (Table 3) ------------------------------
    shared_mem_per_sm: int  # bytes
    register_file_per_sm: int  # bytes (the FRAG budget)
    max_registers_per_thread: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    # --- peaks and bandwidths -------------------------------------------
    peak_half_tc_tflops: float  # Tensor Core fp16 peak (Table 3's 2^6)
    peak_fp32_tflops: float  # CUDA-core single-precision peak
    dram_bw_gbps: float  # GDDR6 bandwidth
    l2_bw_gbps: float  # Table 3: 750 GB/s on T4
    l2_size: int  # bytes
    # --- instruction timing (cycles), after Jia et al. [12, 13] ---------
    #: issue-to-issue interval of one HMMA.1688 warp instruction per SM.
    #: 2.0 would sustain the theoretical Tensor Core peak; 2.7 reflects the
    #: achievable steady-state HMMA rate with operand-collector and
    #: register-bank conflicts, calibrated once against the Appendix's
    #: ~12 TFLOPS EGEMM-TC anchor on T4 (all other results are derived)
    hmma_issue_cycles: float = 2.7
    #: LSU issue interval of one 128-bit shared-memory load (warp-wide)
    lds_issue_cycles: float = 4.0
    #: LSU issue interval of one 128-bit shared-memory store (warp-wide)
    sts_issue_cycles: float = 4.0
    #: LSU issue interval of one 128-bit global load (warp-wide); the
    #: DRAM-bandwidth cost is modelled separately by the engine
    ldg_issue_cycles: float = 4.0
    #: completion latency of a global load (DRAM round trip)
    ldg_latency_cycles: float = 450.0
    #: completion latency of a shared-memory load
    lds_latency_cycles: float = 22.0
    #: completion latency of one HMMA
    hmma_latency_cycles: float = 14.0
    #: block-wide barrier cost per tensorized iteration (__syncthreads)
    barrier_cycles: float = 30.0

    # derived -------------------------------------------------------------
    @property
    def flops_per_cycle_tc_per_sm(self) -> float:
        """Half-precision Tensor Core FLOPs per cycle per SM."""
        return self.peak_half_tc_tflops * 1e12 / (self.num_sms * self.clock_ghz * 1e9)

    @property
    def flops_per_cycle_fp32_per_sm(self) -> float:
        """CUDA-core fp32 FLOPs per cycle per SM (2 per FMA per core)."""
        return self.peak_fp32_tflops * 1e12 / (self.num_sms * self.clock_ghz * 1e9)

    @property
    def dram_bytes_per_cycle_per_sm(self) -> float:
        """Fair-share DRAM bandwidth per SM, in bytes per core cycle."""
        return self.dram_bw_gbps * 1e9 / (self.num_sms * self.clock_ghz * 1e9)

    @property
    def shared_bytes_per_cycle_per_sm(self) -> float:
        """Shared-memory bandwidth per SM (Turing: 128 B/cycle)."""
        return 128.0

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)

    def with_overrides(self, **kwargs) -> "GpuSpec":
        """A copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)


TESLA_T4 = GpuSpec(
    name="Tesla T4",
    num_sms=40,
    tensor_cores_per_sm=8,
    fp32_cores_per_sm=64,
    clock_ghz=1.59,
    shared_mem_per_sm=64 * 1024,
    register_file_per_sm=256 * 1024,
    max_registers_per_thread=256,
    max_threads_per_sm=1024,
    max_blocks_per_sm=16,
    peak_half_tc_tflops=64.0,  # Table 3 lists the budget as 2^6 TFLOPS
    peak_fp32_tflops=8.1,
    dram_bw_gbps=320.0,
    l2_bw_gbps=750.0,  # Table 3
    l2_size=4 * 1024 * 1024,
)

RTX6000 = GpuSpec(
    name="RTX 6000",
    num_sms=72,
    tensor_cores_per_sm=8,
    fp32_cores_per_sm=64,
    clock_ghz=1.77,
    shared_mem_per_sm=64 * 1024,
    register_file_per_sm=256 * 1024,
    max_registers_per_thread=256,
    max_threads_per_sm=1024,
    max_blocks_per_sm=16,
    peak_half_tc_tflops=130.5,
    peak_fp32_tflops=16.3,
    dram_bw_gbps=672.0,
    l2_bw_gbps=1400.0,
    l2_size=6 * 1024 * 1024,
)

GPUS = {"t4": TESLA_T4, "rtx6000": RTX6000}


def get_gpu(name: str) -> GpuSpec:
    """Look up a GPU spec by short name ('t4' or 'rtx6000')."""
    key = name.lower().replace(" ", "").replace("-", "")
    for alias, spec in (("t4", TESLA_T4), ("teslat4", TESLA_T4), ("rtx6000", RTX6000)):
        if key == alias:
            return spec
    raise KeyError(f"unknown GPU {name!r}; choose from {sorted(GPUS)}")


def table3_rows(spec: GpuSpec = TESLA_T4) -> list[dict[str, str]]:
    """The paper's Table 3 (resource budget), for the experiment harness."""
    return [
        {"resource": "Shared Memory Size", "budget": f"{spec.shared_mem_per_sm // 1024} KB"},
        {"resource": "FRAG/Register Size", "budget": f"{spec.register_file_per_sm // 1024} KB"},
        {"resource": "Peak Computation", "budget": f"{spec.peak_half_tc_tflops:.0f} TFLOPS"},
        {"resource": "L2 Cache Speed", "budget": f"{spec.l2_bw_gbps:.0f} GB/s"},
    ]
