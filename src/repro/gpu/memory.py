"""Functional memory hierarchy with traffic accounting.

The paper's memory optimizations (§4's FRAG caching, §5.1's delayed STS)
are fundamentally *byte-counting* arguments — Table 2 compares the bytes
moved between shared memory and registers with and without FRAG caching.
This module provides the functional containers the tensorized kernel
executes against, each counting its own traffic, so those byte counts are
*measured* from the executing kernel rather than asserted:

* :class:`GlobalMemory` — device-memory matrices (LDG/STG traffic),
* :class:`SharedMemory` — one block's scratchpad with the 64 KB capacity
  check (STS/LDS traffic),
* :class:`TrafficLog`  — the per-level byte counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.hooks import fault_hook_override

__all__ = ["TrafficLog", "GlobalMemory", "SharedMemory", "SharedMemoryOverflow"]

#: fault-injection hook (``repro.resilience.faults``): when set, called as
#: ``FAULT_HOOK("shared", tile)`` on every tile staged into shared memory;
#: returns the (possibly corrupted) tile.  ``None`` in normal operation.
FAULT_HOOK = None


class SharedMemoryOverflow(RuntimeError):
    """Raised when a block allocates more scratchpad than the SM has."""


@dataclass
class TrafficLog:
    """Byte counters for each memory-hierarchy edge."""

    global_load: int = 0  # LDG: global -> registers
    global_store: int = 0  # STG: registers -> global
    shared_store: int = 0  # STS: registers -> shared
    shared_load: int = 0  # LDS: shared -> registers (FRAG)

    @property
    def global_total(self) -> int:
        return self.global_load + self.global_store

    @property
    def shared_total(self) -> int:
        return self.shared_store + self.shared_load

    def merged(self, other: "TrafficLog") -> "TrafficLog":
        return TrafficLog(
            global_load=self.global_load + other.global_load,
            global_store=self.global_store + other.global_store,
            shared_store=self.shared_store + other.shared_store,
            shared_load=self.shared_load + other.shared_load,
        )


@dataclass
class GlobalMemory:
    """Device memory holding named matrices, with LDG/STG accounting."""

    log: TrafficLog = field(default_factory=TrafficLog)
    _arrays: dict[str, np.ndarray] = field(default_factory=dict)

    def bind(self, name: str, array: np.ndarray) -> None:
        """Place a matrix in global memory (no traffic: host-side copy)."""
        self._arrays[name] = array

    def load(self, name: str, rows: slice, cols: slice) -> np.ndarray:
        """LDG: read a tile; counts its bytes and returns a copy."""
        tile = self._arrays[name][rows, cols]
        self.log.global_load += int(tile.nbytes)
        return tile.copy()

    def store(self, name: str, rows: slice, cols: slice, tile: np.ndarray) -> None:
        """STG: write a tile back; counts its bytes."""
        dst = self._arrays[name][rows, cols]
        if dst.shape != tile.shape:
            raise ValueError(f"store shape {tile.shape} != destination {dst.shape}")
        self._arrays[name][rows, cols] = tile.astype(dst.dtype)
        self.log.global_store += int(tile.nbytes)

    def array(self, name: str) -> np.ndarray:
        """Direct (untracked) access, for result extraction in tests."""
        return self._arrays[name]


@dataclass
class SharedMemory:
    """One block's shared-memory scratchpad with capacity enforcement."""

    capacity_bytes: int
    log: TrafficLog = field(default_factory=TrafficLog)
    _tiles: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def used_bytes(self) -> int:
        return sum(int(t.nbytes) for t in self._tiles.values())

    def store(self, name: str, tile: np.ndarray) -> None:
        """STS: stage a tile from registers into shared memory."""
        new_bytes = int(tile.nbytes)
        old = self._tiles.get(name)
        projected = self.used_bytes - (int(old.nbytes) if old is not None else 0) + new_bytes
        if projected > self.capacity_bytes:
            raise SharedMemoryOverflow(
                f"block shared-memory demand {projected} B exceeds the "
                f"{self.capacity_bytes} B budget — the analytic model's "
                "SHMEM constraint (Eq. 8) should have rejected this tiling"
            )
        staged = tile.copy()
        hook = fault_hook_override(FAULT_HOOK)
        if hook is not None:
            staged = hook("shared", staged)
        self._tiles[name] = staged
        self.log.shared_store += new_bytes

    def load(self, name: str, rows: slice | None = None, cols: slice | None = None) -> np.ndarray:
        """LDS: read a staged tile (or sub-tile) into registers."""
        tile = self._tiles[name]
        if rows is not None or cols is not None:
            tile = tile[rows if rows is not None else slice(None), cols if cols is not None else slice(None)]
        self.log.shared_load += int(tile.nbytes)
        return tile.copy()

    def free(self, name: str) -> None:
        self._tiles.pop(name, None)
