"""GPU hardware simulator: specs (Table 3), SASS-like ISA, dual-pipeline
scheduler with latency hiding (Figure 6), register allocation (§5.2),
occupancy, memory hierarchy, and the wave/DRAM execution engine."""

from .engine import LAUNCH_OVERHEAD_S, KernelLaunch, KernelTiming, execute, roofline_seconds
from .isa import ExecUnit, InstrGroup, InstructionStream, Opcode
from .memory import GlobalMemory, SharedMemory, SharedMemoryOverflow, TrafficLog
from .occupancy import BlockResources, Occupancy, occupancy
from .registers import AllocationResult, StageUsage, allocate, egemm_stage_usage
from .arch import AMPERE, PASCAL, TURING, VOLTA, Architecture, UnsupportedArchitectureError, check_listing
from .cache import CacheStats, SetAssociativeCache
from .assembler import SassParseError, parse as parse_sass
from .sass import RZ, Reg, SassInstr, SassListing, SassValidationError
from .sass import validate as validate_sass
from .scheduler import ScheduleResult, clear_schedule_cache, schedule, schedule_cache_stats
from .spec import GPUS, RTX6000, TESLA_T4, GpuSpec, get_gpu, table3_rows
from .timeline import LaneSegment, render_timeline, timeline_segments
from .trace import Segment, block_iteration_segments, wave_trace
from .warp import (
    COMPUTE_LAYOUT,
    WARP_SIZE,
    ThreadLayout,
    compute_sharing,
    loading_assignment,
    thread_slices,
)

__all__ = [
    "LAUNCH_OVERHEAD_S",
    "KernelLaunch",
    "KernelTiming",
    "execute",
    "roofline_seconds",
    "ExecUnit",
    "InstrGroup",
    "InstructionStream",
    "Opcode",
    "GlobalMemory",
    "SharedMemory",
    "SharedMemoryOverflow",
    "TrafficLog",
    "BlockResources",
    "Occupancy",
    "occupancy",
    "AllocationResult",
    "StageUsage",
    "allocate",
    "egemm_stage_usage",
    "CacheStats",
    "SetAssociativeCache",
    "AMPERE",
    "PASCAL",
    "TURING",
    "VOLTA",
    "Architecture",
    "UnsupportedArchitectureError",
    "check_listing",
    "SassParseError",
    "parse_sass",
    "RZ",
    "Reg",
    "SassInstr",
    "SassListing",
    "SassValidationError",
    "validate_sass",
    "ScheduleResult",
    "schedule",
    "schedule_cache_stats",
    "clear_schedule_cache",
    "Segment",
    "block_iteration_segments",
    "wave_trace",
    "LaneSegment",
    "render_timeline",
    "timeline_segments",
    "GPUS",
    "RTX6000",
    "TESLA_T4",
    "GpuSpec",
    "get_gpu",
    "table3_rows",
    "COMPUTE_LAYOUT",
    "WARP_SIZE",
    "ThreadLayout",
    "compute_sharing",
    "loading_assignment",
    "thread_slices",
]
