"""A SASS-like instruction set for the kernel timing simulator (§5).

The paper programs Tensor Cores at the SASS level with four instructions
that "are widely used in many generations of Nvidia GPUs":

* ``LDS``  — shared memory -> registers,
* ``LDG``  — global memory -> registers,
* ``STS``  — registers -> shared memory,
* ``HMMA`` — the Tensor Core compute instruction.

We add the bookkeeping opcodes a real kernel carries (``FFMA`` for
CUDA-core math, ``IADD`` for addressing, ``BAR`` for block barriers,
``EXIT``).  Instructions here are *warp-level*: one ``LDG.128`` is the
128-bit-per-thread load of a whole warp (512 bytes of traffic).

Instruction streams are represented as lists of :class:`InstrGroup` —
run-length-encoded batches of identical instructions with explicit
dependency edges — which keeps the scheduler cost independent of matrix
size while preserving the issue-order structure Figure 6 manipulates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .spec import GpuSpec

__all__ = ["Opcode", "ExecUnit", "InstrGroup", "InstructionStream"]


class ExecUnit(enum.Enum):
    """Functional unit an opcode issues to.

    Per the microbenchmarking works the paper cites [15, 39], the memory
    instructions (LDS, LDG, STS) are executed *sequentially* on one
    load/store pipeline and "cannot be further paralleled"; the Tensor
    Core pipeline runs independently — that independence is exactly the
    latency-hiding opportunity of §5.1.
    """

    MEM = "mem"
    TENSOR = "tensor"
    ALU = "alu"
    SYNC = "sync"


class Opcode(enum.Enum):
    LDS = "LDS"
    LDG = "LDG"
    STS = "STS"
    STG = "STG"
    HMMA = "HMMA"
    FFMA = "FFMA"
    IADD = "IADD"
    BAR = "BAR"
    EXIT = "EXIT"

    @property
    def unit(self) -> ExecUnit:
        return _UNIT[self]


_UNIT = {
    Opcode.LDS: ExecUnit.MEM,
    Opcode.LDG: ExecUnit.MEM,
    Opcode.STS: ExecUnit.MEM,
    Opcode.STG: ExecUnit.MEM,
    Opcode.HMMA: ExecUnit.TENSOR,
    Opcode.FFMA: ExecUnit.ALU,
    Opcode.IADD: ExecUnit.ALU,
    Opcode.BAR: ExecUnit.SYNC,
    Opcode.EXIT: ExecUnit.SYNC,
}

#: bytes of traffic carried by one warp-level instance of each memory opcode
_BYTES_PER_INSTR = {
    Opcode.LDS: 512,  # LDS.128: 16 B x 32 threads
    Opcode.LDG: 512,  # LDG.128
    Opcode.STS: 512,  # STS.128
    Opcode.STG: 512,  # STG.128
}


@dataclass
class InstrGroup:
    """A run of ``count`` identical warp-level instructions.

    ``depends_on`` lists indices (into the owning stream) of groups whose
    *completion* must precede this group's first issue — the coarse
    dependency structure of a tensorized kernel (HMMAs of iteration *i*
    depend on the LDS batch of iteration *i*; the STS batch of iteration
    *i+1* is delayed behind iteration *i*'s LDS batch, §5.1's "delay STS
    to the end of the current iteration").

    ``issue_after`` lists groups whose *issue* (not completion) must
    precede this group's issue — the in-order front-end constraint.  The
    SASS-level instruction reordering of §5.1 manipulates exactly these
    edges: without scheduling, a warp's LDG for iteration *i+1* sits in
    program order behind the iteration-*i* HMMAs and cannot issue until
    they have; with scheduling the loads are hoisted ahead.
    """

    opcode: Opcode
    count: int
    depends_on: tuple[int, ...] = ()
    issue_after: tuple[int, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("instruction count must be non-negative")

    @property
    def unit(self) -> ExecUnit:
        return self.opcode.unit

    @property
    def traffic_bytes(self) -> int:
        """Bytes moved by the whole group (memory opcodes only)."""
        return _BYTES_PER_INSTR.get(self.opcode, 0) * self.count

    def issue_cycles(self, spec: GpuSpec) -> float:
        """Cycles this group occupies its functional unit."""
        per = {
            Opcode.LDS: spec.lds_issue_cycles,
            Opcode.LDG: spec.ldg_issue_cycles,
            Opcode.STS: spec.sts_issue_cycles,
            Opcode.STG: spec.sts_issue_cycles,
            Opcode.HMMA: spec.hmma_issue_cycles,
            Opcode.FFMA: 1.0,
            Opcode.IADD: 1.0,
            Opcode.BAR: spec.barrier_cycles,
            Opcode.EXIT: 1.0,
        }[self.opcode]
        return per * self.count

    def completion_latency(self, spec: GpuSpec) -> float:
        """Extra cycles from last issue to last completion."""
        return {
            Opcode.LDS: spec.lds_latency_cycles,
            Opcode.LDG: spec.ldg_latency_cycles,
            Opcode.STS: spec.lds_latency_cycles,
            Opcode.STG: spec.lds_latency_cycles,
            Opcode.HMMA: spec.hmma_latency_cycles,
            Opcode.FFMA: 4.0,
            Opcode.IADD: 4.0,
            Opcode.BAR: 0.0,
            Opcode.EXIT: 0.0,
        }[self.opcode]


@dataclass
class InstructionStream:
    """An ordered list of instruction groups forming one block's schedule."""

    groups: list[InstrGroup] = field(default_factory=list)

    def append(self, group: InstrGroup) -> int:
        """Add a group; returns its index for dependency wiring."""
        self.groups.append(group)
        return len(self.groups) - 1

    def emit(
        self,
        opcode: Opcode,
        count: int,
        depends_on: tuple[int, ...] = (),
        issue_after: tuple[int, ...] = (),
        label: str = "",
    ) -> int:
        return self.append(InstrGroup(opcode, count, depends_on, issue_after, label))

    def count(self, opcode: Opcode) -> int:
        """Total instruction count of one opcode across the stream."""
        return sum(g.count for g in self.groups if g.opcode is opcode)

    def traffic_bytes(self, opcode: Opcode) -> int:
        """Total bytes moved by one memory opcode across the stream."""
        return sum(g.traffic_bytes for g in self.groups if g.opcode is opcode)

    def hmma_flops(self, flops_per_hmma: int = 2 * 16 * 8 * 8) -> int:
        """FLOPs issued to Tensor Cores (HMMA.1688 default shape)."""
        return self.count(Opcode.HMMA) * flops_per_hmma

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self):
        return iter(self.groups)
