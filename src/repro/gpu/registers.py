"""Heuristic stage-based register allocation (§5.2).

The paper observes that a Tensor-Core-centric kernel runs in four stages
with largely disjoint register needs:

1. *context* — thread/block indices, block-matrix addressing,
2. *load C*  — staging the C block from global memory,
3. *compute* — accumulator fragments + operand fragments + double-buffer
   staging registers,
4. *store C* — writing the result back.

A naive (CUDA-level) allocation gives every stage its own registers and
spills; the paper's manual allocation reuses registers across stages,
fitting the whole kernel in 232 of the 256 per-thread registers.

This module models both policies over a :class:`StageUsage` description,
reporting per-thread register counts and the spill traffic the naive
policy would incur — the quantity behind the "register spilling, leading
to heavy slow down" claim and the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import GpuSpec

__all__ = [
    "StageUsage",
    "AllocationResult",
    "allocate",
    "egemm_stage_usage",
    "FaultExposure",
    "fault_exposure",
]


@dataclass(frozen=True)
class StageUsage:
    """Per-thread register demand of the four kernel stages."""

    context: int
    load_c: int
    compute: int
    store_c: int

    def stages(self) -> dict[str, int]:
        return {
            "context": self.context,
            "load_c": self.load_c,
            "compute": self.compute,
            "store_c": self.store_c,
        }


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of a register-allocation policy."""

    policy: str
    registers_per_thread: int
    limit: int
    spilled_registers: int

    @property
    def spills(self) -> bool:
        return self.spilled_registers > 0

    @property
    def spill_bytes_per_thread(self) -> int:
        """Local-memory footprint of the spilled registers (4 B each)."""
        return self.spilled_registers * 4


def allocate(usage: StageUsage, spec: GpuSpec, policy: str = "stage-reuse") -> AllocationResult:
    """Allocate registers under one of two policies.

    ``stage-reuse``
        The paper's manual allocation: context registers are live across
        the whole kernel; the three remaining stages time-share one pool
        sized by the largest of them.
    ``naive``
        Compiler-conservative allocation: every stage holds its own
        registers simultaneously (what aggressive CUDA-level register
        caching degenerates to when live ranges overlap).
    """
    limit = spec.max_registers_per_thread
    if policy == "stage-reuse":
        used = usage.context + max(usage.load_c, usage.compute, usage.store_c)
    elif policy == "naive":
        used = usage.context + usage.load_c + usage.compute + usage.store_c
    else:
        raise ValueError(f"unknown policy {policy!r}")
    spilled = max(0, used - limit)
    return AllocationResult(
        policy=policy,
        registers_per_thread=min(used, limit),
        limit=limit,
        spilled_registers=spilled,
    )


@dataclass(frozen=True)
class FaultExposure:
    """AVF-style bit-exposure accounting of one allocation policy.

    A particle strike can only corrupt *architecturally live* state:
    registers the allocation keeps resident, plus any state the policy
    spilled to local memory (spilled bits are still live — they just
    moved to a different, typically less-protected, storage class).  The
    stage-reuse policy shrinks the live register window, which shrinks
    the raw soft-error cross-section the fault campaigns of
    :mod:`repro.resilience` model with their FRAG/accumulator flips.
    """

    policy: str
    #: per-thread live register bits (32-bit registers)
    live_register_bits: int
    #: per-thread bits spilled to local memory by this policy
    spilled_bits: int

    @property
    def total_bits(self) -> int:
        return self.live_register_bits + self.spilled_bits

    @property
    def spill_fraction(self) -> float:
        return self.spilled_bits / self.total_bits if self.total_bits else 0.0


def fault_exposure(
    usage: StageUsage, spec: GpuSpec, policy: str = "stage-reuse"
) -> FaultExposure:
    """Bit-level fault-exposure surface of ``usage`` under ``policy``."""
    alloc = allocate(usage, spec, policy)
    return FaultExposure(
        policy=policy,
        live_register_bits=alloc.registers_per_thread * 32,
        spilled_bits=alloc.spilled_registers * 32,
    )


def egemm_stage_usage(
    wm: int, wn: int, wk: int, bm: int, bn: int, bk: int, threads_per_block: int = 256
) -> StageUsage:
    """Stage register demands of the EGEMM kernel for one tiling choice.

    Derived from the data each thread holds (4-byte registers):

    * context: indices, strides, pointers, and the block-matrix addressing
      the paper's first stage computes (~40 registers);
    * load C: a (wm x wn) fp32 warp tile spread over 32 threads;
    * compute: the C accumulator fragments, double-buffered A/B fragments
      of both split halves at the current and next wk step, double-buffered
      staging registers for the in-flight global loads (§5.1 caches LDG
      data in registers before the delayed STS), plus addressing
      temporaries;
    * store C: same footprint as load C.

    For the paper's T4 design point (wm=64, wn=32, wk=8, bm=bn=128,
    bk=32, 256 threads) this evaluates to 232 registers under stage
    reuse — the "232 out of 256" of §5.2.
    """
    c_frag = (wm * wn * 4) // (32 * 4)
    ab_frag = (2 * (wm + wn) * wk * 2) // (32 * 4)
    staging = (2 * (bm + bn) * bk * 2) // (threads_per_block * 4)
    return StageUsage(
        context=40,
        load_c=c_frag,
        compute=c_frag + 2 * ab_frag + 2 * staging + 16,
        store_c=c_frag,
    )
