"""Warp model: thread layouts and cross-warp collaboration (§4, Figure 5).

Tensor Cores force a two-phase warp discipline the paper exploits:

* **computation phase** — the 32 threads of a warp act as one unit with
  the default ``(32, 1)`` layout, collaboratively calling the primitive;
* **data-loading phase** — the same threads are re-organized into a 2-D
  layout (e.g. ``(16, 2)``) so each thread owns a non-overlapping slice of
  the tile being staged ("it is much easier to program with the 16x2
  thread configuration", §4).

Figure 5's warp collaboration: during loading, *all* warps of a block
cooperatively stage *all* data fragments into shared memory; during
computation, one staged fragment is consumed by *multiple* warps (each A
row-panel is shared by every warp in the same warp-grid row, and likewise
for B column-panels).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "WARP_SIZE",
    "ThreadLayout",
    "COMPUTE_LAYOUT",
    "thread_slices",
    "loading_assignment",
    "compute_sharing",
]

WARP_SIZE = 32


@dataclass(frozen=True)
class ThreadLayout:
    """A (x, y) organization of one warp's 32 threads."""

    x: int
    y: int

    def __post_init__(self) -> None:
        if self.x <= 0 or self.y <= 0 or self.x * self.y != WARP_SIZE:
            raise ValueError(f"layout {self.x}x{self.y} must cover exactly {WARP_SIZE} threads")


#: the default layout required for collaborative Tensor Core calls
COMPUTE_LAYOUT = ThreadLayout(32, 1)


def thread_slices(
    rows: int, cols: int, layout: ThreadLayout
) -> list[tuple[slice, slice]]:
    """Partition a (rows, cols) tile among a warp's threads.

    Returns one ``(row_slice, col_slice)`` per thread, in thread order.
    The slices are non-overlapping and jointly cover the tile — the
    property §4's loading-phase reorganization exists to guarantee
    (verified by the test suite).  ``rows`` must divide by ``layout.y``
    and ``cols`` by ``layout.x``.
    """
    if rows % layout.y or cols % layout.x:
        raise ValueError(f"tile {rows}x{cols} does not partition over layout {layout.x}x{layout.y}")
    r_step = rows // layout.y
    c_step = cols // layout.x
    slices = []
    for ty in range(layout.y):
        for tx in range(layout.x):
            slices.append(
                (slice(ty * r_step, (ty + 1) * r_step), slice(tx * c_step, (tx + 1) * c_step))
            )
    return slices


def loading_assignment(num_fragments: int, num_warps: int) -> dict[int, list[int]]:
    """Figure 5, loading phase: warps collaboratively stage all fragments.

    Fragments are dealt round-robin so the LDG work is balanced; returns
    ``{warp_id: [fragment ids]}`` covering every fragment exactly once.
    """
    if num_warps <= 0:
        raise ValueError("need at least one warp")
    assignment: dict[int, list[int]] = {w: [] for w in range(num_warps)}
    for frag in range(num_fragments):
        assignment[frag % num_warps].append(frag)
    return assignment


def compute_sharing(warp_grid_m: int, warp_grid_n: int) -> dict[str, dict[int, list[int]]]:
    """Figure 5, computation phase: which warps consume each staged panel.

    With warps arranged in a (warp_grid_m x warp_grid_n) grid over the
    block tile, A row-panel ``i`` is consumed by every warp of grid row
    ``i`` and B column-panel ``j`` by every warp of grid column ``j`` —
    the cross-warp reuse that motivates staging through shared memory
    once instead of per-warp global reads.
    """
    if warp_grid_m <= 0 or warp_grid_n <= 0:
        raise ValueError("warp grid dimensions must be positive")
    warp_id = lambda i, j: i * warp_grid_n + j
    a_panels = {i: [warp_id(i, j) for j in range(warp_grid_n)] for i in range(warp_grid_m)}
    b_panels = {j: [warp_id(i, j) for i in range(warp_grid_m)] for j in range(warp_grid_n)}
    return {"A": a_panels, "B": b_panels}
