"""GPU architecture gating — the artifact's "Turing required" rule.

The artifact's Appendix warns that its SASS "can be compiled and
evaluated" only on Turing GPUs and that running on Volta or Pascal ends
in ``Segmentation fault (core dumped)``: the m16n8k8 ``HMMA.1688``
encoding does not exist before Turing (Volta's HMMA is m8n8k4; Pascal
has no Tensor Cores at all).  This module makes that constraint a
checkable property instead of a crash:

* each :class:`Architecture` declares the HMMA shapes it encodes,
* :func:`check_listing` validates a SASS listing against a target
  architecture and raises :class:`UnsupportedArchitectureError` with the
  artifact's diagnosis instead of a segfault.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .sass import SassListing

__all__ = ["Architecture", "TURING", "VOLTA", "PASCAL", "AMPERE", "UnsupportedArchitectureError", "check_listing"]


class UnsupportedArchitectureError(RuntimeError):
    """The listing uses instructions the target architecture lacks."""


@dataclass(frozen=True)
class Architecture:
    """One GPU generation's instruction-encoding capabilities."""

    name: str
    sm_version: int
    #: HMMA opcode spellings this generation encodes
    hmma_shapes: frozenset[str]
    has_tensor_cores: bool = True


PASCAL = Architecture("Pascal", 61, frozenset(), has_tensor_cores=False)
VOLTA = Architecture("Volta", 70, frozenset({"HMMA.884.F32"}))
TURING = Architecture("Turing", 75, frozenset({"HMMA.884.F32", "HMMA.1688.F32"}))
AMPERE = Architecture(
    "Ampere", 80, frozenset({"HMMA.884.F32", "HMMA.1688.F32", "HMMA.16816.F32"})
)


def check_listing(listing: SassListing, arch: Architecture) -> None:
    """Raise with the artifact's diagnosis when the listing cannot run.

    Mirrors the Appendix's "Typical Errors": compiling the EGEMM-TC SASS
    for a non-Turing GPU produces a crash at run time; here it produces
    an explanation.
    """
    for pos, instr in enumerate(listing.instrs):
        if instr.opcode.startswith("HMMA"):
            if not arch.has_tensor_cores:
                raise UnsupportedArchitectureError(
                    f"{listing.name}[{pos}]: {arch.name} (sm_{arch.sm_version}) has no "
                    "Tensor Cores — this kernel cannot run at all"
                )
            if instr.opcode not in arch.hmma_shapes:
                raise UnsupportedArchitectureError(
                    f"{listing.name}[{pos}]: {instr.opcode} is not encoded on "
                    f"{arch.name} (sm_{arch.sm_version}) — running this SASS there "
                    "would be the artifact's 'Segmentation fault (core dumped)'; "
                    "Turing architecture is required"
                )
