"""Occupancy model: how many blocks fit on an SM, and how full the GPU is.

Small problem sizes launch fewer blocks than the GPU has SMs; the paper's
§7.3 attributes EGEMM-TC's smaller speedups at small matrices to exactly
this ("the GPU capability is not fully utilized at small matrix sizes and
the compute-bound has not been achieved").  The engine uses this module to
derive wave counts and per-wave DRAM fair shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from .spec import GpuSpec

__all__ = ["BlockResources", "Occupancy", "occupancy"]


@dataclass(frozen=True)
class BlockResources:
    """Per-block resource footprint of a kernel."""

    threads: int
    shared_mem_bytes: int
    registers_per_thread: int

    @property
    def warps(self) -> int:
        return ceil(self.threads / 32)


@dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy of a kernel on a GPU."""

    blocks_per_sm: int
    active_warps_per_sm: int
    limiting_resource: str

    @property
    def resident_blocks(self) -> int:
        return self.blocks_per_sm


def occupancy(res: BlockResources, spec: GpuSpec) -> Occupancy:
    """Blocks per SM under the shared-memory / register / thread limits."""
    if res.threads <= 0:
        raise ValueError("block must have threads")
    if res.registers_per_thread > spec.max_registers_per_thread:
        raise ValueError(
            f"{res.registers_per_thread} registers/thread exceeds the "
            f"{spec.max_registers_per_thread} hardware limit (kernel would spill)"
        )

    limits = {
        "shared_memory": (
            spec.shared_mem_per_sm // res.shared_mem_bytes if res.shared_mem_bytes else spec.max_blocks_per_sm
        ),
        "registers": (
            spec.register_file_per_sm // (res.registers_per_thread * 4 * res.threads)
            if res.registers_per_thread
            else spec.max_blocks_per_sm
        ),
        "threads": spec.max_threads_per_sm // res.threads,
        "blocks": spec.max_blocks_per_sm,
    }
    limiting = min(limits, key=lambda k: limits[k])
    blocks = max(0, min(limits.values()))
    if blocks == 0:
        raise ValueError(f"block footprint exceeds one SM ({limiting} limit)")
    return Occupancy(
        blocks_per_sm=blocks,
        active_warps_per_sm=blocks * res.warps,
        limiting_resource=limiting,
    )
