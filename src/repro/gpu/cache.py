"""Set-associative cache simulator (the L2 model behind the wave-reuse
DRAM accounting).

The engine's DRAM traffic model (:meth:`TensorizationPlan
.dram_bytes_per_block`) *assumes* that operand panels shared by the
blocks of one wave hit in L2 — the standard wave-reuse argument.  This
module provides the machinery to check that assumption rather than
assert it: a functional LRU set-associative cache
(:class:`SetAssociativeCache`) that consumes address streams and counts
hits, misses, and DRAM fill bytes.  The companion trace generator lives
in :mod:`repro.gpu.trace`; the cross-check experiment in
:mod:`repro.experiments.traffic_validation`.

The default geometry matches the Tesla T4's L2: 4 MiB, 128-byte lines,
16-way associative.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["CacheStats", "SetAssociativeCache"]


@dataclass
class CacheStats:
    """Access counters of one simulated cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    line_bytes: int = 128

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def fill_bytes(self) -> int:
        """Bytes pulled from the next level (DRAM) on misses."""
        return self.misses * self.line_bytes


class SetAssociativeCache:
    """LRU set-associative cache over a byte address space."""

    def __init__(
        self,
        capacity_bytes: int = 4 * 1024 * 1024,
        line_bytes: int = 128,
        ways: int = 16,
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache geometry must be positive")
        if capacity_bytes % (line_bytes * ways):
            raise ValueError("capacity must be a whole number of sets")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = capacity_bytes // (line_bytes * ways)
        # one LRU-ordered dict of tags per set
        self._sets: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats(line_bytes=line_bytes)

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        set_idx, tag = self._locate(address)
        ways = self._sets[set_idx]
        if tag in ways:
            ways.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        ways[tag] = None
        if len(ways) > self.ways:
            ways.popitem(last=False)
            self.stats.evictions += 1
        return False

    def access_range(self, start: int, nbytes: int) -> int:
        """Touch a contiguous byte range; returns the number of line hits."""
        if nbytes <= 0:
            return 0
        first = start // self.line_bytes
        last = (start + nbytes - 1) // self.line_bytes
        hits = 0
        for line in range(first, last + 1):
            hits += self.access(line * self.line_bytes)
        return hits

    def reset_stats(self) -> None:
        self.stats = CacheStats(line_bytes=self.line_bytes)

    @property
    def resident_bytes(self) -> int:
        return sum(len(s) for s in self._sets) * self.line_bytes
