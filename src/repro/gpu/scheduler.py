"""In-order dual-pipeline instruction scheduler (§5.1, Figure 6).

Models the warp scheduler of one SM at the granularity of instruction
groups.  Two structural facts drive the timing — both taken from the
microbenchmarking literature the paper builds on:

* memory instructions (LDS/LDG/STS) share one load/store pipeline and are
  executed sequentially on it;
* the Tensor Core pipeline is independent, so HMMA issue can overlap
  memory issue *when the dependency structure allows it*.

The scheduler walks the stream in order; each group starts when (a) its
functional unit is free and (b) every group it depends on has *completed*
(issue + latency).  Register-enhanced latency hiding (the paper's Figure 6
right-hand side) is therefore not a scheduler flag but a property of the
stream the kernel builder emits: the software-pipelined stream has
iteration *i+1*'s LDG depend only on iteration *i*'s LDS batch, while the
unscheduled stream serializes each iteration's memory behind the previous
iteration's HMMAs.

Scheduling is deterministic in (stream structure, spec), so results are
memoized on a cheap instruction-stream fingerprint — the per-group
(opcode, count, deps) tuples — with a bounded LRU.  Experiment sweeps
and repeated kernel timings re-schedule byte-identical streams
constantly; the memo turns those into O(groups) fingerprint hashes.
``schedule_cache_stats`` / ``clear_schedule_cache`` expose the counters
(the ``python -m repro bench`` report tracks the hit rate).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..obs.metrics import get_registry
from .isa import ExecUnit, InstructionStream, Opcode
from .spec import GpuSpec

__all__ = [
    "ScheduleResult",
    "schedule",
    "schedule_cache_stats",
    "clear_schedule_cache",
]


@dataclass
class ScheduleResult:
    """Timing of one block's instruction stream on one SM."""

    total_cycles: float
    #: busy cycles per functional unit (issue occupancy)
    unit_busy: dict[ExecUnit, float] = field(default_factory=dict)
    #: completion time of each instruction group
    group_complete: list[float] = field(default_factory=list)

    @property
    def tensor_utilization(self) -> float:
        """Fraction of the block's lifetime the Tensor pipe was issuing."""
        busy = self.unit_busy.get(ExecUnit.TENSOR, 0.0)
        return busy / self.total_cycles if self.total_cycles > 0 else 0.0

    @property
    def mem_utilization(self) -> float:
        busy = self.unit_busy.get(ExecUnit.MEM, 0.0)
        return busy / self.total_cycles if self.total_cycles > 0 else 0.0


#: bounded LRU of fingerprint -> ScheduleResult (schedule is deterministic)
_CACHE_MAX = 512
_cache: OrderedDict[tuple, ScheduleResult] = OrderedDict()
_cache_lock = threading.Lock()
_cache_hits = 0
_cache_misses = 0


def _fingerprint(stream: InstructionStream, spec: GpuSpec) -> tuple:
    """Hashable identity of a scheduling problem.

    Only what the timeline depends on: per-group (opcode, count, deps)
    — labels are cosmetic — plus the spec, whose timing constants are
    part of the frozen dataclass hash.
    """
    return (
        spec,
        tuple((g.opcode, g.count, g.depends_on, g.issue_after) for g in stream),
    )


def schedule_cache_stats() -> dict[str, float]:
    """Hit/miss counters of the schedule memo (and its current size)."""
    with _cache_lock:
        lookups = _cache_hits + _cache_misses
        return {
            "hits": _cache_hits,
            "misses": _cache_misses,
            "size": len(_cache),
            "hit_rate": _cache_hits / lookups if lookups else 0.0,
        }


def clear_schedule_cache() -> None:
    """Drop all memoized schedules and reset the counters."""
    global _cache_hits, _cache_misses
    with _cache_lock:
        _cache.clear()
        _cache_hits = 0
        _cache_misses = 0


# Surface the memo counters in the process-wide metrics registry; the
# provider is evaluated lazily at snapshot time, so the registry never
# duplicates (or races) the counters above.
get_registry().register_provider("gpu.schedule_cache", schedule_cache_stats)


def _copy_result(result: ScheduleResult) -> ScheduleResult:
    """Fresh containers so callers can't mutate the cached entry."""
    return ScheduleResult(
        total_cycles=result.total_cycles,
        unit_busy=dict(result.unit_busy),
        group_complete=list(result.group_complete),
    )


def schedule(stream: InstructionStream, spec: GpuSpec, memoize: bool = True) -> ScheduleResult:
    """Simulate the stream's issue timeline; return total cycles and stats.

    Groups issue in stream order on their unit; a group begins when its
    unit frees *and* all its dependencies have completed.  Barriers are
    ordinary ``SYNC``-unit groups whose dependencies the kernel builder
    wires explicitly (a ``__syncthreads`` before a buffer swap depends on
    the LDS batch that read the buffer and the STS batch that refilled
    it, but *not* on in-flight HMMAs, which work out of registers —
    that distinction is what makes software pipelining legal).

    Byte-identical (stream, spec) problems are served from a bounded LRU
    memo (``memoize=False`` forces a fresh simulation).
    """
    global _cache_hits, _cache_misses
    if memoize:
        key = _fingerprint(stream, spec)
        with _cache_lock:
            cached = _cache.get(key)
            if cached is not None:
                _cache.move_to_end(key)
                _cache_hits += 1
                return _copy_result(cached)
            _cache_misses += 1
    result = _schedule_uncached(stream, spec)
    if memoize:
        with _cache_lock:
            _cache[key] = _copy_result(result)
            _cache.move_to_end(key)
            while len(_cache) > _CACHE_MAX:
                _cache.popitem(last=False)
    return result


def _schedule_uncached(stream: InstructionStream, spec: GpuSpec) -> ScheduleResult:
    unit_free: dict[ExecUnit, float] = {u: 0.0 for u in ExecUnit}
    unit_busy: dict[ExecUnit, float] = {u: 0.0 for u in ExecUnit}
    complete: list[float] = []
    issue_end: list[float] = []
    horizon = 0.0  # completion time of everything issued so far

    for idx, group in enumerate(stream):
        ready = unit_free[group.unit]
        for dep in group.depends_on:
            if dep < 0 or dep >= idx:
                raise ValueError(f"group {idx} has invalid dependency {dep}")
            ready = max(ready, complete[dep])
        for dep in group.issue_after:
            if dep < 0 or dep >= idx:
                raise ValueError(f"group {idx} has invalid issue-order dependency {dep}")
            ready = max(ready, issue_end[dep])

        issue = group.issue_cycles(spec)
        start = ready
        end_issue = start + issue
        end_complete = end_issue + group.completion_latency(spec)

        unit_free[group.unit] = end_issue
        unit_busy[group.unit] += issue
        complete.append(end_complete)
        issue_end.append(end_issue)
        horizon = max(horizon, end_complete)

    return ScheduleResult(total_cycles=horizon, unit_busy=unit_busy, group_complete=complete)
