"""Text-mode timeline rendering of an instruction schedule (Figure 6).

Renders the per-unit issue occupancy of a scheduled stream as an ASCII
Gantt chart, making the latency-hiding difference *visible* the way the
paper's Figure 6 draws it: with scheduling, the MEM lane stays busy under
the TENSOR lane; without it, the lanes alternate.

Intended for debugging, documentation, and the examples; the renderer is
also exercised by tests (monotonic lane occupancy, width invariants).
"""

from __future__ import annotations

from dataclasses import dataclass

from .isa import ExecUnit, InstructionStream
from .scheduler import schedule
from .spec import GpuSpec

__all__ = ["LaneSegment", "timeline_segments", "render_timeline"]


@dataclass(frozen=True)
class LaneSegment:
    """One group's issue window on its functional unit."""

    unit: ExecUnit
    label: str
    start: float
    end: float


def timeline_segments(stream: InstructionStream, spec: GpuSpec) -> list[LaneSegment]:
    """Replay the scheduler and return each group's issue window."""
    result = schedule(stream, spec)
    segments: list[LaneSegment] = []
    for idx, group in enumerate(stream):
        latency = group.completion_latency(spec)
        end_issue = result.group_complete[idx] - latency
        start = end_issue - group.issue_cycles(spec)
        segments.append(
            LaneSegment(
                unit=group.unit,
                label=group.label or group.opcode.value,
                start=start,
                end=end_issue,
            )
        )
    return segments


def render_timeline(
    stream: InstructionStream,
    spec: GpuSpec,
    width: int = 100,
    max_cycles: float | None = None,
) -> str:
    """ASCII Gantt chart: one row per functional unit, '#' = issuing.

    ``max_cycles`` crops the view (useful to zoom into the steady state
    of a long kernel); the default shows the whole stream.
    """
    segments = timeline_segments(stream, spec)
    if not segments:
        return "(empty stream)"
    horizon = max_cycles if max_cycles is not None else max(s.end for s in segments)
    if horizon <= 0:
        return "(empty stream)"
    scale = width / horizon

    lanes = {}
    for unit in (ExecUnit.MEM, ExecUnit.TENSOR, ExecUnit.SYNC):
        lanes[unit] = [" "] * width
    glyph = {ExecUnit.MEM: "M", ExecUnit.TENSOR: "#", ExecUnit.SYNC: "|", ExecUnit.ALU: "a"}
    for seg in segments:
        if seg.start >= horizon:
            continue
        lane = lanes.setdefault(seg.unit, [" "] * width)
        lo = int(seg.start * scale)
        hi = max(lo + 1, min(width, int(seg.end * scale)))
        for i in range(lo, min(hi, width)):
            lane[i] = glyph.get(seg.unit, "?")

    lines = [f"0 {'cycles':^{width - 10}} {horizon:,.0f}"]
    for unit in (ExecUnit.TENSOR, ExecUnit.MEM, ExecUnit.SYNC):
        if unit in lanes:
            lines.append(f"{unit.value:>6} |{''.join(lanes[unit])}|")
    return "\n".join(lines)
