"""Per-request serving observability: traces, flight log, burn alerts.

:class:`ServeObserver` is the bridge between the discrete-event serving
engine (:mod:`repro.serve.service`) and the observability spine.  The
service invokes one callback per lifecycle transition — admission,
routing, batch formation, dispatch, device execution, and the terminal
resolution — and the observer fans each transition out three ways:

* into the **flight recorder** (:mod:`repro.obs.flight`) as a bounded,
  byte-deterministic JSONL event stream that ``python -m repro
  postmortem`` reconstructs request lifecycles from;
* into the **SLO burn-rate monitors** (:mod:`repro.obs.slo`) — one
  watching the latency/deadline contract, one watching the accuracy
  contract — whose alerts land back in the flight recorder;
* into an in-memory **lifecycle table** from which
  :meth:`ServeObserver.chrome_trace_events` renders a validated Chrome
  trace of the whole load test: request lanes (admission→terminal, with
  the routing decision as a zero-width marker), batch lanes
  (formation→execution), and one fleet lane per device.

Everything is keyed by the service's **virtual clock** (1 µs of trace
time = 1 virtual µs), so a seeded load test yields an identical trace,
flight log, and alert sequence on every run.  The wall-clock tracer
spans the service also emits (:mod:`repro.obs.tracing`) are a separate,
optional tier; when ``REPRO_TRACE=1`` the execution flight events carry
the active span id, which is the join key to ``gpu.engine`` execution
captures and :class:`repro.resilience.faults.FaultEvent` attributions.
"""

from __future__ import annotations

from .export import (
    complete_event,
    counter_event,
    process_name_event,
    thread_name_event,
)
from .flight import FlightRecorder
from .slo import DEFAULT_WINDOWS, BurnRateMonitor
from .tracing import current_span_id

__all__ = ["ServeObserver", "REQUEST_LANES", "BATCH_LANES"]

#: lane packing for the request/batch trace sections (Chrome renders a
#: tid per lane; packing by id keeps the lane count readable)
REQUEST_LANES = 32
BATCH_LANES = 16

#: rejection reasons that are the *caller's* fault — excluded from the
#: server's latency error budget (an impossible SLO is a typed client
#: error, not an availability incident)
_CLIENT_ERROR_REASONS = ("slo-unsatisfiable",)


class ServeObserver:
    """Collects per-request lifecycle telemetry from a :class:`GemmService`."""

    def __init__(
        self,
        recorder: FlightRecorder | None = None,
        latency_target: float = 0.99,
        accuracy_target: float = 0.999,
        windows=DEFAULT_WINDOWS,
        infeasible_deadline_s: float | None = None,
    ) -> None:
        #: deadlines below this floor are *structurally* infeasible —
        #: shorter than the service's own batching window, so no server
        #: behaviour could meet them.  Their expiries are client errors
        #: (like ``slo-unsatisfiable`` rejections) and do not burn the
        #: latency error budget; they are counted separately instead.
        self.infeasible_deadline_s = infeasible_deadline_s
        self.infeasible_expiries = 0
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self.latency_monitor = BurnRateMonitor(
            "latency", target=latency_target, windows=windows, recorder=self.recorder
        )
        self.accuracy_monitor = BurnRateMonitor(
            "accuracy", target=accuracy_target, windows=windows, recorder=self.recorder
        )
        # lifecycle tables (request_id / batch_id keyed)
        self.admits: dict[int, dict] = {}
        self.routes: dict[int, dict] = {}
        self.terminals: dict[int, dict] = {}
        self.batches: dict[int, dict] = {}
        self.request_batch: dict[int, int] = {}
        #: recovery-span chain accounting (retry/hedge/requeue events
        #: observed, and how many of them linked to a known batch) —
        #: the chaos-run analogue of :meth:`chain_report`
        self.recovery_events = 0
        self.recovery_linked = 0
        #: fleet occupancy counter series: (t, queue_depth,
        #: healthy_devices, executing_batches), change-compressed —
        #: rendered as Chrome-trace counter tracks ("ph": "C")
        self.fleet_samples: list[tuple[float, int, int, int]] = []

    # -- service callbacks ------------------------------------------------
    def on_admit(self, now: float, request) -> None:
        m, k, n = request.shape
        self.admits[request.request_id] = {
            "t": now, "shape": (m, k, n),
            "max_rel_error": request.max_rel_error,
            "reliable": request.reliable,
        }
        self.recorder.record(
            "admit", now,
            request_id=request.request_id,
            shape=[m, k, n],
            max_rel_error=request.max_rel_error,
            deadline_s=request.deadline_s,
            priority=request.priority,
            reliable=request.reliable,
        )

    def on_route(self, now: float, request, decision) -> None:
        self.routes[request.request_id] = {
            "t": now, "kernel": decision.kernel,
            "error_bound": decision.error_bound,
        }
        self.recorder.record(
            "route", now,
            request_id=request.request_id,
            kernel=decision.kernel,
            error_bound=decision.error_bound,
            seconds=decision.seconds,
            rejected_cheaper=list(decision.rejected_cheaper),
        )

    def on_batch(self, now: float, batch) -> None:
        entry = self.batches.setdefault(
            batch.batch_id,
            {"formed_at": batch.created_at, "kernel": batch.decision.kernel,
             "size": batch.size, "request_ids": [r.request_id for r in batch.requests],
             "device": None, "exec_start": None, "exec_end": None,
             # full event history (latency attribution reads these;
             # the scalar exec_* fields above keep last-wins semantics
             # for the Chrome trace)
             "dispatched_at": now, "execs": [], "dispatches": [],
             "retries": [], "hedges": [], "requeues": []},
        )
        for request in batch.requests:
            self.request_batch[request.request_id] = batch.batch_id
        self.recorder.record(
            "batch_form", now,
            batch_id=batch.batch_id,
            kernel=batch.decision.kernel,
            size=batch.size,
            request_ids=entry["request_ids"],
            created_at=batch.created_at,
        )

    def on_dispatch(self, now: float, batch, device: str) -> None:
        entry = self.batches.get(batch.batch_id)
        if entry is not None:
            entry["device"] = device
            entry["dispatches"].append((now, device))
        self.recorder.record("dispatch", now, batch_id=batch.batch_id, device=device)

    def on_backpressure(self, now: float, batch) -> None:
        self.recorder.record(
            "backpressure", now, batch_id=batch.batch_id, size=batch.size
        )

    def on_exec(
        self, now: float, batch, device: str, start: float, end: float,
        service_s: float,
    ) -> None:
        entry = self.batches.get(batch.batch_id)
        if entry is not None:
            entry["device"] = device
            entry["exec_start"] = start
            entry["exec_end"] = end
            # expiry at batch start shrinks the executing membership
            entry["size"] = batch.size
            entry["execs"].append((start, end, device))
        self.recorder.record(
            "exec", now,
            batch_id=batch.batch_id,
            device=device,
            start=start,
            end=end,
            service_s=service_s,
            size=batch.size,
            span_id=current_span_id(),
        )

    def on_fleet_state(
        self,
        now: float,
        queue_depth: int,
        healthy_devices: int,
        executing_batches: int,
    ) -> None:
        """Sample the fleet's occupancy counters at a state change.

        Change-compressed: a sample identical to the previous one is
        dropped (counter tracks only render transitions), so the series
        stays proportional to fleet activity, not to event-loop traffic.
        """
        sample = (now, int(queue_depth), int(healthy_devices), int(executing_batches))
        if self.fleet_samples and self.fleet_samples[-1][1:] == sample[1:]:
            return
        self.fleet_samples.append(sample)

    # -- recovery callbacks (repro.serve.recovery / repro.serve.chaos) ----
    def on_chaos(self, now: float, fault) -> None:
        """Log one injected :class:`FleetFaultEvent` taking effect."""
        self.recorder.record(
            "chaos", now,
            site=fault.site,
            fault_kind=fault.kind,
            device=fault.device,
            duration_s=fault.duration_s,
            param=fault.param,
        )

    def on_retry(
        self, now: float, batch, attempt: int, delay_s: float, reason: str
    ) -> None:
        self._link_recovery(batch, "retries", (now, delay_s))
        self.recorder.record(
            "retry", now,
            batch_id=batch.batch_id,
            attempt=attempt,
            delay_s=delay_s,
            reason=reason,
            size=batch.size,
        )

    def on_hedge(self, now: float, batch, device: str) -> None:
        self._link_recovery(batch, "hedges", (now, device))
        self.recorder.record(
            "hedge", now, batch_id=batch.batch_id, device=device, size=batch.size
        )

    def on_requeue(self, now: float, batch, device: str) -> None:
        self._link_recovery(batch, "requeues", (now, device))
        self.recorder.record(
            "requeue", now, batch_id=batch.batch_id, device=device, size=batch.size
        )

    def _link_recovery(self, batch, history: str, event: tuple) -> None:
        """Attach one recovery event to its batch's lifecycle entry.

        An event whose batch the observer has never seen form is
        *unlinked* — it cannot be attributed to any request chain, which
        :meth:`recovery_chain_report` surfaces as lost coverage.
        """
        self.recovery_events += 1
        entry = self.batches.get(batch.batch_id)
        if entry is not None:
            self.recovery_linked += 1
            entry[history].append(event)

    def on_degrade(self, now: float, request, decision, fallback_slo: float) -> None:
        self.recorder.record(
            "degrade", now,
            request_id=request.request_id,
            kernel=decision.kernel,
            error_bound=decision.error_bound,
            fallback_slo=fallback_slo,
            original_slo=request.max_rel_error,
        )

    def on_resolve(self, now: float, request, response) -> None:
        """Terminal resolution: flight event + burn-monitor accounting."""
        status = response.status.value
        rid = request.request_id
        self.terminals[rid] = {
            "t": now, "status": status, "reason": response.reason,
            "latency_s": response.latency_s, "device": response.device,
        }
        if status == "completed":
            self.recorder.record(
                "complete", now,
                request_id=rid,
                batch_id=self.request_batch.get(rid),
                device=response.device,
                kernel=response.kernel,
                latency_s=response.latency_s,
                queued_s=response.queued_s,
                service_s=response.service_s,
                batch_size=response.batch_size,
            )
            self.latency_monitor.observe(now, good=True)
            bound_ok = (
                response.error_bound is not None
                and response.error_bound <= request.max_rel_error
            )
            self.accuracy_monitor.observe(now, good=bound_ok)
        elif status == "expired":
            infeasible = (
                self.infeasible_deadline_s is not None
                and request.deadline_s is not None
                and request.deadline_s < self.infeasible_deadline_s
            )
            self.recorder.record(
                "expire", now, request_id=rid,
                batch_id=self.request_batch.get(rid),
                infeasible=infeasible,
            )
            if infeasible:
                self.infeasible_expiries += 1
            else:
                self.latency_monitor.observe(now, good=False)
        elif status == "failed":
            # fleet fault exhausted the retry budget: unambiguously the
            # server's fault, so it burns the latency error budget
            self.recorder.record(
                "failed", now, request_id=rid,
                batch_id=self.request_batch.get(rid),
                reason=response.reason or "failed",
                retries=response.retries,
            )
            self.latency_monitor.observe(now, good=False)
        else:  # rejected
            reason = response.reason or "rejected"
            self.recorder.record("reject", now, request_id=rid, reason=reason)
            # impossible SLOs are typed client errors; capacity rejections
            # (admission control, backpressure) burn the server's budget
            if not any(reason.startswith(c) or c in reason
                       for c in _CLIENT_ERROR_REASONS):
                self.latency_monitor.observe(now, good=False)

    def record_fault(self, now: float, event) -> None:
        """Log an injected :class:`FaultEvent` (span-id attributed)."""
        self.recorder.record(
            "fault", now,
            site=event.site,
            span_id=event.span_id,
            bit=event.bit,
            call_index=event.call_index,
            flat_index=event.flat_index,
        )

    # -- chain accounting --------------------------------------------------
    def chain_report(self) -> dict:
        """Completeness of the admission→route→batch→execute span chain.

        A *complete* chain for a completed request means: an admission
        record, a routing record, membership in a formed batch, and that
        batch having executed on a device.  CI asserts coverage >= 0.99
        on the seeded smoke run.
        """
        completed = [
            rid for rid, t in self.terminals.items() if t["status"] == "completed"
        ]
        complete_chains = 0
        for rid in completed:
            batch_id = self.request_batch.get(rid)
            batch = self.batches.get(batch_id) if batch_id is not None else None
            if (
                rid in self.admits
                and rid in self.routes
                and batch is not None
                and batch["exec_start"] is not None
            ):
                complete_chains += 1
        return {
            "completed": len(completed),
            "complete_chains": complete_chains,
            "coverage": complete_chains / len(completed) if completed else 1.0,
        }

    def recovery_chain_report(self) -> dict:
        """Chain linkage of recovery spans (retry/hedge/requeue).

        Chaos runs only yield exact latency breakdowns when every
        recovery event attributes to a batch whose formation the
        observer saw — the chaos campaign asserts coverage >= 0.99,
        mirroring the admission-chain gate on the smoke run.  Reported
        separately from :meth:`chain_report` so the byte-pinned
        ``trace_chain`` block of ``SERVE_slo.json`` is untouched.
        """
        return {
            "events": self.recovery_events,
            "linked": self.recovery_linked,
            "coverage": (
                self.recovery_linked / self.recovery_events
                if self.recovery_events
                else 1.0
            ),
        }

    # -- SLO summary -------------------------------------------------------
    def slo_summary(self) -> dict:
        """The ``slo_monitor`` block of ``SERVE_slo.json``."""
        latency = self.latency_monitor.summary()
        latency["infeasible_excluded"] = self.infeasible_expiries
        latency["infeasible_deadline_s"] = self.infeasible_deadline_s
        return {
            "latency": latency,
            "accuracy": self.accuracy_monitor.summary(),
            "flight_recorder": {
                "recorded": self.recorder.recorded,
                "retained": len(self.recorder),
                "dropped": self.recorder.dropped,
                "capacity": self.recorder.capacity,
            },
        }

    # -- Chrome-trace export ----------------------------------------------
    def chrome_trace_events(self) -> list[dict]:
        """The load test as Chrome trace events over the virtual clock.

        Three process sections: requests (pid 1, lane-packed), batches
        (pid 2, lane-packed), fleet (pid 3, one lane per device).
        ``ts``/``dur`` are in microseconds with **1 µs = 1 virtual µs**.
        """
        events: list[dict] = [process_name_event(1, "serve: requests"),
                              process_name_event(2, "serve: batches"),
                              process_name_event(3, "serve: fleet")]
        for lane in range(1, REQUEST_LANES + 1):
            events.append(thread_name_event(1, lane, f"requests %{REQUEST_LANES}={lane - 1}"))
        for lane in range(1, BATCH_LANES + 1):
            events.append(thread_name_event(2, lane, f"batches %{BATCH_LANES}={lane - 1}"))

        for rid, admit in sorted(self.admits.items()):
            terminal = self.terminals.get(rid)
            if terminal is None:
                continue
            tid = rid % REQUEST_LANES + 1
            start_us = admit["t"] * 1e6
            dur_us = max((terminal["t"] - admit["t"]) * 1e6, 0.0)
            args = {
                "request_id": rid,
                "status": terminal["status"],
                "slo": admit["max_rel_error"],
            }
            batch_id = self.request_batch.get(rid)
            if batch_id is not None:
                args["batch_id"] = batch_id
            route = self.routes.get(rid)
            if route is not None:
                args["kernel"] = route["kernel"]
                args["error_bound"] = route["error_bound"]
            events.append(complete_event(
                f"request {terminal['status']}", ts=start_us, dur=dur_us,
                pid=1, tid=tid, cat="serve.request", args=args,
            ))
            if route is not None:
                events.append(complete_event(
                    f"route:{route['kernel']}", ts=route["t"] * 1e6, dur=0.0,
                    pid=1, tid=tid, cat="serve.route",
                    args={"request_id": rid, "error_bound": route["error_bound"]},
                ))

        device_tids: dict[str, int] = {}
        for batch_id, batch in sorted(self.batches.items()):
            tid = batch_id % BATCH_LANES + 1
            end = batch["exec_end"]
            if end is None:
                end = batch["formed_at"]
            events.append(complete_event(
                f"batch x{batch['size']} {batch['kernel']}",
                ts=batch["formed_at"] * 1e6,
                dur=max((end - batch["formed_at"]) * 1e6, 0.0),
                pid=2, tid=tid, cat="serve.batch",
                args={"batch_id": batch_id, "size": batch["size"],
                      "kernel": batch["kernel"],
                      "request_ids": str(batch["request_ids"])},
            ))
            if batch["exec_start"] is not None and batch["device"] is not None:
                device = batch["device"]
                dev_tid = device_tids.get(device)
                if dev_tid is None:
                    dev_tid = device_tids[device] = len(device_tids) + 1
                    events.append(thread_name_event(3, dev_tid, device))
                events.append(complete_event(
                    f"exec x{batch['size']} {batch['kernel']}",
                    ts=batch["exec_start"] * 1e6,
                    dur=max((batch["exec_end"] - batch["exec_start"]) * 1e6, 0.0),
                    pid=3, tid=dev_tid, cat="serve.exec",
                    args={"batch_id": batch_id, "device": device},
                ))

        # fleet occupancy counter tracks: Perfetto renders each "C"
        # series as a stacked-area lane under the fleet process
        for t, queue_depth, healthy, executing in self.fleet_samples:
            ts_us = max(t * 1e6, 0.0)
            events.append(counter_event(
                "fleet queue depth", ts=ts_us,
                values={"queued_batches": queue_depth},
                pid=3, cat="serve.fleet",
            ))
            events.append(counter_event(
                "fleet healthy devices", ts=ts_us,
                values={"healthy": healthy},
                pid=3, cat="serve.fleet",
            ))
            events.append(counter_event(
                "fleet executing batches", ts=ts_us,
                values={"executing": executing},
                pid=3, cat="serve.fleet",
            ))
        return events
