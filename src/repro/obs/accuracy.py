"""Accuracy observability: shadow-sampled ground truth vs. the certificates.

The serving layer's accuracy story so far is entirely *analytic*: the
router certifies each response with a worst-case componentwise bound
(:func:`repro.fp.error.gemm_relative_error_bound`, or the
operand-dependent :func:`repro.fp.error.block_scaled_relative_error_bound`
for blockwise-scaled kernels) and promises ``bound <= max_rel_error``.
Nothing ever checks the *observed* error of a served result against that
certificate — the one invariant whose silent failure would make every
SLO in the system a fiction.  This module closes the loop, the way a
production inference service shadow-samples its model outputs:

* an :class:`AccuracySampler` deterministically samples completed
  responses (a seeded hash of the request id — no RNG state is consumed,
  so enabling sampling cannot perturb the workload), recomputes the
  sampled products in **float64 ground truth off the hot path** (after
  the event loop drains), and records the observed relative error
  against the same ``(|A| |B|)`` scaling the analytic bounds are stated
  in, so ``observed <= certified`` is directly checkable;
* **bound-tightness histograms** per (kernel, shape-bucket) track the
  ``observed / certified`` ratio (p50/p95/p99/max) with exemplar
  retention — how much of the certificate real workloads actually use,
  the datum that justifies (or indicts) the router's conservatism;
* a breach of the hard invariant raises a typed
  :class:`BoundViolationError` and lands a ``bound_violation`` event in
  the flight recorder: a certified bound that lies is an incident, not
  a statistic;
* an **accuracy error-budget accountant** — one
  :class:`~repro.obs.slo.BurnRateMonitor` per SLO decade tier — feeds
  the same multiwindow burn-rate machinery the latency SLO uses, where
  "bad" means the observed error exceeded the request's contract;
* **worst-residual exemplars** (request id, operand magnitude/spread
  stats, kernel, certified bound, observed error) per kernel are kept
  and emitted as ``accuracy_exemplar`` flight events, so
  ``python -m repro postmortem <request-id>`` reconstructs the
  worst-case request end to end;
* ``python -m repro accuracy`` drives a seeded serve workload with
  sampling at rate 1.0 **plus** a sweep over the kernel menu × shape
  buckets × operand distributions (including the blockwise kernels'
  adversarial high-spread regime and finite-but-out-of-fp16-range
  operands through the resilience escalation path) and writes
  ``ACCURACY_report.json``, schema-validated by
  :func:`validate_accuracy_report` and gated in CI.

In-service sampling is **observation only**: it captures references at
resolution time, verifies after the run drains, touches neither routing
nor the RNG stream nor ``SERVE_slo.json`` — a seeded load test is
byte-identical with sampling on or off.
"""

from __future__ import annotations

import json
import math

import numpy as np

from ..fp.error import (
    block_scaled_relative_error_bound,
    gemm_relative_error_bound,
    observed_relative_error,
    operand_spread,
    split_subnormal_floor,
)
from .benchtrack import MetricSpec
from .metrics import Histogram, get_registry
from .slo import DEFAULT_WINDOWS, BurnRateMonitor

__all__ = [
    "ACCURACY_SCHEMA",
    "ACCURACY_METRIC_SPECS",
    "BoundViolationError",
    "AccuracySampler",
    "sweep_menu",
    "build_accuracy_report",
    "validate_accuracy_report",
    "main",
]

#: report schema identifier, bumped on breaking field changes
ACCURACY_SCHEMA = "repro.obs.accuracy/1"

#: run-over-run comparison policy of ``--check`` — the accuracy analogue
#: of :data:`repro.perf.bench.METRIC_SPECS`.  Everything here is
#: deterministic (seeded workload, seeded sweep), so the bands are
#: tight: violations gate at literal zero, the worst tightness ratio may
#: not creep toward the certificate, and a silently shrinking sample
#: (fewer verified responses / sweep cells) is itself a regression.
ACCURACY_METRIC_SPECS = (
    MetricSpec("bound_violations", "lower", 0.0),
    MetricSpec("worst_tightness_ratio", "lower", 0.05),
    MetricSpec("serve_verified", "higher", 0.0),
    MetricSpec("sweep_cells", "higher", 0.0),
    MetricSpec("sweep_escalations", "lower", 0.0, gate=False),
)


class BoundViolationError(AssertionError):
    """A served result's observed error exceeded its certified bound.

    The analytic certificates are *worst-case* — a violation means the
    error model is wrong (unsound bound, mislabeled kernel, corrupted
    result), never bad luck.  Carries the full verification ``record``
    for the postmortem.
    """

    def __init__(self, message: str, record: dict | None = None) -> None:
        super().__init__(message)
        self.record = record or {}


# -- deterministic sampling ------------------------------------------------
def _sample_hash(request_id: int, seed: int) -> float:
    """Seeded avalanche hash of a request id, uniform on [0, 1).

    Sampling decisions must not consume generator state (bit-identity of
    the served workload) and must be stable across runs and processes —
    so no ``random``/``numpy`` involvement, just integer mixing
    (xxhash-style multiply/shift constants).
    """
    h = (request_id * 0x9E3779B1 + seed * 0x85EBCA6B + 0x165667B1) & 0xFFFFFFFF
    h ^= h >> 15
    h = (h * 0x2C1B3C6D) & 0xFFFFFFFF
    h ^= h >> 13
    h = (h * 0x297A2D39) & 0xFFFFFFFF
    h ^= h >> 16
    return h / 2.0**32


def _tier_label(max_rel_error: float) -> str:
    """Accuracy-SLO decade tier of a request (budget-accounting key)."""
    if not math.isfinite(max_rel_error) or max_rel_error <= 0.0:
        return "slo_1e+00"
    return f"slo_1e{math.floor(math.log10(max_rel_error)):+03d}"


def _operand_summary(x: np.ndarray, axis: int) -> dict:
    """Shape/magnitude/spread statistics of one operand (exemplar payload)."""
    x64 = np.abs(np.asarray(x, dtype=np.float64))
    finite = bool(np.all(np.isfinite(x64)))
    finite_vals = x64[np.isfinite(x64)] if not finite else x64
    max_abs = float(finite_vals.max(initial=0.0))
    nonzero = finite_vals[finite_vals > 0.0]
    min_nonzero = float(nonzero.min(initial=0.0)) if nonzero.size else 0.0
    return {
        "shape": [int(s) for s in x.shape],
        "finite": finite,
        "max_abs": max_abs,
        "min_nonzero": min_nonzero,
        "exponent_span_bits": (
            float(math.log2(max_abs / min_nonzero))
            if max_abs > 0.0 and min_nonzero > 0.0
            else 0.0
        ),
        "spread": operand_spread(np.asarray(x), axis=axis),
    }


def _tightness_ratio(observed: float, certified: float) -> float:
    """``observed / certified`` with the k=0 degenerate cases pinned.

    A certificate of exactly zero (empty reduction) admits only an
    exactly-zero observation: both zero ratios 0.0 (vacuously tight),
    any deviation ratios ``inf`` (an unconditional violation).
    """
    if certified > 0.0:
        return observed / certified
    return 0.0 if observed == 0.0 else float("inf")


class AccuracySampler:
    """Shadow-sampling verifier for completed serving responses.

    Two-phase by design: :meth:`capture` runs on the serving path and
    only stores references (one hash, one list append — no float64
    recomputation while the event loop is live), :meth:`flush` runs
    after the service drains and does the ground-truth verification.
    The split also accommodates deferred math: a captured response's
    ``d`` may still be a placeholder at capture time; by flush the
    service has filled it in place.

    Parameters
    ----------
    rate:
        Sampling probability in [0, 1]; the decision is a seeded hash of
        the request id (deterministic, RNG-free).
    seed:
        Sampling-hash seed; decouples the sample set from the workload.
    recorder:
        Optional :class:`~repro.obs.flight.FlightRecorder` receiving
        ``bound_violation`` and ``accuracy_exemplar`` events.
    raise_on_violation:
        Raise :class:`BoundViolationError` at the first breach (default);
        ``False`` collects violations for batch reporting (the sweep).
    budget_target:
        Per-tier accuracy SLO target for the burn-rate accountants
        (0.999 = one contract miss per thousand sampled responses).
    capture_limit:
        Bound on pending captures between flushes (memory safety on a
        long-running service); excess captures are counted, not stored.
    """

    def __init__(
        self,
        rate: float = 1.0,
        seed: int = 0,
        recorder=None,
        raise_on_violation: bool = True,
        budget_target: float = 0.999,
        windows=DEFAULT_WINDOWS,
        capture_limit: int = 65536,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        if capture_limit < 1:
            raise ValueError("capture_limit must be at least 1")
        self.rate = float(rate)
        self.seed = int(seed)
        self.recorder = recorder
        self.raise_on_violation = raise_on_violation
        self.budget_target = budget_target
        self.windows = windows
        self.capture_limit = capture_limit
        self._pending: list[tuple[float, object, object]] = []
        self.sampled = 0
        self.skipped = 0
        self.dropped = 0
        self.verified = 0
        self.violations: list[dict] = []
        #: (kernel, "MxKxN") -> tightness-ratio histogram with exemplars
        self.tightness: dict[tuple[str, str], Histogram] = {}
        #: kernel -> worst-residual verification record
        self.worst: dict[str, dict] = {}
        #: SLO decade tier -> error-budget burn-rate accountant
        self.budgets: dict[str, BurnRateMonitor] = {}

    # -- serving-path phase ----------------------------------------------
    def wants(self, request_id: int) -> bool:
        """Deterministic sampling decision for one request id."""
        return _sample_hash(int(request_id), self.seed) < self.rate

    def capture(self, now: float, request, response) -> bool:
        """Stash one completed resolution for post-drain verification.

        Reference-only and O(1): safe to call from the service's terminal
        funnel.  Returns True iff the response was sampled.
        """
        status = getattr(response, "status", None)
        if status is not None and getattr(status, "value", status) != "completed":
            return False
        if not self.wants(getattr(request, "request_id", -1)):
            self.skipped += 1
            return False
        if len(self._pending) >= self.capture_limit:
            self.dropped += 1
            return False
        self._pending.append((float(now), request, response))
        self.sampled += 1
        return True

    # -- off-hot-path phase ----------------------------------------------
    def flush(self) -> list[dict]:
        """Verify every pending capture against float64 ground truth.

        Called by the service after its event loop drains (and after
        deferred math materializes), or directly by tests.  Verification
        is silent on success — worst-residual exemplars reach the flight
        recorder only via the explicit :meth:`emit_exemplars` reporting
        step, so a healthy sampled run leaves the recorder (and
        therefore ``SERVE_slo.json``) byte-identical to an unsampled
        one; only a bound violation writes an event.
        """
        pending, self._pending = self._pending, []
        return [self.verify(t, request, response) for t, request, response in pending]

    def verify(self, now: float, request, response) -> dict:
        """Ground-truth check of one completed response; returns the record."""
        observed = observed_relative_error(response.d, request.a, request.b, request.c)
        certified = float(response.error_bound)
        ratio = _tightness_ratio(observed, certified)
        m, k, n = request.shape
        bucket = f"{m}x{k}x{n}"
        kernel = response.kernel or "unknown"
        hist = self.tightness.get((kernel, bucket))
        if hist is None:
            hist = self.tightness[(kernel, bucket)] = Histogram(track_exemplars=True)
        hist.observe(
            ratio, exemplar={"request_id": int(request.request_id), "t": now}
        )
        registry = get_registry()
        registry.inc("obs.accuracy.verified")

        # the *contract* the budget accountant holds the response to: the
        # requested SLO — or, for a consented brownout degradation, the
        # (looser) bound the response explicitly carries
        contract = float(request.max_rel_error)
        degraded = bool(getattr(response, "degraded", False))
        if degraded:
            contract = max(contract, certified)
        tier = _tier_label(request.max_rel_error)
        monitor = self.budgets.get(tier)
        if monitor is None:
            monitor = self.budgets[tier] = BurnRateMonitor(
                f"accuracy:{tier}",
                target=self.budget_target,
                windows=self.windows,
                recorder=self.recorder,
            )
        monitor.observe(now, observed <= contract)

        record = {
            "request_id": int(request.request_id),
            "t": now,
            "kernel": kernel,
            "shape": bucket,
            "degraded": degraded,
            "slo": float(request.max_rel_error),
            "contract": contract,
            "observed": observed,
            "certified": certified,
            "ratio": ratio,
            "operand_a": _operand_summary(request.a, axis=1),
            "operand_b": _operand_summary(request.b, axis=0),
        }
        worst = self.worst.get(kernel)
        if worst is None or ratio > worst["ratio"]:
            self.worst[kernel] = record
        self.verified += 1

        if observed > certified:
            self.violations.append(record)
            registry.inc("obs.accuracy.bound_violations")
            if self.recorder is not None:
                self.recorder.record(
                    "bound_violation",
                    now,
                    request_id=int(request.request_id),
                    kernel=kernel,
                    observed=observed,
                    certified=certified,
                    shape=bucket,
                    degraded=degraded,
                )
            if self.raise_on_violation:
                raise BoundViolationError(
                    f"kernel {kernel!r} on {bucket} observed relative error "
                    f"{observed:.6g} above its certified bound {certified:.6g} "
                    f"(request {request.request_id}) — the analytic error "
                    f"model is unsound for this operand class",
                    record=record,
                )
        return record

    def emit_exemplars(self) -> int:
        """Record the worst-residual exemplar per kernel as flight events."""
        if self.recorder is None:
            return 0
        for kernel in sorted(self.worst):
            record = self.worst[kernel]
            self.recorder.record(
                "accuracy_exemplar",
                record["t"],
                request_id=record["request_id"],
                kernel=kernel,
                observed=record["observed"],
                certified=record["certified"],
                ratio=record["ratio"],
                shape=record["shape"],
                operand_a=record["operand_a"],
                operand_b=record["operand_b"],
            )
        return len(self.worst)

    # -- reporting --------------------------------------------------------
    def tightness_table(self) -> dict:
        """Nested ``{kernel: {shape: quantile-block}}`` tightness summary."""
        table: dict[str, dict] = {}
        for (kernel, bucket) in sorted(self.tightness):
            hist = self.tightness[(kernel, bucket)]
            table.setdefault(kernel, {})[bucket] = {
                "count": hist.count,
                "p50": hist.quantile(0.50) or 0.0,
                "p95": hist.quantile(0.95) or 0.0,
                "p99": hist.quantile(0.99) or 0.0,
                "max": hist.max if hist.count else 0.0,
                "exemplar": dict(hist.exemplar) if hist.exemplar else None,
            }
        return table

    def summary(self) -> dict:
        """The ``serve`` block of ``ACCURACY_report.json``."""
        return {
            "sample_rate": self.rate,
            "sample_seed": self.seed,
            "sampled": self.sampled,
            "skipped": self.skipped,
            "dropped": self.dropped,
            "verified": self.verified,
            "violations": len(self.violations),
            "violation_records": self.violations[:5],
            "tightness": self.tightness_table(),
            "worst": {k: self.worst[k] for k in sorted(self.worst)},
            "budget": {
                tier: self.budgets[tier].summary() for tier in sorted(self.budgets)
            },
        }

    def metrics_snapshot(self) -> dict:
        """A :class:`~repro.obs.metrics.MetricsRegistry`-shaped snapshot.

        Embedded under the report's ``metrics`` key so
        ``python -m repro metrics ACCURACY_report.json`` exports the
        tightness telemetry in OpenMetrics text format.
        """
        histograms = {
            f"obs.accuracy.tightness.{kernel}.{bucket}": hist.snapshot()
            for (kernel, bucket), hist in sorted(self.tightness.items())
        }
        return {
            "counters": {
                "obs.accuracy.sampled": self.sampled,
                "obs.accuracy.skipped": self.skipped,
                "obs.accuracy.verified": self.verified,
                "obs.accuracy.bound_violations": len(self.violations),
            },
            "gauges": {"obs.accuracy.sample_rate": self.rate},
            "histograms": histograms,
            "providers": {},
        }


# -- the kernel-menu sweep -------------------------------------------------
#: operand distributions the sweep certifies against, chosen to span the
#: regimes where the bounds behave differently: homogeneous magnitudes
#: (blockwise floor), sign-varying unit-scale draws, per-element wide
#: exponents (the blockwise kernels' adversarial spread regime), per-row
#: constant magnitudes (spread exactly 1), and finite-but-out-of-fp16-range
#: operands that force the resilience escalation path
DISTRIBUTIONS = ("normal", "uniform", "wide-exponent", "block-scaled", "out-of-range")
QUICK_DISTRIBUTIONS = ("normal", "wide-exponent", "block-scaled", "out-of-range")

SWEEP_SHAPES = ((32, 32, 32), (64, 32, 64), (16, 64, 16), (128, 32, 128))
QUICK_SWEEP_SHAPES = ((32, 32, 32), (16, 64, 16))


def _draw_operands(
    rng: np.random.Generator, distribution: str, m: int, k: int, n: int
) -> tuple[np.ndarray, np.ndarray]:
    if distribution == "normal":
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
    elif distribution == "uniform":
        a = rng.uniform(-1.0, 1.0, (m, k))
        b = rng.uniform(-1.0, 1.0, (k, n))
    elif distribution == "wide-exponent":
        a = rng.standard_normal((m, k)) * np.exp2(rng.uniform(-8.0, 8.0, (m, k)))
        b = rng.standard_normal((k, n)) * np.exp2(rng.uniform(-8.0, 8.0, (k, n)))
    elif distribution == "block-scaled":
        # per-row (a) / per-column (b) constant magnitude, varying sign:
        # the blockwise kernels' best case (operand spread exactly 1)
        sign_a = np.where(rng.random((m, k)) < 0.5, -1.0, 1.0)
        sign_b = np.where(rng.random((k, n)) < 0.5, -1.0, 1.0)
        a = sign_a * np.exp2(rng.uniform(-6.0, 6.0, (m, 1)))
        b = sign_b * np.exp2(rng.uniform(-6.0, 6.0, (1, n)))
    elif distribution == "out-of-range":
        # finite but far above fp16's 65504 max: the escalation regime
        a = rng.standard_normal((m, k)) * 1e6
        b = rng.standard_normal((k, n)) * 1e6
    else:
        raise ValueError(f"unknown operand distribution {distribution!r}")
    return a.astype(np.float32), b.astype(np.float32)


def _certified_bound(kernel_name: str, kernel, k: int, a, b, escalation: str) -> float:
    """The analytic certificate for one sweep execution.

    Blockwise kernels get the operand-dependent spread bound; an
    ``"ozaki"`` escalation replaced the kernel's arithmetic outright, so
    the certificate is the blockwise bound regardless of the nominal
    kernel.  Scheme-backed (fp16-split/half) kernels additionally pay
    the operand-dependent fp16-subnormal floor
    (:func:`repro.fp.error.split_subnormal_floor`): a ``"scaled"``
    escalation is an exact power-of-two rescale, so the floor is priced
    at the *conditioned* magnitudes the split actually saw; the
    unescalated path prices the raw magnitudes.
    """
    from ..resilience.runner import assess_operand
    from ..serve.router import (
        kernel_blockwise_slices,
        kernel_error_model,
        kernel_subnormal_eta,
    )

    spread_a = operand_spread(a, axis=1)
    spread_b = operand_spread(b, axis=0)
    if escalation == "ozaki":
        return block_scaled_relative_error_bound(
            k, 3, spread_a=spread_a, spread_b=spread_b
        )
    slices = kernel_blockwise_slices(kernel)
    if slices is not None:
        return block_scaled_relative_error_bound(
            k, slices, spread_a=spread_a, spread_b=spread_b
        )
    mantissa_bits, accumulator_bits = kernel_error_model(kernel)
    floor_a = floor_b = 0.0
    eta = kernel_subnormal_eta(kernel)
    if eta is not None:
        conditioned = escalation == "scaled"
        ha, hb = assess_operand(a), assess_operand(b)
        floor_a = split_subnormal_floor(
            ha.min_nonzero, ha.max_abs, mantissa_bits, eta, conditioned=conditioned
        )
        floor_b = split_subnormal_floor(
            hb.min_nonzero, hb.max_abs, mantissa_bits, eta, conditioned=conditioned
        )
    return gemm_relative_error_bound(
        k, mantissa_bits, accumulator_bits, floor_a=floor_a, floor_b=floor_b
    )


def sweep_menu(
    menu: tuple[str, ...] | None = None,
    shapes=SWEEP_SHAPES,
    distributions=DISTRIBUTIONS,
    trials: int = 2,
    seed: int = 0,
    raise_on_violation: bool = False,
) -> dict:
    """Certify every menu kernel over shapes × operand distributions.

    Operands are drawn once per (shape, distribution, trial) cell and
    shared across kernels, so per-kernel tightness is comparable on
    identical inputs.  Every cell runs through
    :class:`repro.resilience.runner.ResilientRunner` (single-kernel
    chain, ``"scaled"`` escalation) so the certificate covers what was
    *actually* computed.  ``menu`` defaults to the serving menu
    (:data:`repro.serve.router.DEFAULT_MENU`) — the kernels the router
    can actually certify and serve.  Returns the ``sweep`` block of the
    report.
    """
    from ..kernels.registry import get_kernel
    from ..resilience.runner import ResilientRunner

    if menu is None:
        from ..serve.router import DEFAULT_MENU

        menu = tuple(DEFAULT_MENU)
    kernels = {name: get_kernel(name) for name in menu}
    runners = {
        name: ResilientRunner(chain=(name,), escalation="scaled", abft=False)
        for name in menu
    }

    cells: dict[tuple[str, str, str], dict] = {}
    worst: dict[str, dict] = {}
    tightness: dict[str, Histogram] = {name: Histogram(track_exemplars=True) for name in menu}
    violations: list[dict] = []
    escalations = 0

    for shape_index, (m, k, n) in enumerate(shapes):
        bucket = f"{m}x{k}x{n}"
        for dist_index, distribution in enumerate(distributions):
            for trial in range(trials):
                rng = np.random.default_rng(
                    np.random.SeedSequence([seed, shape_index, dist_index, trial])
                )
                a, b = _draw_operands(rng, distribution, m, k, n)
                for name in menu:
                    kernel = kernels[name]
                    # every cell goes through the resilient front door:
                    # in-range operands hit the kernel directly
                    # (escalation "none"), finite-but-out-of-fp16-range
                    # operands take the exact power-of-two rescale the
                    # serving path would, and the certificate below
                    # covers what was *actually* computed
                    result = runners[name].run(a, b)
                    d, escalation = result.d, result.escalation
                    if escalation != "none":
                        escalations += 1
                    observed = observed_relative_error(d, a, b)
                    certified = _certified_bound(name, kernel, k, a, b, escalation)
                    ratio = _tightness_ratio(observed, certified)
                    tightness[name].observe(
                        ratio,
                        exemplar={"shape": bucket, "distribution": distribution,
                                  "trial": trial},
                    )
                    cell = cells.setdefault(
                        (name, bucket, distribution),
                        {
                            "kernel": name,
                            "shape": bucket,
                            "distribution": distribution,
                            "trials": 0,
                            "escalated": 0,
                            "worst_observed": 0.0,
                            "worst_certified": 0.0,
                            "worst_ratio": 0.0,
                            "violations": 0,
                        },
                    )
                    cell["trials"] += 1
                    if escalation != "none":
                        cell["escalated"] += 1
                    if ratio >= cell["worst_ratio"]:
                        cell["worst_ratio"] = ratio
                        cell["worst_observed"] = observed
                        cell["worst_certified"] = certified
                    record = {
                        "kernel": name,
                        "shape": bucket,
                        "distribution": distribution,
                        "trial": trial,
                        "escalation": escalation,
                        "observed": observed,
                        "certified": certified,
                        "ratio": ratio,
                        "operand_a": _operand_summary(a, axis=1),
                        "operand_b": _operand_summary(b, axis=0),
                    }
                    if name not in worst or ratio > worst[name]["ratio"]:
                        worst[name] = record
                    if observed > certified:
                        cell["violations"] += 1
                        violations.append(record)
                        if raise_on_violation:
                            raise BoundViolationError(
                                f"sweep: kernel {name!r} on {bucket} "
                                f"({distribution}, trial {trial}, escalation "
                                f"{escalation}) observed {observed:.6g} above "
                                f"certified {certified:.6g}",
                                record=record,
                            )
    rows = [cells[key] for key in sorted(cells)]
    return {
        "menu": list(menu),
        "shapes": [f"{m}x{k}x{n}" for m, k, n in shapes],
        "distributions": list(distributions),
        "trials": trials,
        "seed": seed,
        "rows": rows,
        "worst": {name: worst[name] for name in sorted(worst)},
        "violations": len(violations),
        "violation_records": violations[:5],
        "escalations": escalations,
        "histograms": {
            f"obs.accuracy.sweep.{name}": tightness[name].snapshot()
            for name in sorted(tightness)
        },
    }


# -- report assembly + validation ------------------------------------------
def _jsonable(node):
    """Recursively make a report JSON-strict (non-finite floats -> strings)."""
    if isinstance(node, dict):
        return {str(k): _jsonable(v) for k, v in node.items()}
    if isinstance(node, (list, tuple)):
        return [_jsonable(v) for v in node]
    if isinstance(node, float) and not math.isfinite(node):
        return repr(node)
    if isinstance(node, (np.floating, np.integer)):
        return _jsonable(node.item())
    return node


def build_accuracy_report(
    sampler: AccuracySampler | None,
    sweep: dict,
    serve_workload: dict | None = None,
    seed: int = 0,
    quick: bool = False,
) -> dict:
    """Assemble the ``ACCURACY_report.json`` payload.

    The per-kernel ``kernels`` section merges the serve-workload and
    sweep exemplars, keeping the worse (higher-ratio) of the two, so
    every menu kernel carries at least one exemplar even when the
    routed workload never selected it.
    """
    serve_block = sampler.summary() if sampler is not None else None
    if serve_block is not None and serve_workload is not None:
        serve_block = {"workload": serve_workload, **serve_block}
    kernels: dict[str, dict] = {}
    for name in sweep.get("menu", []):
        candidates = []
        if serve_block is not None and name in serve_block["worst"]:
            candidates.append(("serve", serve_block["worst"][name]))
        if name in sweep.get("worst", {}):
            candidates.append(("sweep", sweep["worst"][name]))
        if not candidates:
            continue
        source, exemplar = max(candidates, key=lambda item: item[1]["ratio"])
        kernels[name] = {
            "exemplar": exemplar,
            "exemplar_source": source,
            "worst_ratio": exemplar["ratio"],
            "sources": [s for s, _ in candidates],
        }
    total_violations = sweep.get("violations", 0) + (
        serve_block["violations"] if serve_block is not None else 0
    )
    metrics = (
        sampler.metrics_snapshot()
        if sampler is not None
        else {"counters": {}, "gauges": {}, "histograms": {}, "providers": {}}
    )
    metrics["histograms"] = {
        **metrics["histograms"],
        **sweep.get("histograms", {}),
    }
    metrics["counters"] = {
        **metrics["counters"],
        "obs.accuracy.sweep_violations": sweep.get("violations", 0),
    }
    from .export import run_manifest

    worst_ratio = max(
        (entry["worst_ratio"] for entry in kernels.values()), default=0.0
    )
    return _jsonable(
        {
            "schema": ACCURACY_SCHEMA,
            "seed": seed,
            "quick": quick,
            "manifest": run_manifest(seed=seed),
            "serve": serve_block,
            "sweep": sweep,
            "kernels": kernels,
            "violations": total_violations,
            "worst_tightness_ratio": worst_ratio,
            "metrics": metrics,
        }
    )


def validate_accuracy_report(report: dict) -> list[str]:
    """Schema + invariant check of an accuracy report; returns problems.

    CI fails the accuracy smoke step on any returned string: schema
    identity, per-kernel exemplar presence (every menu kernel must carry
    one), numeric observed/certified pairs, the ``observed <= certified``
    invariant on every exemplar, and an embedded registry-shaped
    ``metrics`` snapshot.
    """
    problems: list[str] = []
    if report.get("schema") != ACCURACY_SCHEMA:
        problems.append(
            f"schema is {report.get('schema')!r}, expected {ACCURACY_SCHEMA!r}"
        )
    violations = report.get("violations")
    if not isinstance(violations, int) or violations < 0:
        problems.append("violations missing or negative")
    sweep = report.get("sweep")
    if not isinstance(sweep, dict):
        problems.append("sweep block missing")
        sweep = {}
    menu = sweep.get("menu", [])
    if not menu:
        problems.append("sweep.menu empty")
    if not sweep.get("rows"):
        problems.append("sweep.rows empty")
    for row in sweep.get("rows", []):
        for key in ("kernel", "shape", "distribution", "worst_observed",
                    "worst_certified", "worst_ratio", "violations"):
            if key not in row:
                problems.append(f"sweep row missing {key!r}")
                break
    kernels = report.get("kernels")
    if not isinstance(kernels, dict) or not kernels:
        problems.append("kernels section missing or empty")
        kernels = {}
    for name in menu:
        if name not in kernels:
            problems.append(f"kernel {name!r} has no exemplar")
    for name, entry in kernels.items():
        exemplar = entry.get("exemplar")
        if not isinstance(exemplar, dict):
            problems.append(f"kernels.{name}.exemplar missing")
            continue
        observed = exemplar.get("observed")
        certified = exemplar.get("certified")
        if not isinstance(observed, (int, float)) or not isinstance(
            certified, (int, float)
        ):
            problems.append(f"kernels.{name}.exemplar observed/certified not numeric")
        elif observed > certified:
            problems.append(
                f"kernels.{name}.exemplar violates observed <= certified "
                f"({observed} > {certified})"
            )
    serve = report.get("serve")
    if serve is not None:
        if not isinstance(serve, dict):
            problems.append("serve block present but not an object")
        else:
            for key in ("sampled", "verified", "violations", "tightness", "budget"):
                if key not in serve:
                    problems.append(f"serve.{key} missing")
    metrics = report.get("metrics")
    if not isinstance(metrics, dict) or "counters" not in metrics:
        problems.append("metrics snapshot missing (need a registry-shaped dict)")
    if not isinstance(report.get("worst_tightness_ratio"), (int, float)):
        problems.append("worst_tightness_ratio missing")
    return problems


# -- CLI -------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro accuracy [--quick] [--seed N]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro accuracy",
        description="shadow-sampled accuracy verification: serve workload + "
                    "kernel-menu sweep against the analytic certificates "
                    "(see docs/observability.md)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload + sweep seed")
    parser.add_argument("--requests", type=int, default=600,
                        help="serve-workload requests to shadow-sample")
    parser.add_argument("--sample-rate", type=float, default=1.0,
                        help="shadow-sampling probability over completed requests")
    parser.add_argument("--trials", type=int, default=2,
                        help="sweep trials per (shape, distribution) cell")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 200 requests, reduced sweep grid")
    parser.add_argument("--out", default="ACCURACY_report.json",
                        help="report path (JSON)")
    parser.add_argument("--flight-log", default=None, metavar="PATH",
                        help="dump the flight-recorder JSONL (bound violations "
                             "+ worst-residual exemplars) here")
    parser.add_argument("--history", default="BENCH_history.jsonl", metavar="PATH",
                        help="benchmark-history JSONL to append this run to")
    parser.add_argument("--no-history", action="store_true",
                        help="skip appending to the benchmark history")
    parser.add_argument("--check", action="store_true",
                        help="regression gate: compare this run's accuracy "
                             "metrics against the history baseline "
                             "(kind=accuracy series); exit 1 on a gated "
                             "regression")
    args = parser.parse_args(argv)

    requests = args.requests
    trials = args.trials
    shapes, distributions = SWEEP_SHAPES, DISTRIBUTIONS
    if args.quick:
        if "--requests" not in (argv or []):
            requests = 200
        if "--trials" not in (argv or []):
            trials = 1
        shapes, distributions = QUICK_SWEEP_SHAPES, QUICK_DISTRIBUTIONS

    from ..obs.serving import ServeObserver
    from ..serve.loadgen import run_load_test

    observer = ServeObserver()
    sampler = AccuracySampler(
        rate=args.sample_rate,
        seed=args.seed,
        recorder=observer.recorder,
        raise_on_violation=False,
    )
    service, _responses = run_load_test(
        requests, seed=args.seed, accuracy_sampler=sampler, observer=observer
    )
    sampler.emit_exemplars()
    serve_workload = {
        "requests": requests,
        "seed": args.seed,
        "completed": service.completed,
    }

    sweep = sweep_menu(
        shapes=shapes,
        distributions=distributions,
        trials=trials,
        seed=args.seed,
        raise_on_violation=False,
    )

    report = build_accuracy_report(
        sampler, sweep, serve_workload=serve_workload,
        seed=args.seed, quick=bool(args.quick),
    )
    problems = validate_accuracy_report(report)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    if args.flight_log:
        from .export import run_manifest

        observer.recorder.dump_jsonl(args.flight_log, manifest=run_manifest())
        print(f"flight log: {len(observer.recorder.events())} events -> "
              f"{args.flight_log}")

    exit_code = 0
    from .benchtrack import (
        append_record, check_metrics, format_check, load_history, make_record,
    )
    from .export import run_manifest

    metrics = {
        "worst_tightness_ratio": report["worst_tightness_ratio"],
        "bound_violations": float(report["violations"]),
        "serve_verified": float(sampler.verified),
        "sweep_cells": float(len(sweep["rows"])),
        "sweep_escalations": float(sweep["escalations"]),
    }
    if args.check:
        history = load_history(args.history, kind="accuracy", quick=args.quick)
        result = check_metrics(metrics, history, ACCURACY_METRIC_SPECS)
        print(f"accuracy regression check vs {args.history} "
              f"({len(history)} prior record(s) in this series):")
        print(format_check(result))
        if not result["ok"]:
            exit_code = 1
    if not args.no_history:
        record = make_record(
            "accuracy", metrics, quick=bool(args.quick), manifest=run_manifest(),
        )
        append_record(args.history, record)
        print(f"history: accuracy record appended to {args.history}")

    print(
        f"accuracy: serve pass verified {sampler.verified}/{service.completed} "
        f"completed (rate {args.sample_rate:g}), sweep certified "
        f"{len(sweep['rows'])} cells over {len(sweep['menu'])} kernels "
        f"({sweep['escalations']} escalations)"
    )
    worst_overall = max(
        report["kernels"].items(),
        key=lambda item: item[1]["worst_ratio"],
        default=(None, None),
    )
    if worst_overall[0] is not None:
        print(
            f"tightest certificate use: {worst_overall[0]} at ratio "
            f"{worst_overall[1]['worst_ratio']:.4f} "
            f"(observed/certified, {worst_overall[1]['exemplar_source']})"
        )
    for tier in sorted(sampler.budgets):
        block = sampler.budgets[tier].summary()
        print(f"budget {tier}: {block['bad']}/{block['total']} bad "
              f"({'compliant' if block['compliant'] else 'VIOLATED'}, "
              f"{block['alerts']} alerts)")
    if report["violations"]:
        print(f"BOUND VIOLATIONS: {report['violations']} — certified analytic "
              f"bounds were exceeded; see {args.out}")
    if problems:
        for problem in problems:
            print(f"SCHEMA PROBLEM: {problem}")
    if report["violations"] or problems:
        return 1
    print(f"report written to {args.out} (schema {ACCURACY_SCHEMA}, "
          f"0 bound violations)")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
