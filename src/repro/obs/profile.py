"""Per-kernel profiler: Nsight-Compute-style reports from the simulator.

``python -m repro profile <kernel> --shape MxNxK`` runs one kernel
timing through :func:`repro.gpu.engine.execute` with an execution
collector installed and turns the captured schedule into the report the
paper's performance arguments are made of:

* per-instruction-class issue/stall cycles (where the block's critical
  path actually goes — HMMA issue vs the serialized LDS/LDG/STS pipe);
* occupancy (blocks/SM, limiting resource, FRAG/register pressure);
* memory-system view (LDG bytes per block, unique DRAM bytes after the
  wave-level L2 reuse model, the implied L2 hit rate, shared-memory
  traffic and the bank-conflict replay factor);
* achieved vs roofline throughput and issue-bound schedule efficiency;
* the wave timeline (pipeline- vs DRAM-bound, per wave).

Totals are read from the *same* :class:`~repro.gpu.engine.KernelTiming`
the engine returns — the report cannot drift from the aggregates — and
an independent re-run cross-checks determinism (``consistency`` section).

``--trace out.json`` additionally exports a Chrome-trace timeline
(1 simulated cycle = 1 us) of the single-block pipeline occupancy, the
wave schedule, and any wall-clock spans recorded during the run; the
document passes :func:`repro.obs.export.validate_chrome_trace` before it
is written.

Roofline-modelled kernels (the cuBLAS baselines) never enter the
instruction engine; they profile in ``mode="roofline"`` with the
schedule sections absent.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "ExecutionTrace",
    "WaveRecord",
    "collect_executions",
    "profile_kernel",
    "KernelProfile",
    "pipeline_events",
    "wave_events",
    "format_report",
    "main",
]


@dataclass(frozen=True)
class WaveRecord:
    """Timing of one wave of concurrently resident blocks."""

    index: int
    active_blocks: int
    start_cycle: float
    end_cycle: float
    pipeline_cycles: float
    dram_cycles: float
    dram_bound: bool

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "active_blocks": self.active_blocks,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "pipeline_cycles": self.pipeline_cycles,
            "dram_cycles": self.dram_cycles,
            "dram_bound": self.dram_bound,
        }


@dataclass
class ExecutionTrace:
    """Everything :func:`repro.gpu.engine.execute` saw for one launch."""

    launch: object  # KernelLaunch
    spec: object  # GpuSpec
    occupancy: object  # Occupancy
    schedule: object  # ScheduleResult
    timing: object  # KernelTiming
    waves: list[WaveRecord] = field(default_factory=list)


@contextmanager
def collect_executions(scope: str = "global") -> Iterator[list[ExecutionTrace]]:
    """Install the engine execution hook; yields the capture list.

    The previous hook is restored on exit, so nested collectors and
    error paths cannot leak instrumentation into later runs (the same
    contract as :meth:`repro.resilience.faults.FaultInjector.installed`).

    ``scope="context"`` installs through the context-local override of
    :mod:`repro.obs.hooks` instead of the module global, so concurrent
    collectors (one per in-flight serving request) each capture only
    their own context's executions.
    """
    from ..gpu import engine

    captured: list[ExecutionTrace] = []
    if scope == "context":
        from .hooks import local_exec_hook

        with local_exec_hook(captured.append):
            yield captured
        return
    if scope != "global":
        raise ValueError(f"unknown hook scope {scope!r}; use 'global' or 'context'")
    previous = engine.EXEC_HOOK
    engine.EXEC_HOOK = captured.append
    try:
        yield captured
    finally:
        engine.EXEC_HOOK = previous


# --- schedule analysis ------------------------------------------------------
def _instruction_classes(stream, schedule, spec) -> dict[str, dict]:
    """Per-opcode issue/stall accounting of one block's schedule.

    For each group: ``issue`` is the cycles it occupies its functional
    unit; ``stall`` is the gap between the moment its dependencies were
    satisfied and its first issue — time lost to unit serialization
    (another group holding the pipe), the quantity §5.1's instruction
    reordering attacks.
    """
    complete = schedule.group_complete
    issue_end: list[float] = []
    classes: dict[str, dict] = {}
    for idx, group in enumerate(stream):
        issue = group.issue_cycles(spec)
        end_issue = complete[idx] - group.completion_latency(spec)
        start = end_issue - issue
        issue_end.append(end_issue)
        ready = 0.0
        for dep in group.depends_on:
            ready = max(ready, complete[dep])
        for dep in group.issue_after:
            ready = max(ready, issue_end[dep])
        entry = classes.setdefault(
            group.opcode.value,
            {"groups": 0, "instructions": 0, "issue_cycles": 0.0,
             "stall_cycles": 0.0, "traffic_bytes": 0},
        )
        entry["groups"] += 1
        entry["instructions"] += group.count
        entry["issue_cycles"] += issue
        entry["stall_cycles"] += max(0.0, start - ready)
        entry["traffic_bytes"] += group.traffic_bytes
    return classes


@dataclass
class KernelProfile:
    """The assembled profile of one kernel launch."""

    kernel: str
    shape: tuple[int, int, int]
    spec_name: str
    mode: str  # "engine" | "roofline"
    report: dict
    trace: ExecutionTrace | None = None

    def as_dict(self) -> dict:
        return self.report


def _engine_report(kernel_name, shape, spec, trace: ExecutionTrace, timing) -> dict:
    from ..gpu.isa import ExecUnit, Opcode

    m, n, k = shape
    launch, sched, occ = trace.launch, trace.schedule, trace.occupancy
    stream = launch.stream
    classes = _instruction_classes(stream, sched, spec)

    ldg_bytes = stream.traffic_bytes(Opcode.LDG)
    stg_bytes = stream.traffic_bytes(Opcode.STG)
    lds_bytes = stream.traffic_bytes(Opcode.LDS)
    sts_bytes = stream.traffic_bytes(Opcode.STS)
    global_bytes = ldg_bytes + stg_bytes
    dram_bytes = launch.dram_bytes_per_block
    l2_hit_rate = max(0.0, 1.0 - dram_bytes / global_bytes) if global_bytes else 0.0

    tensor_busy = sched.unit_busy.get(ExecUnit.TENSOR, 0.0)
    peak = (
        spec.peak_half_tc_tflops
        if stream.count(Opcode.HMMA)
        else spec.peak_fp32_tflops
    )
    achieved = timing.tflops
    issue_bound = max(sched.unit_busy.values(), default=0.0)

    return {
        "kernel": kernel_name,
        "shape": list(shape),
        "spec": spec.name,
        "mode": "engine",
        "timing": {
            "seconds": timing.seconds,
            "total_cycles": timing.cycles,
            "tflops": achieved,
            "waves": timing.waves,
            "dram_bound_waves": timing.dram_bound_waves,
            "breakdown": dict(timing.breakdown),
        },
        "occupancy": {
            "grid_blocks": launch.grid_blocks,
            "blocks_per_sm": occ.blocks_per_sm,
            "active_warps_per_sm": occ.active_warps_per_sm,
            "limiting_resource": occ.limiting_resource,
            "threads_per_block": launch.resources.threads,
            "registers_per_thread": launch.resources.registers_per_thread,
            "shared_mem_bytes_per_block": launch.resources.shared_mem_bytes,
        },
        "schedule": {
            "block_cycles": sched.total_cycles,
            "instruction_groups": len(stream),
            "tensor_utilization": sched.tensor_utilization,
            "mem_utilization": sched.mem_utilization,
            "issue_bound_cycles": issue_bound,
            "schedule_efficiency": issue_bound / sched.total_cycles if sched.total_cycles else 0.0,
        },
        "instruction_classes": classes,
        "memory": {
            "ldg_bytes_per_block": ldg_bytes,
            "stg_bytes_per_block": stg_bytes,
            "lds_bytes_per_block": lds_bytes,
            "sts_bytes_per_block": sts_bytes,
            "dram_bytes_per_block": dram_bytes,
            "l2_hit_rate": l2_hit_rate,
        },
        "roofline": {
            "achieved_tflops": achieved,
            "peak_tflops": peak,
            "fraction_of_peak": achieved / peak if peak else 0.0,
            "tensor_pipe_busy_cycles": tensor_busy,
        },
        "waves": [w.as_dict() for w in trace.waves],
    }


def _roofline_report(kernel_name, shape, spec, timing) -> dict:
    peak = spec.peak_half_tc_tflops if "TC" in timing.name else spec.peak_fp32_tflops
    return {
        "kernel": kernel_name,
        "shape": list(shape),
        "spec": spec.name,
        "mode": "roofline",
        "timing": {
            "seconds": timing.seconds,
            "total_cycles": timing.cycles,
            "tflops": timing.tflops,
            "waves": timing.waves,
            "dram_bound_waves": timing.dram_bound_waves,
            "breakdown": dict(timing.breakdown),
        },
        "roofline": {
            "achieved_tflops": timing.tflops,
            "peak_tflops": peak,
            "fraction_of_peak": timing.tflops / peak if peak else 0.0,
        },
    }


def profile_kernel(name: str, m: int, n: int, k: int, spec=None) -> KernelProfile:
    """Profile one (m, n, k) timing of a registry kernel on ``spec``.

    Engine-modelled kernels (EGEMM-TC and friends) yield the full
    schedule/memory/wave report; roofline-modelled baselines yield the
    timing/roofline subset.  A second, independent ``kernel.time`` run
    cross-checks that the captured totals are deterministic — the
    ``consistency`` section records the bit-for-bit comparison.
    """
    from ..gpu.spec import TESLA_T4
    from ..kernels.registry import get_kernel
    from .metrics import get_registry
    from .tracing import get_tracer

    spec = spec or TESLA_T4
    kernel = get_kernel(name)
    tracer = get_tracer()
    with tracer.span("obs.profile", category="obs", kernel=name, m=m, n=n, k=k):
        with collect_executions() as captured:
            timing = kernel.time(m, n, k, spec)

    shape = (m, n, k)
    if captured:
        trace = captured[-1]
        report = _engine_report(name, shape, spec, trace, timing)
        mode = "engine"
    else:
        trace = None
        report = _roofline_report(name, shape, spec, timing)
        mode = "roofline"

    # Determinism cross-check against a fresh, uninstrumented timing.
    recheck = kernel.time(m, n, k, spec)
    report["consistency"] = {
        "recheck_seconds": recheck.seconds,
        "recheck_total_cycles": recheck.cycles,
        "cycles_match": recheck.cycles == report["timing"]["total_cycles"],
        "seconds_match": recheck.seconds == report["timing"]["seconds"],
    }
    report["metrics"] = get_registry().query("gpu.engine")
    get_registry().inc("obs.profiles")
    return KernelProfile(
        kernel=name, shape=shape, spec_name=spec.name, mode=mode,
        report=report, trace=trace,
    )


# --- Chrome-trace assembly --------------------------------------------------
def pipeline_events(trace: ExecutionTrace, pid: int = 1) -> list[dict]:
    """One block's schedule as per-functional-unit timeline lanes.

    1 simulated cycle maps to 1 us; lanes are the scheduler's functional
    units, so the Figure 6 overlap (HMMA issuing under the MEM pipe) is
    directly visible in Perfetto.
    """
    from ..gpu.isa import ExecUnit
    from ..gpu.timeline import timeline_segments
    from .export import complete_event, process_name_event, thread_name_event

    lanes = {ExecUnit.TENSOR: 1, ExecUnit.MEM: 2, ExecUnit.ALU: 3, ExecUnit.SYNC: 4}
    events = [process_name_event(pid, "SM pipeline (one block, cycles)")]
    for unit, tid in lanes.items():
        events.append(thread_name_event(pid, tid, unit.value))
    for seg in timeline_segments(trace.launch.stream, trace.spec):
        events.append(
            complete_event(
                seg.label,
                ts=max(0.0, seg.start),
                dur=max(0.0, seg.end - seg.start),
                pid=pid,
                tid=lanes.get(seg.unit, 5),
                cat="pipeline",
            )
        )
    return events


def wave_events(trace: ExecutionTrace, pid: int = 2) -> list[dict]:
    """The launch's wave schedule: one lane, one interval per wave."""
    from .export import complete_event, counter_event, process_name_event, thread_name_event

    events = [
        process_name_event(pid, "wave schedule (launch, cycles)"),
        thread_name_event(pid, 1, "waves"),
    ]
    for wave in trace.waves:
        events.append(
            complete_event(
                f"wave {wave.index} ({'DRAM' if wave.dram_bound else 'pipeline'}-bound)",
                ts=wave.start_cycle,
                dur=max(0.0, wave.end_cycle - wave.start_cycle),
                pid=pid,
                tid=1,
                cat="wave",
                args={
                    "active_blocks": wave.active_blocks,
                    "pipeline_cycles": wave.pipeline_cycles,
                    "dram_cycles": wave.dram_cycles,
                },
            )
        )
        events.append(
            counter_event(
                "active blocks", ts=wave.start_cycle,
                values={"blocks": wave.active_blocks}, pid=pid,
            )
        )
    return events


def export_trace(profile: KernelProfile, path, seed: int | None = None):
    """Write the profile's Chrome-trace JSON (validated); returns the path."""
    from .export import run_manifest, spans_to_events, write_chrome_trace
    from .tracing import get_tracer

    events: list[dict] = []
    if profile.trace is not None:
        events.extend(pipeline_events(profile.trace))
        events.extend(wave_events(profile.trace))
    events.extend(spans_to_events(get_tracer().spans()))
    manifest = run_manifest(
        seed=seed,
        config={"kernel": profile.kernel, "shape": list(profile.shape),
                "spec": profile.spec_name, "mode": profile.mode},
    )
    return write_chrome_trace(path, events, manifest=manifest)


# --- text report ------------------------------------------------------------
def format_report(profile: KernelProfile) -> str:
    """Human-readable profile report (the CLI's default output)."""
    r = profile.report
    t = r["timing"]
    m, n, k = r["shape"]
    lines = [
        f"== profile: {r['kernel']} {m}x{n}x{k} on {r['spec']} ({r['mode']} model) ==",
        "",
        f"time          {t['seconds'] * 1e3:12.4f} ms   ({t['tflops']:.3f} TFLOPS)",
        f"total cycles  {t['total_cycles']:14.1f}",
        f"waves         {t['waves']:8d}   ({t['dram_bound_waves']} DRAM-bound)",
    ]
    if "occupancy" in r:
        o = r["occupancy"]
        lines += [
            "",
            "-- occupancy --",
            f"grid blocks {o['grid_blocks']}, {o['blocks_per_sm']} block(s)/SM "
            f"({o['active_warps_per_sm']} warps/SM), limited by {o['limiting_resource']}",
            f"FRAG pressure: {o['registers_per_thread']} regs/thread, "
            f"{o['shared_mem_bytes_per_block']} B shared/block, "
            f"{o['threads_per_block']} threads/block",
        ]
    if "schedule" in r:
        s = r["schedule"]
        lines += [
            "",
            "-- block schedule --",
            f"block cycles {s['block_cycles']:.1f} over {s['instruction_groups']} groups; "
            f"tensor pipe {s['tensor_utilization']:.1%} busy, "
            f"mem pipe {s['mem_utilization']:.1%} busy",
            f"issue-bound limit {s['issue_bound_cycles']:.1f} cycles "
            f"(schedule efficiency {s['schedule_efficiency']:.1%})",
            "",
            "-- instruction classes (per block) --",
            f"{'class':>6} {'instrs':>8} {'issue cyc':>10} {'stall cyc':>10} {'bytes':>12}",
        ]
        for op, c in sorted(r["instruction_classes"].items()):
            lines.append(
                f"{op:>6} {c['instructions']:>8} {c['issue_cycles']:>10.1f} "
                f"{c['stall_cycles']:>10.1f} {c['traffic_bytes']:>12}"
            )
    if "memory" in r:
        mem = r["memory"]
        lines += [
            "",
            "-- memory (per block) --",
            f"LDG {mem['ldg_bytes_per_block']} B, STG {mem['stg_bytes_per_block']} B, "
            f"LDS {mem['lds_bytes_per_block']} B, STS {mem['sts_bytes_per_block']} B",
            f"unique DRAM {mem['dram_bytes_per_block']:.0f} B "
            f"(L2 hit rate {mem['l2_hit_rate']:.1%} via wave panel reuse)",
        ]
    rf = r["roofline"]
    lines += [
        "",
        "-- roofline --",
        f"achieved {rf['achieved_tflops']:.3f} TFLOPS of {rf['peak_tflops']:.1f} peak "
        f"({rf['fraction_of_peak']:.1%})",
    ]
    c = r["consistency"]
    lines += [
        "",
        f"-- consistency: cycles match={c['cycles_match']} "
        f"seconds match={c['seconds_match']} (independent re-run) --",
    ]
    return "\n".join(lines)


# --- CLI --------------------------------------------------------------------
def _parse_shape(text: str) -> tuple[int, int, int]:
    parts = text.lower().replace("×", "x").split("x")
    if len(parts) != 3:
        raise ValueError(f"shape must look like MxNxK, got {text!r}")
    m, n, k = (int(p) for p in parts)
    if min(m, n, k) <= 0:
        raise ValueError(f"shape dimensions must be positive, got {text!r}")
    return m, n, k


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro profile <kernel> --shape MxNxK [--trace F]``."""
    import argparse

    from ..gpu.spec import get_gpu
    from ..kernels.registry import KERNELS
    from .tracing import configure

    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="per-kernel profile report + Chrome-trace export "
                    "(see docs/observability.md)",
    )
    parser.add_argument("kernel", choices=sorted(KERNELS), help="registry kernel name")
    parser.add_argument("--shape", default="256x256x256", help="GEMM shape MxNxK")
    parser.add_argument("--spec", default="t4", help="GPU spec name (t4, rtx6000)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome-trace JSON timeline here")
    parser.add_argument("--json", default=None, metavar="PATH", dest="json_out",
                        help="write the profile report as JSON here")
    args = parser.parse_args(argv)

    try:
        m, n, k = _parse_shape(args.shape)
    except ValueError as exc:
        parser.error(str(exc))
    spec = get_gpu(args.spec)

    configure(True)  # the profiled run is traced by definition
    profile = profile_kernel(args.kernel, m, n, k, spec=spec)
    print(format_report(profile))

    if args.json_out:
        from .export import run_manifest

        doc = dict(profile.report)
        doc["manifest"] = run_manifest(config={"kernel": args.kernel,
                                               "shape": [m, n, k], "spec": spec.name})
        with open(args.json_out, "w") as fh:
            json.dump(doc, fh, indent=2, default=float)
        print(f"profile JSON written to {args.json_out}")
    if args.trace:
        path = export_trace(profile, args.trace)
        print(f"Chrome trace written to {path} (load in chrome://tracing or Perfetto)")
    return 0
