"""Benchmark history: a durable time series with a regression gate.

``BENCH_perf.json`` is a single overwritten snapshot — a perf regression
ships silently because nothing remembers what last week's numbers were.
This module turns every measured run (``python -m repro bench`` /
``serve`` / ``faults`` / ``latency``) into one **schema-versioned JSONL record**
appended to ``BENCH_history.jsonl``, and implements the run-over-run
verdict logic behind ``python -m repro bench --check``:

* each record carries a ``kind`` (``bench``/``serve``/``faults``/
  ``latency``), the
  ``quick`` flag (quick and full runs are separate series — their
  shapes differ), a flat ``metrics`` map, and the reproducibility
  manifest (:func:`repro.obs.export.run_manifest`);
* the **baseline** for a metric is the *median* of its last ``N``
  values from prior records of the same series — median-of-N absorbs a
  single noisy CI run without moving the gate;
* each tracked metric declares a **direction** (``higher`` is better,
  or ``lower``) and a **relative tolerance band**: deterministic
  virtual-time metrics get tight bands, wall-clock timings get wide
  ones (machine noise is not a regression).  Metrics with
  ``gate=False`` are recorded and reported but never fail the check;
* a gated metric outside its band on the bad side is a **regression**
  and the check exits nonzero — wired into CI as a gate.

The history file is append-only: runs on different machines interleave
safely, and the time series survives every ``BENCH_perf.json``
overwrite.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

__all__ = [
    "HISTORY_SCHEMA",
    "MetricSpec",
    "make_record",
    "append_record",
    "load_history",
    "validate_history",
    "check_metrics",
    "format_check",
]

#: history-record schema identifier, bumped on breaking field changes
HISTORY_SCHEMA = "repro.obs.benchtrack/1"

#: default baseline window (median of up to this many prior values)
BASELINE_N = 5


@dataclass(frozen=True)
class MetricSpec:
    """How one tracked metric is compared run-over-run."""

    name: str
    #: "higher" = bigger is better (throughput, speedup, hit rate);
    #: "lower" = smaller is better (latency, SDC count)
    direction: str
    #: relative tolerance band around the baseline median; a gated
    #: metric outside the band on the bad side is a regression
    rel_tol: float
    #: False = informational only (recorded, reported, never gates)
    gate: bool = True

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower"):
            raise ValueError(f"direction must be 'higher' or 'lower', got {self.direction!r}")
        if self.rel_tol < 0:
            raise ValueError("rel_tol must be non-negative")


def make_record(
    kind: str,
    metrics: dict,
    quick: bool = False,
    manifest: dict | None = None,
    label: str | None = None,
) -> dict:
    """Assemble one history record (flat numeric metrics only)."""
    clean: dict[str, float] = {}
    for name, value in metrics.items():
        if isinstance(value, bool):
            clean[name] = float(value)
        elif isinstance(value, (int, float)):
            clean[name] = float(value)
        # non-numeric values are silently excluded: the history is a
        # numeric time series, the full report stays in the JSON snapshot
    record = {
        "schema": HISTORY_SCHEMA,
        "kind": kind,
        "quick": bool(quick),
        "metrics": clean,
    }
    if label is not None:
        record["label"] = label
    if manifest is not None:
        record["manifest"] = manifest
    return record


def append_record(path: str | Path, record: dict) -> Path:
    """Append one record to the JSONL history (creates the file)."""
    problems = validate_history([record])
    if problems:
        raise ValueError(f"refusing to append invalid record: {problems}")
    path = Path(path)
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_history(
    path: str | Path, kind: str | None = None, quick: bool | None = None
) -> list[dict]:
    """Parse the JSONL history, optionally filtered to one series."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if kind is not None and record.get("kind") != kind:
                continue
            if quick is not None and bool(record.get("quick")) != quick:
                continue
            records.append(record)
    return records


def validate_history(records: Iterable[dict]) -> list[str]:
    """Schema-check history records; returns a list of problems."""
    problems: list[str] = []
    for i, record in enumerate(records):
        if record.get("schema") != HISTORY_SCHEMA:
            problems.append(
                f"record {i}: schema is {record.get('schema')!r}, "
                f"expected {HISTORY_SCHEMA!r}"
            )
        if not isinstance(record.get("kind"), str) or not record.get("kind"):
            problems.append(f"record {i}: missing 'kind'")
        if not isinstance(record.get("quick"), bool):
            problems.append(f"record {i}: missing boolean 'quick'")
        metrics = record.get("metrics")
        if not isinstance(metrics, dict):
            problems.append(f"record {i}: 'metrics' must be an object")
            continue
        for name, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"record {i}: metric {name!r} is not numeric")
    return problems


def check_metrics(
    current: dict,
    history: Iterable[dict],
    specs: Iterable[MetricSpec],
    baseline_n: int = BASELINE_N,
) -> dict:
    """Run-over-run verdicts of ``current`` metrics against the history.

    ``history`` holds *prior* records (the current run excluded) of the
    same series.  Per-metric verdicts:

    * ``no-baseline`` — fewer than one prior value: nothing to gate;
    * ``ok`` — inside the tolerance band;
    * ``improved`` — outside the band on the good side;
    * ``regression`` — outside the band on the bad side (fails the
      check when the spec gates);
    * ``info`` — the spec is non-gating (band reported, never fails);
    * ``missing`` — the metric is absent from the current run (fails
      the check when gated: a silently vanished metric is itself a
      regression).
    """
    prior = [r["metrics"] for r in history]
    verdicts: dict[str, dict] = {}
    regressions: list[str] = []
    for spec in specs:
        value = current.get(spec.name)
        baseline_values = [m[spec.name] for m in prior if spec.name in m][-baseline_n:]
        entry: dict = {
            "direction": spec.direction,
            "rel_tol": spec.rel_tol,
            "gate": spec.gate,
            "current": value,
            "baseline": None,
            "baseline_n": len(baseline_values),
        }
        if value is None:
            entry["verdict"] = "missing" if baseline_values else "no-baseline"
            if spec.gate and baseline_values:
                regressions.append(spec.name)
        elif not baseline_values:
            entry["verdict"] = "no-baseline"
        else:
            baseline = statistics.median(baseline_values)
            entry["baseline"] = baseline
            scale = abs(baseline)
            delta = value - baseline
            # the bad direction is negative delta for higher-is-better
            signed = delta if spec.direction == "higher" else -delta
            band = spec.rel_tol * scale
            if not spec.gate:
                entry["verdict"] = "info"
            elif signed < -band:
                entry["verdict"] = "regression"
                regressions.append(spec.name)
            elif signed > band:
                entry["verdict"] = "improved"
            else:
                entry["verdict"] = "ok"
        verdicts[spec.name] = entry
    return {"verdicts": verdicts, "regressions": regressions,
            "ok": not regressions}


def format_check(report: dict) -> str:
    """Readable verdict table for the CLI."""
    lines = []
    width = max((len(n) for n in report["verdicts"]), default=10)
    for name, v in report["verdicts"].items():
        baseline = "-" if v["baseline"] is None else f"{v['baseline']:.6g}"
        current = "-" if v["current"] is None else f"{v['current']:.6g}"
        flag = "" if v["gate"] else " (info)"
        lines.append(
            f"  {name:<{width}s}  {current:>12s} vs baseline {baseline:>12s} "
            f"(median of {v['baseline_n']}, ±{v['rel_tol']:.0%} {v['direction']}-better)"
            f" -> {v['verdict']}{flag}"
        )
    verdict = "PASS" if report["ok"] else "FAIL: " + ", ".join(report["regressions"])
    lines.append(f"  gate: {verdict}")
    return "\n".join(lines)
