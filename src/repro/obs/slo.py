"""Multi-window, multi-burn-rate SLO monitoring over virtual time.

The serving layer promises two things per request: a **latency
contract** (a deadline-carrying request either completes before its
deadline or is explicitly expired) and an **accuracy contract** (a
completed response's certified analytic bound is at or below the
request's ``max_rel_error``).  This module watches compliance the way a
production SRE rotation would — with *burn rates* against an error
budget, evaluated over paired long/short windows:

* the **error budget** of an SLO with target ``0.99`` is ``1%`` of
  requests; the *burn rate* over a window is the observed bad fraction
  divided by that budget (burn ``1.0`` = spending the budget exactly at
  the sustainable rate);
* an alert fires only when **both** the long and the short window burn
  above the threshold — the long window gives significance (not three
  bad requests in a row), the short window gives reset speed (the alert
  clears quickly once the bleeding stops).  This is the classic
  multiwindow, multi-burn-rate construction from the SRE workbook,
  scaled to the simulator's virtual-time axis;
* a fast-burn pair (high threshold, short windows) catches sudden
  brownouts; a slow-burn pair (low threshold, long windows) catches
  gradual budget exhaustion.

Evaluation is **event-driven over the virtual clock** — the monitor
sees every terminal resolution as ``(t, good)`` and recomputes the
windowed burn at that instant — so a seeded load test produces the same
alert sequence on every run.  Alerts are emitted as ``alert`` events
into the flight recorder (rising edge only; the alert state latches
until the short window clears) and summarized for ``SERVE_slo.json``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["BurnWindow", "DEFAULT_WINDOWS", "BurnRateMonitor"]


@dataclass(frozen=True)
class BurnWindow:
    """One (long window, short window, burn threshold) alerting pair."""

    long_s: float
    short_s: float
    threshold: float

    def __post_init__(self) -> None:
        if self.long_s <= 0 or self.short_s <= 0:
            raise ValueError("burn windows must be positive")
        if self.short_s > self.long_s:
            raise ValueError("short window must not exceed the long window")
        if self.threshold <= 0:
            raise ValueError("burn threshold must be positive")


#: default pairs, scaled to the load tests' millisecond-scale virtual
#: runs (the shape mirrors the SRE-workbook 1h/5m @ 14.4 + 6h/30m @ 6
#: construction: a fast-burn page and a slow-burn ticket)
DEFAULT_WINDOWS = (
    BurnWindow(long_s=5e-4, short_s=1.25e-4, threshold=14.4),
    BurnWindow(long_s=2e-3, short_s=5e-4, threshold=6.0),
)


class _WindowCount:
    """Sliding ``(t - length, t]`` good/bad counts over an ordered stream.

    Exact replacement for a per-observation rescan: events enter once,
    leave once (amortized O(1) per observation), and the retained
    ``total``/``bad`` equal what a scan of the same half-open interval
    would count, because eviction uses the same ``at <= t - length``
    boundary the scan excludes.
    """

    __slots__ = ("length", "events", "total", "bad", "last_t")

    def __init__(self, length: float) -> None:
        self.length = length
        self.events: deque[tuple[float, bool]] = deque()
        self.total = 0
        self.bad = 0
        self.last_t = float("-inf")

    def push(self, t: float, good: bool) -> None:
        self.events.append((t, good))
        self.total += 1
        if not good:
            self.bad += 1
        edge = t - self.length
        while self.events and self.events[0][0] <= edge:
            _, was_good = self.events.popleft()
            self.total -= 1
            if not was_good:
                self.bad -= 1
        self.last_t = t

class BurnRateMonitor:
    """Windowed error-budget burn evaluation over a virtual event stream.

    ``observe(t, good)`` feeds one terminal resolution; the monitor
    retains events as long as the longest window needs them and
    evaluates every window pair at each observation.  ``recorder``
    (a :class:`repro.obs.flight.FlightRecorder`) receives an ``alert``
    event at each rising edge.
    """

    def __init__(
        self,
        name: str,
        target: float = 0.99,
        windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
        recorder=None,
    ) -> None:
        if not 0.0 < target < 1.0:
            raise ValueError("SLO target must be strictly between 0 and 1")
        if not windows:
            raise ValueError("burn-rate monitor needs at least one window pair")
        self.name = name
        self.target = target
        self.budget = 1.0 - target
        self.windows = tuple(windows)
        self.recorder = recorder
        self._events: deque[tuple[float, bool]] = deque()
        self._horizon = max(w.long_s for w in self.windows)
        # Sliding-window counters, one per distinct window length: the
        # virtual event stream is time-ordered, so each window's burn is
        # maintained incrementally (append + evict-stale) instead of
        # rescanning the retained events at every observation.
        self._win_lengths = sorted(
            {w.long_s for w in self.windows} | {w.short_s for w in self.windows}
        )
        self._win = {length: _WindowCount(length) for length in self._win_lengths}
        self._last_t = float("-inf")
        self._ordered = True
        self._active = [False] * len(self.windows)
        self.total = 0
        self.bad = 0
        self.alerts: list[dict] = []
        self.worst_burn = [0.0] * len(self.windows)

    # -- the event stream ------------------------------------------------
    def observe(self, t: float, good: bool) -> list[dict]:
        """Feed one terminal resolution; returns alerts raised at ``t``."""
        self.total += 1
        if not good:
            self.bad += 1
        self._events.append((t, good))
        while self._events and self._events[0][0] < t - self._horizon:
            self._events.popleft()
        if t < self._last_t:
            # Out-of-order observation (not produced by the event loop,
            # but allowed by the API): the sliding counters assume a
            # time-ordered stream, so retire them for this monitor and
            # let every later burn evaluation use the exact scan path.
            self._ordered = False
        self._last_t = max(self._last_t, t)
        if self._ordered:
            for win in self._win.values():
                win.push(t, good)
        raised: list[dict] = []
        for i, window in enumerate(self.windows):
            burn_long = self._burn(t, window.long_s)
            burn_short = self._burn(t, window.short_s)
            self.worst_burn[i] = max(self.worst_burn[i], min(burn_long, burn_short))
            firing = burn_long > window.threshold and burn_short > window.threshold
            if firing and not self._active[i]:
                self._active[i] = True
                alert = {
                    "monitor": self.name,
                    "window_long_s": window.long_s,
                    "window_short_s": window.short_s,
                    "threshold": window.threshold,
                    "burn_long": burn_long,
                    "burn_short": burn_short,
                    "t": t,
                }
                self.alerts.append(alert)
                raised.append(alert)
                if self.recorder is not None:
                    self.recorder.record(
                        "alert", t,
                        monitor=self.name,
                        window_long_s=window.long_s,
                        window_short_s=window.short_s,
                        threshold=window.threshold,
                        burn_long=burn_long,
                        burn_short=burn_short,
                    )
            elif not firing and self._active[i]:
                # the short window cleared: unlatch so a later brownout
                # raises a fresh alert instead of hiding inside this one
                if burn_short <= window.threshold:
                    self._active[i] = False
        return raised

    def _burn(self, t: float, window_s: float) -> float:
        """Burn rate over ``(t - window_s, t]``: bad fraction / budget."""
        win = self._win.get(window_s)
        if self._ordered and win is not None and win.last_t == t:
            if win.total == 0:
                return 0.0
            return (win.bad / win.total) / self.budget
        # Fallback scan for a window length or instant the sliding
        # counters don't track (direct callers outside ``observe``).
        total = 0
        bad = 0
        for at, good in self._events:
            if t - window_s < at <= t:
                total += 1
                if not good:
                    bad += 1
        if total == 0:
            return 0.0
        return (bad / total) / self.budget

    @property
    def alerting(self) -> bool:
        """True while any window pair's alert is latched (brownout input)."""
        return any(self._active)

    # -- reporting --------------------------------------------------------
    def summary(self) -> dict:
        """The ``SERVE_slo.json`` block for this monitor."""
        return {
            "target": self.target,
            "budget": self.budget,
            "total": self.total,
            "bad": self.bad,
            "bad_fraction": self.bad / self.total if self.total else 0.0,
            "compliant": (
                (self.total - self.bad) / self.total >= self.target
                if self.total
                else True
            ),
            "windows": [
                {
                    "long_s": w.long_s,
                    "short_s": w.short_s,
                    "threshold": w.threshold,
                    "worst_burn": self.worst_burn[i],
                    "alerting": self._active[i],
                }
                for i, w in enumerate(self.windows)
            ],
            "alerts": len(self.alerts),
            "first_alerts": self.alerts[:5],
        }
