"""Structured tracing core: hierarchical spans with near-zero disabled cost.

The observability layer's spine is a single process-wide :class:`Tracer`
holding a per-thread span stack.  A *span* is one timed region of the
simulator — an emulated GEMM run, a kernel-launch timing, a resilient
attempt, a fault-campaign section — carrying a monotonically increasing
id, its parent's id (spans opened while another span is active nest
under it), wall-clock start/duration, and free-form attributes.

Two design constraints shape the implementation:

* **zero dependencies** — stdlib only, so every subsystem (including the
  lowest layers of :mod:`repro.gpu`) can import it without cycles;
* **near-zero overhead when disabled** — ``Tracer.span`` performs one
  attribute check and returns a shared no-op singleton, so hot paths can
  be instrumented unconditionally.  The enabled path costs two
  ``perf_counter_ns`` calls and one locked append per span; nothing on
  the per-element or per-chunk level is ever traced.

Toggles: the ``REPRO_TRACE`` environment variable (``1``/``true``/``on``)
enables tracing at import; :func:`configure` flips it at runtime.  The
``python -m repro profile`` CLI enables it for the profiled run.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "configure",
    "current_span_id",
    "trace_enabled",
]


def _env_flag(name: str, default: bool = False) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() in ("1", "true", "yes", "on")


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()
    span_id = 0
    parent_id = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


@dataclass
class Span:
    """One timed, attributed region of execution."""

    name: str
    category: str = ""
    span_id: int = 0
    parent_id: int = 0
    thread_id: int = 0
    thread_name: str = ""
    start_ns: int = 0
    duration_ns: int = 0
    attributes: dict = field(default_factory=dict)
    _tracer: "Tracer | None" = field(default=None, repr=False, compare=False)

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attributes.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            tracer._push(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_ns = time.perf_counter_ns() - self.start_ns
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        tracer = self._tracer
        if tracer is not None:
            tracer._pop(self)
        return False

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "attributes": dict(self.attributes),
        }


class Tracer:
    """Process-wide span factory and collector.

    Thread safety: each thread nests spans on its own stack (a
    ``threading.local``), so context propagation never races; finished
    spans are appended to one shared list under a lock.  Span ids come
    from ``itertools.count`` (atomic in CPython).
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: list[Span] = []

    # --- span lifecycle -----------------------------------------------------
    def span(self, name: str, category: str = "", **attrs):
        """Open a span (use as a context manager).

        Disabled tracing returns the shared :data:`NULL_SPAN` — one
        attribute check, no allocation beyond the caller's kwargs.
        """
        if not self.enabled:
            return NULL_SPAN
        thread = threading.current_thread()
        return Span(
            name=name,
            category=category,
            span_id=next(self._ids),
            parent_id=self.current_span_id(),
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            attributes=dict(attrs) if attrs else {},
            _tracer=self,
        )

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # out-of-order exit: drop it and everything above
            del stack[stack.index(span) :]
        with self._lock:
            self._finished.append(span)

    # --- context ------------------------------------------------------------
    def current_span_id(self) -> int:
        """Id of this thread's innermost active span (0 when none)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1].span_id if stack else 0

    # --- collection ---------------------------------------------------------
    def spans(self) -> list[Span]:
        """Snapshot of the finished spans (oldest first)."""
        with self._lock:
            return list(self._finished)

    def drain(self) -> list[Span]:
        """Remove and return all finished spans."""
        with self._lock:
            out = self._finished
            self._finished = []
        return out

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)


#: the process-wide tracer; enabled by ``REPRO_TRACE=1`` at import time
TRACER = Tracer(enabled=_env_flag("REPRO_TRACE"))


def get_tracer() -> Tracer:
    """The process-wide tracer instance."""
    return TRACER


def configure(enabled: bool) -> Tracer:
    """Enable or disable tracing at runtime; returns the tracer."""
    TRACER.enabled = enabled
    return TRACER


def trace_enabled() -> bool:
    return TRACER.enabled


def current_span_id() -> int:
    """Innermost active span id of the calling thread (0 when none/disabled)."""
    return TRACER.current_span_id()
