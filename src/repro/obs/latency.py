"""Latency attribution: exact breakdowns, critical path, what-if engine.

The raw-speed work stalled because nothing in the stack could say
*where* a request's end-to-end time goes — the batching window, device
queueing, retry backoff, or the modelled kernel execution itself.  This
module closes that gap with three analyses layered on the telemetry the
serving engine already emits (ServeObserver lifecycle spans, the flight
recorder, and the SoA request table):

* **per-request breakdown** (:func:`exact_breakdown`) — every terminal
  response's virtual latency decomposed into disjoint, non-negative
  components (admission, batching window, queue wait, retry backoff,
  execution, hedge overlap, deferred flush) that sum **exactly** — no
  tolerance — to ``response.latency_s``.  Exactness is achievable
  because the service runs on a virtual clock: every boundary timestamp
  is a float64 the engine itself computed, each converts *exactly* to a
  :class:`fractions.Fraction`, the component differences telescope to
  ``F(terminal) - F(submitted)``, and ``float()`` of that rational is
  correctly rounded — the same rounding IEEE-754 applied when the
  engine computed ``latency_s = now - submitted_at``;
* **critical-path analysis** (:func:`critical_path_report`) — a
  backward walk over the discrete-event dependency graph (request →
  batch → device occupancy → completion, through retries, hedges and
  requeues) yielding the top-k longest chains and each component's
  share of total critical-path time — the ranking that says which
  stage to optimize first;
* **what-if engine** (:func:`run_whatif`, ``python -m repro whatif``) —
  Coz-style causal profiling: the seed-0 run is replayed through the
  *real* event loop with one component virtually scaled
  (``exec:0.8`` = execution 20% faster, ``window:0.5`` = batching
  window halved, ``queue:2`` = device queue depth doubled) but with the
  kernel math skipped (``GemmService(skip_math=True)`` — legal because
  the defer-math design already proves results never influence virtual
  timing).  Each prediction is then **validated** against an actual
  full re-run with the same scaled config: completed counts must match
  exactly and throughput within 5%.

A wall-clock :class:`PhaseSampler` rides the load test and attributes
*real* time to pipeline phases (event loop, batching, routing, kernel
math, observability) by sampling the main thread's stack — the
machine-dependent, informational counterpart of the virtual breakdown,
feeding ``BENCH_history.jsonl``.

EGEMM-TC's own speed comes from knowing which pipeline stage dominates
and overlapping it (§5.1); this module is that methodology applied to
the serving stack itself.
"""

from __future__ import annotations

import json
import math
import sys
import threading
import time
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Iterable

__all__ = [
    "LATENCY_SCHEMA",
    "WHATIF_SCHEMA",
    "COMPONENTS",
    "BatchTimeline",
    "RequestTimeline",
    "timelines_from_observer",
    "timelines_from_flight",
    "exact_breakdown",
    "verify_breakdown",
    "format_breakdown",
    "breakdown_from_flight",
    "critical_path_report",
    "component_registry",
    "inflight_snapshot",
    "PhaseSampler",
    "validate_latency_report",
    "run_whatif",
    "validate_whatif_report",
    "main",
    "whatif_main",
]

#: latency-report schema identifier, bumped on breaking field changes
LATENCY_SCHEMA = "repro.obs.latency/1"
#: what-if report schema identifier
WHATIF_SCHEMA = "repro.obs.whatif/1"

#: the disjoint components of one request's end-to-end virtual latency,
#: in lifecycle order.  ``deferred_flush`` is structurally zero on the
#: virtual clock (deferred math materializes after the event loop
#: drains without advancing any latency) — it is carried so the
#: vocabulary matches the engine's full pipeline and a future
#: flush-on-clock design lands without a schema bump.
COMPONENTS = (
    "admission",
    "batching_window",
    "queue_wait",
    "retry_backoff",
    "execution",
    "hedge_overlap",
    "deferred_flush",
)

#: critical-path segment vocabulary: the breakdown components that can
#: sit on a chain, plus cross-request device occupancy
CP_COMPONENTS = (
    "batch_window",
    "queue_wait",
    "retry_backoff",
    "device_contention",
    "execution",
)


# -- timeline reconstruction ----------------------------------------------
@dataclass
class BatchTimeline:
    """One batch's event history, from either observer or flight log."""

    batch_id: int
    #: virtual arrival of the oldest member (the window anchor)
    created_at: float
    #: virtual instant the batch was formed (left the batcher)
    formed_at: float
    request_ids: tuple[int, ...] = ()
    #: ``(t, device)`` per dispatch (requeues redispatch)
    dispatches: list = field(default_factory=list)
    #: ``(start, end, device)`` per device execution (hedges add copies)
    execs: list = field(default_factory=list)
    #: ``(t, delay_s)`` per retry backoff
    retries: list = field(default_factory=list)
    #: ``(t, device)`` per hedged duplicate launch
    hedges: list = field(default_factory=list)
    #: ``(t, device)`` per requeue after a device crash
    requeues: list = field(default_factory=list)


@dataclass
class RequestTimeline:
    """One request's lifecycle boundaries (virtual clock)."""

    request_id: int
    submitted_at: float
    routed_at: float | None
    terminal_at: float
    status: str
    latency_s: float
    #: executing device of the terminal response (None for non-complete)
    device: str | None
    batch: BatchTimeline | None


def timelines_from_observer(observer) -> dict[int, RequestTimeline]:
    """Rebuild per-request timelines from a ServeObserver's tables."""
    batches: dict[int, BatchTimeline] = {}
    for batch_id, entry in observer.batches.items():
        batches[batch_id] = BatchTimeline(
            batch_id=batch_id,
            created_at=entry["formed_at"],
            formed_at=entry.get("dispatched_at", entry["formed_at"]),
            request_ids=tuple(entry["request_ids"]),
            dispatches=list(entry.get("dispatches", ())),
            execs=list(entry.get("execs", ())),
            retries=list(entry.get("retries", ())),
            hedges=list(entry.get("hedges", ())),
            requeues=list(entry.get("requeues", ())),
        )
    timelines: dict[int, RequestTimeline] = {}
    for rid, terminal in observer.terminals.items():
        admit = observer.admits.get(rid)
        if admit is None:
            continue
        route = observer.routes.get(rid)
        batch_id = observer.request_batch.get(rid)
        timelines[rid] = RequestTimeline(
            request_id=rid,
            submitted_at=admit["t"],
            routed_at=route["t"] if route is not None else None,
            terminal_at=terminal["t"],
            status=terminal["status"],
            latency_s=terminal["latency_s"],
            device=terminal.get("device"),
            batch=batches.get(batch_id) if batch_id is not None else None,
        )
    return timelines


_TERMINAL_KINDS = {
    "complete": "completed",
    "expire": "expired",
    "failed": "failed",
    "reject": "rejected",
}


def timelines_from_flight(records: Iterable[dict]) -> dict[int, RequestTimeline]:
    """Rebuild timelines from a dumped flight log (postmortem input).

    Reconstructs the same boundaries as :func:`timelines_from_observer`
    for every request whose admission survived the ring bound; the
    terminal latency is the engine's own IEEE difference, so breakdowns
    from a flight log verify exactly too.
    """
    batches: dict[int, BatchTimeline] = {}
    submitted: dict[int, float] = {}
    routed: dict[int, float] = {}
    request_batch: dict[int, int] = {}
    terminals: dict[int, dict] = {}
    for event in records:
        kind = event.get("kind")
        if kind == "admit":
            submitted[event["request_id"]] = event["t"]
        elif kind == "route":
            routed[event["request_id"]] = event["t"]
        elif kind == "batch_form":
            bid = event["batch_id"]
            batches.setdefault(bid, BatchTimeline(
                batch_id=bid,
                created_at=event["created_at"],
                formed_at=event["t"],
                request_ids=tuple(event["request_ids"]),
            ))
            for rid in event["request_ids"]:
                request_batch[rid] = bid
        elif kind in ("dispatch", "exec", "retry", "hedge", "requeue"):
            batch = batches.get(event["batch_id"])
            if batch is None:
                continue
            if kind == "dispatch":
                batch.dispatches.append((event["t"], event["device"]))
            elif kind == "exec":
                batch.execs.append(
                    (event["start"], event["end"], event["device"])
                )
            elif kind == "retry":
                batch.retries.append((event["t"], event["delay_s"]))
            elif kind == "hedge":
                batch.hedges.append((event["t"], event["device"]))
            else:
                batch.requeues.append((event["t"], event["device"]))
        elif kind in _TERMINAL_KINDS:
            terminals[event["request_id"]] = event
    timelines: dict[int, RequestTimeline] = {}
    for rid, event in terminals.items():
        if rid not in submitted:
            continue
        status = _TERMINAL_KINDS[event["kind"]]
        latency = event.get("latency_s")
        if latency is None:
            # expire/reject/failed events do not carry latency_s in the
            # log; the engine computed it as the same IEEE difference
            latency = event["t"] - submitted[rid]
        timelines[rid] = RequestTimeline(
            request_id=rid,
            submitted_at=submitted[rid],
            routed_at=routed.get(rid),
            terminal_at=event["t"],
            status=status,
            latency_s=latency,
            device=event.get("device"),
            batch=batches.get(request_batch.get(rid)),
        )
    return timelines


# -- exact breakdown ------------------------------------------------------
def _merge_clip(
    intervals: Iterable[tuple[Fraction, Fraction]],
    lo: Fraction,
    hi: Fraction,
) -> Fraction:
    """Total measure of ``intervals`` clipped to ``[lo, hi]``, overlaps
    merged — so the result can never exceed ``hi - lo``."""
    clipped = []
    for start, end in intervals:
        start, end = max(start, lo), min(end, hi)
        if end > start:
            clipped.append((start, end))
    clipped.sort()
    total = Fraction(0)
    cursor = lo
    for start, end in clipped:
        start = max(start, cursor)
        if end > start:
            total += end - start
            cursor = end
    return total


def _winning_exec(tl: RequestTimeline):
    """The device execution that resolved a completed request.

    Under hedging a batch has several execution copies; the winner is
    the copy on the response's own device whose start precedes the
    terminal instant (last such copy — a crash-aborted attempt on the
    same device is superseded by its requeue's execution).
    """
    if tl.batch is None or tl.status != "completed":
        return None
    candidates = [
        e for e in tl.batch.execs
        if e[0] <= tl.terminal_at and (tl.device is None or e[2] == tl.device)
    ]
    if not candidates:
        candidates = [e for e in tl.batch.execs if e[0] <= tl.terminal_at]
    if not candidates:
        return None
    return max(candidates, key=lambda e: (e[0], e[1]))


def exact_breakdown(tl: RequestTimeline) -> dict[str, Fraction]:
    """Decompose one terminal request's latency into exact components.

    Every boundary is clamped into ``[submitted, terminal]`` and the
    components are constructed as telescoping Fraction differences, so
    they are disjoint, non-negative, and sum to exactly
    ``F(terminal_at) - F(submitted_at)`` — whose ``float()`` equals the
    engine's own ``latency_s`` (both are the correctly rounded value of
    the same real difference).
    """
    t0 = Fraction(tl.submitted_at)
    t_end = Fraction(tl.terminal_at)

    def clamp(x: float) -> Fraction:
        return min(max(Fraction(x), t0), t_end)

    t_route = clamp(tl.routed_at) if tl.routed_at is not None else t0
    batch = tl.batch
    t_form = max(clamp(batch.formed_at), t_route) if batch is not None else t_end
    win = _winning_exec(tl)
    t_exec = max(clamp(win[0]), t_form) if win is not None else t_end

    retry_backoff = Fraction(0)
    hedge_overlap = Fraction(0)
    if batch is not None:
        retry_backoff = _merge_clip(
            ((Fraction(t), Fraction(t) + Fraction(d)) for t, d in batch.retries),
            t_form, t_exec,
        )
        if win is not None and len(batch.execs) > 1:
            # losing copies (hedge losers, crash-aborted attempts)
            # overlapping the winner's window: time the request was
            # covered by redundant execution rather than the winner alone
            hedge_overlap = _merge_clip(
                ((Fraction(s), Fraction(e)) for s, e, _ in batch.execs
                 if (s, e) != (win[0], win[1])),
                t_exec, t_end,
            )
    return {
        "admission": t_route - t0,
        "batching_window": t_form - t_route,
        "queue_wait": (t_exec - t_form) - retry_backoff,
        "retry_backoff": retry_backoff,
        "execution": (t_end - t_exec) - hedge_overlap,
        "hedge_overlap": hedge_overlap,
        "deferred_flush": Fraction(0),
    }


def verify_breakdown(components: dict[str, Fraction], tl: RequestTimeline) -> bool:
    """The exactness invariant: disjoint, non-negative, sums to latency.

    ``==`` throughout — no tolerance.  This is the property CI and the
    hypothesis suite hold every terminal request to, chaos runs
    included.
    """
    total = sum(components.values(), Fraction(0))
    return (
        all(v >= 0 for v in components.values())
        and total == Fraction(tl.terminal_at) - Fraction(tl.submitted_at)
        and float(total) == tl.latency_s
    )


def format_breakdown(
    request_id: int, components: dict[str, Fraction], tl: RequestTimeline
) -> str:
    """Byte-deterministic breakdown table (postmortem / exemplar print)."""
    total = sum(components.values(), Fraction(0))
    lines = [
        f"latency breakdown for request {request_id} "
        f"({tl.status}, {float(total) * 1e6:.3f} us end-to-end, "
        f"exact={verify_breakdown(components, tl)}):"
    ]
    for name in COMPONENTS:
        value = components[name]
        share = float(value / total) if total else 0.0
        lines.append(f"  {name:<16s} {float(value) * 1e6:12.3f} us  {share:6.1%}")
    lines.append(f"  {'total (exact)':<16s} {float(total) * 1e6:12.3f} us  "
                 f"{1.0 if total else 0.0:6.1%}")
    return "\n".join(lines)


def breakdown_from_flight(records: Iterable[dict], request_id: int):
    """Breakdown of one request from a dumped flight log.

    Returns ``(components, timeline)`` or None when the log holds no
    terminal event for the request (still in flight, or fell off the
    ring).  Powers ``python -m repro postmortem``.
    """
    timelines = timelines_from_flight(records)
    tl = timelines.get(request_id)
    if tl is None:
        return None
    return exact_breakdown(tl), tl


# -- critical path --------------------------------------------------------
def critical_path_report(
    timelines: dict[int, RequestTimeline],
    top_k: int = 5,
    depth_limit: int = 128,
) -> dict:
    """Top-k critical chains and per-component critical-path share.

    For each completed request the chain is walked *backward* from its
    terminal: through its winning execution, then through the unbroken
    run of predecessor executions on the same device (the engine starts
    a batch at ``max(now, device.busy_until)``, so back-to-back
    executions share an exact float boundary — device contention), and
    finally through the front batch's queue/backoff and batching
    window.  The chain's root is the front batch's oldest-member
    arrival; its span is what the completed request *experienced* as
    unavoidable serial time.  Deterministic: all inputs are seeded
    virtual timestamps and iteration is sorted, so the report is
    byte-stable for a fixed seed.
    """
    batches: dict[int, BatchTimeline] = {}
    for tl in timelines.values():
        if tl.batch is not None:
            batches[tl.batch.batch_id] = tl.batch
    # device -> exec end -> (exec start, batch_id): the contention join
    # (an execution whose start equals a predecessor's end waited on it)
    end_index: dict[str, dict[float, tuple[float, int]]] = {}
    for bid in sorted(batches):
        for start, end, device in batches[bid].execs:
            end_index.setdefault(device, {})[end] = (start, bid)

    chains = []
    totals = {name: 0.0 for name in CP_COMPONENTS}
    for rid in sorted(timelines):
        tl = timelines[rid]
        if tl.status != "completed" or tl.batch is None:
            continue
        win = _winning_exec(tl)
        if win is None:
            continue
        # backward segments: (name, start, end), built terminal-first
        segments = [("execution", win[0], tl.terminal_at)]
        cursor, device, front_bid = win[0], win[2], tl.batch.batch_id
        for _ in range(depth_limit):
            pred = end_index.get(device, {}).get(cursor)
            if pred is None or pred[0] >= cursor:
                break
            segments.append(("device_contention", pred[0], cursor))
            cursor, front_bid = pred
        front = batches.get(front_bid, tl.batch)
        # decompose [front formation, chain's first execution] into
        # queue wait interleaved with the front batch's retry backoffs
        lo, hi = front.formed_at, cursor
        if hi > lo:
            marks = []
            for t, d in front.retries:
                s, e = max(t, lo), min(t + d, hi)
                if e > s:
                    marks.append((s, e))
            marks.sort()
            at = lo
            backward: list[tuple[str, float, float]] = []
            for s, e in marks:
                s = max(s, at)
                if s > at:
                    backward.append(("queue_wait", at, s))
                if e > s:
                    backward.append(("retry_backoff", s, e))
                at = max(at, e)
            if hi > at:
                backward.append(("queue_wait", at, hi))
            segments.extend(reversed(backward))
        if front.formed_at > front.created_at:
            segments.append(("batch_window", front.created_at, front.formed_at))
        segments = [(n, s, e) for n, s, e in segments if e > s]
        segments.reverse()
        root = min(front.created_at, win[0])
        span = tl.terminal_at - root
        for name, s, e in segments:
            totals[name] += e - s
        chains.append({
            "request_id": rid,
            "span_s": span,
            "root_t": root,
            "terminal_t": tl.terminal_at,
            "segments": [
                {"component": n, "start": s, "end": e, "duration_s": e - s}
                for n, s, e in segments
            ],
        })

    chains.sort(key=lambda c: (-c["span_s"], c["request_id"]))
    grand = sum(totals.values())
    share = {
        name: (totals[name] / grand if grand else 0.0) for name in CP_COMPONENTS
    }
    top_component = max(CP_COMPONENTS, key=lambda n: (share[n], n))
    return {
        "completed_chains": len(chains),
        "chains": chains[:top_k],
        "component_totals_s": totals,
        "component_share": share,
        "top_component": top_component,
        "top_share": share[top_component],
    }


# -- per-SLO-tier component histograms ------------------------------------
def _slo_tier(max_rel_error: float) -> str:
    """Bucket an accuracy SLO into a decade-named tier label.

    ``m``/``p`` encode the exponent sign (``slo_1em02`` = 1e-2) so the
    label survives OpenMetrics name sanitization, which only admits
    word characters.
    """
    if not max_rel_error or max_rel_error <= 0.0:
        return "slo_none"
    exponent = int(math.floor(math.log10(max_rel_error)))
    sign = "m" if exponent < 0 else "p"
    return f"slo_1e{sign}{abs(exponent):02d}"


def component_registry(observer, breakdowns: dict[int, dict]) -> "object":
    """A standalone registry holding per-component latency histograms.

    One histogram per ``(SLO tier, component)`` pair, named
    ``serve.latency.component.<tier>.<component>`` — exported through
    ``python -m repro metrics`` (OpenMetrics) from the report's
    ``metrics`` block, and round-trippable via
    :func:`repro.obs.export.parse_openmetrics`.
    """
    from .metrics import MetricsRegistry

    registry = MetricsRegistry(enabled=True)
    for rid in sorted(breakdowns):
        admit = observer.admits.get(rid)
        tier = _slo_tier(admit["max_rel_error"]) if admit else "slo_none"
        for name in COMPONENTS:
            registry.observe(
                f"serve.latency.component.{tier}.{name}",
                float(breakdowns[rid][name]),
            )
    return registry


# -- live in-flight decomposition (SoA columns) ---------------------------
def inflight_snapshot(service) -> dict:
    """Decompose the *live* in-flight population's accumulated wait.

    Reads the SoA request table directly: a QUEUED slot's whole age is
    batching-window time; a BATCHED/EXECUTING slot splits at its
    ``batched_at`` stamp.  Diagnostic view over a running service — the
    terminal breakdowns above are the exact accounting.
    """
    import numpy as np

    from ..serve.soa import RequestState

    table = service.table
    now = service.now
    states = table.state
    queued = states == RequestState.QUEUED
    formed = (states == RequestState.BATCHED) | (states == RequestState.EXECUTING)
    window_s = float(np.sum(now - table.submitted_at[queued]))
    batched_at = table.batched_at[formed]
    submitted = table.submitted_at[formed]
    split = np.where(np.isnan(batched_at), now, batched_at)
    window_s += float(np.sum(split - submitted))
    post_batch_s = float(np.sum(now - split))
    return {
        "t": now,
        "in_flight": int(np.count_nonzero(queued) + np.count_nonzero(formed)),
        "queued": int(np.count_nonzero(queued)),
        "batched": int(np.count_nonzero(states == RequestState.BATCHED)),
        "executing": int(np.count_nonzero(states == RequestState.EXECUTING)),
        "components": {
            "batching_window": window_s,
            "post_batch": post_batch_s,
        },
    }


# -- wall-clock phase sampling --------------------------------------------
#: innermost-first module-path patterns -> phase label
_PHASE_PATTERNS = (
    ("emulation", "kernel_math"),
    ("/fp/", "kernel_math"),
    ("serve/batcher.py", "batching"),
    ("serve/soa.py", "batching"),
    ("serve/router.py", "routing"),
    ("serve/service.py", "event_loop"),
    ("/obs/", "observability"),
)


class PhaseSampler:
    """Wall-clock stack sampler attributing real time to pipeline phases.

    A daemon thread samples the instrumented thread's stack every
    ``interval_s`` via ``sys._current_frames()`` and classifies the
    innermost matching frame by module path.  Machine-dependent and
    informational (history metrics carry ``gate=False``) — the virtual
    breakdown above is the deterministic accounting; this answers the
    separate question "where does the *wall* time of the load test go".
    """

    def __init__(self, interval_s: float = 0.005) -> None:
        self.interval_s = interval_s
        self.counts: dict[str, int] = {}
        self.samples = 0
        self._target: int | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "PhaseSampler":
        self._target = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self._target)
            if frame is None:
                continue
            phase = "other"
            walk = frame
            while walk is not None:
                filename = walk.f_code.co_filename.replace("\\", "/")
                matched = next(
                    (label for pat, label in _PHASE_PATTERNS if pat in filename),
                    None,
                )
                if matched is not None:
                    phase = matched
                    break
                walk = walk.f_back
            self.counts[phase] = self.counts.get(phase, 0) + 1
            self.samples += 1

    def fractions(self) -> dict[str, float]:
        """Phase -> fraction of samples (empty run yields all zeros)."""
        total = self.samples
        phases = sorted({label for _, label in _PHASE_PATTERNS} | {"other"})
        return {
            phase: (self.counts.get(phase, 0) / total if total else 0.0)
            for phase in phases
        }


# -- report assembly ------------------------------------------------------
def _breakdown_block(timelines: dict[int, RequestTimeline]) -> tuple[dict, dict]:
    """All-request breakdowns + the aggregate block of the report."""
    breakdowns: dict[int, dict] = {}
    exact = 0
    totals = {name: Fraction(0) for name in COMPONENTS}
    for rid in sorted(timelines):
        components = exact_breakdown(timelines[rid])
        breakdowns[rid] = components
        if verify_breakdown(components, timelines[rid]):
            exact += 1
        for name in COMPONENTS:
            totals[name] += components[name]
    grand = sum(totals.values(), Fraction(0))
    block = {
        "terminal": len(timelines),
        "exact": exact,
        "exact_fraction": exact / len(timelines) if timelines else 1.0,
        "component_totals_s": {n: float(totals[n]) for n in COMPONENTS},
        "component_share": {
            n: (float(totals[n] / grand) if grand else 0.0) for n in COMPONENTS
        },
    }
    return breakdowns, block


def validate_latency_report(report: dict) -> list[str]:
    """Schema + invariant check of ``LATENCY_report.json``."""
    problems: list[str] = []
    if report.get("schema") != LATENCY_SCHEMA:
        problems.append(
            f"schema is {report.get('schema')!r}, expected {LATENCY_SCHEMA!r}"
        )
    counts = report.get("counts")
    if not isinstance(counts, dict):
        problems.append("counts missing")
    breakdown = report.get("breakdown")
    if not isinstance(breakdown, dict):
        return problems + ["breakdown missing"]
    for key in ("terminal", "exact", "exact_fraction",
                "component_totals_s", "component_share"):
        if key not in breakdown:
            problems.append(f"breakdown.{key} missing")
    if breakdown.get("exact") != breakdown.get("terminal"):
        problems.append(
            f"breakdown not exact for every terminal request: "
            f"{breakdown.get('exact')}/{breakdown.get('terminal')}"
        )
    for name in COMPONENTS:
        value = breakdown.get("component_totals_s", {}).get(name)
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"breakdown.component_totals_s.{name} missing/negative")
    cp = report.get("critical_path")
    if not isinstance(cp, dict):
        problems.append("critical_path missing")
    else:
        if cp.get("top_component") not in CP_COMPONENTS:
            problems.append("critical_path.top_component missing")
        if not isinstance(cp.get("chains"), list):
            problems.append("critical_path.chains missing")
        elif counts and counts.get("completed", 0) > 0 and not cp["chains"]:
            problems.append("critical_path.chains empty despite completions")
    metrics = report.get("metrics")
    if not isinstance(metrics, dict) or "histograms" not in metrics:
        problems.append("metrics snapshot missing")
    for key, result in (report.get("chaos") or {}).items():
        if result.get("exact") != result.get("terminal"):
            problems.append(
                f"chaos.{key}: breakdown not exact "
                f"({result.get('exact')}/{result.get('terminal')})"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro latency [--quick] [--check] [--seed N]``."""
    import argparse

    from ..gpu import get_gpu
    from ..model.solver import solve
    from ..serve.loadgen import run_load_test
    from ..serve.service import ServeConfig
    from .serving import ServeObserver

    parser = argparse.ArgumentParser(
        prog="python -m repro latency",
        description="exact per-request latency attribution + critical path "
                    "(see docs/observability.md)",
    )
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument("--rate", type=float, default=150_000.0,
                        help="open-loop arrival rate, requests/s (virtual)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 200 requests unless --requests given")
    parser.add_argument("--check", action="store_true",
                        help="gate: fail on inexact breakdowns, schema "
                             "problems, or history regressions; includes "
                             "the chaos-scenario exactness sweep")
    parser.add_argument("--chaos", action="store_true",
                        help="verify exactness under the chaos scenarios "
                             "even without --check")
    parser.add_argument("--top-k", type=int, default=5,
                        help="critical chains to include in the report")
    parser.add_argument("--out", default="LATENCY_report.json")
    parser.add_argument("--flight-log", default=None, metavar="PATH",
                        help="dump the flight log (with latency_breakdown "
                             "exemplar events) here")
    parser.add_argument("--history", default="BENCH_history.jsonl", metavar="PATH")
    parser.add_argument("--no-history", action="store_true")
    args = parser.parse_args(argv)

    requests = args.requests
    if args.quick and "--requests" not in (argv or []):
        requests = 200
    config = ServeConfig()
    observer = ServeObserver(infeasible_deadline_s=config.max_wait_s)
    for name in set(config.devices):
        solve(get_gpu(name))

    wall_t0 = time.perf_counter()
    with PhaseSampler() as sampler:
        service, _responses = run_load_test(
            requests, seed=args.seed, rate_rps=args.rate,
            config=config, observer=observer,
        )
    wall_seconds = time.perf_counter() - wall_t0

    timelines = timelines_from_observer(observer)
    breakdowns, breakdown = _breakdown_block(timelines)
    critical = critical_path_report(timelines, top_k=args.top_k)
    registry = component_registry(observer, breakdowns)

    chaos_results: dict[str, dict] = {}
    if args.check or args.chaos:
        from ..serve.chaos import run_scenario

        for scenario in ("device-crash", "stall-hedge", "combined"):
            _result, chaos_observer = run_scenario(
                scenario, seed=args.seed, requests=120, rate_rps=args.rate
            )
            chaos_tl = timelines_from_observer(chaos_observer)
            chaos_exact = sum(
                verify_breakdown(exact_breakdown(tl), tl)
                for tl in chaos_tl.values()
            )
            chaos_results[scenario] = {
                "terminal": len(chaos_tl),
                "exact": int(chaos_exact),
            }

    # worst-latency exemplars -> flight recorder (the p99 postmortem
    # trail: `python -m repro postmortem <rid> --log ...` reprints them)
    exemplars = sorted(
        (rid for rid in timelines if timelines[rid].status == "completed"),
        key=lambda rid: (-timelines[rid].latency_s, rid),
    )[:5]
    exemplar_block = []
    for rid in exemplars:
        tl = timelines[rid]
        components = {n: float(breakdowns[rid][n]) for n in COMPONENTS}
        observer.recorder.record(
            "latency_breakdown", tl.terminal_at,
            request_id=rid, components=components, latency_s=tl.latency_s,
        )
        exemplar_block.append({
            "request_id": rid, "latency_s": tl.latency_s,
            "components": components,
        })

    stats = service.stats()
    report = {
        "schema": LATENCY_SCHEMA,
        "workload": {
            "requests": requests, "seed": args.seed, "arrival": "poisson",
            "rate_rps": args.rate, "quick": bool(args.quick),
        },
        "counts": {k: stats[k] for k in
                   ("submitted", "completed", "rejected", "expired", "failed")},
        "virtual_s": stats["virtual_s"],
        "breakdown": breakdown,
        "critical_path": critical,
        "chaos": chaos_results,
        "wall_phases": {
            "samples": sampler.samples,
            "interval_s": sampler.interval_s,
            "fractions": sampler.fractions(),
            "wall_seconds": wall_seconds,
        },
        "p99_exemplars": exemplar_block,
        "metrics": registry.snapshot(),
    }
    problems = validate_latency_report(report)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    if args.flight_log:
        from .export import run_manifest

        observer.recorder.dump_jsonl(args.flight_log, manifest=run_manifest())
        print(f"flight log: {len(observer.recorder.events())} events -> "
              f"{args.flight_log}")

    history_ok = True
    if not args.no_history:
        from .benchtrack import (
            MetricSpec, append_record, check_metrics, format_check,
            load_history, make_record,
        )
        from .export import run_manifest

        metrics = {
            "breakdown_exact_fraction": breakdown["exact_fraction"],
            "breakdown_terminal": breakdown["terminal"],
            "completed": report["counts"]["completed"],
            "critical_top_share": critical["top_share"],
            "wall_seconds": wall_seconds,
        }
        for phase, fraction in report["wall_phases"]["fractions"].items():
            metrics[f"wall_phase_{phase}"] = fraction
        if args.check:
            specs = [
                # deterministic virtual metrics: zero drift allowed
                MetricSpec("breakdown_exact_fraction", "higher", 0.0),
                MetricSpec("completed", "higher", 0.0),
                MetricSpec("critical_top_share", "higher", 0.5, gate=False),
                MetricSpec("wall_seconds", "lower", 1.0, gate=False),
            ]
            prior = load_history(args.history, kind="latency",
                                 quick=bool(args.quick))
            verdict = check_metrics(metrics, prior, specs)
            print("history gate (vs latency series):")
            print(format_check(verdict))
            history_ok = verdict["ok"]
        record = make_record("latency", metrics, quick=bool(args.quick),
                             manifest=run_manifest())
        append_record(args.history, record)
        print(f"history: latency record appended to {args.history}")

    counts = report["counts"]
    print(
        f"latency attribution: {counts['submitted']} submitted -> "
        f"{breakdown['terminal']} terminal, {breakdown['exact']} exact "
        f"breakdowns ({breakdown['exact_fraction']:.1%})"
    )
    share = breakdown["component_share"]
    print("  virtual components: " + ", ".join(
        f"{n} {share[n]:.1%}" for n in COMPONENTS if share[n] > 0
    ))
    print(
        f"  critical path: top component {critical['top_component']} "
        f"({critical['top_share']:.1%} of {critical['completed_chains']} "
        f"chains)"
    )
    for scenario, result in chaos_results.items():
        print(f"  chaos {scenario}: {result['exact']}/{result['terminal']} exact")
    fractions = report["wall_phases"]["fractions"]
    busiest = sorted(fractions.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
    print("  wall phases: " + ", ".join(
        f"{phase} {fraction:.0%}" for phase, fraction in busiest
    ) + f" ({sampler.samples} samples over {wall_seconds * 1e3:.0f} ms)")
    if exemplar_block:
        worst = exemplar_block[0]
        print(f"  worst exemplar: request {worst['request_id']} at "
              f"{worst['latency_s'] * 1e6:.1f} us (postmortem: python -m repro "
              f"postmortem {worst['request_id']})")
    if problems:
        for problem in problems:
            print(f"SCHEMA PROBLEM: {problem}")
        return 1
    if args.check and (
        breakdown["exact"] != breakdown["terminal"]
        or any(r["exact"] != r["terminal"] for r in chaos_results.values())
        or not history_ok
    ):
        print("LATENCY CHECK FAILED")
        return 1
    print(f"report written to {args.out} (schema {LATENCY_SCHEMA})")
    return 0


# -- what-if engine -------------------------------------------------------
#: default scaling scenarios: execution 20% faster, batching window
#: halved, device queue depth doubled
DEFAULT_SCENARIOS = ("exec:0.8", "window:0.5", "queue:2")

#: predicted-vs-actual throughput tolerance (acceptance bar); the
#: replay shares the engine and clock with the re-run, so observed
#: error is 0 — the band absorbs a future non-virtual cost model
THROUGHPUT_REL_TOL = 0.05


def _scenario_config(base, spec: str):
    """Scale one ``ServeConfig`` knob per a ``name:factor`` spec."""
    name, _, factor_s = spec.partition(":")
    factor = float(factor_s)
    if factor <= 0:
        raise ValueError(f"scenario factor must be positive: {spec!r}")
    if name == "exec":
        return replace(base, exec_time_scale=factor)
    if name == "window":
        return replace(base, max_wait_s=base.max_wait_s * factor)
    if name == "queue":
        return replace(
            base, queue_capacity=max(int(round(base.queue_capacity * factor)), 0)
        )
    raise ValueError(
        f"unknown what-if scenario {name!r} (use exec:/window:/queue:)"
    )


def _run_virtual(requests: int, seed: int, rate_rps: float, config,
                 skip_math: bool):
    """One seeded open-loop run; returns ``(service, observer)``."""
    import numpy as np

    from ..serve.loadgen import open_loop_arrivals
    from ..serve.service import GemmService
    from .serving import ServeObserver

    rng = np.random.default_rng(seed)
    observer = ServeObserver(infeasible_deadline_s=config.max_wait_s)
    service = GemmService(config, observer=observer, skip_math=skip_math)
    service.run(open_loop_arrivals(rng, requests, rate_rps, "poisson"))
    return service, observer


def _virtual_metrics(service, observer) -> dict:
    """The virtual outcome metrics a what-if scenario predicts."""
    from ..serve.loadgen import _latency_summary

    stats = service.stats()
    virtual_s = stats["virtual_s"]
    latency = _latency_summary(service.latencies)
    return {
        "completed": stats["completed"],
        "rejected": stats["rejected"],
        "expired": stats["expired"],
        "failed": stats["failed"],
        "throughput_rps": stats["completed"] / virtual_s if virtual_s > 0 else 0.0,
        "latency_p50_s": latency["p50"],
        "latency_p99_s": latency["p99"],
        "slo_compliance": 1.0
        - observer.latency_monitor.summary()["bad_fraction"],
        "virtual_s": virtual_s,
    }


def run_whatif(
    requests: int = 400,
    seed: int = 0,
    rate_rps: float = 150_000.0,
    scenarios: tuple[str, ...] = DEFAULT_SCENARIOS,
) -> dict:
    """Predict each scenario's effect by replay, then validate by re-run.

    *Prediction* runs the real event loop with the scaled config but
    ``skip_math=True`` (results are placeholders; virtual timing is
    bit-identical because the engine's defer-math design guarantees
    math never feeds back into the clock).  *Validation* re-runs the
    same scaled config with the math on.  The baseline is run both ways
    too — ``replay_consistent`` asserts the skip-math replay reproduces
    the full run's virtual metrics exactly, which is what licenses
    trusting the predictions.
    """
    from ..serve.service import ServeConfig

    base = ServeConfig()
    baseline_pred = _virtual_metrics(*_run_virtual(
        requests, seed, rate_rps, base, skip_math=True))
    baseline_actual = _virtual_metrics(*_run_virtual(
        requests, seed, rate_rps, base, skip_math=False))
    replay_consistent = baseline_pred == baseline_actual

    results: dict[str, dict] = {}
    for spec in scenarios:
        config = _scenario_config(base, spec)
        predicted = _virtual_metrics(*_run_virtual(
            requests, seed, rate_rps, config, skip_math=True))
        actual = _virtual_metrics(*_run_virtual(
            requests, seed, rate_rps, config, skip_math=False))
        rel_err = (
            abs(predicted["throughput_rps"] - actual["throughput_rps"])
            / actual["throughput_rps"]
            if actual["throughput_rps"]
            else abs(predicted["throughput_rps"])
        )
        results[spec] = {
            "predicted": predicted,
            "actual": actual,
            "predicted_delta": {
                k: predicted[k] - baseline_actual[k] for k in predicted
            },
            "actual_delta": {
                k: actual[k] - baseline_actual[k] for k in actual
            },
            "throughput_rel_err": rel_err,
            "validated": (
                predicted["completed"] == actual["completed"]
                and rel_err <= THROUGHPUT_REL_TOL
            ),
        }
    return {
        "schema": WHATIF_SCHEMA,
        "workload": {
            "requests": requests, "seed": seed, "arrival": "poisson",
            "rate_rps": rate_rps,
        },
        "baseline": {
            "predicted": baseline_pred,
            "actual": baseline_actual,
            "replay_consistent": replay_consistent,
        },
        "scenarios": results,
        "validated": replay_consistent
        and all(r["validated"] for r in results.values()),
    }


def validate_whatif_report(report: dict) -> list[str]:
    """Schema + validation check of ``WHATIF_report.json``."""
    problems: list[str] = []
    if report.get("schema") != WHATIF_SCHEMA:
        problems.append(
            f"schema is {report.get('schema')!r}, expected {WHATIF_SCHEMA!r}"
        )
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, dict) or len(scenarios) < 3:
        return problems + ["fewer than 3 what-if scenarios"]
    baseline = report.get("baseline", {})
    if baseline.get("replay_consistent") is not True:
        problems.append("skip-math replay diverged from the full baseline run")
    for spec, result in scenarios.items():
        for key in ("predicted", "actual", "validated", "throughput_rel_err"):
            if key not in result:
                problems.append(f"{spec}: {key} missing")
        if result.get("predicted", {}).get("completed") != result.get(
            "actual", {}
        ).get("completed"):
            problems.append(f"{spec}: predicted completed count differs from re-run")
        if result.get("throughput_rel_err", 1.0) > THROUGHPUT_REL_TOL:
            problems.append(
                f"{spec}: throughput prediction off by "
                f"{result.get('throughput_rel_err', 1.0):.1%} (> "
                f"{THROUGHPUT_REL_TOL:.0%})"
            )
    if not isinstance(report.get("validated"), bool):
        problems.append("validated verdict missing")
    return problems


def whatif_main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro whatif [--scenarios exec:0.8,...]``."""
    import argparse

    from ..gpu import get_gpu
    from ..model.solver import solve
    from ..serve.service import ServeConfig

    parser = argparse.ArgumentParser(
        prog="python -m repro whatif",
        description="Coz-style what-if speedup predictions over the serving "
                    "engine, validated against actual re-runs",
    )
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rate", type=float, default=150_000.0)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 200 requests unless --requests given")
    parser.add_argument("--scenarios", default=",".join(DEFAULT_SCENARIOS),
                        help="comma-separated name:factor specs "
                             "(exec:/window:/queue:)")
    parser.add_argument("--out", default="WHATIF_report.json")
    args = parser.parse_args(argv)

    requests = args.requests
    if args.quick and "--requests" not in (argv or []):
        requests = 200
    for name in set(ServeConfig().devices):
        solve(get_gpu(name))
    scenarios = tuple(s for s in args.scenarios.split(",") if s)
    report = run_whatif(
        requests=requests, seed=args.seed, rate_rps=args.rate,
        scenarios=scenarios,
    )
    problems = validate_whatif_report(report)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    base = report["baseline"]["actual"]
    print(
        f"what-if over seed-{args.seed} run ({requests} requests): baseline "
        f"{base['completed']} completed, {base['throughput_rps'] / 1e3:.1f} "
        f"k req/s, p99 {base['latency_p99_s'] * 1e6:.1f} us; replay "
        f"{'consistent' if report['baseline']['replay_consistent'] else 'DIVERGED'}"
    )
    for spec, result in report["scenarios"].items():
        pred, act = result["predicted_delta"], result["actual_delta"]
        print(
            f"  {spec:<12s} predicted: {pred['completed']:+d} completed, "
            f"{pred['throughput_rps'] / 1e3:+.1f} k req/s, "
            f"p99 {pred['latency_p99_s'] * 1e6:+.1f} us, "
            f"SLO {pred['slo_compliance']:+.3f} | actual: "
            f"{act['throughput_rps'] / 1e3:+.1f} k req/s "
            f"(rel err {result['throughput_rel_err']:.2%}) -> "
            f"{'VALIDATED' if result['validated'] else 'FAILED'}"
        )
    if problems:
        for problem in problems:
            print(f"VALIDATION PROBLEM: {problem}")
        return 1
    print(f"report written to {args.out} (schema {WHATIF_SCHEMA}, "
          f"{len(report['scenarios'])} scenarios validated)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
