"""repro.obs — the observability spine of the simulator stack.

The pieces (see ``docs/observability.md``):

* :mod:`repro.obs.tracing` — hierarchical spans with thread-safe context
  propagation and a no-op fast path when disabled (``REPRO_TRACE``);
* :mod:`repro.obs.metrics` — the process-wide registry of counters,
  gauges, histograms, and subsystem stat providers (``REPRO_METRICS``);
* :mod:`repro.obs.export` — Chrome-trace JSON, schema validation, and
  run manifests;
* :mod:`repro.obs.flight` — the bounded flight recorder and the
  ``python -m repro postmortem`` lifecycle reconstruction;
* :mod:`repro.obs.slo` — multi-window multi-burn-rate SLO monitoring;
* :mod:`repro.obs.benchtrack` — the benchmark history + regression gate
  behind ``python -m repro bench --check``;
* :mod:`repro.obs.serving` — the per-request serving observer tying
  traces, flight log, and burn alerts to :mod:`repro.serve`;
* :mod:`repro.obs.accuracy` — shadow-sampled float64 ground-truth
  verification of served results against the analytic certificates
  (``python -m repro accuracy``, ``REPRO_ACCURACY_SAMPLE``);
* :mod:`repro.obs.profile` — the per-kernel profiler behind
  ``python -m repro profile``.

Everything except the profiler, the serving observer, and the accuracy
verifier is stdlib-only, so every layer of the package — including
:mod:`repro.gpu` — imports them freely.  The profiler and the accuracy
verifier import the kernel registry (and therefore most of the
package); they are exposed lazily here so ``import repro.obs`` from low
layers stays cycle-free.
"""

from __future__ import annotations

from .benchtrack import (
    HISTORY_SCHEMA,
    MetricSpec,
    append_record,
    check_metrics,
    load_history,
    make_record,
    validate_history,
)
from .export import (
    chrome_trace,
    openmetrics_text,
    parse_openmetrics,
    run_manifest,
    spans_to_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from .flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    load_flight_log,
    reconstruct_lifecycle,
    validate_flight_log,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .serving import ServeObserver
from .slo import DEFAULT_WINDOWS, BurnRateMonitor, BurnWindow
from .tracing import (
    Span,
    Tracer,
    configure,
    current_span_id,
    get_tracer,
    trace_enabled,
)

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "configure",
    "current_span_id",
    "trace_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "spans_to_events",
    "run_manifest",
    "openmetrics_text",
    "parse_openmetrics",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "load_flight_log",
    "validate_flight_log",
    "reconstruct_lifecycle",
    "BurnWindow",
    "BurnRateMonitor",
    "DEFAULT_WINDOWS",
    "ServeObserver",
    "HISTORY_SCHEMA",
    "MetricSpec",
    "make_record",
    "append_record",
    "load_history",
    "validate_history",
    "check_metrics",
    "profile_kernel",
    "collect_executions",
    "format_report",
    "ACCURACY_SCHEMA",
    "AccuracySampler",
    "BoundViolationError",
    "build_accuracy_report",
    "sweep_menu",
    "validate_accuracy_report",
]

_LAZY_PROFILE = ("profile_kernel", "collect_executions", "format_report")
_LAZY_ACCURACY = (
    "ACCURACY_SCHEMA",
    "AccuracySampler",
    "BoundViolationError",
    "build_accuracy_report",
    "sweep_menu",
    "validate_accuracy_report",
)


def __getattr__(name: str):
    if name in _LAZY_PROFILE:
        from . import profile

        return getattr(profile, name)
    if name in _LAZY_ACCURACY:
        from . import accuracy

        return getattr(accuracy, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
